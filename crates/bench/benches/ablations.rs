//! Ablation benches for the simulator's load-bearing design choices:
//! replacement policy, DDIO way limit, slice count, eviction-set
//! construction, and the decode window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pc_cache::{
    AccessKind, CacheGeometry, DdioMode, Hierarchy, PhysAddr, ReplacementPolicy, SlicedCache,
};
use pc_core::covert::{lfsr_symbols, run_channel, ChannelConfig};
use pc_core::{TestBed, TestBedConfig};
use pc_probe::{build_eviction_sets_for_index, AddressPool};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Raw access throughput of the cache model under each replacement
/// policy (LRU is the default; PLRU approximates real parts).
fn replacement(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_replacement");
    group.sample_size(10);
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Random,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut llc = SlicedCache::with_policy_and_seed(
                        CacheGeometry::tiny(),
                        DdioMode::enabled(),
                        policy,
                        1,
                    );
                    let mut rng = SmallRng::seed_from_u64(2);
                    for i in 0..50_000u64 {
                        let addr = PhysAddr::new(rng.gen_range(0..4096) * 64);
                        let kind = if i % 4 == 0 {
                            AccessKind::IoWrite
                        } else {
                            AccessKind::CpuRead
                        };
                        llc.access(addr, kind);
                    }
                    llc.stats()
                });
            },
        );
    }
    group.finish();
}

/// How the DDIO way limit changes the leak (CPU lines evicted by I/O).
fn ddio_ways(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_ddio_way_limit");
    group.sample_size(10);
    for limit in [1u8, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(limit), &limit, |b, &limit| {
            b.iter(|| {
                let mut h = Hierarchy::new(
                    CacheGeometry::xeon_e5_2660(),
                    DdioMode::Enabled {
                        io_way_limit: limit,
                    },
                );
                let mut rng = SmallRng::seed_from_u64(3);
                // CPU working set, then an I/O storm.
                for _ in 0..5_000 {
                    h.cpu_read(PhysAddr::new(rng.gen_range(0..65_536) * 64));
                }
                for _ in 0..5_000 {
                    h.io_write(PhysAddr::new(rng.gen_range(0..65_536) * 64));
                }
                h.llc().stats().io_evicted_cpu
            });
        });
    }
    group.finish();
}

/// Timing-based eviction-set construction cost (the attack's setup
/// phase) for one page-aligned set index.
fn eviction_set_construction(c: &mut Criterion) {
    c.bench_function("ablation_eviction_set_build_one_index", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
            let pool = AddressPool::allocate(5, 8192);
            let thr = h.latencies().miss_threshold();
            build_eviction_sets_for_index(&mut h, &pool, 0, 20, 8, thr)
        });
    });
}

/// Covert-channel decode window width (the paper uses 3).
fn decode_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_decode_window");
    group.sample_size(10);
    for window in [2u8, 3, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(window),
            &window,
            |b, &window| {
                b.iter(|| {
                    let mut bed = TestBedConfig::paper_baseline();
                    bed.driver.ring_size = 16;
                    let mut tb = TestBed::new(bed);
                    let pool = AddressPool::allocate(6, 12288);
                    let symbols = lfsr_symbols(pc_core::covert::Encoding::Ternary, 20, 0x99);
                    let cfg = ChannelConfig {
                        monitored_buffers: 1,
                        packet_rate_fps: 100_000,
                        probe_rate_hz: 28_000,
                        window,
                        ..ChannelConfig::paper_defaults()
                    };
                    run_channel(&mut tb, &pool, &symbols, &cfg)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = replacement, ddio_ways, eviction_set_construction, decode_window
}
criterion_main!(benches);
