//! The LLC `access` hot path: raw accesses/sec on the paper's Xeon
//! geometry, for the SoA store *and* the original per-set reference
//! layout, on three trace shapes:
//!
//! * `stream` — uniform random lines over a region far larger than the
//!   LLC: every access misses, bounding trace-replay experiments like
//!   the fig14-16 defense workloads.
//! * `resident` — a working set that fits in the LLC: steady-state hits,
//!   the shape of the spy's PRIME+PROBE inner loops (fig7/8, table 1).
//! * `conflict` — many tags competing for few sets: eviction-dominated,
//!   the shape of DDIO ring traffic hammering page-aligned sets.
//!
//! Each shape runs under Disabled/Enabled/Adaptive DDIO with an I/O-write
//! mix. `cache_access/...` is the SoA store, `cache_access_reference/...`
//! the pre-refactor layout, measured in the same process so the speedup
//! is re-established wherever the bench runs. Set `CRITERION_JSON` to
//! capture machine-readable medians (the `repro bench-cache` subcommand
//! does this for `BENCH_cache.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pc_bench::cache_bench::{cases, SHARD_CHUNK};
use pc_cache::reference::ReferenceCache;
use pc_cache::{CacheGeometry, SlicedCache};

fn access_soa(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_access");
    group.sample_size(10);
    for (name, ops, mode) in cases() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            // Build once and keep the cache warm across samples: the
            // measurement is the steady-state access path, not
            // construction.
            let mut llc = SlicedCache::new(CacheGeometry::xeon_e5_2660(), mode);
            b.iter(|| {
                for &op in &ops {
                    llc.access(op.addr, op.kind);
                }
                llc.stats()
            });
        });
    }
    group.finish();
}

fn access_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_access_reference");
    group.sample_size(10);
    for (name, ops, mode) in cases() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            let mut llc = ReferenceCache::new(CacheGeometry::xeon_e5_2660(), mode);
            b.iter(|| {
                for &op in &ops {
                    llc.access(op.addr, op.kind);
                }
                llc.stats()
            });
        });
    }
    group.finish();
}

/// The batch entry point on the same traces (amortized call overhead).
///
/// Chunking mirrors how drivers feed the batch API; adaptation cadence
/// is chunk-independent (each slice's defense clock ticks per access
/// it receives), so this group stays comparable to the scalar one at
/// any chunk size.
fn access_batch(c: &mut Criterion) {
    const CHUNK: usize = 512;
    let mut group = c.benchmark_group("cache_access_batch");
    group.sample_size(10);
    for (name, ops, mode) in cases() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            let mut llc = SlicedCache::new(CacheGeometry::xeon_e5_2660(), mode);
            b.iter(|| {
                let mut hits = 0u64;
                for chunk in ops.chunks(CHUNK) {
                    hits += llc.access_batch(chunk).hits;
                }
                hits
            });
        });
    }
    group.finish();
}

/// The slice-sharded parallel engine on the same traces: bins by slice
/// hash and replays shards on `pc_par::max_threads()` workers
/// (`PC_BENCH_THREADS=1` pins it to the sequential walk). Results are
/// byte-identical to `cache_access`; only wall clock differs — this
/// group is the multi-core scaling measurement.
fn access_sharded(c: &mut Criterion) {
    let threads = pc_par::max_threads();
    let mut group = c.benchmark_group("cache_access_sharded");
    group.sample_size(10);
    for (name, ops, mode) in cases() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            let mut llc = SlicedCache::new(CacheGeometry::xeon_e5_2660(), mode);
            b.iter(|| {
                let mut hits = 0u64;
                for chunk in ops.chunks(SHARD_CHUNK) {
                    hits += llc.access_batch_threads(chunk, threads).hits;
                }
                hits
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = access_soa, access_batch, access_sharded, access_reference
}
criterion_main!(benches);
