//! Figure 5 bench: one driver init's buffer → page-aligned-set histogram.

use criterion::{criterion_group, criterion_main, Criterion};
use pc_bench::experiments;

fn bench(c: &mut Criterion) {
    c.bench_function("fig05_buffer_mapping", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let hist = experiments::fig5(seed);
            assert_eq!(hist.iter().sum::<usize>(), 256);
            hist
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
