//! Figure 6 bench: buffers-per-set distribution over repeated driver
//! initializations.

use criterion::{criterion_group, criterion_main, Criterion};
use pc_cache::CacheGeometry;
use pc_core::footprint::mapping_distribution;

fn bench(c: &mut Criterion) {
    let geom = CacheGeometry::xeon_e5_2660();
    c.bench_function("fig06_mapping_distribution_20_instances", |b| {
        b.iter(|| mapping_distribution(&geom, 20, 7));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
