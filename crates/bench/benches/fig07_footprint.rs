//! Figure 7 bench: the footprint-discovery sampling loop (monitor all
//! 256 page-aligned sets while broadcast frames arrive).

use criterion::{criterion_group, criterion_main, Criterion};
use pc_core::footprint::{build_monitor, page_aligned_targets, watch};
use pc_core::{TestBed, TestBedConfig};
use pc_net::{ArrivalSchedule, ConstantSize, LineRate};
use pc_probe::AddressPool;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    c.bench_function("fig07_watch_256_sets_50_samples", |b| {
        b.iter(|| {
            let mut tb = TestBed::new(TestBedConfig::paper_baseline());
            let geom = tb.hierarchy().llc().geometry();
            let pool = AddressPool::allocate(1, 12288);
            let monitor = build_monitor(tb.hierarchy().llc(), &pool, &page_aligned_targets(&geom));
            let mut rng = SmallRng::seed_from_u64(2);
            let frames = ArrivalSchedule::new(LineRate::gigabit())
                .frames_per_second(200_000)
                .generate(&mut ConstantSize::blocks(2), tb.now() + 1, 5_000, &mut rng);
            tb.enqueue(frames);
            watch(&mut tb, &monitor, 50, 400_000)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
