//! Figure 8 bench: size detection via block-row monitoring for one
//! packet size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pc_cache::SliceSet;
use pc_core::footprint::{block_row_targets, build_monitor, watch};
use pc_core::{TestBed, TestBedConfig};
use pc_net::{ArrivalSchedule, ConstantSize, LineRate};
use pc_probe::AddressPool;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_size_detection");
    group.sample_size(10);
    for blocks in [1u32, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(blocks),
            &blocks,
            |b, &blocks| {
                b.iter(|| {
                    let mut tb = TestBed::new(TestBedConfig::paper_baseline());
                    let geom = tb.hierarchy().llc().geometry();
                    let mut targets: Vec<SliceSet> = Vec::new();
                    for row in 0..4 {
                        targets.extend(block_row_targets(&geom, row));
                    }
                    let pool = AddressPool::allocate(3, 16384);
                    let monitor = build_monitor(tb.hierarchy().llc(), &pool, &targets);
                    let mut rng = SmallRng::seed_from_u64(4);
                    let frames = ArrivalSchedule::new(LineRate::gigabit())
                        .frames_per_second(200_000)
                        .generate(
                            &mut ConstantSize::blocks(blocks),
                            tb.now() + 1,
                            1_500,
                            &mut rng,
                        );
                    tb.enqueue(frames);
                    watch(&mut tb, &monitor, 15, 1_500_000)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
