//! Figure 11 bench: a short covert transmission end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pc_core::covert::{lfsr_symbols, run_channel, ChannelConfig, Encoding};
use pc_core::{TestBed, TestBedConfig};
use pc_probe::AddressPool;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_covert_channel");
    group.sample_size(10);
    for probe_khz in [7u64, 28] {
        group.bench_with_input(
            BenchmarkId::new("ternary_30_symbols", probe_khz),
            &probe_khz,
            |b, &khz| {
                b.iter(|| {
                    let mut bed = TestBedConfig::paper_baseline();
                    bed.driver.ring_size = 16;
                    let mut tb = TestBed::new(bed);
                    let pool = AddressPool::allocate(4, 12288);
                    let symbols = lfsr_symbols(Encoding::Ternary, 30, 0x77);
                    let cfg = ChannelConfig {
                        monitored_buffers: 1,
                        packet_rate_fps: 100_000,
                        probe_rate_hz: khz * 1_000,
                        ..ChannelConfig::paper_defaults()
                    };
                    run_channel(&mut tb, &pool, &symbols, &cfg)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
