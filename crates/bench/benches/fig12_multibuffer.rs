//! Figure 12 bench: the multi-buffer channel (a/b) and the full chased
//! channel (c/d) at small scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pc_core::covert::{lfsr_symbols, run_channel, run_chased_channel, ChannelConfig, Encoding};
use pc_core::{TestBed, TestBedConfig};
use pc_probe::AddressPool;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    for buffers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("multibuffer", buffers),
            &buffers,
            |b, &n| {
                b.iter(|| {
                    let mut tb = TestBed::new(TestBedConfig::paper_baseline());
                    let pool = AddressPool::allocate(5, 12288);
                    let symbols = lfsr_symbols(Encoding::Ternary, 20 * n, 0x31);
                    let cfg = ChannelConfig {
                        monitored_buffers: n,
                        probe_rate_hz: 28_000,
                        window: 2,
                        ..ChannelConfig::paper_defaults()
                    };
                    run_channel(&mut tb, &pool, &symbols, &cfg)
                });
            },
        );
    }
    group.bench_function("chased_160kbps_500_symbols", |b| {
        b.iter(|| {
            let mut tb = TestBed::new(TestBedConfig::paper_baseline());
            let pool = AddressPool::allocate(6, 16384);
            let symbols = lfsr_symbols(Encoding::Ternary, 500, 0x51);
            run_chased_channel(&mut tb, &pool, &symbols, 100_000)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
