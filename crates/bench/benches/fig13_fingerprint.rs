//! Figure 13 / §V bench: one trace capture through the cache plus
//! classification.

use criterion::{criterion_group, criterion_main, Criterion};
use pc_core::chasing::ChasingSpy;
use pc_core::fingerprint::{capture_trace, CaptureConfig, EditDistanceClassifier};
use pc_core::{TestBed, TestBedConfig};
use pc_net::ClosedWorld;
use pc_probe::AddressPool;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let world = ClosedWorld::paper_five_sites();
    let cfg = CaptureConfig {
        trace_len: 60,
        ..CaptureConfig::paper_defaults()
    };
    c.bench_function("fig13_capture_one_page_load", |b| {
        let pool = AddressPool::allocate(8, 16384);
        let mut rng = SmallRng::seed_from_u64(8);
        b.iter(|| {
            let mut bed = TestBedConfig::paper_baseline();
            bed.driver.ring_size = 32;
            let mut tb = TestBed::new(bed);
            let mut spy = ChasingSpy::for_ring(tb.hierarchy().llc(), &pool, tb.driver());
            let frames = world.sites()[0].page_load(0.2, &mut rng);
            capture_trace(&mut tb, &mut spy, &frames, &cfg)
        });
    });
    c.bench_function("fig13_classify_trace", |b| {
        let mut rng = SmallRng::seed_from_u64(9);
        let training: Vec<Vec<Vec<u8>>> = world
            .sites()
            .iter()
            .map(|s| {
                (0..4)
                    .map(|_| {
                        pc_core::fingerprint::true_size_classes(&s.page_load(0.2, &mut rng), 100)
                    })
                    .collect()
            })
            .collect();
        let clf = EditDistanceClassifier::train(
            world.sites().iter().map(|s| s.name().to_owned()).collect(),
            training,
        );
        let probe = pc_core::fingerprint::true_size_classes(
            &world.sites()[2].page_load(0.2, &mut rng),
            100,
        );
        b.iter(|| clf.classify(&probe));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
