//! Figure 14 bench: Nginx requests under DDIO vs the adaptive partition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pc_cache::DdioMode;
use pc_defense::workloads::{nginx, NginxConfig, Workbench};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_nginx_200_requests");
    group.sample_size(10);
    for (name, mode) in [
        ("ddio", DdioMode::enabled()),
        ("adaptive", DdioMode::adaptive()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            let cfg = NginxConfig::paper_defaults();
            b.iter(|| {
                let mut bench = Workbench::paper_machine(mode, 3);
                nginx(&mut bench, &cfg, 200)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
