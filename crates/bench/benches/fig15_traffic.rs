//! Figure 15 bench: the three I/O workloads under each DDIO mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pc_cache::DdioMode;
use pc_defense::workloads::{file_copy, tcp_recv, Workbench};

fn bench(c: &mut Criterion) {
    let modes = [
        ("no_ddio", DdioMode::Disabled),
        ("ddio", DdioMode::enabled()),
        ("adaptive", DdioMode::adaptive()),
    ];
    let mut group = c.benchmark_group("fig15");
    group.sample_size(10);
    for (name, mode) in modes {
        group.bench_with_input(BenchmarkId::new("tcp_recv_2k", name), &mode, |b, &mode| {
            b.iter(|| {
                let mut bench = Workbench::paper_machine(mode, 6);
                tcp_recv(&mut bench, 2_000)
            });
        });
        group.bench_with_input(
            BenchmarkId::new("file_copy_1mb", name),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    let mut bench = Workbench::paper_machine(mode, 6);
                    file_copy(&mut bench, 1)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
