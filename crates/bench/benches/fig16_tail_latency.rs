//! Figure 16 bench: the open-loop load generator under two defenses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pc_cache::{CacheGeometry, DdioMode};
use pc_defense::loadgen::{run_http_load, LoadGenConfig};
use pc_defense::workloads::{NginxConfig, Workbench};
use pc_nic::{DriverConfig, RandomizeMode};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_loadgen_2k_requests");
    group.sample_size(10);
    for (name, randomize) in [
        ("baseline", RandomizeMode::Off),
        ("full_random", RandomizeMode::EveryPacket),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &randomize,
            |b, &randomize| {
                let nginx_cfg = NginxConfig::paper_defaults();
                let lg = LoadGenConfig {
                    requests: 2_000,
                    ..LoadGenConfig::paper_defaults()
                };
                b.iter(|| {
                    let driver = DriverConfig {
                        randomize,
                        ..DriverConfig::paper_defaults()
                    };
                    let mut bench = Workbench::new(
                        CacheGeometry::xeon_e5_2660(),
                        DdioMode::enabled(),
                        driver,
                        4,
                    );
                    run_http_load(&mut bench, &nginx_cfg, &lg)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
