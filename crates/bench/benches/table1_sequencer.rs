//! Table I bench: the SEQUENCER pipeline — graph construction and the
//! ring walk — plus a scaled end-to-end window recovery.

use criterion::{criterion_group, criterion_main, Criterion};
use pc_cache::SliceSet;
use pc_core::footprint::page_aligned_targets;
use pc_core::sequencer::{recover_window, EdgeGraph, SequencerConfig};
use pc_core::{TestBed, TestBedConfig};
use pc_net::{ArrivalSchedule, ConstantSize, LineRate};
use pc_probe::{AddressPool, SampleMatrix};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A synthetic activity matrix for a 32-node ring, 40k samples.
fn synthetic_matrix() -> SampleMatrix {
    let n = 32;
    let mut m = SampleMatrix::new((0..n).collect());
    for r in 0..40_000 {
        let mut row = vec![false; n];
        if r % 3 != 2 {
            row[(r / 3) % n] = true;
        }
        m.push(row);
    }
    m
}

fn bench(c: &mut Criterion) {
    let matrix = synthetic_matrix();
    c.bench_function("table1_build_graph_40k_samples", |b| {
        b.iter(|| EdgeGraph::build(&matrix));
    });
    c.bench_function("table1_make_sequence", |b| {
        let graph = EdgeGraph::build(&matrix);
        b.iter(|| graph.clone().make_sequence(2, 128));
    });
    c.bench_function("table1_end_to_end_12_sets", |b| {
        b.iter(|| {
            let mut tb = TestBed::new(TestBedConfig::paper_baseline().with_seed(9));
            let geom = tb.hierarchy().llc().geometry();
            let targets: Vec<SliceSet> = page_aligned_targets(&geom).into_iter().take(12).collect();
            let pool = AddressPool::allocate(9, 12288);
            let mut rng = SmallRng::seed_from_u64(9);
            let frames = ArrivalSchedule::new(LineRate::gigabit())
                .frames_per_second(40_000)
                .generate(&mut ConstantSize::blocks(2), tb.now() + 1, 10_000, &mut rng);
            tb.enqueue(frames);
            let cfg = SequencerConfig {
                samples: 8_000,
                interval: 41_000,
                ..SequencerConfig::paper_defaults()
            };
            recover_window(&mut tb, &pool, &targets, &cfg)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
