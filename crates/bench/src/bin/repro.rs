//! `repro` — regenerate every table and figure of the paper, and run
//! registered end-to-end scenarios.
//!
//! ```text
//! repro [--full] [--smoke] [--seed N] [--rx-engine E] [--queues N] <experiment|all|bench-cache>
//! repro [--full] [--seed N] [--rx-engine E] [--queues N] scenario <name>... | list
//! repro [--full] [--seed N] [--tenants N] fleet
//! repro [--seeds N] fault-matrix
//!
//! experiments:
//!   fig5 fig6 fig7 fig8 table1 fig10 fig11 fig12ab fig12cd
//!   fig13 fingerprint table2 fig14 fig15 fig16
//! ```
//!
//! `scenario` runs named workloads from the registry in
//! `pc_bench::scenario` (`repro scenario list` prints them): the
//! paper's heavy end-to-end attacks (ring recovery, fingerprinting)
//! plus mixed web-trace, line-rate-sweep and covert-bandwidth-sweep
//! workloads, all riding the batched op-stream pipeline. Scenario
//! stdout follows the same determinism contract as the figures.
//!
//! `fleet` instantiates `--tenants N` (default 64) independent tenants
//! from the standard weighted scenario templates, derives each
//! tenant's seed from `--seed`, fans the runs out shared-nothing over
//! worker threads, and prints the merged fleet statistics
//! (per-template percentiles, per-DDIO-mode breakdown, aggregate line
//! rate — see `pc_bench::fleet`). The merge order is tenant index, so
//! stdout is byte-identical at any `PC_BENCH_THREADS`.
//!
//! Output is plain text with CSV-style rows, matching the series the
//! paper reports. `--full` uses paper-like parameters (minutes);
//! the default quick scale finishes in seconds per experiment.
//! Experiments with independent repetitions fan them out over threads,
//! and the LLC itself simulates slice-parallel (set `PC_BENCH_THREADS=1`
//! to force sequential execution); *stdout is byte-identical either
//! way* — the CI determinism job diffs two full runs to enforce it.
//! Timing chatter goes to stderr so it never perturbs the comparison.
//!
//! `bench-cache` times the LLC hot path (scalar SoA loop, the
//! slice-sharded batch engine, the sharded `run_trace` replay — now
//! parallel in every DDIO mode, adaptive included — and the
//! pre-refactor reference layout; 9 trace/mode cases) plus the
//! end-to-end `IgbDriver` receive path on its three op-stream engines
//! (streaming / burst / per-access oracle, per DDIO mode) and writes
//! `BENCH_cache.json` next to the working directory so the perf
//! trajectory is tracked machine-readably from PR to PR (see
//! `crates/bench/README.md` for the schema). `--smoke` shrinks it to a
//! seconds-long sanity-checked pass for CI (writing
//! `BENCH_cache_smoke.json` so the tracked file only ever holds
//! full-protocol numbers): it fails loudly if any engine produces an
//! unusable timing. `--smoke` is rejected for other experiments —
//! they have no reduced mode, and silently ignoring it would be worse.

use pc_bench::experiments::{self as exp, Scale};
use std::time::Instant;

fn main() {
    // Honor PC_FAULT for any subcommand (panics on an invalid spec):
    // an armed run is an explicitly broken simulator, which is exactly
    // what `fault-matrix` quantifies and what PC_BLESS refuses.
    pc_cache::fault::arm_from_env();
    let mut scale = Scale::Quick;
    let mut smoke = false;
    let mut seed = 2020u64;
    let mut fault_seeds = 3u64;
    let mut tenants = 64usize;
    let mut cmds: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => scale = Scale::Full,
            "--quick" => scale = Scale::Quick,
            "--smoke" => smoke = true,
            "--seeds" => {
                fault_seeds = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--seeds needs a positive number"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--tenants" => {
                tenants = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--tenants needs a positive number"));
            }
            // Engine selection for every TestBed the run constructs
            // (scenarios and figure experiments alike): the CI
            // determinism job byte-diffs whole runs across engines.
            // Routed through the PC_RX_ENGINE environment variable so
            // deeply nested TestBedConfig construction sites pick it up.
            "--rx-engine" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--rx-engine needs batched|per-frame|per-access"));
                // One name list: the same parser TestBed configs use.
                if pc_core::RxEngine::parse(&v).is_none() {
                    die(&format!("unknown rx engine `{v}`"));
                }
                std::env::set_var("PC_RX_ENGINE", v);
            }
            // Queue-count selection for every TestBed the run
            // constructs, same pattern as --rx-engine: validated here,
            // routed through PC_RSS_QUEUES so nested TestBedConfig
            // construction sites (and scenario spec defaults) pick it up.
            "--queues" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--queues needs a queue count"));
                match v.parse::<usize>() {
                    Ok(n) if (1..=pc_nic::MAX_RSS_QUEUES).contains(&n) => {
                        std::env::set_var("PC_RSS_QUEUES", v);
                    }
                    _ => die(&format!(
                        "--queues needs 1..={} rx queues",
                        pc_nic::MAX_RSS_QUEUES
                    )),
                }
            }
            "-h" | "--help" => {
                println!("usage: repro [--full] [--smoke] [--seed N] [--rx-engine E] [--queues N] <experiment|all|bench-cache>");
                println!(
                    "       repro [--full] [--seed N] [--rx-engine E] [--queues N] scenario <name>... | list"
                );
                println!("       repro [--full] [--seed N] [--tenants N] fleet");
                println!("       repro [--seeds N] fault-matrix");
                println!("--rx-engine: TestBed receive engine (batched|per-frame|per-access;");
                println!("             all byte-identical — the CI determinism job diffs them)");
                println!(
                    "--queues:    rx queue count for every TestBed (1..={}; overrides",
                    pc_nic::MAX_RSS_QUEUES
                );
                println!("             scenario defaults; routed via PC_RSS_QUEUES)");
                println!("experiments: fig5 fig6 fig7 fig8 table1 fig10 fig11 fig12ab");
                println!("             fig12cd fig13 fingerprint table2 fig14 fig15 fig16");
                println!("bench-cache: LLC hot-path microbenchmark -> BENCH_cache.json");
                println!("             (--smoke: short sanity-checked pass for CI)");
                println!("scenario:    registered end-to-end workloads (`scenario list`)");
                println!("fleet:       --tenants N independent tenants from the standard");
                println!("             templates, merged fleet statistics (default 64)");
                println!("fault-matrix: arm every PC_FAULT catalog site x seed (0..N from");
                println!("             --seeds, default 3) against the detector suites;");
                println!("             prints the kill matrix, exits 2 on survivors");
                return;
            }
            other => cmds.push(other.to_owned()),
        }
    }
    if cmds.is_empty() {
        cmds.push("all".to_owned());
    }
    if smoke && cmds.iter().any(|c| c != "bench-cache") {
        die("--smoke only applies to bench-cache");
    }
    if cmds[0] == "scenario" {
        run_scenarios(&cmds[1..], scale, seed);
        return;
    }
    if cmds[0] == "fleet" {
        if cmds.len() > 1 {
            die("fleet takes no further arguments (use --tenants N)");
        }
        run_fleet_cmd(tenants, scale, seed);
        return;
    }
    if cmds[0] == "fault-matrix" {
        if cmds.len() > 1 {
            die("fault-matrix takes no further arguments (use --seeds N)");
        }
        if pc_cache::fault::current().is_some() {
            die("fault-matrix arms its own faults; unset PC_FAULT first");
        }
        if !pc_bench::faultmatrix::run(fault_seeds) {
            std::process::exit(2);
        }
        return;
    }

    let all = [
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "table1",
        "fig10",
        "fig11",
        "fig12ab",
        "fig12cd",
        "fig13",
        "fingerprint",
        "table2",
        "fig14",
        "fig15",
        "fig16",
    ];
    let selected: Vec<&str> = if cmds.iter().any(|c| c == "all") {
        all.to_vec()
    } else {
        cmds.iter().map(String::as_str).collect()
    };

    for cmd in selected {
        let t = Instant::now();
        println!("==================================================================");
        match cmd {
            "fig5" => fig5(seed),
            "fig6" => fig6(scale, seed),
            "fig7" => fig7(scale, seed),
            "fig8" => fig8(scale, seed),
            "table1" => table1(scale, seed),
            "fig10" => fig10(seed),
            "fig11" => fig11(scale, seed),
            "fig12ab" => fig12ab(scale, seed),
            "fig12cd" => fig12cd(scale, seed),
            "fig13" => fig13(seed),
            "fingerprint" => fingerprint(scale, seed),
            "table2" => table2(),
            "fig14" => fig14(scale, seed),
            "fig15" => fig15(scale, seed),
            "fig16" => fig16(scale, seed),
            "bench-cache" => bench_cache(scale, smoke),
            other => die(&format!("unknown experiment `{other}` (try --help)")),
        }
        // Wall-clock chatter goes to stderr: stdout must be byte-stable
        // across runs and thread counts (the CI determinism job diffs it).
        eprintln!("[{cmd} done in {:.1}s]", t.elapsed().as_secs_f64());
    }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

fn run_fleet_cmd(tenants: usize, scale: Scale, seed: u64) {
    use pc_bench::fleet;
    let t = Instant::now();
    println!("==================================================================");
    println!("Fleet — {tenants} tenants from the standard templates");
    let cfg = fleet::FleetConfig::standard(tenants, seed, scale);
    print!("{}", fleet::run_fleet(&cfg).render());
    // Timing to stderr: stdout must be byte-stable across thread
    // counts (the CI determinism job diffs fleet runs at 1 vs 4).
    eprintln!("[fleet done in {:.1}s]", t.elapsed().as_secs_f64());
}

fn run_scenarios(names: &[String], scale: Scale, seed: u64) {
    use pc_bench::scenario;
    if names.is_empty() || names.iter().any(|n| n == "list") {
        println!("registered scenarios:");
        print!("{}", scenario::render_list());
        return;
    }
    for name in names {
        let s = scenario::find(name)
            .unwrap_or_else(|| die(&format!("unknown scenario `{name}` (try `scenario list`)")));
        let t = Instant::now();
        println!("==================================================================");
        println!("Scenario {} — {}", s.name(), s.summary());
        // Per-scenario window-fusion telemetry: reset the process-wide
        // counters so each stderr line reports this scenario's delta.
        pc_core::reset_window_stats();
        print!("{}", s.run(scale, seed));
        // Timing and window telemetry to stderr, like the figure
        // experiments: stdout must be byte-stable (the CI determinism
        // job diffs scenario runs too), while the fused window sizes —
        // the thing the reconstruction engine exists to grow — stay
        // observable without a bench run. Windows form only when the
        // batched engine has worker threads to feed; other runs report
        // 0 windows.
        let w = pc_core::window_stats_snapshot();
        eprintln!(
            "[scenario {name} done in {:.1}s; {} windows, frames/window mean {:.1} p50 {} max {}]",
            t.elapsed().as_secs_f64(),
            w.windows,
            w.mean_frames(),
            w.p50_frames(),
            w.max_frames
        );
    }
}

fn fig5(seed: u64) {
    println!("Figure 5 — ring buffers per page-aligned cache set (one instance)");
    let hist = exp::fig5(seed);
    println!("set,buffers");
    for (set, n) in hist.iter().enumerate() {
        println!("{set},{n}");
    }
    let empty = hist.iter().filter(|&&n| n == 0).count();
    let max = hist.iter().max().copied().unwrap_or(0);
    println!("# summary: {empty}/256 sets empty, max buffers on one set = {max}");
    println!("# paper:   ~35% of sets empty; one set holds 5 in the example");
}

fn fig6(scale: Scale, seed: u64) {
    println!("Figure 6 — distribution of buffers-per-set over many driver inits");
    let dist = exp::fig6(scale, seed);
    let total: usize = dist.iter().sum();
    println!("buffers_mapped_to_set,instances,fraction");
    for (k, n) in dist.iter().enumerate() {
        println!("{k},{n},{:.4}", *n as f64 / total as f64);
    }
    println!(
        "# summary: {:.1}% of sets empty (paper: ~35%); >4 buffers: {:.3}% (paper: rare)",
        dist[0] as f64 / total as f64 * 100.0,
        dist.iter().skip(5).sum::<usize>() as f64 / total as f64 * 100.0
    );
}

fn fig7(scale: Scale, seed: u64) {
    println!("Figure 7 — page-aligned set activity: idle / receiving / idle");
    let r = exp::fig7(scale, seed);
    println!("phase,samples,active_sets,total_events");
    for (p, name) in ["idle", "receiving", "idle"].iter().enumerate() {
        println!(
            "{name},{},{},{}",
            r.phase_samples[p],
            r.active_sets(p),
            r.per_set[p].iter().sum::<usize>()
        );
    }
    println!("# paper: white dots (activity) appear only while packets stream in,");
    println!("#        on the sets that host at least one ring buffer (~65% of 256)");
}

fn fig8(scale: Scale, seed: u64) {
    println!("Figure 8 — block-row activity vs packet size (events)");
    let m = exp::fig8(scale, seed);
    println!("block_row,1_block_pkts,2_block_pkts,3_block_pkts,4_block_pkts");
    for (row, counts) in m.iter().enumerate() {
        println!(
            "block{row},{},{},{},{}",
            counts[0], counts[1], counts[2], counts[3]
        );
    }
    println!("# paper: activity on the diagonal and above; 1-block packets still");
    println!("#        light block 1 (the driver's unconditional prefetch)");
}

fn table1(scale: Scale, seed: u64) {
    println!("Table I — ring-buffer sequence recovery");
    let r = exp::table1(scale, seed);
    println!("run,levenshtein,error_rate_pct,longest_mismatch,recovered_len,truth_len,minutes");
    for (i, q) in r.runs.iter().enumerate() {
        println!(
            "{i},{},{:.1},{},{},{},{:.1}",
            q.levenshtein,
            q.error_rate * 100.0,
            q.longest_mismatch,
            q.recovered_len,
            q.truth_len,
            q.minutes()
        );
    }
    println!(
        "# mean: lev {:.1}, error {:.1}% (paper: 25.2, 9.8%), longest mismatch {:.1} (paper 5.2)",
        r.mean(|q| q.levenshtein as f64),
        r.mean(|q| q.error_rate * 100.0),
        r.mean(|q| q.longest_mismatch as f64)
    );
    println!(
        "# params: {} sets, {} samples, {} pkt/s (paper: 32 sets, 100k samples, 0.2M pkt/s)",
        r.monitored_sets, r.samples, r.packet_rate
    );
}

fn fig10(seed: u64) {
    println!("Figure 10 — decoding the '2 0 1 2 0 1 …' ternary stream");
    let r = exp::fig10(seed);
    let fmt = |v: &[u8]| {
        v.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!("sent:    {}", fmt(&r.sent));
    println!("decoded: {}", fmt(&r.decoded));
    println!("# error rate: {:.1}%", r.error_rate * 100.0);
}

fn fig11(scale: Scale, seed: u64) {
    println!("Figure 11 — single-buffer covert channel");
    let rows = exp::fig11(scale, seed);
    println!("encoding,probe_khz,bandwidth_bps,error_rate_pct");
    for r in rows {
        println!(
            "{},{},{:.0},{:.1}",
            r.encoding,
            r.probe_khz,
            r.bandwidth_bps,
            r.error_rate * 100.0
        );
    }
    println!("# paper: ~1953 bps binary / ~3095 bps ternary, error falls as probe");
    println!("#        rate rises 7→28 kHz, binary ≤ ternary error");
}

fn fig12ab(scale: Scale, seed: u64) {
    println!("Figure 12a/b — bandwidth/error vs monitored buffers");
    let rows = exp::fig12ab(scale, seed);
    println!("monitored_buffers,bandwidth_kbps,error_rate_pct");
    for r in rows {
        println!(
            "{},{:.1},{:.1}",
            r.buffers,
            r.bandwidth_kbps,
            r.error_rate * 100.0
        );
    }
    println!("# paper: bandwidth ~doubles per doubling (to 24.5 kbps at 16);");
    println!("#        error roughly flat until a jump at 16 buffers");
}

fn fig12cd(scale: Scale, seed: u64) {
    println!("Figure 12c/d — chasing all buffers: out-of-sync and error vs rate");
    let rows = exp::fig12cd(scale, seed);
    println!("bandwidth_kbps,out_of_sync_pct,error_rate_pct");
    for r in rows {
        println!(
            "{},{:.1},{:.1}",
            r.bandwidth_kbps,
            r.out_of_sync_rate * 100.0,
            r.error_rate * 100.0
        );
    }
    println!("# paper: out-of-sync ~constant with rate; error jumps at 640 kbps");
    println!("#        (packets begin arriving out of order)");
}

fn fig13(seed: u64) {
    println!("Figure 13 — hotcrp login: original vs recovered packet sizes");
    let r = exp::fig13(seed);
    println!("packet,ok_original,ok_recovered,fail_original,fail_recovered");
    for i in 0..r.ok_original.len() {
        println!(
            "{i},{},{},{},{}",
            r.ok_original[i], r.ok_recovered[i], r.fail_original[i], r.fail_recovered[i]
        );
    }
    println!("# paper: recovered traces preserve the size pattern that separates");
    println!("#        successful from unsuccessful logins");
}

fn fingerprint(scale: Scale, seed: u64) {
    println!("§V — closed-world website fingerprinting (5 sites)");
    let r = exp::fingerprint(scale, seed);
    println!("config,accuracy_pct,trials");
    println!(
        "DDIO,{:.1},{}",
        r.with_ddio.accuracy * 100.0,
        r.with_ddio.trials
    );
    println!(
        "NoDDIO,{:.1},{}",
        r.without_ddio.accuracy * 100.0,
        r.without_ddio.trials
    );
    println!("# paper: 89.7% with DDIO, 86.5% without (1000 trials)");
    println!("# confusion (DDIO): rows=truth, cols=predicted");
    for row in &r.with_ddio.confusion {
        println!("#   {row:?}");
    }
}

fn table2() {
    println!("Table II — baseline processor (constants, for reference)");
    print!("{}", exp::table2());
}

fn fig14(scale: Scale, seed: u64) {
    println!("Figure 14 — Nginx throughput: adaptive partitioning vs DDIO");
    let rows = exp::fig14(scale, seed);
    println!("llc_mib,config,krps");
    let mut by_size: std::collections::BTreeMap<u32, (f64, f64)> = Default::default();
    for r in &rows {
        println!("{},{},{:.1}", r.llc_mib, r.config, r.krps);
        let e = by_size.entry(r.llc_mib).or_default();
        if r.config == "DDIO" {
            e.1 = r.krps;
        } else {
            e.0 = r.krps;
        }
    }
    for (mib, (adaptive, ddio)) in by_size {
        println!(
            "# {} MiB: adaptive within {:.1}% of DDIO (paper: ≤2.7%)",
            mib,
            (1.0 - adaptive / ddio) * 100.0
        );
    }
}

fn fig15(scale: Scale, seed: u64) {
    println!("Figure 15 — memory traffic and LLC miss rate vs DDIO mode");
    let rows = exp::fig15(scale, seed);
    println!("workload,config,norm_mem_read,norm_mem_write,llc_miss_rate");
    for r in rows {
        println!(
            "{},{},{:.3},{:.3},{:.3}",
            r.workload, r.config, r.norm_read, r.norm_write, r.miss_rate
        );
    }
    println!("# paper: DDIO and adaptive partitioning both cut memory traffic vs");
    println!("#        No-DDIO; adaptive stays within ~2% of DDIO");
}

fn fig16(scale: Scale, seed: u64) {
    println!("Figure 16 — HTTP tail latency under each defense (140k req/s)");
    let rows = exp::fig16(scale, seed);
    println!("defense,p25_ms,p50_ms,p90_ms,p99_ms,p999_ms,p9999_ms");
    let mut current: Option<(&str, Vec<f64>)> = None;
    let mut p99: Vec<(String, f64)> = Vec::new();
    for r in &rows {
        match current.as_mut() {
            Some((name, vals)) if *name == r.defense => vals.push(r.latency_ms),
            _ => {
                if let Some((name, vals)) = current.take() {
                    print_fig16_row(name, &vals);
                }
                current = Some((r.defense, vec![r.latency_ms]));
            }
        }
        if (r.percentile - 99.0).abs() < 1e-9 {
            p99.push((r.defense.to_owned(), r.latency_ms));
        }
    }
    if let Some((name, vals)) = current.take() {
        print_fig16_row(name, &vals);
    }
    if let Some(base) = p99.iter().find(|(n, _)| n.starts_with("Vulnerable")) {
        for (name, v) in &p99 {
            println!(
                "# p99 vs baseline: {name}: {:+.1}%",
                (v / base.1 - 1.0) * 100.0
            );
        }
        println!("# paper: adaptive +3.1% p99; fully randomized +41.8% p99");
    }
}

fn print_fig16_row(name: &str, vals: &[f64]) {
    let cols: Vec<String> = vals.iter().map(|v| format!("{v:.2}")).collect();
    println!("{name},{}", cols.join(","));
}

/// Lowest burst speedup `--smoke` accepts on hosts with worker threads
/// (single-sample passes are noisy; well under parity still means the
/// fan-out is broken, not merely jittery). 1-core hosts are never
/// gated — see the `host_threads` row annotation.
const BURST_SMOKE_FLOOR: f64 = 0.85;

fn bench_cache(scale: Scale, smoke: bool) {
    println!("LLC hot path — scalar SoA / sharded batch / sharded trace replay / reference");
    let (samples, trace_len) = if smoke {
        (1, pc_bench::cache_bench::TRACE_LEN / 4)
    } else {
        match scale {
            Scale::Quick => (5, pc_bench::cache_bench::TRACE_LEN),
            Scale::Full => (15, pc_bench::cache_bench::TRACE_LEN),
        }
    };
    let driver_packets = if smoke {
        pc_bench::cache_bench::DRIVER_PACKETS / 4
    } else {
        pc_bench::cache_bench::DRIVER_PACKETS
    };
    let testbed_frames = if smoke {
        pc_bench::cache_bench::TESTBED_FRAMES / 4
    } else {
        pc_bench::cache_bench::TESTBED_FRAMES
    };
    let results = pc_bench::cache_bench::measure_all(samples, trace_len);
    println!(
        "case,soa_ns_per_access,sharded_ns_per_access,parallel_speedup,\
         trace_ns_per_access,trace_parallel_speedup,\
         reference_ns_per_access,speedup"
    );
    for r in &results {
        println!(
            "{},{:.1},{:.1},{:.2}x,{:.1},{:.2}x,{:.1},{:.2}x",
            r.case,
            r.soa_ns_per_access,
            r.sharded_ns_per_access,
            r.parallel_speedup(),
            r.trace_ns_per_access,
            r.trace_parallel_speedup(),
            r.reference_ns_per_access,
            r.speedup()
        );
    }
    for m in pc_bench::cache_bench::mode_speedups(&results) {
        println!(
            "# mode {}: batch parallel_speedup {:.2}x, trace parallel_speedup {:.2}x (geomean over shapes)",
            m.mode, m.parallel_speedup, m.trace_parallel_speedup
        );
    }
    // The end-to-end driver engine: one frame at a time through the
    // batched receive path vs the per-access oracle.
    let drivers = pc_bench::cache_bench::measure_driver(samples, driver_packets);
    println!(
        "driver_mode,driver_ns_per_packet,driver_burst_ns_per_packet,\
         driver_scalar_ns_per_packet,driver_speedup,driver_burst_speedup"
    );
    for d in &drivers {
        println!(
            "{},{:.1},{:.1},{:.1},{:.2}x,{:.2}x",
            d.mode,
            d.driver_ns_per_packet,
            d.driver_burst_ns_per_packet,
            d.driver_scalar_ns_per_packet,
            d.driver_speedup(),
            d.driver_burst_speedup()
        );
    }
    // The full arrival pipeline through the TestBed: windowed burst
    // delivery vs per-frame vs the per-access oracle — the per-mode
    // backlog rows plus the cross-gap fusion row (bursty schedule with
    // gaps and probe epochs, the shape that used to cut windows at
    // every sync).
    let mut testbeds = pc_bench::cache_bench::measure_testbed(samples, testbed_frames);
    testbeds.push(pc_bench::cache_bench::measure_crossgap(
        samples,
        testbed_frames,
    ));
    println!(
        "testbed_mode,testbed_burst_ns_per_frame,testbed_frame_ns_per_frame,\
         testbed_scalar_ns_per_frame,testbed_burst_speedup,testbed_scalar_speedup,\
         testbed_window_frames_mean"
    );
    for t in &testbeds {
        println!(
            "{},{:.1},{:.1},{:.1},{:.2}x,{:.2}x,{:.1}",
            t.mode,
            t.testbed_burst_ns_per_frame,
            t.testbed_frame_ns_per_frame,
            t.testbed_scalar_ns_per_frame,
            t.testbed_burst_speedup(),
            t.testbed_scalar_speedup(),
            t.testbed_window_frames_mean
        );
    }
    // End-to-end multi-queue scenarios: wall clock per registry run, so
    // RSS steering and window-fusion overhead are tracked PR to PR.
    let scenarios = pc_bench::cache_bench::measure_scenarios(samples, if smoke { 4 } else { 1 });
    println!("scenario,wall_ms");
    for s in &scenarios {
        println!("{},{:.1}", s.scenario, s.wall_ms);
    }
    // Fleet orchestration: the standard tenant mix end to end, wall
    // clock for the harness plus the (deterministic) simulated line rate.
    let fleet_tenants = if smoke {
        pc_bench::cache_bench::FLEET_TENANTS / 4
    } else {
        pc_bench::cache_bench::FLEET_TENANTS
    };
    let fleet = pc_bench::cache_bench::measure_fleet(samples, fleet_tenants);
    println!("fleet_tenants,tenants_per_sec,packets_per_sec");
    println!(
        "{},{:.1},{:.0}",
        fleet.tenants, fleet.tenants_per_sec, fleet.packets_per_sec
    );
    // The adaptive-mode tax the incremental re-evaluation is sized by
    // (target ≤ 4× enabled; ~15× before the dirty-set worklist).
    if let Some(tax) = pc_bench::cache_bench::adaptive_driver_tax(&drivers) {
        println!("# adaptive_driver_tax: {tax:.2}x enabled-mode ns/packet (target <= 4x)");
    }
    let json = pc_bench::cache_bench::to_json(
        &results, &drivers, &testbeds, &scenarios, &fleet, trace_len,
    );
    // Smoke runs are quarter-length single-sample measurements: keep
    // them away from the tracked BENCH_cache.json so the PR-to-PR perf
    // trajectory only ever records full-protocol numbers.
    let path = if smoke {
        "BENCH_cache_smoke.json"
    } else {
        "BENCH_cache.json"
    };
    match std::fs::write(path, &json) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
    if smoke {
        // The CI gate `cargo bench --no-run` only proves the benches
        // compile; this proves they *measure*: every engine must produce
        // a finite positive timing on every case or the job fails.
        for r in &results {
            if !r.is_sane() {
                die(&format!(
                    "bench-cache smoke: unusable timing for {}: {r:?}",
                    r.case
                ));
            }
        }
        for d in &drivers {
            if !d.is_sane() {
                die(&format!(
                    "bench-cache smoke: unusable driver timing for {}: {d:?}",
                    d.mode
                ));
            }
            // Burst speedups < 1.0 are only a regression when there are
            // workers to fan out to: a 1-core host's sharded dispatch
            // degenerates to the sequential path plus the op-scratch
            // round-trip, so its rows are annotated (host_threads) and
            // not gated. Multi-thread hosts are gated with a noise
            // floor below parity — smoke passes are single-sample.
            if d.host_threads > 1 && d.driver_burst_speedup() < BURST_SMOKE_FLOOR {
                die(&format!(
                    "bench-cache smoke: driver burst speedup {:.2}x under the \
                     {BURST_SMOKE_FLOOR}x floor on a {}-thread host for {}",
                    d.driver_burst_speedup(),
                    d.host_threads,
                    d.mode
                ));
            }
        }
        for t in &testbeds {
            if !t.is_sane() {
                die(&format!(
                    "bench-cache smoke: unusable testbed timing for {}: {t:?}",
                    t.mode
                ));
            }
            if t.host_threads > 1 && t.testbed_burst_speedup() < BURST_SMOKE_FLOOR {
                die(&format!(
                    "bench-cache smoke: testbed burst speedup {:.2}x under the \
                     {BURST_SMOKE_FLOOR}x floor on a {}-thread host for {}",
                    t.testbed_burst_speedup(),
                    t.host_threads,
                    t.mode
                ));
            }
            // The cross-gap row's fusion gate: the pre-reconstruction
            // engine cut a window at every gap sync and probe epoch, so
            // its mean window could never exceed the burst size. Only
            // meaningful with worker threads — a 1-core host delivers
            // per frame by design and reports 0.0.
            if t.mode == "crossgap"
                && t.host_threads > 1
                && t.testbed_window_frames_mean <= pc_bench::cache_bench::CROSSGAP_BURST as f64
            {
                die(&format!(
                    "bench-cache smoke: cross-gap mean window {:.1} frames does not \
                     exceed the {}-frame burst on a {}-thread host — windows are \
                     not fusing across gaps/epochs",
                    t.testbed_window_frames_mean,
                    pc_bench::cache_bench::CROSSGAP_BURST,
                    t.host_threads
                ));
            }
        }
        for s in &scenarios {
            if !s.is_sane() {
                die(&format!(
                    "bench-cache smoke: unusable scenario timing for {}: {s:?}",
                    s.scenario
                ));
            }
        }
        if !fleet.is_sane() {
            die(&format!(
                "bench-cache smoke: unusable fleet measurement: {fleet:?}"
            ));
        }
        println!(
            "# smoke: {} cases + {} driver rows + {} testbed rows + {} scenario rows + fleet sane",
            results.len(),
            drivers.len(),
            testbeds.len(),
            scenarios.len()
        );
    }
}
