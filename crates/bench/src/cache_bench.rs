//! Shared trace definitions for the LLC hot-path microbenchmark.
//!
//! Used by two consumers that must agree on the workload: the
//! `cache_throughput` Criterion bench (interactive measurement) and the
//! `repro bench-cache` subcommand (emits `BENCH_cache.json` so the perf
//! trajectory is tracked across PRs on one fixed workload).
//!
//! Three engines are timed on every (shape, mode) case:
//!
//! * `soa` — the scalar access loop over the SoA store (one thread);
//! * `sharded` — the same store replayed through the slice-sharded
//!   batch dispatcher on [`pc_par::max_threads`] workers (byte-identical
//!   results; this is the engine trace-replay workloads actually use);
//! * `reference` — the pre-refactor per-set-object layout.

use pc_cache::reference::ReferenceCache;
use pc_cache::{AccessKind, CacheGeometry, DdioMode, PhysAddr, SlicedCache};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Accesses per generated trace (full runs; `--smoke` shortens it).
pub const TRACE_LEN: usize = 200_000;

/// Ops per sharded batch: large enough to amortize binning and thread
/// hand-off, small enough that the adaptive cases keep adapting (each
/// batch shares one clock value; the clock advances between batches at
/// the scalar rate). Public so the `cache_throughput` Criterion bench
/// replays the exact same batch shape.
pub const SHARD_CHUNK: usize = 32_768;

/// Trace shapes covering the reproduction's real access patterns.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum Shape {
    /// Uniform random lines over ~8× the LLC: every access misses
    /// (defense-evaluation replay workloads).
    Stream,
    /// A working set that fits in the LLC: steady-state hits (the spy's
    /// PRIME+PROBE inner loops).
    Resident,
    /// Many tags competing for the page-aligned sets: eviction-dominated
    /// (DDIO ring traffic sharing sets with a spy).
    Conflict,
}

impl Shape {
    /// All shapes, in reporting order.
    pub fn all() -> [Shape; 3] {
        [Shape::Stream, Shape::Resident, Shape::Conflict]
    }

    /// Short name used in benchmark ids and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Shape::Stream => "stream",
            Shape::Resident => "resident",
            Shape::Conflict => "conflict",
        }
    }

    /// Distinct per-shape seed material (an index, not e.g. the name's
    /// length — "resident" and "conflict" are both 8 chars and would
    /// collide).
    fn seed_tag(self) -> u64 {
        match self {
            Shape::Stream => 1,
            Shape::Resident => 2,
            Shape::Conflict => 3,
        }
    }

    fn address(self, rng: &mut SmallRng) -> PhysAddr {
        let line = match self {
            Shape::Stream => rng.gen_range(0..2_621_440u64),
            Shape::Resident => rng.gen_range(0..16_384u64),
            Shape::Conflict => {
                let set = rng.gen_range(0..256u64) * 64; // page-aligned set stride
                let tag = rng.gen_range(0..40u64);
                tag * 131_072 + set // tag stride = one full slice image
            }
        };
        PhysAddr::new(line * 64)
    }
}

/// A reproducible access trace of `len` ops with `io_pct`% DDIO
/// writes and a 1-in-4 CPU-write share mixed into the CPU reads.
pub fn trace_with_len(
    shape: Shape,
    io_pct: u32,
    seed: u64,
    len: usize,
) -> Vec<(PhysAddr, AccessKind)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let addr = shape.address(&mut rng);
            let kind = if rng.gen_range(0..100u32) < io_pct {
                AccessKind::IoWrite
            } else if rng.gen_range(0..4u32) == 0 {
                AccessKind::CpuWrite
            } else {
                AccessKind::CpuRead
            };
            (addr, kind)
        })
        .collect()
}

/// [`trace_with_len`] at the standard [`TRACE_LEN`].
pub fn trace(shape: Shape, io_pct: u32, seed: u64) -> Vec<(PhysAddr, AccessKind)> {
    trace_with_len(shape, io_pct, seed, TRACE_LEN)
}

/// The DDIO modes under measurement, with reporting names.
pub fn modes() -> [(&'static str, DdioMode); 3] {
    [
        ("disabled", DdioMode::Disabled),
        ("enabled", DdioMode::enabled()),
        ("adaptive", DdioMode::adaptive()),
    ]
}

/// One prebuilt benchmark case: name, trace, mode.
pub type Case = (String, Vec<(PhysAddr, AccessKind)>, DdioMode);

/// Every (shape, mode) case with `len`-op traces: name, prebuilt trace,
/// mode.
pub fn cases_with_len(len: usize) -> Vec<Case> {
    let mut out = Vec::new();
    for shape in Shape::all() {
        for (mode_name, mode) in modes() {
            let io_pct = 25;
            out.push((
                format!("{}/{}", shape.name(), mode_name),
                trace_with_len(shape, io_pct, 0xbead ^ shape.seed_tag(), len),
                mode,
            ));
        }
    }
    out
}

/// [`cases_with_len`] at the standard [`TRACE_LEN`].
pub fn cases() -> Vec<Case> {
    cases_with_len(TRACE_LEN)
}

/// One measured case of [`measure_all`].
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// `shape/mode` case name.
    pub case: String,
    /// Median ns/access for the scalar SoA access loop.
    pub soa_ns_per_access: f64,
    /// Median ns/access for the slice-sharded parallel engine.
    pub sharded_ns_per_access: f64,
    /// Median ns/access for the pre-refactor reference layout.
    pub reference_ns_per_access: f64,
}

impl CaseResult {
    /// SoA accesses/second.
    pub fn soa_accesses_per_sec(&self) -> f64 {
        1e9 / self.soa_ns_per_access
    }

    /// Sharded-engine accesses/second.
    pub fn sharded_accesses_per_sec(&self) -> f64 {
        1e9 / self.sharded_ns_per_access
    }

    /// reference_ns / soa_ns — the PR 1 layout speedup.
    pub fn speedup(&self) -> f64 {
        self.reference_ns_per_access / self.soa_ns_per_access
    }

    /// soa_ns / sharded_ns — the multi-core scaling of this PR (≈1.0 on
    /// a single-core host or with `PC_BENCH_THREADS=1`).
    pub fn parallel_speedup(&self) -> f64 {
        self.soa_ns_per_access / self.sharded_ns_per_access
    }

    /// `true` when every timing is a usable measurement (finite,
    /// positive). The `--smoke` CI gate fails the run otherwise.
    pub fn is_sane(&self) -> bool {
        [
            self.soa_ns_per_access,
            self.sharded_ns_per_access,
            self.reference_ns_per_access,
        ]
        .iter()
        .all(|ns| ns.is_finite() && *ns > 0.0)
    }
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    v[v.len() / 2]
}

/// The one measurement protocol every engine goes through: `samples`
/// timed passes over the trace (one untimed warm-up pass first), clock
/// carried across passes, median ns/access reported. `pass` replays the
/// whole trace once, advancing the shared clock — it is the only thing
/// that differs between engines, so their comparison can't skew.
fn time_passes_with(
    ops: &[(PhysAddr, AccessKind)],
    samples: usize,
    mut pass: impl FnMut(&[(PhysAddr, AccessKind)], &mut u64),
) -> f64 {
    let mut now = 0u64;
    let mut runs = Vec::with_capacity(samples);
    for i in 0..=samples {
        let t = Instant::now();
        pass(ops, &mut now);
        let ns = t.elapsed().as_nanos() as f64 / ops.len() as f64;
        if i > 0 {
            runs.push(ns); // first pass is warm-up
        }
    }
    median(runs)
}

/// [`time_passes_with`] for scalar engines: one `access` call per op,
/// clock advancing 3 cycles per access.
fn time_passes(
    ops: &[(PhysAddr, AccessKind)],
    samples: usize,
    mut access: impl FnMut(PhysAddr, AccessKind, u64),
) -> f64 {
    time_passes_with(ops, samples, |ops, now| {
        for &(a, k) in ops {
            access(a, k, *now);
            *now += 3;
        }
    })
}

fn time_soa(ops: &[(PhysAddr, AccessKind)], mode: DdioMode, samples: usize) -> f64 {
    let mut llc = SlicedCache::new(CacheGeometry::xeon_e5_2660(), mode);
    time_passes(ops, samples, |a, k, now| {
        llc.access(a, k, now);
    })
}

fn time_reference(ops: &[(PhysAddr, AccessKind)], mode: DdioMode, samples: usize) -> f64 {
    let mut llc = ReferenceCache::new(CacheGeometry::xeon_e5_2660(), mode);
    time_passes(ops, samples, |a, k, now| {
        llc.access(a, k, now);
    })
}

/// Times the slice-sharded batch engine: the trace replays in
/// [`SHARD_CHUNK`]-op batches (clock advancing between batches at the
/// scalar rate) on up to `threads` workers. Results are byte-identical
/// to the scalar loop; only wall clock differs.
fn time_sharded(
    ops: &[(PhysAddr, AccessKind)],
    mode: DdioMode,
    samples: usize,
    threads: usize,
) -> f64 {
    let mut llc = SlicedCache::new(CacheGeometry::xeon_e5_2660(), mode);
    time_passes_with(ops, samples, |ops, now| {
        for chunk in ops.chunks(SHARD_CHUNK) {
            llc.access_batch_threads(chunk, *now, threads);
            *now += 3 * chunk.len() as u64;
        }
    })
}

/// Measures every case on all three engines (`samples` timed passes
/// each, median reported) with `len`-op traces. The sharded engine uses
/// [`pc_par::max_threads`] workers.
pub fn measure_all(samples: usize, len: usize) -> Vec<CaseResult> {
    let threads = pc_par::max_threads();
    cases_with_len(len)
        .into_iter()
        .map(|(case, ops, mode)| CaseResult {
            soa_ns_per_access: time_soa(&ops, mode, samples),
            sharded_ns_per_access: time_sharded(&ops, mode, samples, threads),
            reference_ns_per_access: time_reference(&ops, mode, samples),
            case,
        })
        .collect()
}

/// Renders results as the `BENCH_cache.json` document.
pub fn to_json(results: &[CaseResult], trace_len: usize) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"pc-bench-cache-v2\",");
    let _ = writeln!(s, "  \"trace_len\": {trace_len},");
    let _ = writeln!(s, "  \"threads\": {},", pc_par::max_threads());
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"case\": \"{}\", \"soa_ns_per_access\": {:.2}, \"soa_accesses_per_sec\": {:.0}, \"sharded_ns_per_access\": {:.2}, \"sharded_accesses_per_sec\": {:.0}, \"parallel_speedup\": {:.2}, \"reference_ns_per_access\": {:.2}, \"speedup\": {:.2}}}",
            r.case,
            r.soa_ns_per_access,
            r.soa_accesses_per_sec(),
            r.sharded_ns_per_access,
            r.sharded_accesses_per_sec(),
            r.parallel_speedup(),
            r.reference_ns_per_access,
            r.speedup()
        );
        s.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic() {
        assert_eq!(trace(Shape::Stream, 25, 7), trace(Shape::Stream, 25, 7));
        assert_eq!(cases().len(), 9);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = vec![CaseResult {
            case: "stream/enabled".into(),
            soa_ns_per_access: 50.0,
            sharded_ns_per_access: 25.0,
            reference_ns_per_access: 150.0,
        }];
        let s = to_json(&r, TRACE_LEN);
        assert!(s.contains("\"speedup\": 3.00"));
        assert!(s.contains("\"parallel_speedup\": 2.00"));
        assert!(s.contains("pc-bench-cache-v2"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn sanity_gate_rejects_bogus_timings() {
        let mut r = CaseResult {
            case: "stream/enabled".into(),
            soa_ns_per_access: 50.0,
            sharded_ns_per_access: 25.0,
            reference_ns_per_access: 150.0,
        };
        assert!(r.is_sane());
        r.sharded_ns_per_access = 0.0;
        assert!(!r.is_sane());
        r.sharded_ns_per_access = f64::NAN;
        assert!(!r.is_sane());
    }

    #[test]
    fn short_traces_for_smoke_mode() {
        assert_eq!(trace_with_len(Shape::Conflict, 25, 9, 1000).len(), 1000);
        assert_eq!(cases_with_len(500)[0].1.len(), 500);
    }
}
