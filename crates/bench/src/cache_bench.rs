//! Shared trace definitions for the LLC hot-path microbenchmark.
//!
//! Used by two consumers that must agree on the workload: the
//! `cache_throughput` Criterion bench (interactive measurement) and the
//! `repro bench-cache` subcommand (emits `BENCH_cache.json` so the perf
//! trajectory is tracked across PRs on one fixed workload).
//!
//! Four engines are timed on every (shape, mode) case:
//!
//! * `soa` — the scalar access loop over the SoA store (one thread);
//! * `sharded` — the same store replayed through the slice-sharded
//!   batch dispatcher on [`pc_par::max_threads`] workers (byte-identical
//!   results);
//! * `trace` — the clock-advancing [`pc_cache::Hierarchy::run_trace`]
//!   replay, also sharded; this is the engine trace-replay workloads
//!   actually use, and since the adaptive defense moved to per-slice
//!   access-count period clocks it parallelizes in **every** DDIO mode
//!   (the adaptive cases used to be pinned to one core);
//! * `reference` — the pre-refactor per-set-object layout.

use pc_cache::reference::ReferenceCache;
use pc_cache::{AccessKind, CacheGeometry, CacheOp, DdioMode, Hierarchy, PhysAddr, SlicedCache};
use pc_core::RxEngine;
use pc_net::EthernetFrame;
use pc_nic::{DriverConfig, IgbDriver, PageAllocator};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Accesses per generated trace (full runs; `--smoke` shortens it).
pub const TRACE_LEN: usize = 200_000;

/// Ops per sharded batch: large enough to amortize the per-batch
/// dispatch (worker hand-off plus each worker's binning scan), small
/// enough to model a driver that batches at realistic granularity.
/// Adaptation cadence does not depend on the chunking — each slice's
/// defense clock ticks per access it receives, wherever the batch
/// boundaries fall. Public so the `cache_throughput` Criterion bench
/// replays the exact same batch shape.
pub const SHARD_CHUNK: usize = 32_768;

/// Trace shapes covering the reproduction's real access patterns.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum Shape {
    /// Uniform random lines over ~8× the LLC: every access misses
    /// (defense-evaluation replay workloads).
    Stream,
    /// A working set that fits in the LLC: steady-state hits (the spy's
    /// PRIME+PROBE inner loops).
    Resident,
    /// Many tags competing for the page-aligned sets: eviction-dominated
    /// (DDIO ring traffic sharing sets with a spy).
    Conflict,
}

impl Shape {
    /// All shapes, in reporting order.
    pub fn all() -> [Shape; 3] {
        [Shape::Stream, Shape::Resident, Shape::Conflict]
    }

    /// Short name used in benchmark ids and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Shape::Stream => "stream",
            Shape::Resident => "resident",
            Shape::Conflict => "conflict",
        }
    }

    /// Distinct per-shape seed material (an index, not e.g. the name's
    /// length — "resident" and "conflict" are both 8 chars and would
    /// collide).
    fn seed_tag(self) -> u64 {
        match self {
            Shape::Stream => 1,
            Shape::Resident => 2,
            Shape::Conflict => 3,
        }
    }

    fn address(self, rng: &mut SmallRng) -> PhysAddr {
        let line = match self {
            Shape::Stream => rng.gen_range(0..2_621_440u64),
            Shape::Resident => rng.gen_range(0..16_384u64),
            Shape::Conflict => {
                let set = rng.gen_range(0..256u64) * 64; // page-aligned set stride
                let tag = rng.gen_range(0..40u64);
                tag * 131_072 + set // tag stride = one full slice image
            }
        };
        PhysAddr::new(line * 64)
    }
}

/// A reproducible access trace of `len` ops with `io_pct`% DDIO
/// writes and a 1-in-4 CPU-write share mixed into the CPU reads.
pub fn trace_with_len(shape: Shape, io_pct: u32, seed: u64, len: usize) -> Vec<CacheOp> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let addr = shape.address(&mut rng);
            let kind = if rng.gen_range(0..100u32) < io_pct {
                AccessKind::IoWrite
            } else if rng.gen_range(0..4u32) == 0 {
                AccessKind::CpuWrite
            } else {
                AccessKind::CpuRead
            };
            CacheOp::new(addr, kind)
        })
        .collect()
}

/// [`trace_with_len`] at the standard [`TRACE_LEN`].
pub fn trace(shape: Shape, io_pct: u32, seed: u64) -> Vec<CacheOp> {
    trace_with_len(shape, io_pct, seed, TRACE_LEN)
}

/// The DDIO modes under measurement, with reporting names.
pub fn modes() -> [(&'static str, DdioMode); 3] {
    [
        ("disabled", DdioMode::Disabled),
        ("enabled", DdioMode::enabled()),
        ("adaptive", DdioMode::adaptive()),
    ]
}

/// One prebuilt benchmark case: name, trace, mode.
pub type Case = (String, Vec<CacheOp>, DdioMode);

/// Every (shape, mode) case with `len`-op traces: name, prebuilt trace,
/// mode.
pub fn cases_with_len(len: usize) -> Vec<Case> {
    let mut out = Vec::new();
    for shape in Shape::all() {
        for (mode_name, mode) in modes() {
            let io_pct = 25;
            out.push((
                format!("{}/{}", shape.name(), mode_name),
                trace_with_len(shape, io_pct, 0xbead ^ shape.seed_tag(), len),
                mode,
            ));
        }
    }
    out
}

/// [`cases_with_len`] at the standard [`TRACE_LEN`].
pub fn cases() -> Vec<Case> {
    cases_with_len(TRACE_LEN)
}

/// One measured case of [`measure_all`].
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// `shape/mode` case name.
    pub case: String,
    /// Median ns/access for the scalar SoA access loop.
    pub soa_ns_per_access: f64,
    /// Median ns/access for the slice-sharded batch engine.
    pub sharded_ns_per_access: f64,
    /// Median ns/access for the sharded `Hierarchy::run_trace` replay —
    /// the path trace workloads actually take, parallel in every mode.
    pub trace_ns_per_access: f64,
    /// Median ns/access for the pre-refactor reference layout.
    pub reference_ns_per_access: f64,
}

impl CaseResult {
    /// The case's DDIO-mode half (`disabled` / `enabled` / `adaptive`).
    pub fn mode_name(&self) -> &str {
        self.case.split('/').nth(1).unwrap_or(&self.case)
    }

    /// SoA accesses/second.
    pub fn soa_accesses_per_sec(&self) -> f64 {
        1e9 / self.soa_ns_per_access
    }

    /// Sharded-engine accesses/second.
    pub fn sharded_accesses_per_sec(&self) -> f64 {
        1e9 / self.sharded_ns_per_access
    }

    /// reference_ns / soa_ns — the PR 1 layout speedup.
    pub fn speedup(&self) -> f64 {
        self.reference_ns_per_access / self.soa_ns_per_access
    }

    /// soa_ns / sharded_ns — multi-core scaling of the batch dispatcher
    /// (≈1.0 on a single-core host or with `PC_BENCH_THREADS=1`).
    pub fn parallel_speedup(&self) -> f64 {
        self.soa_ns_per_access / self.sharded_ns_per_access
    }

    /// soa_ns / trace_ns — multi-core scaling of the clock-advancing
    /// trace replay (the adaptive rows of this column are the
    /// slice-parallel adaptive path's win; ≈1.0 single-core).
    pub fn trace_parallel_speedup(&self) -> f64 {
        self.soa_ns_per_access / self.trace_ns_per_access
    }

    /// `true` when every timing is a usable measurement (finite,
    /// positive). The `--smoke` CI gate fails the run otherwise.
    pub fn is_sane(&self) -> bool {
        [
            self.soa_ns_per_access,
            self.sharded_ns_per_access,
            self.trace_ns_per_access,
            self.reference_ns_per_access,
        ]
        .iter()
        .all(|ns| ns.is_finite() && *ns > 0.0)
    }
}

/// Per-mode scaling summary: the geometric mean, over a mode's trace
/// shapes, of the batch-dispatcher and trace-replay parallel speedups.
#[derive(Clone, Debug)]
pub struct ModeSpeedup {
    /// DDIO mode name (`disabled` / `enabled` / `adaptive`).
    pub mode: String,
    /// Geomean of [`CaseResult::parallel_speedup`] over the shapes.
    pub parallel_speedup: f64,
    /// Geomean of [`CaseResult::trace_parallel_speedup`].
    pub trace_parallel_speedup: f64,
}

/// Folds per-case results into one [`ModeSpeedup`] row per DDIO mode,
/// in [`modes`] order. Modes with no measured case are omitted rather
/// than reported as a fabricated 1.00× geomean.
pub fn mode_speedups(results: &[CaseResult]) -> Vec<ModeSpeedup> {
    let geomean =
        |vals: &[f64]| (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp();
    modes()
        .iter()
        .filter_map(|(name, _)| {
            let of_mode: Vec<&CaseResult> =
                results.iter().filter(|r| r.mode_name() == *name).collect();
            if of_mode.is_empty() {
                return None;
            }
            Some(ModeSpeedup {
                mode: (*name).to_owned(),
                parallel_speedup: geomean(
                    &of_mode
                        .iter()
                        .map(|r| r.parallel_speedup())
                        .collect::<Vec<_>>(),
                ),
                trace_parallel_speedup: geomean(
                    &of_mode
                        .iter()
                        .map(|r| r.trace_parallel_speedup())
                        .collect::<Vec<_>>(),
                ),
            })
        })
        .collect()
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    v[v.len() / 2]
}

/// The one measurement protocol every engine goes through: `samples`
/// timed passes over the trace (one untimed warm-up pass first), engine
/// state carried across passes, median ns/access reported. `pass`
/// replays the whole trace once — it is the only thing that differs
/// between engines, so their comparison can't skew.
fn time_passes(ops: &[CacheOp], samples: usize, mut pass: impl FnMut(&[CacheOp])) -> f64 {
    let mut runs = Vec::with_capacity(samples);
    for i in 0..=samples {
        let t = Instant::now();
        pass(ops);
        let ns = t.elapsed().as_nanos() as f64 / ops.len() as f64;
        if i > 0 {
            runs.push(ns); // first pass is warm-up
        }
    }
    median(runs)
}

fn time_soa(ops: &[CacheOp], mode: DdioMode, samples: usize) -> f64 {
    let mut llc = SlicedCache::new(CacheGeometry::xeon_e5_2660(), mode);
    time_passes(ops, samples, |ops| {
        for &op in ops {
            llc.access(op.addr, op.kind);
        }
    })
}

fn time_reference(ops: &[CacheOp], mode: DdioMode, samples: usize) -> f64 {
    let mut llc = ReferenceCache::new(CacheGeometry::xeon_e5_2660(), mode);
    time_passes(ops, samples, |ops| {
        for &op in ops {
            llc.access(op.addr, op.kind);
        }
    })
}

/// Times the slice-sharded batch engine: the trace replays in
/// [`SHARD_CHUNK`]-op batches on up to `threads` workers. Results are
/// byte-identical to the scalar loop; only wall clock differs.
fn time_sharded(ops: &[CacheOp], mode: DdioMode, samples: usize, threads: usize) -> f64 {
    let mut llc = SlicedCache::new(CacheGeometry::xeon_e5_2660(), mode);
    time_passes(ops, samples, |ops| {
        for chunk in ops.chunks(SHARD_CHUNK) {
            llc.access_batch_threads(chunk, threads);
        }
    })
}

/// Times the clock-advancing trace replay (`Hierarchy::run_trace`) in
/// the same [`SHARD_CHUNK`] batches on up to `threads` workers —
/// latency accounting, memory-controller stats and (in adaptive mode)
/// per-slice defense clocks all live, exactly as the fig14–16 defense
/// workloads drive it.
fn time_trace(ops: &[CacheOp], mode: DdioMode, samples: usize, threads: usize) -> f64 {
    let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), mode);
    time_passes(ops, samples, |ops| {
        for chunk in ops.chunks(SHARD_CHUNK) {
            h.run_trace_threads(chunk, threads);
        }
    })
}

/// Measures every case on all four engines (`samples` timed passes
/// each, median reported) with `len`-op traces. The parallel engines
/// use [`pc_par::max_threads`] workers.
pub fn measure_all(samples: usize, len: usize) -> Vec<CaseResult> {
    let threads = pc_par::max_threads();
    cases_with_len(len)
        .into_iter()
        .map(|(case, ops, mode)| CaseResult {
            soa_ns_per_access: time_soa(&ops, mode, samples),
            sharded_ns_per_access: time_sharded(&ops, mode, samples, threads),
            trace_ns_per_access: time_trace(&ops, mode, samples, threads),
            reference_ns_per_access: time_reference(&ops, mode, samples),
            case,
        })
        .collect()
}

/// Packets per driver measurement pass (full runs; `--smoke` shortens
/// it like it shortens the traces).
pub const DRIVER_PACKETS: usize = 20_000;

/// One measured end-to-end driver case: `IgbDriver` receive over a
/// fixed frame mix, on all three op-stream engines — the default
/// streaming receive (`receive`, per-frame op emission through the
/// applier sink), the pipelined burst engine (`receive_burst`, frames
/// fused into op batches that shard when worker threads exist), and
/// the per-access oracle (`receive_scalar`). All three are
/// byte-identical in results; this row tracks what the op-stream
/// pipeline buys on the workloads every `repro scenario` drives.
#[derive(Clone, Debug)]
pub struct DriverResult {
    /// DDIO mode name (`disabled` / `enabled` / `adaptive`).
    pub mode: String,
    /// Median ns/packet for the default streaming receive path.
    pub driver_ns_per_packet: f64,
    /// Median ns/packet for the pipelined burst engine.
    pub driver_burst_ns_per_packet: f64,
    /// Median ns/packet for the per-access oracle path.
    pub driver_scalar_ns_per_packet: f64,
    /// Worker threads on the measuring host ([`pc_par::max_threads`]).
    /// Burst speedups < 1.0 are expected at `host_threads == 1` (the
    /// sharded dispatch has nothing to fan out to and the batch pays
    /// the op-scratch round-trip), so readers — and the `--smoke`
    /// gate — must only treat them as regressions when this is > 1.
    pub host_threads: usize,
}

impl DriverResult {
    /// scalar_ns / streaming_ns — ≥ 1.0 means the op-stream receive
    /// path is at parity or better than the per-access baseline (the
    /// acceptance bar on a 1-core host).
    pub fn driver_speedup(&self) -> f64 {
        self.driver_scalar_ns_per_packet / self.driver_ns_per_packet
    }

    /// scalar_ns / burst_ns — the burst engine's multi-core upside
    /// (sequential hosts pay the op-scratch round-trip and hover just
    /// under 1.0; the sharded dispatch lands the speedup on CI).
    pub fn driver_burst_speedup(&self) -> f64 {
        self.driver_scalar_ns_per_packet / self.driver_burst_ns_per_packet
    }

    /// `true` when all timings are usable measurements.
    pub fn is_sane(&self) -> bool {
        [
            self.driver_ns_per_packet,
            self.driver_burst_ns_per_packet,
            self.driver_scalar_ns_per_packet,
        ]
        .iter()
        .all(|ns| ns.is_finite() && *ns > 0.0)
    }
}

/// The driver measurement's frame mix: the copybreak crossed in both
/// directions, MTU fragments included — the same mix the pc-nic
/// equivalence suite pins.
fn driver_frames(packets: usize) -> Vec<EthernetFrame> {
    (0..packets)
        .map(|i| {
            EthernetFrame::clamped(match i % 5 {
                0 => 64,
                1 => 128,
                2 => 256,
                3 => 257,
                _ => 1514,
            })
        })
        .collect()
}

/// Frames per burst for the pipelined engine. Batch boundaries never
/// change results (the replay is batch- and thread-invariant), so the
/// burst is a pure scheduling choice: big enough for a DDIO burst
/// (~6 ops/frame) to clear the sharded-dispatch threshold when worker
/// threads exist, small enough to keep the op scratch cache-hot when
/// the replay is sequential anyway.
pub fn driver_burst() -> usize {
    if pc_par::max_threads() > 1 {
        1_024
    } else {
        128
    }
}

/// Which driver engine a timing pass exercises.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
enum DriverEngine {
    Streaming,
    Burst,
    Scalar,
}

fn time_driver(mode: DdioMode, samples: usize, packets: usize, engine: DriverEngine) -> f64 {
    let mut rng = SmallRng::seed_from_u64(0xd21f);
    let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), mode);
    let mut drv = IgbDriver::new(
        DriverConfig::paper_defaults(),
        PageAllocator::new(7),
        &mut rng,
    );
    let frames = driver_frames(packets);
    let mut runs = Vec::with_capacity(samples);
    for i in 0..=samples {
        let t = Instant::now();
        match engine {
            DriverEngine::Streaming => {
                for &f in &frames {
                    drv.receive(&mut h, f, &mut rng);
                }
            }
            DriverEngine::Burst => {
                for burst in frames.chunks(driver_burst()) {
                    drv.receive_burst(&mut h, burst, &mut rng);
                }
            }
            DriverEngine::Scalar => {
                for &f in &frames {
                    drv.receive_scalar(&mut h, f, &mut rng);
                }
            }
        }
        let ns = t.elapsed().as_nanos() as f64 / frames.len() as f64;
        if i > 0 {
            runs.push(ns); // first pass is warm-up
        }
    }
    median(runs)
}

/// Measures the end-to-end driver receive path (streaming, burst and
/// per-access) per DDIO mode: `samples` timed passes of `packets`
/// frames each, median ns/packet.
pub fn measure_driver(samples: usize, packets: usize) -> Vec<DriverResult> {
    modes()
        .iter()
        .map(|&(name, mode)| DriverResult {
            mode: name.to_owned(),
            driver_ns_per_packet: time_driver(mode, samples, packets, DriverEngine::Streaming),
            driver_burst_ns_per_packet: time_driver(mode, samples, packets, DriverEngine::Burst),
            driver_scalar_ns_per_packet: time_driver(mode, samples, packets, DriverEngine::Scalar),
            host_threads: pc_par::max_threads(),
        })
        .collect()
}

/// Frames per test-bed measurement pass (full runs; `--smoke` shortens
/// it like it shortens the traces).
pub const TESTBED_FRAMES: usize = 20_000;

/// One measured end-to-end **test-bed** case: the full arrival pipeline
/// (`enqueue` → `drain`, deferred reads included) per DDIO mode, on all
/// three [`pc_core::RxEngine`]s — windowed burst delivery (`Batched`),
/// per-frame streaming delivery (`PerFrame`) and the per-access oracle
/// (`PerAccess`). All three produce byte-identical machines; this row
/// tracks what window fusion buys on the paths every TestBed scenario
/// (covert, fingerprint, chasing, web-mix…) actually drives.
#[derive(Clone, Debug)]
pub struct TestBedResult {
    /// DDIO mode name (`disabled` / `enabled` / `adaptive`).
    pub mode: String,
    /// Median ns/frame for windowed burst delivery.
    pub testbed_burst_ns_per_frame: f64,
    /// Median ns/frame for per-frame streaming delivery.
    pub testbed_frame_ns_per_frame: f64,
    /// Median ns/frame for the per-access oracle.
    pub testbed_scalar_ns_per_frame: f64,
    /// Mean frames per fused delivery window on the `Batched` bed over
    /// the measurement passes ([`pc_core::WindowStats::mean_frames`]) —
    /// the figure the fusion engine exists to grow. 0.0 on a 1-thread
    /// host, where `advance_to`/`drain` legitimately pick per-frame
    /// delivery (windowing feeds the sharded engine), so readers — and
    /// the `--smoke` gate on the `crossgap` row — only treat it as
    /// meaningful when `host_threads > 1`.
    pub testbed_window_frames_mean: f64,
    /// Worker threads on the measuring host ([`pc_par::max_threads`]);
    /// see [`DriverResult::host_threads`] for how to read burst
    /// speedups when this is 1.
    pub host_threads: usize,
}

impl TestBedResult {
    /// frame_ns / burst_ns — ≥ 1.0 means windowed burst delivery is at
    /// parity or better than per-frame delivery (the acceptance bar on
    /// a 1-core host; window fusion shards on multi-core).
    pub fn testbed_burst_speedup(&self) -> f64 {
        self.testbed_frame_ns_per_frame / self.testbed_burst_ns_per_frame
    }

    /// scalar_ns / burst_ns — the burst engine against the per-access
    /// baseline.
    pub fn testbed_scalar_speedup(&self) -> f64 {
        self.testbed_scalar_ns_per_frame / self.testbed_burst_ns_per_frame
    }

    /// `true` when all timings are usable measurements.
    pub fn is_sane(&self) -> bool {
        [
            self.testbed_burst_ns_per_frame,
            self.testbed_frame_ns_per_frame,
            self.testbed_scalar_ns_per_frame,
        ]
        .iter()
        .all(|ns| ns.is_finite() && *ns > 0.0)
    }
}

/// Times one test-bed engine: `samples` timed passes (after a warm-up),
/// each enqueueing the standard size mix as an already-due backlog —
/// the NAPI-poll shape, where the NIC has coalesced a queue of frames
/// before the driver wakes — and draining it. Burst windows actually
/// fuse on this shape; paced traffic degenerates to per-frame delivery
/// on every engine and measures the same thing three times. State
/// (ring, cache, clock) carries across passes like every other engine
/// measurement.
fn time_testbed_mode(mode: DdioMode, samples: usize, frames: usize) -> TestBedResult {
    use pc_core::{TestBed, TestBedConfig};
    let engines = [RxEngine::Batched, RxEngine::PerFrame, RxEngine::PerAccess];
    let mut beds: Vec<TestBed> = engines
        .iter()
        .map(|&engine| {
            TestBed::new(
                TestBedConfig {
                    ddio: mode,
                    record_rx: false,
                    ..TestBedConfig::paper_baseline().with_seed(0x7e57)
                }
                .with_rx_engine(engine),
            )
        })
        .collect();
    let mix = driver_frames(frames);
    // Round-robin the engines within each pass (rather than finishing
    // one engine before starting the next) so slow drift of the host —
    // thermal state, co-tenants — biases all three rows equally
    // instead of whichever engine ran last.
    let mut runs: Vec<Vec<f64>> = vec![Vec::with_capacity(samples); engines.len()];
    for i in 0..=samples {
        for (e, tb) in beds.iter_mut().enumerate() {
            let at = tb.now() + 1;
            let schedule: Vec<pc_net::ScheduledFrame> = mix
                .iter()
                .map(|&frame| pc_net::ScheduledFrame::new(at, frame))
                .collect();
            let t = Instant::now();
            tb.enqueue(schedule);
            tb.drain();
            let ns = t.elapsed().as_nanos() as f64 / frames as f64;
            if i > 0 {
                runs[e].push(ns); // first pass is warm-up
            }
        }
    }
    let window_frames_mean = beds[0].window_stats().mean_frames();
    let mut medians = runs.into_iter().map(median);
    TestBedResult {
        mode: String::new(), // filled by the caller
        testbed_burst_ns_per_frame: medians.next().expect("batched row"),
        testbed_frame_ns_per_frame: medians.next().expect("per-frame row"),
        testbed_scalar_ns_per_frame: medians.next().expect("per-access row"),
        testbed_window_frames_mean: window_frames_mean,
        host_threads: pc_par::max_threads(),
    }
}

/// Measures the end-to-end test bed (windowed burst / per-frame /
/// per-access delivery) per DDIO mode: `samples` timed passes of
/// `frames` arrivals each, median ns/frame.
pub fn measure_testbed(samples: usize, frames: usize) -> Vec<TestBedResult> {
    modes()
        .iter()
        .map(|&(name, mode)| TestBedResult {
            mode: name.to_owned(),
            ..time_testbed_mode(mode, samples, frames)
        })
        .collect()
}

/// Frames per burst in the cross-gap fusion schedule. This is also the
/// upper bound on the mean fused window the *pre-reconstruction*
/// engine could reach on that schedule (it cut a window at every gap
/// sync and probe epoch), so the `--smoke` gate requires the measured
/// [`TestBedResult::testbed_window_frames_mean`] to strictly exceed it
/// on multi-thread hosts.
pub const CROSSGAP_BURST: usize = 32;

/// Gap between bursts in the cross-gap schedule: far larger than any
/// burst's replay, so every burst boundary is a genuine gap sync the
/// window must span by retroactive clock reconstruction.
const CROSSGAP_GAP: u64 = 120_000;

/// Probe epochs per cross-gap pass: the backlog drains in this many
/// `advance_to` + monitor-sample rounds, so epoch syncs (the other
/// historical flush point) are part of the measured workload.
const CROSSGAP_EPOCHS: u64 = 8;

/// Measures the cross-gap fusion row (`mode: "crossgap"`): the same
/// three rx engines on a *bursty* arrival schedule —
/// [`CROSSGAP_BURST`]-frame zero-gap bursts separated by
/// `CROSSGAP_GAP`-cycle gaps — drained through `CROSSGAP_EPOCHS`
/// probe epochs (each an `advance_to` plus a fused
/// [`pc_probe::Monitor`] sample). Exactly the shape that capped the
/// pre-reconstruction engine at one window per gap/epoch; the row's
/// `testbed_window_frames_mean` is the direct measure of what
/// per-segment clock reconstruction buys.
pub fn measure_crossgap(samples: usize, frames: usize) -> TestBedResult {
    use pc_core::footprint::{build_monitor, page_aligned_targets};
    use pc_core::{TestBed, TestBedConfig};
    use pc_probe::AddressPool;
    let engines = [RxEngine::Batched, RxEngine::PerFrame, RxEngine::PerAccess];
    let mut beds: Vec<TestBed> = engines
        .iter()
        .map(|&engine| {
            TestBed::new(
                TestBedConfig {
                    record_rx: false,
                    ..TestBedConfig::paper_baseline().with_seed(0xc406)
                }
                .with_rx_engine(engine),
            )
        })
        .collect();
    // Probe epochs are part of the workload: a small monitor per bed,
    // primed once, sampled at every epoch boundary while the bursty
    // backlog drains. The sample cost is identical on every engine, so
    // the engine comparison stays fair.
    let monitors: Vec<_> = beds
        .iter_mut()
        .map(|tb| {
            let geom = tb.hierarchy().llc().geometry();
            let targets: Vec<_> = page_aligned_targets(&geom).into_iter().take(16).collect();
            let pool = AddressPool::allocate(0xc406, 16384);
            let m = build_monitor(tb.hierarchy().llc(), &pool, &targets);
            m.prime_all(tb.hierarchy_mut());
            m
        })
        .collect();
    let mix = driver_frames(frames);
    let mut runs: Vec<Vec<f64>> = vec![Vec::with_capacity(samples); engines.len()];
    for i in 0..=samples {
        for (e, tb) in beds.iter_mut().enumerate() {
            let start = tb.now() + 1;
            let mut at = start;
            let schedule: Vec<pc_net::ScheduledFrame> = mix
                .iter()
                .enumerate()
                .map(|(j, &frame)| {
                    if j > 0 && j % CROSSGAP_BURST == 0 {
                        at += CROSSGAP_GAP;
                    }
                    pc_net::ScheduledFrame::new(at, frame)
                })
                .collect();
            let end = at;
            let t = Instant::now();
            tb.enqueue(schedule);
            for k in 1..=CROSSGAP_EPOCHS {
                tb.advance_to(start + (end - start) * k / CROSSGAP_EPOCHS);
                let _ = monitors[e].sample(tb.hierarchy_mut());
            }
            tb.drain();
            let ns = t.elapsed().as_nanos() as f64 / frames as f64;
            if i > 0 {
                runs[e].push(ns); // first pass is warm-up
            }
        }
    }
    let window_frames_mean = beds[0].window_stats().mean_frames();
    let mut medians = runs.into_iter().map(median);
    TestBedResult {
        mode: "crossgap".to_owned(),
        testbed_burst_ns_per_frame: medians.next().expect("batched row"),
        testbed_frame_ns_per_frame: medians.next().expect("per-frame row"),
        testbed_scalar_ns_per_frame: medians.next().expect("per-access row"),
        testbed_window_frames_mean: window_frames_mean,
        host_threads: pc_par::max_threads(),
    }
}

/// Tenants per fleet measurement pass (full runs; `--smoke` shortens
/// it like it shortens the traces).
pub const FLEET_TENANTS: usize = 64;

/// One measured fleet-orchestration case: the standard template mix
/// fanned out over [`pc_par::max_threads`] workers — the `repro fleet`
/// hot path. `tenants_per_sec` is wall-clock orchestration throughput
/// (how fast the harness instantiates, runs and collects tenants);
/// `packets_per_sec` is the fleet's *simulated* aggregate line rate
/// (deterministic — the same figure the fleet report's aggregate row
/// prints), tracked so a regression that silently shrinks the simulated
/// work would show up next to the timing it distorts.
#[derive(Clone, Debug)]
pub struct FleetResult {
    /// Tenants per measurement pass.
    pub tenants: usize,
    /// Median wall-clock tenants/second over the sample passes.
    pub tenants_per_sec: f64,
    /// Simulated aggregate packets+frames/second across the fleet.
    pub packets_per_sec: f64,
}

impl FleetResult {
    /// `true` when the measurement is usable: finite positive wall-clock
    /// throughput and a non-degenerate simulated line rate (the standard
    /// mix always contains packet- and frame-unit tenants).
    pub fn is_sane(&self) -> bool {
        self.tenants > 0
            && self.tenants_per_sec.is_finite()
            && self.tenants_per_sec > 0.0
            && self.packets_per_sec.is_finite()
            && self.packets_per_sec > 0.0
    }
}

/// Measures fleet orchestration: `samples` timed passes (after an
/// untimed warm-up) of a `tenants`-tenant standard fleet at
/// [`crate::experiments::Scale::Quick`], median wall clock reported.
/// The simulated line rate comes from the outcomes themselves and is
/// identical on every pass.
pub fn measure_fleet(samples: usize, tenants: usize) -> FleetResult {
    use crate::experiments::Scale;
    use crate::fleet::{run_fleet_outcomes, FleetConfig};
    let cfg = FleetConfig::standard(tenants, 2020, Scale::Quick);
    let mut runs = Vec::with_capacity(samples);
    let mut packets_per_sec = 0.0;
    for i in 0..=samples {
        let t = Instant::now();
        let outcomes = run_fleet_outcomes(&cfg);
        let sec = t.elapsed().as_secs_f64();
        if i > 0 {
            runs.push(tenants as f64 / sec); // first pass is warm-up
        }
        packets_per_sec = outcomes
            .iter()
            .filter(|o| matches!(o.metrics.unit, "packets" | "frames"))
            .map(|o| o.metrics.units_per_second())
            .sum();
    }
    FleetResult {
        tenants,
        tenants_per_sec: median(runs),
        packets_per_sec,
    }
}

/// One timed end-to-end scenario row: wall clock for a full registry
/// scenario run. The multi-queue scenarios added with the RSS model are
/// tracked here so steering/fusion overhead shows up in the perf
/// trajectory next to the engine rows.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Registry name of the scenario.
    pub scenario: String,
    /// Median wall-clock milliseconds per full scenario run.
    pub wall_ms: f64,
    /// Worker threads on the measuring host.
    pub host_threads: usize,
}

impl ScenarioResult {
    /// `true` when the timing is usable (finite, positive).
    pub fn is_sane(&self) -> bool {
        self.wall_ms.is_finite() && self.wall_ms > 0.0
    }
}

/// The multi-queue scenarios `measure_scenarios` times, in reporting
/// order.
pub const BENCH_SCENARIOS: [&str; 4] = ["kv-store", "dns-flood", "large-transfer", "co-tenancy"];

/// Times each [`BENCH_SCENARIOS`] scenario end to end at
/// [`crate::experiments::Scale::Quick`]: `samples` passes after an
/// untimed warm-up, median wall clock per run. `shrink` divides the
/// scenario's quick work units (`--smoke` passes 4, like the traces).
pub fn measure_scenarios(samples: usize, shrink: u64) -> Vec<ScenarioResult> {
    use crate::experiments::Scale;
    BENCH_SCENARIOS
        .iter()
        .map(|&name| {
            let base = crate::scenario::find(name).expect("bench scenario registered");
            let units = (base.duration().quick / shrink).max(1);
            let spec = base.clone().with_units(units, units);
            let mut runs = Vec::with_capacity(samples);
            for i in 0..=samples {
                let t = Instant::now();
                let out = spec.run(Scale::Quick, 2020);
                assert!(!out.is_empty(), "scenario produced no report");
                if i > 0 {
                    runs.push(t.elapsed().as_secs_f64() * 1e3); // first pass is warm-up
                }
            }
            ScenarioResult {
                scenario: name.to_owned(),
                wall_ms: median(runs),
                host_threads: pc_par::max_threads(),
            }
        })
        .collect()
}

/// The adaptive-mode tax: adaptive ns/packet ÷ enabled ns/packet on the
/// streaming driver path. This is the number the incremental partition
/// re-evaluation is sized by (target ≤ 4× since PR 8; it was ~15×
/// under the full-scan evaluator). `None` unless both modes were
/// measured.
pub fn adaptive_driver_tax(drivers: &[DriverResult]) -> Option<f64> {
    let ns = |m: &str| {
        drivers
            .iter()
            .find(|d| d.mode == m)
            .map(|d| d.driver_ns_per_packet)
    };
    Some(ns("adaptive")? / ns("enabled")?)
}

/// Renders results as the `BENCH_cache.json` document (schema
/// `pc-bench-cache-v8`; the `trace_*` fields, the per-mode `modes`
/// summary, the end-to-end `driver` and `testbed` rows — each
/// annotated with the measuring host's `host_threads` and, for
/// testbed rows, the `testbed_window_frames_mean` fusion telemetry
/// (the `crossgap` row measures the bursty gap + probe-epoch
/// schedule) — the per-scenario `scenarios` wall-clock rows, the
/// `fleet` entry and the `adaptive_driver_tax` ratio are documented
/// in `crates/bench/README.md`).
pub fn to_json(
    results: &[CaseResult],
    drivers: &[DriverResult],
    testbeds: &[TestBedResult],
    scenarios: &[ScenarioResult],
    fleet: &FleetResult,
    trace_len: usize,
) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"pc-bench-cache-v8\",");
    let _ = writeln!(s, "  \"trace_len\": {trace_len},");
    let _ = writeln!(s, "  \"threads\": {},", pc_par::max_threads());
    s.push_str("  \"modes\": [\n");
    let per_mode = mode_speedups(results);
    for (i, m) in per_mode.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"mode\": \"{}\", \"parallel_speedup\": {:.2}, \"trace_parallel_speedup\": {:.2}}}",
            m.mode, m.parallel_speedup, m.trace_parallel_speedup
        );
        s.push_str(if i + 1 < per_mode.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"driver\": [\n");
    for (i, d) in drivers.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"mode\": \"{}\", \"driver_ns_per_packet\": {:.1}, \"driver_burst_ns_per_packet\": {:.1}, \"driver_scalar_ns_per_packet\": {:.1}, \"driver_speedup\": {:.2}, \"driver_burst_speedup\": {:.2}, \"host_threads\": {}}}",
            d.mode,
            d.driver_ns_per_packet,
            d.driver_burst_ns_per_packet,
            d.driver_scalar_ns_per_packet,
            d.driver_speedup(),
            d.driver_burst_speedup(),
            d.host_threads
        );
        s.push_str(if i + 1 < drivers.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"testbed\": [\n");
    for (i, t) in testbeds.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"mode\": \"{}\", \"testbed_burst_ns_per_frame\": {:.1}, \"testbed_frame_ns_per_frame\": {:.1}, \"testbed_scalar_ns_per_frame\": {:.1}, \"testbed_burst_speedup\": {:.2}, \"testbed_scalar_speedup\": {:.2}, \"testbed_window_frames_mean\": {:.1}, \"host_threads\": {}}}",
            t.mode,
            t.testbed_burst_ns_per_frame,
            t.testbed_frame_ns_per_frame,
            t.testbed_scalar_ns_per_frame,
            t.testbed_burst_speedup(),
            t.testbed_scalar_speedup(),
            t.testbed_window_frames_mean,
            t.host_threads
        );
        s.push_str(if i + 1 < testbeds.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"scenarios\": [\n");
    for (i, sc) in scenarios.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"scenario\": \"{}\", \"wall_ms\": {:.1}, \"host_threads\": {}}}",
            sc.scenario, sc.wall_ms, sc.host_threads
        );
        s.push_str(if i + 1 < scenarios.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"fleet\": {{\"tenants\": {}, \"tenants_per_sec\": {:.1}, \"packets_per_sec\": {:.0}}},",
        fleet.tenants, fleet.tenants_per_sec, fleet.packets_per_sec
    );
    if let Some(tax) = adaptive_driver_tax(drivers) {
        let _ = writeln!(s, "  \"adaptive_driver_tax\": {tax:.2},");
    }
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"case\": \"{}\", \"soa_ns_per_access\": {:.2}, \"soa_accesses_per_sec\": {:.0}, \"sharded_ns_per_access\": {:.2}, \"sharded_accesses_per_sec\": {:.0}, \"parallel_speedup\": {:.2}, \"trace_ns_per_access\": {:.2}, \"trace_parallel_speedup\": {:.2}, \"reference_ns_per_access\": {:.2}, \"speedup\": {:.2}}}",
            r.case,
            r.soa_ns_per_access,
            r.soa_accesses_per_sec(),
            r.sharded_ns_per_access,
            r.sharded_accesses_per_sec(),
            r.parallel_speedup(),
            r.trace_ns_per_access,
            r.trace_parallel_speedup(),
            r.reference_ns_per_access,
            r.speedup()
        );
        s.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic() {
        assert_eq!(trace(Shape::Stream, 25, 7), trace(Shape::Stream, 25, 7));
        assert_eq!(cases().len(), 9);
    }

    fn result(case: &str) -> CaseResult {
        CaseResult {
            case: case.into(),
            soa_ns_per_access: 50.0,
            sharded_ns_per_access: 25.0,
            trace_ns_per_access: 10.0,
            reference_ns_per_access: 150.0,
        }
    }

    fn driver_result(mode: &str) -> DriverResult {
        DriverResult {
            mode: mode.into(),
            driver_ns_per_packet: 200.0,
            driver_burst_ns_per_packet: 120.0,
            driver_scalar_ns_per_packet: 240.0,
            host_threads: 4,
        }
    }

    fn testbed_result(mode: &str) -> TestBedResult {
        TestBedResult {
            mode: mode.into(),
            testbed_burst_ns_per_frame: 500.0,
            testbed_frame_ns_per_frame: 600.0,
            testbed_scalar_ns_per_frame: 750.0,
            testbed_window_frames_mean: 96.5,
            host_threads: 4,
        }
    }

    fn fleet_result() -> FleetResult {
        FleetResult {
            tenants: 64,
            tenants_per_sec: 40.0,
            packets_per_sec: 2_000_000.0,
        }
    }

    fn scenario_result(name: &str) -> ScenarioResult {
        ScenarioResult {
            scenario: name.into(),
            wall_ms: 12.5,
            host_threads: 4,
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = vec![result("stream/enabled")];
        let d = vec![driver_result("enabled")];
        let t = vec![testbed_result("enabled")];
        let sc = vec![scenario_result("kv-store")];
        let s = to_json(&r, &d, &t, &sc, &fleet_result(), TRACE_LEN);
        assert!(s.contains("\"speedup\": 3.00"));
        assert!(s.contains("\"parallel_speedup\": 2.00"));
        assert!(s.contains("\"trace_parallel_speedup\": 5.00"));
        assert!(s.contains("\"mode\": \"enabled\""));
        assert!(
            !s.contains("\"mode\": \"adaptive\""),
            "unmeasured modes must be omitted, not invented"
        );
        assert!(s.contains("\"driver_ns_per_packet\": 200.0"));
        assert!(s.contains("\"driver_speedup\": 1.20"));
        assert!(s.contains("\"driver_burst_speedup\": 2.00"));
        assert!(s.contains("\"host_threads\": 4"));
        assert!(s.contains("\"testbed_burst_ns_per_frame\": 500.0"));
        assert!(s.contains("\"testbed_burst_speedup\": 1.20"));
        assert!(s.contains("\"testbed_scalar_speedup\": 1.50"));
        assert!(s.contains("\"testbed_window_frames_mean\": 96.5"));
        assert!(s.contains("pc-bench-cache-v8"));
        assert!(s.contains("\"scenario\": \"kv-store\", \"wall_ms\": 12.5"));
        assert!(s.contains(
            "\"fleet\": {\"tenants\": 64, \"tenants_per_sec\": 40.0, \"packets_per_sec\": 2000000}"
        ));
        assert!(
            !s.contains("adaptive_driver_tax"),
            "tax must be omitted when either mode is unmeasured, not invented"
        );
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn adaptive_tax_is_published_when_both_modes_exist() {
        let mut adaptive = driver_result("adaptive");
        adaptive.driver_ns_per_packet = 500.0;
        let drivers = vec![driver_result("enabled"), adaptive];
        assert!((adaptive_driver_tax(&drivers).unwrap() - 2.5).abs() < 1e-9);
        let s = to_json(
            &[result("stream/enabled")],
            &drivers,
            &[testbed_result("enabled")],
            &[scenario_result("dns-flood")],
            &fleet_result(),
            TRACE_LEN,
        );
        assert!(s.contains("\"adaptive_driver_tax\": 2.50"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert!(adaptive_driver_tax(&[driver_result("enabled")]).is_none());
    }

    #[test]
    fn fleet_sanity_gate_rejects_bogus_measurements() {
        let mut f = fleet_result();
        assert!(f.is_sane());
        f.tenants_per_sec = 0.0;
        assert!(!f.is_sane());
        f.tenants_per_sec = f64::INFINITY;
        assert!(!f.is_sane());
        f.tenants_per_sec = 40.0;
        f.packets_per_sec = f64::NAN;
        assert!(!f.is_sane());
        f.packets_per_sec = 2_000_000.0;
        f.tenants = 0;
        assert!(!f.is_sane());
    }

    #[test]
    fn scenario_sanity_gate_rejects_bogus_timings() {
        let mut sc = scenario_result("kv-store");
        assert!(sc.is_sane());
        sc.wall_ms = 0.0;
        assert!(!sc.is_sane());
        sc.wall_ms = f64::NAN;
        assert!(!sc.is_sane());
    }

    #[test]
    fn testbed_sanity_gate_rejects_bogus_timings() {
        let mut t = testbed_result("enabled");
        assert!(t.is_sane());
        assert!((t.testbed_burst_speedup() - 1.2).abs() < 1e-9);
        assert!((t.testbed_scalar_speedup() - 1.5).abs() < 1e-9);
        t.testbed_frame_ns_per_frame = 0.0;
        assert!(!t.is_sane());
        t.testbed_frame_ns_per_frame = f64::NAN;
        assert!(!t.is_sane());
    }

    #[test]
    fn driver_sanity_gate_rejects_bogus_timings() {
        let mut d = driver_result("enabled");
        assert!(d.is_sane());
        assert!((d.driver_speedup() - 1.2).abs() < 1e-9);
        d.driver_ns_per_packet = 0.0;
        assert!(!d.is_sane());
        d.driver_ns_per_packet = f64::NAN;
        assert!(!d.is_sane());
    }

    #[test]
    fn sanity_gate_rejects_bogus_timings() {
        let mut r = result("stream/enabled");
        assert!(r.is_sane());
        r.sharded_ns_per_access = 0.0;
        assert!(!r.is_sane());
        r.sharded_ns_per_access = f64::NAN;
        assert!(!r.is_sane());
        r.sharded_ns_per_access = 25.0;
        r.trace_ns_per_access = -1.0;
        assert!(!r.is_sane());
    }

    #[test]
    fn mode_speedups_fold_per_mode() {
        let mut stream = result("stream/adaptive");
        let mut resident = result("resident/adaptive");
        stream.trace_ns_per_access = 25.0; // 2× trace speedup
        resident.trace_ns_per_access = 6.25; // 8× trace speedup
        let rows = mode_speedups(&[stream, resident, result("conflict/enabled")]);
        assert_eq!(rows.len(), 2, "disabled has no cases and is omitted");
        let adaptive = rows.iter().find(|m| m.mode == "adaptive").unwrap();
        // Geomean of 2× and 8× is 4×.
        assert!((adaptive.trace_parallel_speedup - 4.0).abs() < 1e-9);
        assert!((adaptive.parallel_speedup - 2.0).abs() < 1e-9);
    }

    #[test]
    fn short_traces_for_smoke_mode() {
        assert_eq!(trace_with_len(Shape::Conflict, 25, 9, 1000).len(), 1000);
        assert_eq!(cases_with_len(500)[0].1.len(), 500);
    }
}
