//! One harness function per paper table/figure.
//!
//! Every function takes a [`Scale`] so the Criterion benches can run
//! minutes-long experiments in seconds while `repro --full` runs
//! paper-like parameters. All randomness is seeded: same scale, same
//! output.
//!
//! Experiments with independent repetitions (runs, packet sizes,
//! encodings, buffer counts, DDIO configurations) fan those repetitions
//! out over threads via [`crate::par::parallel_map`]; each repetition
//! derives its own seed and results are collected in input order, so
//! output is byte-identical to a sequential run.

use pc_cache::{CacheGeometry, SliceSet};
use pc_core::covert::{lfsr_symbols, run_channel, run_chased_channel, ChannelConfig, Encoding};
use pc_core::fingerprint::{
    evaluate_closed_world, login_trace_pair, CaptureConfig, FingerprintAccuracy, SizeTrace,
};
use pc_core::footprint::{
    block_row_targets, build_monitor, mapping_distribution, page_aligned_targets, ring_histogram,
    watch,
};
use pc_core::sequencer::{ground_truth_sequence, recover_window, SequenceQuality, SequencerConfig};
use pc_core::{TestBed, TestBedConfig};
use pc_defense::eval::{
    fig14_nginx_throughput, fig15_traffic, fig16_tail_latency, BaselineCore, Fig14Row, Fig15Row,
    Fig16Row,
};
use pc_net::{ArrivalSchedule, ConstantSize, LineRate, LoginOutcome};
use pc_probe::AddressPool;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// How big to run each experiment.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum Scale {
    /// Seconds per experiment — used by benches and CI.
    Quick,
    /// Paper-like parameters — used by `repro --full`.
    Full,
}

impl Scale {
    /// Picks the quick- or full-scale value (shared with the scenario
    /// registry, which scales its workloads the same way).
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Figure 5: one driver instance's buffers-per-page-aligned-set
/// histogram (256 entries summing to the ring size).
pub fn fig5(seed: u64) -> Vec<usize> {
    let tb = TestBed::new(TestBedConfig::paper_baseline().with_seed(seed));
    ring_histogram(tb.hierarchy().llc(), tb.driver())
}

/// Figure 6: distribution of buffers-per-set over many driver
/// initializations. `dist[k]` = (instance, set) pairs holding `k`
/// buffers.
pub fn fig6(scale: Scale, seed: u64) -> Vec<usize> {
    let instances = scale.pick(100, 1000);
    mapping_distribution(&CacheGeometry::xeon_e5_2660(), instances, seed)
}

/// Figure 7 result: the idle → receiving → idle activity sweep.
#[derive(Clone, Debug)]
pub struct Fig7Result {
    /// Samples per phase (idle, receiving, idle).
    pub phase_samples: [usize; 3],
    /// Activity events per page-aligned set in each phase.
    pub per_set: [Vec<usize>; 3],
}

impl Fig7Result {
    /// Sets with any activity in phase `p`.
    pub fn active_sets(&self, p: usize) -> usize {
        self.per_set[p].iter().filter(|&&c| c > 0).count()
    }
}

/// Figure 7: monitor all 256 page-aligned sets through an idle phase, a
/// broadcast-receiving phase, and a final idle phase.
pub fn fig7(scale: Scale, seed: u64) -> Fig7Result {
    let mut tb = TestBed::new(TestBedConfig::paper_baseline().with_seed(seed));
    let geom = tb.hierarchy().llc().geometry();
    let targets = page_aligned_targets(&geom);
    let pool = AddressPool::allocate(seed ^ 0x7ea, 12288);
    let monitor = build_monitor(tb.hierarchy().llc(), &pool, &targets);

    let per_phase = scale.pick(250, 2_500);
    let interval = 400_000u64; // ~8.25 kHz probe over 256 sets
    let mut phases = Vec::new();
    for phase in 0..3 {
        if phase == 1 {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xf19);
            let count = scale.pick(30_000, 300_000);
            let frames = ArrivalSchedule::new(LineRate::gigabit())
                .frames_per_second(200_000)
                .generate(&mut ConstantSize::blocks(2), tb.now() + 1, count, &mut rng);
            tb.enqueue(frames);
        }
        let matrix = watch(&mut tb, &monitor, per_phase, interval);
        if phase == 1 {
            // Drop any leftover queued frames before the trailing idle
            // phase (the sender stopped).
            tb.drain();
        }
        phases.push(matrix.activity_counts());
    }
    let mut it = phases.into_iter();
    Fig7Result {
        phase_samples: [per_phase; 3],
        per_set: [
            it.next().expect("3 phases"),
            it.next().expect("3 phases"),
            it.next().expect("3 phases"),
        ],
    }
}

/// Figure 8: activity events per block row (0..3) for constant streams
/// of 1..4-block packets. `matrix[row][size-1]` = events.
pub fn fig8(scale: Scale, seed: u64) -> [[usize; 4]; 4] {
    // One independent capture per packet size, fanned out over threads.
    let per_size = crate::par::parallel_map((1..=4u32).collect(), |size| {
        let mut tb = TestBed::new(TestBedConfig::paper_baseline().with_seed(seed));
        let geom = tb.hierarchy().llc().geometry();
        // Monitor rows 0..3 jointly (labels encode row * 256 + column).
        let mut targets: Vec<SliceSet> = Vec::new();
        for row in 0..4 {
            targets.extend(block_row_targets(&geom, row));
        }
        let pool = AddressPool::allocate(seed ^ 0x8f1, 16384);
        let monitor = build_monitor(tb.hierarchy().llc(), &pool, &targets);

        let samples = scale.pick(60, 400);
        let mut rng = SmallRng::seed_from_u64(seed ^ u64::from(size));
        let frames = ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(200_000)
            .generate(
                &mut ConstantSize::blocks(size),
                tb.now() + 1,
                samples * 90,
                &mut rng,
            );
        tb.enqueue(frames);
        let matrix = watch(&mut tb, &monitor, samples, 1_500_000);
        matrix.activity_counts()
    });
    let mut out = [[0usize; 4]; 4];
    for (i, counts) in per_size.iter().enumerate() {
        for row in 0..4 {
            out[row][i] = counts[row * 256..(row + 1) * 256].iter().sum();
        }
    }
    out
}

/// Table I: sequence-recovery quality over several independent runs.
#[derive(Clone, Debug)]
pub struct Table1Result {
    /// Per-run quality.
    pub runs: Vec<SequenceQuality>,
    /// Monitored sets per window.
    pub monitored_sets: usize,
    /// Samples per window.
    pub samples: usize,
    /// Packet rate during profiling (frames/second).
    pub packet_rate: u64,
}

impl Table1Result {
    /// Mean of a per-run metric.
    pub fn mean<F: Fn(&SequenceQuality) -> f64>(&self, f: F) -> f64 {
        self.runs.iter().map(f).sum::<f64>() / self.runs.len().max(1) as f64
    }
}

/// Table I: recover the ring order of 32 monitored page-aligned sets
/// while a remote sender streams 2-block broadcast frames.
pub fn table1(scale: Scale, seed: u64) -> Table1Result {
    let monitored = 32usize;
    let samples = scale.pick(12_000, 100_000);
    let packet_rate = 200_000u64;
    let runs = scale.pick(2, 5);
    // Each run is an independent machine + seed: perfect thread fan-out.
    // Per-run streams come from the workspace seed-splitting helper
    // (Repetition domain) instead of ad-hoc `seed + run` arithmetic,
    // which could collide with a neighboring experiment's offsets.
    let results = crate::par::parallel_map((0..runs).collect(), |run| {
        let run_seed = crate::par::stream_seed(seed, crate::par::SeedDomain::Repetition, run);
        let mut tb = TestBed::new(TestBedConfig::paper_baseline().with_seed(run_seed));
        let geom = tb.hierarchy().llc().geometry();
        let targets: Vec<SliceSet> = page_aligned_targets(&geom)
            .into_iter()
            .take(monitored)
            .collect();
        let pool = AddressPool::allocate(seed ^ 0x7ab1e, 12288);
        let mut rng = SmallRng::seed_from_u64(crate::par::mix_seed(run_seed, 1));
        let frames = ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(packet_rate)
            .jitter(0.02)
            .generate(
                &mut ConstantSize::blocks(2),
                tb.now() + 1,
                samples * 4,
                &mut rng,
            );
        tb.enqueue(frames);
        let cfg = SequencerConfig {
            samples,
            // ~100 kHz probing: about one monitored-buffer event per
            // sample at 200 k fps with 32/256 sets watched.
            interval: 33_000,
            ..SequencerConfig::paper_defaults()
        };
        let t0 = tb.now();
        let recovered = recover_window(&mut tb, &pool, &targets, &cfg);
        let elapsed = tb.now() - t0;
        let truth = ground_truth_sequence(tb.hierarchy().llc(), tb.driver(), &targets);
        SequenceQuality::evaluate(&recovered, &truth, elapsed)
    });
    Table1Result {
        runs: results,
        monitored_sets: monitored,
        samples,
        packet_rate,
    }
}

/// Figure 10: a decoded "…2 0 1 2 0 1…" ternary stream sample.
#[derive(Clone, Debug)]
pub struct Fig10Result {
    /// The repeating pattern the trojan sent.
    pub sent: Vec<u8>,
    /// What the spy decoded.
    pub decoded: Vec<u8>,
    /// Levenshtein error rate.
    pub error_rate: f64,
}

/// Figure 10: transmit the paper's "2012012012…" pattern and decode it.
pub fn fig10(seed: u64) -> Fig10Result {
    let mut cfg_bed = TestBedConfig::paper_baseline().with_seed(seed);
    cfg_bed.driver.ring_size = 256;
    let mut tb = TestBed::new(cfg_bed);
    let pool = AddressPool::allocate(seed ^ 0xf1610, 12288);
    let sent: Vec<u8> = (0..60).map(|i| [2u8, 0, 1][i % 3]).collect();
    let cfg = ChannelConfig {
        encoding: Encoding::Ternary,
        monitored_buffers: 1,
        packet_rate_fps: 400_000,
        probe_rate_hz: 16_500, // one sample per 200k cycles, as in the figure
        window: 3,
        background_noise_aps: 10_000,
    };
    let report = run_channel(&mut tb, &pool, &sent, &cfg);
    Fig10Result {
        sent,
        error_rate: report.error_rate,
        decoded: report.received,
    }
}

/// One point of Figure 11.
#[derive(Copy, Clone, Debug)]
pub struct Fig11Row {
    /// "Binary" or "Ternary".
    pub encoding: &'static str,
    /// Probe rate in kHz (7 / 14 / 28).
    pub probe_khz: u64,
    /// Channel bandwidth in bits/second.
    pub bandwidth_bps: f64,
    /// Levenshtein error rate.
    pub error_rate: f64,
}

/// Figure 11: single-buffer channel bandwidth and error rate across
/// probe rates, for binary and ternary encodings.
pub fn fig11(scale: Scale, seed: u64) -> Vec<Fig11Row> {
    let symbols_n = scale.pick(60, 600);
    let mut combos = Vec::new();
    for (ename, enc) in [("Binary", Encoding::Binary), ("Ternary", Encoding::Ternary)] {
        for probe_khz in [7u64, 14, 28] {
            combos.push((ename, enc, probe_khz));
        }
    }
    crate::par::parallel_map(combos, |(ename, enc, probe_khz)| {
        let mut tb = TestBed::new(TestBedConfig::paper_baseline().with_seed(seed));
        let pool = AddressPool::allocate(seed ^ 0xf1611, 12288);
        let symbols = lfsr_symbols(enc, symbols_n, 0x2fd1);
        let cfg = ChannelConfig {
            encoding: enc,
            monitored_buffers: 1,
            packet_rate_fps: 500_000,
            probe_rate_hz: probe_khz * 1_000,
            window: 3,
            background_noise_aps: 100_000,
        };
        let report = run_channel(&mut tb, &pool, &symbols, &cfg);
        Fig11Row {
            encoding: ename,
            probe_khz,
            bandwidth_bps: report.bandwidth_bps,
            error_rate: report.error_rate,
        }
    })
}

/// One point of Figure 12a/b.
#[derive(Copy, Clone, Debug)]
pub struct Fig12abRow {
    /// Monitored buffers (1..16).
    pub buffers: usize,
    /// Channel bandwidth in kbit/s.
    pub bandwidth_kbps: f64,
    /// Levenshtein error rate.
    pub error_rate: f64,
}

/// Figure 12a/b: bandwidth scales with the number of monitored buffers;
/// error jumps at 16.
pub fn fig12ab(scale: Scale, seed: u64) -> Vec<Fig12abRow> {
    crate::par::parallel_map(vec![1usize, 2, 4, 8, 16], |buffers| {
        let symbols_n = scale.pick(40, 400) * buffers.min(4);
        let mut tb = TestBed::new(TestBedConfig::paper_baseline().with_seed(seed));
        let pool = AddressPool::allocate(seed ^ 0xf1612, 12288);
        let symbols = lfsr_symbols(Encoding::Ternary, symbols_n, 0x11d7);
        let cfg = ChannelConfig {
            encoding: Encoding::Ternary,
            monitored_buffers: buffers,
            packet_rate_fps: 400_000,
            probe_rate_hz: 28_000,
            window: 2,
            background_noise_aps: 20_000,
        };
        let report = run_channel(&mut tb, &pool, &symbols, &cfg);
        Fig12abRow {
            buffers,
            bandwidth_kbps: report.bandwidth_bps / 1_000.0,
            error_rate: report.error_rate,
        }
    })
}

/// One point of Figure 12c/d.
#[derive(Copy, Clone, Debug)]
pub struct Fig12cdRow {
    /// Offered bandwidth in kbit/s (80..640).
    pub bandwidth_kbps: u64,
    /// Out-of-sync events per sent packet.
    pub out_of_sync_rate: f64,
    /// Levenshtein error rate over the synchronized stream.
    pub error_rate: f64,
}

/// Figure 12c/d: chase every buffer, one ternary symbol per packet, at
/// increasing offered bandwidth.
pub fn fig12cd(scale: Scale, seed: u64) -> Vec<Fig12cdRow> {
    let symbols_n = scale.pick(1_500, 8_000);
    crate::par::parallel_map(vec![80u64, 160, 320, 640], |bandwidth_kbps| {
        let packet_rate =
            (bandwidth_kbps as f64 * 1_000.0 / Encoding::Ternary.bits_per_symbol()) as u64;
        let mut cfg_bed = TestBedConfig::paper_baseline().with_seed(seed);
        cfg_bed.driver.ring_size = 256;
        let mut tb = TestBed::new(cfg_bed);
        let pool = AddressPool::allocate(seed ^ 0xf1613, 16384);
        let symbols = lfsr_symbols(Encoding::Ternary, symbols_n, 0x3c3c);
        let report = run_chased_channel(&mut tb, &pool, &symbols, packet_rate);
        Fig12cdRow {
            bandwidth_kbps,
            out_of_sync_rate: report.out_of_sync_rate,
            error_rate: report.error_rate,
        }
    })
}

/// Figure 13: original vs recovered hotcrp login traces.
#[derive(Clone, Debug)]
pub struct Fig13Result {
    /// Ground-truth successful-login sizes.
    pub ok_original: SizeTrace,
    /// Cache-recovered successful-login sizes.
    pub ok_recovered: SizeTrace,
    /// Ground-truth unsuccessful-login sizes.
    pub fail_original: SizeTrace,
    /// Cache-recovered unsuccessful-login sizes.
    pub fail_recovered: SizeTrace,
}

/// Figure 13: capture both login outcomes through the cache.
pub fn fig13(seed: u64) -> Fig13Result {
    let capture = CaptureConfig::paper_defaults();
    let bed = TestBedConfig::paper_baseline();
    let (ok_original, ok_recovered) =
        login_trace_pair(bed, LoginOutcome::Successful, &capture, seed);
    let (fail_original, fail_recovered) =
        login_trace_pair(bed, LoginOutcome::Unsuccessful, &capture, seed + 1);
    Fig13Result {
        ok_original,
        ok_recovered,
        fail_original,
        fail_recovered,
    }
}

/// §V closed-world fingerprinting accuracy, with and without DDIO.
#[derive(Clone, Debug)]
pub struct FingerprintResult {
    /// Accuracy with DDIO enabled (paper: 89.7 %).
    pub with_ddio: FingerprintAccuracy,
    /// Accuracy with DDIO disabled (paper: 86.5 %).
    pub without_ddio: FingerprintAccuracy,
}

/// The §V experiment: train on clean-ish captures, classify noisy ones.
///
/// The site×trial capture grid inside [`evaluate_closed_world`] is
/// thread-parallel (per-capture seeds, ordered collection), so the two
/// DDIO configurations run back to back and each one saturates the
/// worker pool — much better load balance than the old two-way split of
/// the experiment that dominates `repro all` wall time.
pub fn fingerprint(scale: Scale, seed: u64) -> FingerprintResult {
    let training = scale.pick(4, 8);
    let trials = scale.pick(8, 40); // per site
    let noise = 0.25;
    let sites = pc_net::ClosedWorld::paper_five_sites();
    let capture = CaptureConfig::paper_defaults();
    let run = |bed, run_seed| {
        evaluate_closed_world(
            bed,
            sites.sites(),
            training,
            trials,
            noise,
            &capture,
            run_seed,
        )
    };
    FingerprintResult {
        with_ddio: run(TestBedConfig::paper_baseline(), seed),
        without_ddio: run(TestBedConfig::no_ddio(), seed + 999),
    }
}

/// Table II: the baseline core description.
pub fn table2() -> BaselineCore {
    BaselineCore::paper()
}

/// Figure 14 rows (Nginx throughput, adaptive vs DDIO, 20/11/8 MiB).
pub fn fig14(scale: Scale, seed: u64) -> Vec<Fig14Row> {
    fig14_nginx_throughput(scale.pick(400, 4_000), seed)
}

/// Figure 15 rows (normalized memory traffic + miss rates).
pub fn fig15(scale: Scale, seed: u64) -> Vec<Fig15Row> {
    fig15_traffic(scale.pick(1, 10), seed)
}

/// Figure 16 rows (tail latency per defense).
pub fn fig16(scale: Scale, seed: u64) -> Vec<Fig16Row> {
    fig16_tail_latency(scale.pick(8_000, 60_000), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_sums_to_ring() {
        let h = fig5(3);
        assert_eq!(h.iter().sum::<usize>(), 256);
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }
}
