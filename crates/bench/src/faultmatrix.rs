//! The fault-injection kill matrix behind `repro fault-matrix`.
//!
//! Mutation testing for the equivalence suites: every catalog site in
//! [`pc_cache::fault`] is armed in turn (for each fault seed) and each
//! of the cheap detector suites gets a fresh arming and one chance to
//! notice — a reported divergence *or* a panic kills the mutant. The
//! matrix printed at the end shows which suite killed what; a fault ×
//! seed cell no suite kills is a **survivor** and fails the run: it
//! means a single-point mutation in one engine slipped past every
//! differential check the repository relies on.
//!
//! The five suites, cheapest first (the order is part of the printed
//! contract):
//!
//! * `ops` — the op-stream differential from
//!   `crates/pc-cache/tests/fault_kill.rs`: four engines (per-access
//!   oracle, streaming applier, buffered batch, pinned two-worker
//!   sharded replay) replay seeded fuzz streams over carried state and
//!   are compared on clock, memory traffic, merged and per-slice
//!   statistics, and residency.
//! * `driver` — a compact `pc-nic` batch-equivalence pass: batched and
//!   burst receive against the per-access scalar path over a mixed
//!   frame-size cycle, per DDIO mode × randomization defense.
//! * `testbed` — the windowed ↔ per-frame trajectory comparison from
//!   `crates/core/tests/fault_kill_rx.rs`, the only detector that
//!   exercises the windowed-rx sites (`dropped-deferred-read`,
//!   `burst-flush-elision`, `swapped-segment-subtotal`,
//!   `stale-deferred-segment-index`).
//! * `monitor` — the fused multi-target probe sample
//!   (`pc_probe::Monitor`) against per-target probing on a cloned
//!   machine, mirroring `crates/pc-probe/tests/fault_kill_probe.rs` —
//!   the only detector that exercises `cross-epoch-misclassify`, whose
//!   mutation lives in the fused per-segment classification alone.
//! * `golden` — the scenario registry at the blessed parameters
//!   (`Scale::Quick`, seed 2020) byte-compared against the snapshots
//!   in `tests/golden/` (`fingerprint` is excluded: it costs more than
//!   every other scenario combined and the sites it could kill are
//!   already covered by the cheaper suites).
//!
//! A negative control runs first: with nothing armed, all five suites
//! must stay silent, pinning that the matrix only ever reports
//! injected faults. The run aborts (exit 2 via the caller) if the
//! control trips.

use crate::experiments::Scale;
use crate::scenario;
use pc_cache::fault::{self, FaultSite, FaultSpec};
use pc_cache::{
    AccessKind, AdaptiveConfig, CacheGeometry, CacheOp, CacheStats, DdioMode, Hierarchy, OpBuffer,
    OpSink, PhysAddr,
};
use pc_core::{RxEngine, TestBed, TestBedConfig};
use pc_net::{EthernetFrame, ScheduledFrame};
use pc_nic::{DriverConfig, IgbDriver, PageAllocator, RandomizeMode, RxEvent};
use pc_probe::{oracle_eviction_sets, AddressPool, Monitor, MonitorTarget};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A detector suite: runs a fixed workload and reports the first
/// divergence, if any. A panic inside the suite also counts as a kill
/// (the harness catches it).
type Suite = fn() -> Option<String>;

/// The suites in run order (cheap → expensive). Names are the matrix
/// column headers.
const SUITES: [(&str, Suite); 5] = [
    ("ops", op_stream_differential),
    ("driver", driver_batch_equivalence),
    ("testbed", testbed_trajectory),
    ("monitor", monitor_differential),
    ("golden", scenario_goldens),
];

/// Runs the full matrix — every catalog site × `seeds` fault seeds ×
/// every suite — printing the kill matrix as it goes. Returns `true`
/// when the negative control passed and no mutant survived.
pub fn run(seeds: u64) -> bool {
    println!(
        "Fault-injection kill matrix — {} sites × seeds 0..{seeds} × {} suites",
        FaultSite::ALL.len(),
        SUITES.len()
    );
    fault::disarm();
    for (name, suite) in SUITES {
        match catch_unwind(AssertUnwindSafe(suite)) {
            Ok(None) => {}
            Ok(Some(d)) => {
                println!("# NEGATIVE CONTROL FAILED: suite `{name}` reports a divergence with no fault armed: {d}");
                return false;
            }
            Err(_) => {
                println!("# NEGATIVE CONTROL FAILED: suite `{name}` panicked with no fault armed");
                return false;
            }
        }
    }
    println!("# negative control: all suites silent with no fault armed");
    let header: Vec<&str> = SUITES.iter().map(|(n, _)| *n).collect();
    println!("site,seed,{},killed_by", header.join(","));
    let mut survivors = Vec::new();
    for site in FaultSite::ALL {
        for seed in 0..seeds {
            let mut cells = Vec::new();
            let mut killed_by = Vec::new();
            for (name, suite) in SUITES {
                // Each suite gets a *fresh* arming: counter sites are
                // one-shot, and a suite that consumed the firing
                // without noticing must not shield the suites after it.
                fault::arm(FaultSpec {
                    site,
                    seed,
                    nth: None,
                });
                let outcome = catch_unwind(AssertUnwindSafe(suite));
                fault::disarm();
                let killed = !matches!(outcome, Ok(None));
                cells.push(if killed { "KILL" } else { "miss" });
                if killed {
                    killed_by.push(name);
                }
            }
            if killed_by.is_empty() {
                survivors.push(format!("{}:{seed}", site.name()));
            }
            println!(
                "{},{seed},{},{}",
                site.name(),
                cells.join(","),
                if killed_by.is_empty() {
                    "SURVIVED".to_owned()
                } else {
                    killed_by.join("+")
                }
            );
        }
    }
    let total = FaultSite::ALL.len() as u64 * seeds;
    if survivors.is_empty() {
        println!("# all {total} fault×seed mutants killed by at least one suite; 0 survivors");
        true
    } else {
        println!(
            "# SURVIVORS ({}/{total}): {}",
            survivors.len(),
            survivors.join(" ")
        );
        false
    }
}

// --- suite `ops`: the op-stream differential -----------------------

/// The op_fuzz stream shape: mixed kinds, occasional leads, a hot
/// conflict region so LRU order and slice skew both matter.
fn fuzz_stream(seed: u64, len: usize) -> Vec<CacheOp> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let line = if rng.gen_range(0..100) < 60 {
                rng.gen_range(0..64u64)
            } else {
                rng.gen_range(0..(1 << 16))
            };
            let kind = match rng.gen_range(0..100u32) {
                p if p < 25 => AccessKind::IoWrite,
                p if p < 35 => AccessKind::IoRead,
                p if p < 55 => AccessKind::CpuWrite,
                _ => AccessKind::CpuRead,
            };
            let lead = if rng.gen_range(0..8u32) == 0 {
                rng.gen_range(1..500u64)
            } else {
                0
            };
            CacheOp::new(PhysAddr::new(line * 64), kind).after(lead)
        })
        .collect()
}

fn slice_stats(h: &Hierarchy) -> Vec<CacheStats> {
    (0..h.llc().geometry().slices())
        .map(|s| h.llc().slice_stats(s))
        .collect()
}

/// First observable difference between an engine and the oracle.
fn hierarchy_differs(oracle: &Hierarchy, other: &Hierarchy, ops: &[CacheOp]) -> Option<String> {
    if oracle.now() != other.now() {
        return Some(format!("clock {} != {}", other.now(), oracle.now()));
    }
    if oracle.memory_stats() != other.memory_stats() {
        return Some("memory traffic".into());
    }
    if oracle.llc().stats() != other.llc().stats() {
        return Some("merged LLC stats".into());
    }
    if slice_stats(oracle) != slice_stats(other) {
        return Some("per-slice LLC stats".into());
    }
    for op in ops {
        if oracle.llc().contains(op.addr) != other.llc().contains(op.addr) {
            return Some(format!("residency of {:?}", op.addr));
        }
    }
    None
}

/// Four op-stream engines over carried state, compared after every
/// round (six rounds per DDIO mode — enough consultations for every
/// counter site's trigger range).
fn op_stream_differential() -> Option<String> {
    let geom = CacheGeometry::tiny();
    let modes = [
        DdioMode::Disabled,
        DdioMode::enabled(),
        DdioMode::Adaptive(AdaptiveConfig {
            period: 16,
            ..AdaptiveConfig::paper_defaults()
        }),
    ];
    for mode in modes {
        let mut oracle = Hierarchy::new(geom, mode);
        let mut streaming = Hierarchy::new(geom, mode);
        let mut batch = Hierarchy::new(geom, mode);
        let mut sharded = Hierarchy::new(geom, mode);
        let mut buf = OpBuffer::new();
        for round in 0..6u64 {
            let ops = fuzz_stream(pc_par::mix_seed(0xD1FF, round), 6000);
            for &op in &ops {
                oracle.op(op);
            }
            oracle.advance(17);
            {
                let mut sink = streaming.applier();
                for &op in &ops {
                    sink.op(op);
                }
                sink.advance(17);
            }
            buf.clear();
            for &op in &ops {
                buf.op(op);
            }
            buf.advance(17);
            batch.run_ops(&buf);
            sharded.run_trace_threads(&ops, 2);
            sharded.advance(17);
            for (name, h) in [
                ("streaming", &streaming),
                ("batch", &batch),
                ("sharded", &sharded),
            ] {
                if let Some(d) = hierarchy_differs(&oracle, h, &ops) {
                    return Some(format!("{mode:?} round {round}: {name} vs oracle: {d}"));
                }
            }
        }
    }
    None
}

// --- suite `driver`: batched receive vs the scalar oracle -----------

/// One machine: hierarchy + driver + rng, both sides built from the
/// same seeds so any divergence is the replay path's fault.
fn machine(mode: DdioMode, randomize: RandomizeMode) -> (Hierarchy, IgbDriver, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(0x19b);
    let h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), mode);
    let cfg = DriverConfig {
        ring_size: 32,
        randomize,
        ..DriverConfig::paper_defaults()
    };
    let alloc = PageAllocator::new(0xa110c).with_remote_probability(0.05);
    let drv = IgbDriver::new(cfg, alloc, &mut rng);
    (h, drv, rng)
}

/// A deterministic frame-size mix crossing the copybreak in both
/// directions: minimum, small, copybreak-exact, just-over, MTU.
fn frame_mix(n: u32) -> Vec<EthernetFrame> {
    (0..n)
        .map(|i| {
            let bytes = [64, 128, 256, 257, 1514][(i % 5) as usize];
            EthernetFrame::new(bytes).expect("legal size")
        })
        .collect()
}

fn driver_state_differs(
    h_b: &Hierarchy,
    h_s: &Hierarchy,
    drv_b: &IgbDriver,
    drv_s: &IgbDriver,
) -> Option<String> {
    if h_b.now() != h_s.now() {
        return Some("clock".into());
    }
    if h_b.llc().stats() != h_s.llc().stats() {
        return Some("merged LLC stats".into());
    }
    if slice_stats(h_b) != slice_stats(h_s) {
        return Some("per-slice LLC stats".into());
    }
    if h_b.memory_stats() != h_s.memory_stats() {
        return Some("memory traffic".into());
    }
    if drv_b.ring().page_addresses() != drv_s.ring().page_addresses() {
        return Some("ring placement".into());
    }
    if drv_b.defense_overhead_cycles() != drv_s.defense_overhead_cycles() {
        return Some("defense overhead".into());
    }
    None
}

/// Batched and burst receive against the per-access scalar path: every
/// per-frame event, the clock after every frame, and the end state per
/// DDIO mode × randomization defense.
fn driver_batch_equivalence() -> Option<String> {
    let frames = frame_mix(300);
    let modes = [
        DdioMode::Disabled,
        DdioMode::enabled(),
        DdioMode::adaptive(),
    ];
    for mode in modes {
        for randomize in [RandomizeMode::Off, RandomizeMode::EveryNPackets(7)] {
            // Frame-at-a-time batched replay vs scalar.
            let (mut h_b, mut drv_b, mut rng_b) = machine(mode, randomize);
            let (mut h_s, mut drv_s, mut rng_s) = machine(mode, randomize);
            let mut touched = Vec::new();
            for (i, &frame) in frames.iter().enumerate() {
                let ev_b: RxEvent = drv_b.receive(&mut h_b, frame, &mut rng_b);
                let ev_s: RxEvent = drv_s.receive_scalar(&mut h_s, frame, &mut rng_s);
                if ev_b != ev_s {
                    return Some(format!("event diverged: frame {i} {mode:?} {randomize:?}"));
                }
                if h_b.now() != h_s.now() {
                    return Some(format!("clock diverged: frame {i} {mode:?} {randomize:?}"));
                }
                for b in 0..u64::from(ev_b.blocks) {
                    touched.push(ev_b.buffer_addr.add_blocks(b));
                }
            }
            if let Some(d) = driver_state_differs(&h_b, &h_s, &drv_b, &drv_s) {
                return Some(format!("receive: {d}: {mode:?} {randomize:?}"));
            }
            for addr in touched {
                if h_b.llc().contains(addr) != h_s.llc().contains(addr) {
                    return Some(format!("residency at {addr}: {mode:?} {randomize:?}"));
                }
            }
            // The pipelined burst path vs scalar.
            let (mut h_b, mut drv_b, mut rng_b) = machine(mode, randomize);
            let (mut h_s, mut drv_s, mut rng_s) = machine(mode, randomize);
            for (i, burst) in frames.chunks(59).enumerate() {
                let evs_b = drv_b.receive_burst(&mut h_b, burst, &mut rng_b);
                let evs_s: Vec<RxEvent> = burst
                    .iter()
                    .map(|&f| drv_s.receive_scalar(&mut h_s, f, &mut rng_s))
                    .collect();
                if evs_b != evs_s {
                    return Some(format!("burst {i} diverged: {mode:?} {randomize:?}"));
                }
            }
            if let Some(d) = driver_state_differs(&h_b, &h_s, &drv_b, &drv_s) {
                return Some(format!("burst: {d}: {mode:?} {randomize:?}"));
            }
        }
    }
    None
}

// --- suite `testbed`: windowed ↔ per-frame trajectory ---------------

fn testbed_config(rx_engine: RxEngine) -> TestBedConfig {
    TestBedConfig {
        // Tiny and 2-way: maximal conflict pressure, so reordered or
        // dropped deferred reads perturb LRU state.
        geometry: CacheGeometry::new(2, 2, 2),
        // Deferred reads only exist without DDIO.
        ddio: DdioMode::Disabled,
        driver: DriverConfig {
            ring_size: 8,
            ..DriverConfig::paper_defaults()
        },
        ..TestBedConfig::no_ddio()
    }
    .with_seed(0x517e)
    .with_rx_engine(rx_engine)
}

/// Burst period of [`testbed_schedule`]; each burst is observed in two
/// detect steps (head and tail).
const BURST_PERIOD: u64 = 60_000;

/// The kill schedule from `crates/core/tests/fault_kill_rx.rs`: each
/// burst puts `burst % 24` zero-gap copybreak frames before its MTU
/// frame (sweeping the deferral's fused-window segment index across
/// every keyed site's modulus range), then an 8-frame small train that
/// brackets the deferred payload due time at one-replay (~900 cycle)
/// spacing — a fired mutation shifts the due ~5.5 k cycles (one MTU
/// replay) and reorders the reads across several frames' DMA near the
/// burst end, where the minuscule cache still remembers the order.
fn testbed_schedule() -> Vec<ScheduledFrame> {
    let mtu = EthernetFrame::new(1514).expect("legal size");
    let small = EthernetFrame::new(64).expect("legal size");
    let mut frames = Vec::new();
    let mut t = 1_000u64;
    for burst in 0..40u64 {
        let leading = burst % 24;
        for _ in 0..leading {
            frames.push(ScheduledFrame::new(t, small));
        }
        frames.push(ScheduledFrame::new(t, mtu));
        let emit_end = 900 * leading + 5_500;
        for j in 0..8u64 {
            frames.push(ScheduledFrame::new(t + emit_end + 12_800 + j * 900, small));
        }
        t += BURST_PERIOD;
    }
    frames
}

/// Drives a windowed and a per-frame bed through the schedule in
/// lockstep, comparing the *trajectory* — clock, traffic, statistics,
/// records and mid-flight residency after every step. Two steps per
/// burst: the head step delivers `[smalls…, MTU]` alone and resolves
/// the deferral against reconstructed segment ends; the tail step
/// delivers the train, so every deferred-pending cut it takes comes
/// from an exact heap due — the cut `burst-flush-elision` must not
/// elide.
fn testbed_trajectory() -> Option<String> {
    let mut windowed = TestBed::new(testbed_config(RxEngine::Batched));
    let mut perframe = TestBed::new(testbed_config(RxEngine::PerFrame));
    let frames = testbed_schedule();
    let end = frames.last().expect("nonempty").at + BURST_PERIOD;
    windowed.enqueue(frames.clone());
    perframe.enqueue(frames);
    let mut steps = Vec::new();
    let mut burst_at = 1_000;
    while burst_at < end {
        steps.push(burst_at + 12_000);
        steps.push(burst_at + 52_000);
        burst_at += BURST_PERIOD;
    }
    for t in steps {
        windowed.run_window(t);
        windowed.advance_to(t);
        perframe.advance_to(t);
        if windowed.now() != perframe.now() {
            return Some(format!("clock at step {t}"));
        }
        let (wh, ph) = (windowed.hierarchy(), perframe.hierarchy());
        if wh.memory_stats() != ph.memory_stats() {
            return Some(format!("memory traffic at step {t}"));
        }
        if wh.llc().stats() != ph.llc().stats() {
            return Some(format!("LLC stats at step {t}"));
        }
        if windowed.records() != perframe.records() {
            return Some(format!("receive records at step {t}"));
        }
        // Mid-flight residency: a reordered deferred read perturbs LRU
        // order in sets where every later access is a forced miss, so
        // the divergence never reaches the statistics and the ring
        // eventually rewrites the evidence.
        for rec in windowed.records() {
            for b in 0..u64::from(rec.blocks) {
                let addr = rec.buffer_addr.add_blocks(b);
                if wh.llc().contains(addr) != ph.llc().contains(addr) {
                    return Some(format!("residency of {addr} at step {t}"));
                }
            }
        }
    }
    windowed.drain();
    perframe.drain();
    if windowed.records() != perframe.records() {
        return Some("receive records after drain".into());
    }
    if windowed.driver().ring().page_addresses() != perframe.driver().ring().page_addresses() {
        return Some("ring placement after drain".into());
    }
    None
}

// --- suite `monitor`: fused probe sample vs per-target probing ------

/// The fused multi-target probe sample against per-target probing on a
/// cloned machine: 32 monitored sets (every keyed modulus in the
/// catalog fires within the first 32 keys), with NIC writes landing on
/// a rotating third of the victims between samples. The per-target
/// path never consults the fused classification hook, so it is the
/// oracle for `cross-epoch-misclassify` — and the comparison doubles
/// as a fusion-equivalence regression (clock and statistics included).
fn monitor_differential() -> Option<String> {
    let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
    let pool = AddressPool::allocate(6, 16384);
    let mut victims: Vec<PhysAddr> = Vec::new();
    let mut targets = Vec::new();
    for page in 0..4000u64 {
        if targets.len() >= 32 {
            break;
        }
        let v = PhysAddr::new(page * 4096);
        let ss = h.llc().locate(v);
        if victims.iter().any(|&p| h.llc().locate(p) == ss) {
            continue;
        }
        let set = oracle_eviction_sets(h.llc(), &pool, &[ss]).remove(0);
        targets.push(MonitorTarget::new(
            targets.len(),
            set,
            h.latencies().miss_threshold(),
        ));
        victims.push(v);
    }
    let m = Monitor::new(targets);
    m.prime_all(&mut h);
    let _ = m.sample_misses(&mut h); // settle the primed state
    for round in 0..3usize {
        for (i, &v) in victims.iter().enumerate() {
            if i % 3 == round {
                h.io_write(v);
            }
        }
        let mut oracle = h.clone();
        let fused = m.sample_misses(&mut h);
        let split: Vec<u32> = m
            .targets()
            .iter()
            .map(|t| t.probe.probe(&mut oracle).misses)
            .collect();
        if fused != split {
            return Some(format!("fused sample row diverged (round {round})"));
        }
        if h.now() != oracle.now() {
            return Some(format!("clock after fused sample (round {round})"));
        }
        if h.llc().stats() != oracle.llc().stats() {
            return Some(format!("LLC stats after fused sample (round {round})"));
        }
    }
    None
}

// --- suite `golden`: scenario snapshots -----------------------------

/// The scenario registry at the blessed parameters against the golden
/// snapshots under `tests/golden/`. `fingerprint` is skipped: it costs
/// more than the rest of the registry combined, and its engines are
/// covered by the cheaper suites.
fn scenario_goldens() -> Option<String> {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden");
    for s in scenario::registry() {
        if s.name() == "fingerprint" {
            continue;
        }
        let path = dir.join(format!("{}.golden.txt", s.name()));
        let want = match std::fs::read_to_string(&path) {
            Ok(w) => w,
            // Reported as a divergence so the *negative control* fails
            // loudly on a missing snapshot instead of crediting kills.
            Err(e) => return Some(format!("missing golden {path:?}: {e}")),
        };
        if s.run(Scale::Quick, 2020) != want {
            return Some(format!(
                "scenario `{}` diverged from its snapshot",
                s.name()
            ));
        }
    }
    None
}
