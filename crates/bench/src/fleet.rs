//! Fleet orchestration: thousands of independent tenants, one merged,
//! deterministic report — the ROADMAP's "millions of users" story made
//! concrete (`repro fleet`).
//!
//! ## Tenant model
//!
//! A fleet is `N` **tenants** instantiated from a small set of
//! [`TenantTemplate`]s — scenario specs ([`crate::scenario`]) pinned to
//! one DDIO mode and tenant-scale work units, plus an integer weight.
//! Tenant `i` is assigned template `cycle[i % cycle.len()]`, where
//! `cycle` lists each template `weight` times — a deterministic
//! weighted round-robin that depends only on the template list, never
//! on thread count or timing.
//!
//! ## Seed derivation
//!
//! Every tenant owns its whole machine (TestBed/Workbench, hierarchy,
//! RNG) seeded with `pc_par::stream_seed(fleet_seed,
//! SeedDomain::Tenant, i)` — the one workspace helper for per-item
//! stream splitting, with a domain tag so tenant streams can never
//! collide with the slice/capture streams other fan-outs draw from.
//!
//! ## Deterministic merge
//!
//! Workers return per-tenant [`TenantMetrics`] through
//! `pc_par::parallel_map_scratch_threads`, which collects results in
//! tenant-index order regardless of which worker ran which tenant.
//! Every aggregation — float sums, percentile sorts, per-mode stats
//! merges — then iterates that index order, so the rendered report is
//! byte-identical for any thread count (the fleet determinism suite
//! and a CI byte-diff leg pin this).

use crate::experiments::Scale;
use crate::scenario::{self, Metric, ScenarioReport, ScenarioSpec, TenantMetrics, TenantScratch};
use pc_cache::{CacheStats, DdioMode};
use pc_par::SeedDomain;
use std::fmt::Write as _;

/// One tenant archetype: a scenario spec (already pinned to tenant
/// scale and mode) plus its share of the fleet.
#[derive(Clone, PartialEq, Debug)]
pub struct TenantTemplate {
    /// The workload this tenant class runs. Must be tenant-capable
    /// ([`ScenarioSpec::run_tenant`] returns `Some`).
    pub spec: ScenarioSpec,
    /// Reporting label (also the per-template statistics key).
    pub label: &'static str,
    /// Relative share of tenants assigned to this template.
    pub weight: u32,
}

/// Everything a fleet run needs. `threads` is explicit (rather than
/// read from the environment at run time) so determinism tests can pin
/// {1,2,4} workers side by side in one process.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of tenants to instantiate.
    pub tenants: usize,
    /// Fleet master seed; tenant `i` derives
    /// `stream_seed(seed, SeedDomain::Tenant, i)`.
    pub seed: u64,
    /// Work units per tenant ([`Scale::Quick`] for CI smoke).
    pub scale: Scale,
    /// Worker threads for the tenant fan-out.
    pub threads: usize,
    /// Tenant archetypes; must be non-empty with at least one positive
    /// weight.
    pub templates: Vec<TenantTemplate>,
}

impl FleetConfig {
    /// The standard fleet: the default template mix, worker count from
    /// `PC_BENCH_THREADS` ([`pc_par::max_threads`]).
    pub fn standard(tenants: usize, seed: u64, scale: Scale) -> Self {
        FleetConfig {
            tenants,
            seed,
            scale,
            threads: pc_par::max_threads(),
            templates: standard_templates(),
        }
    }

    /// The weighted round-robin assignment cycle: each template index
    /// repeated `weight` times, in template order.
    fn assignment_cycle(&self) -> Vec<usize> {
        let cycle: Vec<usize> = self
            .templates
            .iter()
            .enumerate()
            .flat_map(|(i, t)| std::iter::repeat_n(i, t.weight as usize))
            .collect();
        assert!(
            !cycle.is_empty(),
            "fleet needs at least one template with positive weight"
        );
        cycle
    }
}

/// The default tenant mix: every tenant-capable scenario, skewed
/// toward the paper's DDIO baseline with NoDDIO and Adaptive minorities
/// (so per-mode breakdowns always have all three configurations at
/// fleet sizes ≥ the cycle length of 16). The multi-queue flow
/// scenarios ride at the end of the cycle so the pre-RSS assignment of
/// the first twelve slots is unchanged.
pub fn standard_templates() -> Vec<TenantTemplate> {
    let spec = |name: &str| {
        scenario::find(name)
            .unwrap_or_else(|| panic!("scenario `{name}` not registered"))
            .clone()
    };
    vec![
        TenantTemplate {
            spec: spec("tcp-recv")
                .with_units(512, 4_096)
                .with_mode("DDIO", DdioMode::enabled()),
            label: "tcp-recv/DDIO",
            weight: 3,
        },
        TenantTemplate {
            spec: spec("tcp-recv")
                .with_units(512, 4_096)
                .with_mode("NoDDIO", DdioMode::Disabled),
            label: "tcp-recv/NoDDIO",
            weight: 1,
        },
        TenantTemplate {
            spec: spec("tcp-recv")
                .with_units(512, 4_096)
                .with_mode("Adaptive", DdioMode::adaptive()),
            label: "tcp-recv/Adaptive",
            weight: 2,
        },
        TenantTemplate {
            spec: spec("nginx")
                .with_units(60, 480)
                .with_mode("DDIO", DdioMode::enabled()),
            label: "nginx/DDIO",
            weight: 2,
        },
        TenantTemplate {
            spec: spec("nginx")
                .with_units(60, 480)
                .with_mode("Adaptive", DdioMode::adaptive()),
            label: "nginx/Adaptive",
            weight: 1,
        },
        TenantTemplate {
            spec: spec("file-copy")
                .with_units(1, 4)
                .with_mode("DDIO", DdioMode::enabled()),
            label: "file-copy/DDIO",
            weight: 1,
        },
        TenantTemplate {
            spec: spec("web-mix")
                .with_units(1, 4)
                .with_mode("DDIO", DdioMode::enabled()),
            label: "web-mix/DDIO",
            weight: 2,
        },
        TenantTemplate {
            spec: spec("kv-store")
                .with_units(256, 2_048)
                .with_mode("DDIO", DdioMode::enabled()),
            label: "kv-store/DDIO",
            weight: 2,
        },
        TenantTemplate {
            spec: spec("dns-flood")
                .with_units(256, 2_048)
                .with_mode("Adaptive", DdioMode::adaptive()),
            label: "dns-flood/Adaptive",
            weight: 1,
        },
        TenantTemplate {
            spec: spec("large-transfer")
                .with_units(64, 512)
                .with_mode("NoDDIO", DdioMode::Disabled),
            label: "large-transfer/NoDDIO",
            weight: 1,
        },
    ]
}

/// What one tenant produced, tagged for the merge.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TenantOutcome {
    /// Tenant index in `0..tenants` (also the merge order).
    pub tenant: usize,
    /// Index into [`FleetConfig::templates`].
    pub template: usize,
    /// The tenant's measurements.
    pub metrics: TenantMetrics,
}

/// Runs every tenant and returns outcomes **in tenant-index order**
/// (the fan-out collects by input index, not completion time).
pub fn run_fleet_outcomes(cfg: &FleetConfig) -> Vec<TenantOutcome> {
    // Window telemetry is process-global; scope it to this fleet run so
    // `repro fleet` (and back-to-back runs in one process) never report
    // a predecessor's fusion counters.
    pc_core::reset_window_stats();
    let cycle = cfg.assignment_cycle();
    let jobs: Vec<(usize, usize)> = (0..cfg.tenants)
        .map(|i| (i, cycle[i % cycle.len()]))
        .collect();
    pc_par::parallel_map_scratch_threads(
        jobs,
        cfg.threads,
        TenantScratch::new,
        |scratch, (tenant, template)| {
            let seed = pc_par::stream_seed(cfg.seed, SeedDomain::Tenant, tenant as u64);
            let metrics = cfg.templates[template]
                .spec
                .run_tenant(cfg.scale, seed, scratch)
                .expect("fleet templates must be tenant-capable scenarios");
            TenantOutcome {
                tenant,
                template,
                metrics,
            }
        },
    )
}

/// One titled section of the fleet report.
#[derive(Clone, PartialEq, Debug)]
pub struct FleetSection {
    /// Section heading (rendered as a `# == title ==` line).
    pub title: &'static str,
    /// The section's data.
    pub report: ScenarioReport,
}

/// The merged fleet-level statistics, as data. [`FleetReport::render`]
/// is the single text rendering `repro fleet` prints and CI byte-diffs.
#[derive(Clone, PartialEq, Debug)]
pub struct FleetReport {
    /// Per-template percentiles, per-mode breakdown, aggregate.
    pub sections: Vec<FleetSection>,
}

impl FleetReport {
    /// Renders every section: heading comment, then the section's
    /// report through the one scenario renderer.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.sections {
            let _ = writeln!(out, "# == {} ==", s.title);
            out.push_str(&s.report.render());
        }
        out
    }
}

/// Nearest-rank percentile of a **sorted** slice: the smallest value
/// with at least `p`% of the distribution at or below it.
fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty set");
    let n = sorted.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Merges tenant outcomes (already in tenant-index order) into the
/// fleet report. Pure data-to-data: every iteration is in tenant or
/// template order, so the result is independent of how the outcomes
/// were computed.
pub fn merge(cfg: &FleetConfig, outcomes: &[TenantOutcome]) -> FleetReport {
    // Section 1 — per-template throughput/latency percentiles.
    let mut percentiles = ScenarioReport::new(vec![
        "template",
        "tenants",
        "unit",
        "p50_kunits_per_sec",
        "p90_kunits_per_sec",
        "p99_kunits_per_sec",
        "p50_cycles_per_unit",
        "p99_cycles_per_unit",
    ]);
    for (t, template) in cfg.templates.iter().enumerate() {
        let mut kups: Vec<f64> = Vec::new();
        let mut cpu: Vec<f64> = Vec::new();
        for o in outcomes.iter().filter(|o| o.template == t) {
            kups.push(o.metrics.units_per_second() / 1_000.0);
            cpu.push(o.metrics.cycles_per_unit() as f64);
        }
        if kups.is_empty() {
            continue; // template unused at this fleet size
        }
        kups.sort_by(f64::total_cmp);
        cpu.sort_by(f64::total_cmp);
        percentiles.push_row(vec![
            Metric::Text(template.label.to_string()),
            Metric::Count(kups.len() as u64),
            Metric::Text(
                outcomes
                    .iter()
                    .find(|o| o.template == t)
                    .expect("non-empty")
                    .metrics
                    .unit
                    .to_string(),
            ),
            Metric::Fixed(nearest_rank(&kups, 50.0), 1),
            Metric::Fixed(nearest_rank(&kups, 90.0), 1),
            Metric::Fixed(nearest_rank(&kups, 99.0), 1),
            Metric::Count(nearest_rank(&cpu, 50.0) as u64),
            Metric::Count(nearest_rank(&cpu, 99.0) as u64),
        ]);
    }
    percentiles.comment("nearest-rank percentiles over per-tenant simulated throughput");

    // Section 2 — per-DDIO-mode breakdown, figure-experiment order.
    let mut modes = ScenarioReport::new(vec![
        "config",
        "tenants",
        "units",
        "llc_miss_rate",
        "dram_lines",
        "defense_evals",
    ]);
    for mode in ["NoDDIO", "DDIO", "Adaptive"] {
        let mut tenants = 0u64;
        let mut units = 0u64;
        let mut llc = CacheStats::new();
        let mut dram_lines = 0u64;
        for o in outcomes.iter().filter(|o| o.metrics.mode == mode) {
            tenants += 1;
            units += o.metrics.units;
            llc.merge(o.metrics.llc);
            dram_lines += o.metrics.dram_lines;
        }
        if tenants == 0 {
            continue;
        }
        modes.push_row(vec![
            Metric::Text(mode.to_string()),
            Metric::Count(tenants),
            Metric::Count(units),
            Metric::Fixed(llc.miss_rate(), 3),
            Metric::Count(dram_lines),
            Metric::Count(llc.defense_evals),
        ]);
    }

    // Section 3 — fleet aggregate: total work and summed line rate.
    let mut total_units = 0u64;
    let mut kups_sum = 0.0f64;
    let mut packets_per_sec = 0.0f64;
    for o in outcomes {
        total_units += o.metrics.units;
        kups_sum += o.metrics.units_per_second() / 1_000.0;
        if matches!(o.metrics.unit, "packets" | "frames") {
            packets_per_sec += o.metrics.units_per_second();
        }
    }
    let mut aggregate = ScenarioReport::new(vec![
        "tenants",
        "total_units",
        "aggregate_kunits_per_sec",
        "aggregate_packets_per_sec",
    ]);
    aggregate.push_row(vec![
        Metric::Count(outcomes.len() as u64),
        Metric::Count(total_units),
        Metric::Fixed(kups_sum, 1),
        Metric::Fixed(packets_per_sec, 0),
    ]);
    aggregate.comment(format!(
        "fleet of {} tenants over {} templates, seed {}",
        cfg.tenants,
        cfg.templates.len(),
        cfg.seed
    ));
    aggregate.comment(
        "aggregate line rate sums per-tenant simulated throughput; \
         packets_per_sec counts packet- and frame-unit tenants only",
    );

    FleetReport {
        sections: vec![
            FleetSection {
                title: "per-template percentiles",
                report: percentiles,
            },
            FleetSection {
                title: "per-mode breakdown",
                report: modes,
            },
            FleetSection {
                title: "aggregate",
                report: aggregate,
            },
        ],
    }
}

/// Runs the fleet and merges: the `repro fleet` entry point.
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    merge(cfg, &run_fleet_outcomes(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_fleet(tenants: usize, threads: usize) -> FleetConfig {
        // Shrunk units so the whole suite stays fast in debug builds.
        let mut cfg = FleetConfig::standard(tenants, 2020, Scale::Quick);
        cfg.threads = threads;
        for t in &mut cfg.templates {
            t.spec = t.spec.clone().with_units(24, 24);
        }
        cfg
    }

    #[test]
    fn outcomes_come_back_in_tenant_index_order() {
        let cfg = tiny_fleet(13, 3);
        let outcomes = run_fleet_outcomes(&cfg);
        assert_eq!(outcomes.len(), 13);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.tenant, i);
        }
    }

    #[test]
    fn assignment_follows_the_weighted_cycle() {
        let cfg = tiny_fleet(14, 1);
        let cycle = cfg.assignment_cycle();
        assert_eq!(cycle.len(), 16, "standard weights sum to 16");
        let outcomes = run_fleet_outcomes(&cfg);
        for o in &outcomes {
            assert_eq!(o.template, cycle[o.tenant % cycle.len()]);
        }
        // Weight 3 template appears 3x as often as weight 1 per cycle.
        assert_eq!(cycle.iter().filter(|&&t| t == 0).count(), 3);
        assert_eq!(cycle.iter().filter(|&&t| t == 1).count(), 1);
    }

    #[test]
    fn tenants_get_distinct_seed_derived_results() {
        // Two tenants of the same template must not be clones: their
        // derived seeds differ, so their machines differ. Standard
        // cycle slots 6 and 7 are both nginx/DDIO, whose random
        // working-set reads make the metrics seed-sensitive (tiny
        // tcp-recv runs are legitimately seed-insensitive in aggregate).
        let cfg = tiny_fleet(8, 1);
        let outcomes = run_fleet_outcomes(&cfg);
        assert_eq!(outcomes[6].template, outcomes[7].template);
        assert_eq!(outcomes[6].metrics.unit, "requests");
        assert_ne!(
            outcomes[6].metrics, outcomes[7].metrics,
            "distinct tenant seeds must yield distinct measurements"
        );
    }

    #[test]
    fn merge_is_a_pure_function_of_outcomes() {
        let cfg = tiny_fleet(12, 2);
        let outcomes = run_fleet_outcomes(&cfg);
        let a = merge(&cfg, &outcomes).render();
        let b = merge(&cfg, &outcomes).render();
        assert_eq!(a, b);
        assert!(a.contains("# == per-template percentiles =="));
        assert!(a.contains("# == per-mode breakdown =="));
        assert!(a.contains("# == aggregate =="));
        assert!(a.contains("tcp-recv/DDIO"));
        assert!(a.contains("NoDDIO"), "standard mix covers all modes");
        assert!(a.contains("Adaptive"));
    }

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(nearest_rank(&v, 50.0), 50.0);
        assert_eq!(nearest_rank(&v, 90.0), 90.0);
        assert_eq!(nearest_rank(&v, 99.0), 99.0);
        assert_eq!(nearest_rank(&v, 100.0), 100.0);
        let one = [7.0];
        assert_eq!(nearest_rank(&one, 50.0), 7.0);
        assert_eq!(nearest_rank(&one, 99.0), 7.0);
    }
}
