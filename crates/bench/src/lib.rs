//! # pc-bench — reproduction harness
//!
//! [`experiments`] hosts one function per paper table/figure, shared by
//! the `repro` binary (full printouts) and the Criterion benches
//! (scaled-down timed runs). Each function returns plain row structs so
//! callers decide how to render them.
//!
//! * [`cache_bench`] — the LLC hot-path microbenchmark behind
//!   `repro bench-cache` (four engines × nine trace/mode cases →
//!   `BENCH_cache.json`; schema documented in this crate's README).
//! * [`faultmatrix`] — the fault-injection kill matrix behind
//!   `repro fault-matrix`: every `pc_cache::fault` catalog site ×
//!   seed armed against four detector suites, failing on survivors.
//! * [`fleet`] — fleet orchestration behind `repro fleet`: N tenants
//!   instantiated from weighted scenario templates, fanned out
//!   shared-nothing over workers, merged in tenant-index order into
//!   fleet-level statistics (byte-identical at any thread count).
//! * [`par`] — facade over [`pc_par`], the workspace-wide deterministic
//!   parallelism substrate (`PC_BENCH_THREADS` governs every parallel
//!   path from one place).
//! * [`scenario`] — the scenario registry: named end-to-end workloads
//!   (`repro scenario <name>`) unifying the `pc-net` traffic generators
//!   and `pc-defense` measurement workloads on the op-stream pipeline.
//!
//! The `repro` CLI (subcommands, flags, environment variables, output
//! discipline) is documented in `crates/bench/README.md`; the
//! subcommand → paper-figure map lives in the top-level
//! `ARCHITECTURE.md`.
//!
//! Every experiment is deterministic: for a fixed `--seed`, stdout is
//! byte-identical at any worker count — CI diffs a sequential against
//! a threaded `repro all` run to enforce it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache_bench;
pub mod experiments;
pub mod faultmatrix;
pub mod fleet;
pub mod par;
pub mod scenario;
