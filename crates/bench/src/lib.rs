//! # pc-bench — reproduction harness
//!
//! [`experiments`] hosts one function per paper table/figure, shared by
//! the `repro` binary (full printouts) and the Criterion benches
//! (scaled-down timed runs). Each function returns plain row structs so
//! callers decide how to render them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache_bench;
pub mod experiments;
pub mod par;
