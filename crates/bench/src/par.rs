//! Thread-parallel execution of independent experiment repetitions.
//!
//! Every experiment in [`crate::experiments`] is a pure function of its
//! seed: repetitions share no state, so they can run on separate OS
//! threads without changing any result. [`parallel_map`] preserves input
//! order (item `i`'s result is at index `i`), so a parallelized
//! experiment prints byte-identical output to the sequential version —
//! determinism is per-run seeds plus ordered collection, not luck.

use std::num::NonZeroUsize;

/// Upper bound on worker threads (`PC_BENCH_THREADS` overrides; `1`
/// forces sequential execution, e.g. for debugging).
fn max_threads() -> usize {
    if let Ok(v) = std::env::var("PC_BENCH_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
}

/// Maps `f` over `items` on up to [`max_threads`] worker threads,
/// returning results in input order.
///
/// Work is distributed round-robin (worker `w` takes items `w`,
/// `w + n`, ...), which keeps the longest-running repetitions of a
/// typical homogeneous batch spread across workers. Panics in `f`
/// propagate to the caller.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = max_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let mut buckets: Vec<Vec<(usize, T)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % threads].push((i, item));
    }
    let f_ref = &f;
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(i, item)| (i, f_ref(item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("experiment worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    out.into_iter()
        .map(|r| r.expect("every index filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect::<Vec<i64>>(), |x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<i64>>());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(parallel_map(vec![41], |x| x + 1), vec![42]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn matches_sequential_for_seeded_work() {
        // The property the experiments rely on: parallel order ==
        // sequential order for seed-dependent work.
        let work = |seed: u64| {
            use rand::rngs::SmallRng;
            use rand::{Rng, SeedableRng};
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..1000)
                .map(|_| rng.gen_range(0..1_000_000u64))
                .sum::<u64>()
        };
        let seeds: Vec<u64> = (0..16).collect();
        let sequential: Vec<u64> = seeds.iter().map(|&s| work(s)).collect();
        let parallel = parallel_map(seeds, work);
        assert_eq!(parallel, sequential);
    }
}
