//! Thread-parallel execution of independent experiment repetitions.
//!
//! This module is a facade over [`pc_par`], the workspace-wide parallel
//! substrate (the sharded LLC engine in `pc-cache` and the fingerprint
//! capture loop in `pc-core` use the same primitives, so
//! `PC_BENCH_THREADS` governs every parallel path from one place).
//!
//! Every experiment in [`crate::experiments`] is a pure function of its
//! seed: repetitions share no state, so they can run on separate OS
//! threads without changing any result. [`parallel_map`] preserves input
//! order (item `i`'s result is at index `i`), so a parallelized
//! experiment prints byte-identical output to the sequential version —
//! determinism is per-run seeds plus ordered collection, not luck.

pub use pc_par::{
    max_threads, mix_seed, parallel_map, parallel_map_scratch_threads, parallel_map_threads,
    stream_seed, SeedDomain,
};
