//! The scenario registry: every workload class behind one composable
//! spec layer.
//!
//! A [`ScenarioSpec`] is a named, seeded, scale-aware end-to-end
//! workload description — mix weights, arrival process, duration, DDIO
//! mode sweep — driven through the op-stream pipeline (batched driver
//! receive, fused monitor primes, sharded trace replay). The registry
//! unifies what used to be two separate worlds — the `pc-net` traffic
//! generators (web traces, line-rate models, covert symbol streams)
//! and the `pc-defense` measurement workloads (nginx, TCP receive,
//! file copy) — behind `repro scenario <name>`, and the same specs are
//! what the fleet driver (`crate::fleet`) composes into tenant
//! templates: re-seeded, re-scaled, pinned to one DDIO mode.
//!
//! Reports are data first: [`ScenarioSpec::report`] returns a
//! [`ScenarioReport`] of typed metric rows plus `#` commentary, and
//! [`ScenarioReport::render`] is the *single* place that turns it into
//! text. `repro scenario <name>` prints the rendering; the fleet
//! merges the data. The [`Scenario`] trait survives as a thin adapter
//! over the spec so older call sites keep compiling.
//!
//! Scenario reports obey the same output discipline as the figure
//! experiments: deterministic for a fixed `(scale, seed)` at any
//! worker count (the CI determinism job byte-diffs a scenario smoke at
//! 1 thread vs 4), plain CSV-style rows, commentary on `#` lines.

use crate::experiments::Scale;
use pc_cache::{CacheStats, Cycles, DdioMode, SliceSet};
use pc_core::covert::{lfsr_symbols, run_channel, ChannelConfig, Encoding};
use pc_core::fingerprint::{evaluate_closed_world, CaptureConfig};
use pc_core::sequencer::{ground_truth_sequence, recover_window, SequenceQuality, SequencerConfig};
use pc_core::{TestBed, TestBedConfig};
use pc_defense::workloads::{file_copy, nginx, tcp_recv, NginxConfig, Workbench, WorkloadMetrics};
use pc_net::{
    ArrivalSchedule, ClosedWorld, ConstantSize, EthernetFrame, FlowCycle, LineRate, ScheduledFrame,
    TraceReplay, UniformSizes,
};
use pc_probe::AddressPool;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::fmt::Write as _;
use std::sync::OnceLock;

/// One registered end-to-end workload — kept as a thin adapter over
/// [`ScenarioSpec`] (which implements it) so call sites written
/// against the trait keep compiling.
pub trait Scenario: Sync {
    /// CLI name (`repro scenario <name>`).
    fn name(&self) -> &'static str;

    /// One-line description for `repro scenario list`.
    fn summary(&self) -> &'static str;

    /// Runs the scenario and returns its rendered report. Must be
    /// deterministic for a fixed `(scale, seed)` at any thread count.
    fn run(&self, scale: Scale, seed: u64) -> String;
}

/// One typed cell of a scenario report row.
///
/// The variants mirror exactly the format specifiers the reports have
/// always used, so rendering a typed row is byte-identical to the
/// `writeln!` lines it replaced: [`Metric::Count`] is `{}` on an
/// integer, [`Metric::Fixed`]`(v, p)` is `{v:.p$}`.
#[derive(Clone, PartialEq, Debug)]
pub enum Metric {
    /// A label cell (config names, link names).
    Text(String),
    /// An integer cell.
    Count(u64),
    /// A float cell printed with a fixed number of decimals.
    Fixed(f64, usize),
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Metric::Text(s) => f.write_str(s),
            Metric::Count(n) => write!(f, "{n}"),
            Metric::Fixed(v, prec) => write!(f, "{:.*}", prec, v),
        }
    }
}

/// A scenario's result as data: a CSV header, typed rows, and trailing
/// `#` commentary. Fleet merging aggregates the rows; the CLI prints
/// [`ScenarioReport::render`]. One rendering function for the whole
/// workspace keeps the golden-snapshot contract in a single place.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ScenarioReport {
    /// Column names, rendered as one comma-joined header line.
    pub columns: Vec<&'static str>,
    /// Data rows; each must have `columns.len()` cells.
    pub rows: Vec<Vec<Metric>>,
    /// Commentary lines, rendered after the rows with a `# ` prefix
    /// (without the prefix here).
    pub comments: Vec<String>,
}

impl ScenarioReport {
    /// A report with the given header and no rows yet.
    pub fn new(columns: Vec<&'static str>) -> Self {
        ScenarioReport {
            columns,
            rows: Vec::new(),
            comments: Vec::new(),
        }
    }

    /// Appends one data row.
    pub fn push_row(&mut self, row: Vec<Metric>) {
        debug_assert_eq!(row.len(), self.columns.len(), "row width matches header");
        self.rows.push(row);
    }

    /// Appends one commentary line (the `# ` prefix is added by
    /// [`ScenarioReport::render`]).
    pub fn comment(&mut self, line: impl Into<String>) {
        self.comments.push(line.into());
    }

    /// The one renderer: header, rows, then `#` comments — newline
    /// terminated, byte-compatible with the `tests/golden/` snapshots.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.columns.is_empty() {
            let _ = writeln!(out, "{}", self.columns.join(","));
        }
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Metric::to_string).collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        for c in &self.comments {
            let _ = writeln!(out, "# {c}");
        }
        out
    }
}

/// Which workload family a spec drives (the part that is code, not
/// parameters).
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
enum SpecKind {
    Chasing,
    Fingerprint,
    WebMix,
    LineRateSweep,
    CovertSweep,
    Nginx,
    TcpRecv,
    FileCopy,
    KvStore,
    DnsFlood,
    LargeTransfer,
    CoTenancy,
}

/// Work units per scale, in the scenario's own unit (samples, trials,
/// rounds, frames, symbols, requests, packets, megabytes).
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct Duration {
    /// Units at [`Scale::Quick`] (CI smoke).
    pub quick: u64,
    /// Units at [`Scale::Full`] (paper scale).
    pub full: u64,
}

impl Duration {
    fn pick(self, scale: Scale) -> u64 {
        scale.pick(self.quick, self.full)
    }
}

/// The arrival process a spec offers the NIC, where the scenario
/// admits one (chasing, web-mix). Scenarios that derive their rate
/// from the wire (line-rate-sweep) or sweep it (covert-sweep) carry
/// `fps: 0` meaning "scenario-defined".
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct Arrival {
    /// Offered frames per second (0 = scenario-defined).
    pub fps: u64,
    /// Inter-arrival jitter fraction in `[0, 1)`.
    pub jitter: f64,
}

/// Which DDIO modes a spec's report sweeps.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum ModeSweep {
    /// All three reporting modes, in the figure-experiment order
    /// (NoDDIO, DDIO, Adaptive) — the registry default.
    All,
    /// One pinned mode — how fleet tenant templates fix a machine
    /// configuration per tenant.
    One(&'static str, DdioMode),
}

impl ModeSweep {
    /// The `(reporting name, mode)` pairs this sweep covers, in
    /// deterministic order.
    pub fn entries(&self) -> Vec<(&'static str, DdioMode)> {
        match *self {
            ModeSweep::All => ddio_modes().to_vec(),
            ModeSweep::One(name, mode) => vec![(name, mode)],
        }
    }

    /// The single mode a tenant runs under: the pinned pair, or the
    /// paper's DDIO baseline when the sweep was never narrowed.
    fn tenant_mode(&self) -> (&'static str, DdioMode) {
        match *self {
            ModeSweep::All => ("DDIO", DdioMode::enabled()),
            ModeSweep::One(name, mode) => (name, mode),
        }
    }
}

/// A composable scenario description: everything `repro scenario
/// <name>` and the fleet driver need to run one workload — by value,
/// re-seedable, re-scalable.
///
/// Registry specs carry the historical parameters exactly, so their
/// rendered reports are byte-identical to the pre-spec scenario
/// structs (the golden snapshots pin this). The builder methods
/// ([`ScenarioSpec::with_units`], [`ScenarioSpec::with_mode`],
/// [`ScenarioSpec::with_mix`]) derive variants for fleet tenant
/// templates without touching the registry's copies.
#[derive(Clone, PartialEq, Debug)]
pub struct ScenarioSpec {
    name: &'static str,
    summary: &'static str,
    kind: SpecKind,
    duration: Duration,
    arrival: Arrival,
    /// Per-site weights for the web-mix trace (empty = every site
    /// weight 1, the historical behaviour).
    mix: Vec<u32>,
    modes: ModeSweep,
    /// Default rx queue count for the spec's TestBeds (overridable at
    /// run time via `PC_RSS_QUEUES` / `repro --queues`). The pre-RSS
    /// scenarios carry 1 and stay byte-identical to their single-ring
    /// goldens; the multi-queue scenarios default to 4.
    queues: usize,
}

impl ScenarioSpec {
    /// CLI name (`repro scenario <name>`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description for `repro scenario list`.
    pub fn summary(&self) -> &'static str {
        self.summary
    }

    /// Work units per scale.
    pub fn duration(&self) -> Duration {
        self.duration
    }

    /// The offered arrival process (where the scenario admits one).
    pub fn arrival(&self) -> Arrival {
        self.arrival
    }

    /// The DDIO modes the report sweeps.
    pub fn modes(&self) -> &ModeSweep {
        &self.modes
    }

    /// Default rx queue count of the spec's simulated NIC.
    pub fn queues(&self) -> usize {
        self.queues
    }

    /// The queue count this run's TestBeds actually use: the
    /// `PC_RSS_QUEUES` override when set (the CI determinism legs pin
    /// it), else the spec default.
    fn bed_queues(&self) -> usize {
        pc_core::rss_queues_from_env().unwrap_or(self.queues)
    }

    /// Replaces the per-scale work units (builder style).
    pub fn with_units(mut self, quick: u64, full: u64) -> Self {
        self.duration = Duration { quick, full };
        self
    }

    /// Pins the spec to a single DDIO mode under the given reporting
    /// name (builder style) — report rows and tenant runs then cover
    /// only that mode.
    pub fn with_mode(mut self, name: &'static str, mode: DdioMode) -> Self {
        self.modes = ModeSweep::One(name, mode);
        self
    }

    /// Replaces the web-mix per-site weights (builder style). Sites
    /// beyond the slice keep weight 1; ignored by other scenarios.
    pub fn with_mix(mut self, weights: &[u32]) -> Self {
        self.mix = weights.to_vec();
        self
    }

    /// Weight of site `i` in the web-mix trace.
    fn site_weight(&self, i: usize) -> u32 {
        self.mix.get(i).copied().unwrap_or(1)
    }

    /// Runs the scenario and renders its report — the CLI entry point.
    /// Deterministic for a fixed `(scale, seed)` at any thread count.
    pub fn run(&self, scale: Scale, seed: u64) -> String {
        self.report(scale, seed).render()
    }

    /// Runs the scenario and returns its report as data.
    pub fn report(&self, scale: Scale, seed: u64) -> ScenarioReport {
        match self.kind {
            SpecKind::Chasing => self.report_chasing(scale, seed),
            SpecKind::Fingerprint => self.report_fingerprint(scale, seed),
            SpecKind::WebMix => self.report_web_mix(scale, seed),
            SpecKind::LineRateSweep => self.report_line_rate(scale, seed),
            SpecKind::CovertSweep => self.report_covert(scale, seed),
            SpecKind::Nginx | SpecKind::TcpRecv | SpecKind::FileCopy => {
                self.report_workload(scale, seed)
            }
            SpecKind::KvStore | SpecKind::DnsFlood | SpecKind::LargeTransfer => {
                self.report_flow_traffic(scale, seed)
            }
            SpecKind::CoTenancy => self.report_co_tenancy(scale, seed),
        }
    }

    /// Packet Chasing's ring-order recovery (the paper's §IV attack)
    /// at scenario scale: one monitored window, quality vs truth.
    fn report_chasing(&self, scale: Scale, seed: u64) -> ScenarioReport {
        let monitored = 16usize;
        let samples = self.duration.pick(scale) as usize;
        let mut tb = TestBed::new(TestBedConfig::paper_baseline().with_seed(seed));
        let geom = tb.hierarchy().llc().geometry();
        let targets: Vec<SliceSet> = pc_core::footprint::page_aligned_targets(&geom)
            .into_iter()
            .take(monitored)
            .collect();
        let pool = AddressPool::allocate(seed ^ 0x5ce, 12288);
        let mut rng = SmallRng::seed_from_u64(seed + 17);
        let frames = ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(self.arrival.fps)
            .jitter(self.arrival.jitter)
            .generate(
                &mut ConstantSize::blocks(2),
                tb.now() + 1,
                samples * 4,
                &mut rng,
            );
        tb.enqueue(frames);
        let cfg = SequencerConfig {
            samples,
            interval: 33_000,
            ..SequencerConfig::paper_defaults()
        };
        let t0 = tb.now();
        let recovered = recover_window(&mut tb, &pool, &targets, &cfg);
        let elapsed = tb.now() - t0;
        let truth = ground_truth_sequence(tb.hierarchy().llc(), tb.driver(), &targets);
        let q = SequenceQuality::evaluate(&recovered, &truth, elapsed);
        let mut report = ScenarioReport::new(vec![
            "sets",
            "samples",
            "levenshtein",
            "error_rate_pct",
            "recovered_len",
            "truth_len",
        ]);
        report.push_row(vec![
            Metric::Count(monitored as u64),
            Metric::Count(samples as u64),
            Metric::Count(q.levenshtein as u64),
            Metric::Fixed(q.error_rate * 100.0, 1),
            Metric::Count(q.recovered_len as u64),
            Metric::Count(q.truth_len as u64),
        ]);
        report.comment("paper: 9.8% error over 32 sets at full scale");
        report
    }

    /// §V closed-world fingerprinting at scenario scale (DDIO config
    /// only — the figure experiment covers the full comparison).
    fn report_fingerprint(&self, scale: Scale, seed: u64) -> ScenarioReport {
        let training = scale.pick(3, 8);
        let trials = self.duration.pick(scale) as usize;
        let sites = ClosedWorld::paper_five_sites();
        let acc = evaluate_closed_world(
            TestBedConfig::paper_baseline(),
            sites.sites(),
            training,
            trials,
            0.25,
            &CaptureConfig::paper_defaults(),
            seed,
        );
        let mut report = ScenarioReport::new(vec!["sites", "training", "trials", "accuracy_pct"]);
        report.push_row(vec![
            Metric::Count(sites.sites().len() as u64),
            Metric::Count(training as u64),
            Metric::Count(acc.trials as u64),
            Metric::Fixed(acc.accuracy * 100.0, 1),
        ]);
        report.comment("paper: 89.7% with DDIO at 1000 trials");
        report
    }

    /// The flattened web-mix size trace for `rounds` rounds over the
    /// closed-world sites at this spec's mix weights. One definition
    /// shared by the report sweep and the tenant run.
    fn web_mix_sizes(&self, rounds: u64, seed: u64) -> Vec<u32> {
        let sites = ClosedWorld::paper_five_sites();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x3eb);
        // Round-robin page loads over the sites, flattened to one size
        // trace; noise keeps the loads realistically unequal.
        let mut sizes = Vec::new();
        for _round in 0..rounds {
            for (i, profile) in sites.sites().iter().enumerate() {
                for _ in 0..self.site_weight(i) {
                    for frame in profile.page_load(0.1, &mut rng) {
                        sizes.push(frame.bytes());
                    }
                }
            }
        }
        sizes
    }

    /// Replays the web-mix trace on one machine and snapshots it.
    fn web_mix_drive(
        &self,
        tb: &mut TestBed,
        sizes: Vec<u32>,
        seed: u64,
    ) -> (u64, Cycles, CacheStats, u64) {
        let frames = sizes.len();
        let mut replay = TraceReplay::new(sizes);
        let mut srng = SmallRng::seed_from_u64(seed + 5);
        let schedule = ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(self.arrival.fps)
            .jitter(self.arrival.jitter)
            .generate(&mut replay, tb.now() + 1, frames, &mut srng);
        tb.enqueue(schedule);
        let t0 = tb.now();
        tb.drain();
        let elapsed = tb.now() - t0;
        let stats = tb.hierarchy().llc().stats();
        let mem = tb.hierarchy().memory_stats();
        (frames as u64, elapsed, stats, mem.total())
    }

    /// A mixed web-trace workload: page loads from all five
    /// closed-world sites interleaved into one arrival stream — the
    /// "many tenants, one NIC" shape none of the paper figures
    /// exercises on its own.
    fn report_web_mix(&self, scale: Scale, seed: u64) -> ScenarioReport {
        let rounds = self.duration.pick(scale);
        let sites = ClosedWorld::paper_five_sites();
        let sizes = self.web_mix_sizes(rounds, seed);
        let mut report = ScenarioReport::new(vec![
            "config",
            "frames",
            "cycles_per_frame",
            "llc_miss_rate",
            "dram_lines",
        ]);
        // One bed reused across the mode sweep — TestBed::reset pins
        // reuse to be byte-identical to a fresh build, and the golden
        // snapshot pins this loop.
        let mut scratch = TenantScratch::new();
        for (name, mode) in self.modes.entries() {
            let tb = scratch.bed(TestBedConfig {
                ddio: mode,
                ..TestBedConfig::paper_baseline().with_seed(seed)
            });
            let (frames, elapsed, stats, dram_lines) = self.web_mix_drive(tb, sizes.clone(), seed);
            report.push_row(vec![
                Metric::Text(name.to_string()),
                Metric::Count(frames),
                Metric::Count(elapsed / frames),
                Metric::Fixed(stats.miss_rate(), 3),
                Metric::Count(dram_lines),
            ]);
        }
        report.comment(format!(
            "{} sites x {rounds} rounds, bimodal page-load mix",
            sites.sites().len()
        ));
        report
    }

    /// Line-rate sweep: the NIC at the wire's maximum frame rate for
    /// each size × link speed, measuring the receive path end to end.
    fn report_line_rate(&self, scale: Scale, seed: u64) -> ScenarioReport {
        let count = self.duration.pick(scale) as usize;
        let mut combos = Vec::new();
        for (link_name, link) in [
            ("1GbE", LineRate::gigabit()),
            ("10GbE", LineRate::ten_gigabit()),
        ] {
            for bytes in [64u32, 256, 512, 1514] {
                combos.push((link_name, link, bytes));
            }
        }
        // Independent machines per combo: perfect ordered fan-out.
        let rows = crate::par::parallel_map(combos, |(link_name, link, bytes)| {
            let mut tb = TestBed::new(TestBedConfig::paper_baseline().with_seed(seed));
            let fps = link.max_frames_per_second(bytes);
            let mut rng = SmallRng::seed_from_u64(seed ^ u64::from(bytes));
            let frames = ArrivalSchedule::new(link).frames_per_second(fps).generate(
                &mut ConstantSize::new(pc_net::EthernetFrame::clamped(bytes)),
                tb.now() + 1,
                count,
                &mut rng,
            );
            tb.enqueue(frames);
            let t0 = tb.now();
            tb.drain();
            let elapsed = tb.now() - t0;
            let stats = tb.hierarchy().llc().stats();
            (
                link_name,
                bytes,
                fps,
                elapsed / count as u64,
                stats.miss_rate(),
            )
        });
        let mut report = ScenarioReport::new(vec![
            "link",
            "frame_bytes",
            "wire_fps",
            "cycles_per_frame",
            "llc_miss_rate",
        ]);
        for (link, bytes, fps, cpf, miss) in rows {
            report.push_row(vec![
                Metric::Text(link.to_string()),
                Metric::Count(u64::from(bytes)),
                Metric::Count(fps),
                Metric::Count(cpf),
                Metric::Fixed(miss, 3),
            ]);
        }
        report.comment("paper cites ~500k fps for ~192-byte frames on 1GbE");
        report
    }

    /// Covert-channel bandwidth sweep: offered packet rate vs achieved
    /// bandwidth and error (the single-buffer channel of Figure 11,
    /// swept along the rate axis instead of the probe axis).
    fn report_covert(&self, scale: Scale, seed: u64) -> ScenarioReport {
        let symbols_n = self.duration.pick(scale) as usize;
        let rows = crate::par::parallel_map(vec![100_000u64, 200_000, 400_000, 500_000], |rate| {
            let mut tb = TestBed::new(TestBedConfig::paper_baseline().with_seed(seed));
            let pool = AddressPool::allocate(seed ^ 0xc0e7, 12288);
            let symbols = lfsr_symbols(Encoding::Ternary, symbols_n, 0x2fd1);
            let cfg = ChannelConfig {
                encoding: Encoding::Ternary,
                monitored_buffers: 1,
                packet_rate_fps: rate,
                probe_rate_hz: 28_000,
                window: 3,
                background_noise_aps: 100_000,
            };
            let report = run_channel(&mut tb, &pool, &symbols, &cfg);
            (rate, report.bandwidth_bps, report.error_rate)
        });
        let mut report =
            ScenarioReport::new(vec!["packet_rate_fps", "bandwidth_bps", "error_rate_pct"]);
        for (rate, bw, err) in rows {
            report.push_row(vec![
                Metric::Count(rate),
                Metric::Fixed(bw, 0),
                Metric::Fixed(err * 100.0, 1),
            ]);
        }
        report.comment("paper: ~3095 bps ternary at line rate, 28 kHz probe");
        report
    }

    /// The §VII-a defense workloads (nginx, tcp-recv, file-copy): one
    /// row per swept DDIO mode, on one reused Workbench.
    fn report_workload(&self, scale: Scale, seed: u64) -> ScenarioReport {
        let units = self.duration.pick(scale);
        let mut report = ScenarioReport::new(vec![
            "config",
            "units",
            "kunits_per_sec",
            "llc_miss_rate",
            "dram_lines",
        ]);
        let mut scratch = TenantScratch::new();
        for (name, mode) in self.modes.entries() {
            let bench = scratch.bench(mode, seed);
            let m = self.drive_workload(bench, units);
            report.push_row(workload_row(name, &m));
        }
        report
    }

    /// Runs this spec's defense workload on a prepared bench.
    fn drive_workload(&self, bench: &mut Workbench, units: u64) -> WorkloadMetrics {
        match self.kind {
            SpecKind::Nginx => {
                let cfg = NginxConfig::paper_defaults();
                nginx(bench, &cfg, units / 5); // warm-up
                nginx(bench, &cfg, units)
            }
            SpecKind::TcpRecv => tcp_recv(bench, units),
            SpecKind::FileCopy => file_copy(bench, units),
            _ => unreachable!("not a defense workload"),
        }
    }

    /// The arrival schedule for the flow-steered traffic scenarios:
    /// `count` frames whose sizes and flow populations are the
    /// scenario's shape, cycled round-robin over a synthetic client
    /// population so RSS spreads them across rx queues. One definition
    /// shared by the report sweep, the tenant run and the co-tenancy
    /// victim stream.
    fn flow_schedule(&self, count: usize, start: Cycles, seed: u64) -> Vec<ScheduledFrame> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xf7_0b);
        let sched = ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(self.arrival.fps)
            .jitter(self.arrival.jitter);
        match self.kind {
            SpecKind::KvStore => {
                // 80/20 GET/SET: small request/hit frames vs fatter
                // value writes, pre-drawn into a replayable trace.
                let mut trng = SmallRng::seed_from_u64(seed ^ 0x6e7);
                let sizes = (0..count)
                    .map(|_| {
                        if trng.gen::<f64>() < 0.8 {
                            trng.gen_range(64..=160)
                        } else {
                            trng.gen_range(320..=1024)
                        }
                    })
                    .collect();
                let mut gen = FlowCycle::clients(TraceReplay::new(sizes), 16, 6379);
                sched.generate(&mut gen, start, count, &mut rng)
            }
            SpecKind::DnsFlood => {
                let mut gen = FlowCycle::clients(UniformSizes::new(64, 96), 64, 53);
                sched.generate(&mut gen, start, count, &mut rng)
            }
            SpecKind::LargeTransfer => {
                let mut gen =
                    FlowCycle::clients(ConstantSize::new(EthernetFrame::mtu_sized()), 4, 443);
                sched.generate(&mut gen, start, count, &mut rng)
            }
            SpecKind::CoTenancy => {
                // The victim: the chasing scenario's frame shape, but
                // owned by a client population RSS spreads over queues.
                let mut gen = FlowCycle::clients(ConstantSize::blocks(2), 12, 80);
                sched.generate(&mut gen, start, count, &mut rng)
            }
            _ => unreachable!("not a flow-traffic scenario"),
        }
    }

    /// Replays this spec's flow schedule on one machine and snapshots
    /// it — the multi-queue sibling of [`ScenarioSpec::web_mix_drive`].
    fn flow_drive(
        &self,
        tb: &mut TestBed,
        frames: usize,
        seed: u64,
    ) -> (u64, Cycles, CacheStats, u64) {
        let schedule = self.flow_schedule(frames, tb.now() + 1, seed);
        tb.enqueue(schedule);
        let t0 = tb.now();
        tb.drain();
        let elapsed = tb.now() - t0;
        let stats = tb.hierarchy().llc().stats();
        let mem = tb.hierarchy().memory_stats();
        (frames as u64, elapsed, stats, mem.total())
    }

    /// The flow-steered traffic scenarios (kv-store, dns-flood,
    /// large-transfer): one row per swept DDIO mode on a multi-queue
    /// bed, web-mix-shaped columns plus the queue count.
    fn report_flow_traffic(&self, scale: Scale, seed: u64) -> ScenarioReport {
        let frames_n = self.duration.pick(scale) as usize;
        let queues = self.bed_queues();
        let mut report = ScenarioReport::new(vec![
            "config",
            "queues",
            "frames",
            "cycles_per_frame",
            "llc_miss_rate",
            "dram_lines",
        ]);
        let mut scratch = TenantScratch::new();
        for (name, mode) in self.modes.entries() {
            let tb = scratch.bed(TestBedConfig {
                ddio: mode,
                ..TestBedConfig::paper_baseline()
                    .with_seed(seed)
                    .with_queues(queues)
            });
            let (frames, elapsed, stats, dram_lines) = self.flow_drive(tb, frames_n, seed);
            report.push_row(vec![
                Metric::Text(name.to_string()),
                Metric::Count(queues as u64),
                Metric::Count(frames),
                Metric::Count(elapsed / frames),
                Metric::Fixed(stats.miss_rate(), 3),
                Metric::Count(dram_lines),
            ]);
        }
        report.comment(format!("{queues} rx queues, Toeplitz flow steering"));
        report
    }

    /// Attacker–victim co-tenancy: the ring-order recovery of the
    /// chasing scenario, but the victim's flows are RSS-spread across
    /// rx queues while the attacker monitors queue 0's ring. One row
    /// per queue count (single-ring baseline, then the spec's
    /// multi-queue bed) — steering dilutes the attacker's view, which
    /// the error-rate column quantifies.
    fn report_co_tenancy(&self, scale: Scale, seed: u64) -> ScenarioReport {
        let monitored = 16usize;
        let samples = self.duration.pick(scale) as usize;
        let mut counts = vec![1usize];
        if self.bed_queues() > 1 {
            counts.push(self.bed_queues());
        }
        let mut report = ScenarioReport::new(vec![
            "queues",
            "samples",
            "q0_frames",
            "levenshtein",
            "error_rate_pct",
        ]);
        for queues in counts {
            let mut tb = TestBed::new(
                TestBedConfig::paper_baseline()
                    .with_seed(seed)
                    .with_queues(queues),
            );
            let geom = tb.hierarchy().llc().geometry();
            let targets: Vec<SliceSet> = pc_core::footprint::page_aligned_targets(&geom)
                .into_iter()
                .take(monitored)
                .collect();
            let pool = AddressPool::allocate(seed ^ 0x5ce, 12288);
            let frames = self.flow_schedule(samples * 4, tb.now() + 1, seed);
            tb.enqueue(frames);
            let cfg = SequencerConfig {
                samples,
                interval: 33_000,
                ..SequencerConfig::paper_defaults()
            };
            let t0 = tb.now();
            let recovered = recover_window(&mut tb, &pool, &targets, &cfg);
            let elapsed = tb.now() - t0;
            let truth = ground_truth_sequence(tb.hierarchy().llc(), tb.driver(), &targets);
            let q = SequenceQuality::evaluate(&recovered, &truth, elapsed);
            report.push_row(vec![
                Metric::Count(queues as u64),
                Metric::Count(samples as u64),
                Metric::Count(tb.queue_driver(0).packets_received()),
                Metric::Count(q.levenshtein as u64),
                Metric::Fixed(q.error_rate * 100.0, 1),
            ]);
        }
        report.comment("attacker monitors queue 0; RSS spreads the victim's flows");
        report
    }

    /// Runs this spec as one fleet tenant: a single machine in the
    /// spec's tenant mode, returning typed metrics for the merge.
    ///
    /// `Some` for the workload-shaped scenarios (nginx, tcp-recv,
    /// file-copy, web-mix); `None` for the attack-evaluation scenarios
    /// (chasing, fingerprint, line-rate-sweep, covert-sweep), whose
    /// reports are quality measurements rather than tenant throughput.
    pub fn run_tenant(
        &self,
        scale: Scale,
        seed: u64,
        scratch: &mut TenantScratch,
    ) -> Option<TenantMetrics> {
        let (mode_name, mode) = self.modes.tenant_mode();
        let units = self.duration.pick(scale);
        match self.kind {
            SpecKind::Nginx | SpecKind::TcpRecv | SpecKind::FileCopy => {
                let unit = match self.kind {
                    SpecKind::Nginx => "requests",
                    SpecKind::TcpRecv => "packets",
                    _ => "lines",
                };
                let bench = scratch.bench(mode, seed);
                let m = self.drive_workload(bench, units);
                Some(TenantMetrics {
                    mode: mode_name,
                    unit,
                    units: m.units,
                    elapsed_cycles: m.elapsed_cycles,
                    llc: m.llc,
                    dram_lines: m.mem.total(),
                })
            }
            SpecKind::WebMix => {
                let sizes = self.web_mix_sizes(units, seed);
                let tb = scratch.bed(TestBedConfig {
                    ddio: mode,
                    ..TestBedConfig::paper_baseline().with_seed(seed)
                });
                let (frames, elapsed, llc, dram_lines) = self.web_mix_drive(tb, sizes, seed);
                Some(TenantMetrics {
                    mode: mode_name,
                    unit: "frames",
                    units: frames,
                    elapsed_cycles: elapsed,
                    llc,
                    dram_lines,
                })
            }
            SpecKind::KvStore | SpecKind::DnsFlood | SpecKind::LargeTransfer => {
                let tb = scratch.bed(TestBedConfig {
                    ddio: mode,
                    ..TestBedConfig::paper_baseline()
                        .with_seed(seed)
                        .with_queues(self.bed_queues())
                });
                let (frames, elapsed, llc, dram_lines) = self.flow_drive(tb, units as usize, seed);
                Some(TenantMetrics {
                    mode: mode_name,
                    unit: "frames",
                    units: frames,
                    elapsed_cycles: elapsed,
                    llc,
                    dram_lines,
                })
            }
            _ => None,
        }
    }
}

impl Scenario for ScenarioSpec {
    fn name(&self) -> &'static str {
        ScenarioSpec::name(self)
    }

    fn summary(&self) -> &'static str {
        ScenarioSpec::summary(self)
    }

    fn run(&self, scale: Scale, seed: u64) -> String {
        ScenarioSpec::run(self, scale, seed)
    }
}

/// What one fleet tenant measured: the typed equivalent of one
/// workload report row, plus the unit label the merge groups by.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TenantMetrics {
    /// Reporting name of the DDIO mode the tenant ran under.
    pub mode: &'static str,
    /// Unit label (`requests`, `packets`, `lines`, `frames`).
    pub unit: &'static str,
    /// Work units completed.
    pub units: u64,
    /// Simulated cycles the run took.
    pub elapsed_cycles: Cycles,
    /// LLC statistics over the run.
    pub llc: CacheStats,
    /// Memory-controller lines moved (reads + writes).
    pub dram_lines: u64,
}

impl TenantMetrics {
    /// Work units per second of simulated time.
    pub fn units_per_second(&self) -> f64 {
        self.units as f64 / (self.elapsed_cycles as f64 / pc_net::CPU_FREQ_HZ as f64)
    }

    /// Simulated cycles per work unit.
    pub fn cycles_per_unit(&self) -> u64 {
        self.elapsed_cycles / self.units.max(1)
    }
}

/// Per-worker machine cache for tenant runs: one TestBed and one
/// Workbench, reset (not rebuilt) between tenants so thousands of
/// tenant runs pay clears instead of allocations. An allocation cache,
/// not state — `TestBed::reset` / `Workbench::reset_paper_machine`
/// pin a reused machine byte-identical to a fresh one.
#[derive(Default)]
pub struct TenantScratch {
    bed: Option<TestBed>,
    bench: Option<Workbench>,
}

impl TenantScratch {
    /// An empty scratch (machines built lazily on first use).
    pub fn new() -> Self {
        TenantScratch::default()
    }

    /// The scratch TestBed, reset for `cfg`.
    fn bed(&mut self, cfg: TestBedConfig) -> &mut TestBed {
        match &mut self.bed {
            Some(bed) => {
                bed.reset(cfg);
                self.bed.as_mut().expect("just matched")
            }
            None => self.bed.insert(TestBed::new(cfg)),
        }
    }

    /// The scratch Workbench, reset to the paper machine in `mode`.
    fn bench(&mut self, mode: DdioMode, seed: u64) -> &mut Workbench {
        match &mut self.bench {
            Some(bench) => {
                bench.reset_paper_machine(mode, seed);
                self.bench.as_mut().expect("just matched")
            }
            None => self.bench.insert(Workbench::paper_machine(mode, seed)),
        }
    }
}

/// Every registered scenario spec, **sorted by name**. The listing
/// order is part of the output contract: `repro scenario list` (and
/// anything that iterates the registry, like the golden-snapshot suite
/// and the CI determinism byte-diff) must not depend on incidental
/// insertion order, so the registry itself is kept sorted and a test
/// pins it.
pub fn registry() -> &'static [ScenarioSpec] {
    static REGISTRY: OnceLock<Vec<ScenarioSpec>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        vec![
            ScenarioSpec {
                name: "chasing",
                summary: "ring-buffer sequence recovery over the batched receive path",
                kind: SpecKind::Chasing,
                duration: Duration {
                    quick: 6_000,
                    full: 60_000,
                },
                arrival: Arrival {
                    fps: 200_000,
                    jitter: 0.02,
                },
                mix: Vec::new(),
                modes: ModeSweep::All,
                queues: 1,
            },
            ScenarioSpec {
                name: "co-tenancy",
                summary: "ring recovery against a victim RSS-spread over rx queues",
                kind: SpecKind::CoTenancy,
                duration: Duration {
                    quick: 4_000,
                    full: 40_000,
                },
                arrival: Arrival {
                    fps: 200_000,
                    jitter: 0.02,
                },
                mix: Vec::new(),
                modes: ModeSweep::All,
                queues: 4,
            },
            ScenarioSpec {
                name: "covert-sweep",
                summary: "covert-channel bandwidth/error across offered packet rates",
                kind: SpecKind::CovertSweep,
                duration: Duration {
                    quick: 60,
                    full: 600,
                },
                arrival: Arrival {
                    fps: 0,
                    jitter: 0.0,
                },
                mix: Vec::new(),
                modes: ModeSweep::All,
                queues: 1,
            },
            ScenarioSpec {
                name: "dns-flood",
                summary: "small-packet flood from many clients across rx queues",
                kind: SpecKind::DnsFlood,
                duration: Duration {
                    quick: 6_000,
                    full: 60_000,
                },
                arrival: Arrival {
                    fps: 450_000,
                    jitter: 0.01,
                },
                mix: Vec::new(),
                modes: ModeSweep::All,
                queues: 4,
            },
            ScenarioSpec {
                name: "file-copy",
                summary: "dd-style DMA file copy across DDIO modes",
                kind: SpecKind::FileCopy,
                duration: Duration { quick: 2, full: 16 },
                arrival: Arrival {
                    fps: 0,
                    jitter: 0.0,
                },
                mix: Vec::new(),
                modes: ModeSweep::All,
                queues: 1,
            },
            ScenarioSpec {
                name: "fingerprint",
                summary: "closed-world website fingerprinting through the cache",
                kind: SpecKind::Fingerprint,
                duration: Duration { quick: 4, full: 40 },
                arrival: Arrival {
                    fps: 0,
                    jitter: 0.0,
                },
                mix: Vec::new(),
                modes: ModeSweep::All,
                queues: 1,
            },
            ScenarioSpec {
                name: "kv-store",
                summary: "80/20 GET/SET key-value mix steered over rx queues",
                kind: SpecKind::KvStore,
                duration: Duration {
                    quick: 4_000,
                    full: 40_000,
                },
                arrival: Arrival {
                    fps: 300_000,
                    jitter: 0.03,
                },
                mix: Vec::new(),
                modes: ModeSweep::All,
                queues: 4,
            },
            ScenarioSpec {
                name: "large-transfer",
                summary: "paced MTU-sized bulk transfers on few flows",
                kind: SpecKind::LargeTransfer,
                duration: Duration {
                    quick: 2_500,
                    full: 25_000,
                },
                arrival: Arrival {
                    fps: 80_000,
                    jitter: 0.0,
                },
                mix: Vec::new(),
                modes: ModeSweep::All,
                queues: 4,
            },
            ScenarioSpec {
                name: "line-rate-sweep",
                summary: "driver receive cost at wire speed across frame sizes and links",
                kind: SpecKind::LineRateSweep,
                duration: Duration {
                    quick: 20_000,
                    full: 150_000,
                },
                arrival: Arrival {
                    fps: 0,
                    jitter: 0.0,
                },
                mix: Vec::new(),
                modes: ModeSweep::All,
                queues: 1,
            },
            ScenarioSpec {
                name: "nginx",
                summary: "nginx-like request serving across DDIO modes",
                kind: SpecKind::Nginx,
                duration: Duration {
                    quick: 400,
                    full: 4_000,
                },
                arrival: Arrival {
                    fps: 0,
                    jitter: 0.0,
                },
                mix: Vec::new(),
                modes: ModeSweep::All,
                queues: 1,
            },
            ScenarioSpec {
                name: "tcp-recv",
                summary: "small-payload TCP receive across DDIO modes",
                kind: SpecKind::TcpRecv,
                duration: Duration {
                    quick: 5_000,
                    full: 50_000,
                },
                arrival: Arrival {
                    fps: 0,
                    jitter: 0.0,
                },
                mix: Vec::new(),
                modes: ModeSweep::All,
                queues: 1,
            },
            ScenarioSpec {
                name: "web-mix",
                summary: "interleaved page loads from every site on one ring",
                kind: SpecKind::WebMix,
                duration: Duration { quick: 8, full: 60 },
                // 0.05 is ArrivalSchedule's default jitter — the
                // historical web-mix never overrode it.
                arrival: Arrival {
                    fps: 250_000,
                    jitter: 0.05,
                },
                mix: Vec::new(),
                modes: ModeSweep::All,
                queues: 1,
            },
        ]
    })
}

/// Looks a scenario spec up by CLI name.
pub fn find(name: &str) -> Option<&'static ScenarioSpec> {
    registry().iter().find(|s| s.name() == name)
}

/// Renders the body of `repro scenario list`: the name-sorted,
/// two-column registry listing. One renderer shared by the CLI and the
/// golden-snapshot test, so the output contract cannot drift between
/// what CI byte-diffs and what the snapshot pins.
pub fn render_list() -> String {
    let mut out = String::new();
    for s in registry() {
        let _ = writeln!(out, "  {:<16} {}", s.name(), s.summary());
    }
    out
}

/// The three DDIO modes every workload scenario sweeps, with reporting
/// names matching the figure experiments.
fn ddio_modes() -> [(&'static str, DdioMode); 3] {
    [
        ("NoDDIO", DdioMode::Disabled),
        ("DDIO", DdioMode::enabled()),
        ("Adaptive", DdioMode::adaptive()),
    ]
}

/// Formats one defense-workload row.
fn workload_row(name: &str, m: &WorkloadMetrics) -> Vec<Metric> {
    vec![
        Metric::Text(name.to_string()),
        Metric::Count(m.units),
        Metric::Fixed(m.units_per_second() / 1_000.0, 1),
        Metric::Fixed(m.llc.miss_rate(), 3),
        Metric::Count(m.mem.total()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let mut names: Vec<&str> = registry().iter().map(|s| s.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate scenario name");
        for name in names {
            assert!(find(name).is_some());
        }
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn registry_order_is_sorted_and_stable() {
        // `repro scenario list` prints the registry in order; CI
        // byte-diffs rely on that order being name-sorted, not
        // insertion-accidental.
        let names: Vec<&str> = registry().iter().map(|s| s.name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "registry must stay sorted by name");
        assert_eq!(
            names,
            [
                "chasing",
                "co-tenancy",
                "covert-sweep",
                "dns-flood",
                "file-copy",
                "fingerprint",
                "kv-store",
                "large-transfer",
                "line-rate-sweep",
                "nginx",
                "tcp-recv",
                "web-mix",
            ],
            "listing order is a documented output contract"
        );
    }

    #[test]
    fn workload_scenarios_are_deterministic() {
        // Same (scale, seed) must render the same report; different
        // seeds must not be trivially constant for the traffic-driven
        // scenarios.
        for name in ["tcp-recv", "file-copy"] {
            let s = find(name).expect("registered");
            let a = s.run(Scale::Quick, 11);
            let b = s.run(Scale::Quick, 11);
            assert_eq!(a, b, "{name} not deterministic");
        }
    }

    #[test]
    fn metric_rendering_matches_the_inline_format_specifiers() {
        // The whole byte-compatibility argument for typed reports rests
        // on Display matching the `writeln!` specifiers the reports
        // used before: `{}` for counts, `{:.p}` for fixed floats.
        assert_eq!(Metric::Count(123_456).to_string(), format!("{}", 123_456));
        assert_eq!(
            Metric::Fixed(0.123_456, 3).to_string(),
            format!("{:.3}", 0.123_456)
        );
        assert_eq!(Metric::Fixed(97.35, 1).to_string(), format!("{:.1}", 97.35));
        assert_eq!(
            Metric::Fixed(3095.4, 0).to_string(),
            format!("{:.0}", 3095.4)
        );
        assert_eq!(Metric::Text("NoDDIO".into()).to_string(), "NoDDIO");
    }

    #[test]
    fn report_renders_header_rows_then_comments() {
        let mut r = ScenarioReport::new(vec!["a", "b"]);
        r.push_row(vec![Metric::Count(1), Metric::Fixed(0.5, 1)]);
        r.push_row(vec![Metric::Text("x".into()), Metric::Count(2)]);
        r.comment("trailing note");
        assert_eq!(r.render(), "a,b\n1,0.5\nx,2\n# trailing note\n");
    }

    #[test]
    fn mode_override_narrows_the_sweep_to_one_row() {
        let spec = find("tcp-recv")
            .expect("registered")
            .clone()
            .with_units(300, 300)
            .with_mode("Adaptive", DdioMode::adaptive());
        let report = spec.report(Scale::Quick, 7);
        assert_eq!(report.rows.len(), 1, "one pinned mode, one row");
        assert_eq!(report.rows[0][0], Metric::Text("Adaptive".to_string()));
    }

    #[test]
    fn tenant_runs_are_deterministic_and_scratch_invariant() {
        // A tenant on a dirty scratch (just ran a different template)
        // must produce the same metrics as one on a fresh scratch.
        let tcp = find("tcp-recv")
            .expect("registered")
            .clone()
            .with_units(400, 400);
        let copy = find("file-copy")
            .expect("registered")
            .clone()
            .with_units(1, 1);
        let mut dirty = TenantScratch::new();
        copy.run_tenant(Scale::Quick, 3, &mut dirty)
            .expect("workload tenant");
        let a = tcp.run_tenant(Scale::Quick, 9, &mut dirty).expect("tenant");
        let mut fresh = TenantScratch::new();
        let b = tcp.run_tenant(Scale::Quick, 9, &mut fresh).expect("tenant");
        assert_eq!(a, b, "scratch reuse must not leak state");
        assert_eq!(a.unit, "packets");
        assert_eq!(a.units, 400);
        assert!(a.units_per_second() > 0.0);
    }

    #[test]
    fn flow_scenarios_are_deterministic_multi_queue_tenants() {
        let mut scratch = TenantScratch::new();
        for name in ["kv-store", "dns-flood", "large-transfer"] {
            let s = find(name).expect("registered").clone().with_units(600, 600);
            assert_eq!(s.queues(), 4, "{name} defaults to a multi-queue bed");
            let a = s.run(Scale::Quick, 11);
            let b = s.run(Scale::Quick, 11);
            assert_eq!(a, b, "{name} not deterministic");
            let m = s
                .run_tenant(Scale::Quick, 5, &mut scratch)
                .expect("flow scenarios are tenant workloads");
            assert_eq!(m.unit, "frames");
            assert_eq!(m.units, 600);
            assert!(m.units_per_second() > 0.0);
        }
    }

    #[test]
    fn attack_scenarios_are_not_tenants() {
        let mut scratch = TenantScratch::new();
        for name in [
            "chasing",
            "fingerprint",
            "line-rate-sweep",
            "covert-sweep",
            "co-tenancy",
        ] {
            let s = find(name).expect("registered");
            assert!(
                s.run_tenant(Scale::Quick, 1, &mut scratch).is_none(),
                "{name} is a quality evaluation, not a tenant workload"
            );
        }
    }
}
