//! The scenario registry: every workload class behind one CLI.
//!
//! A [`Scenario`] is a named, seeded, scale-aware end-to-end workload
//! driven through the op-stream pipeline (batched driver receive,
//! fused monitor primes, sharded trace replay). The registry unifies
//! what used to be two separate worlds — the `pc-net` traffic
//! generators (web traces, line-rate models, covert symbol streams)
//! and the `pc-defense` measurement workloads (nginx, TCP receive,
//! file copy) — behind `repro scenario <name>`.
//!
//! Scenario reports obey the same output discipline as the figure
//! experiments: deterministic for a fixed `(scale, seed)` at any
//! worker count (the CI determinism job byte-diffs a scenario smoke at
//! 1 thread vs 4), plain CSV-style rows, commentary on `#` lines.

use crate::experiments::Scale;
use pc_cache::{DdioMode, SliceSet};
use pc_core::covert::{lfsr_symbols, run_channel, ChannelConfig, Encoding};
use pc_core::fingerprint::{evaluate_closed_world, CaptureConfig};
use pc_core::sequencer::{ground_truth_sequence, recover_window, SequenceQuality, SequencerConfig};
use pc_core::{TestBed, TestBedConfig};
use pc_defense::workloads::{file_copy, nginx, tcp_recv, NginxConfig, Workbench, WorkloadMetrics};
use pc_net::{ArrivalSchedule, ClosedWorld, ConstantSize, LineRate, TraceReplay};
use pc_probe::AddressPool;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// One registered end-to-end workload.
pub trait Scenario: Sync {
    /// CLI name (`repro scenario <name>`).
    fn name(&self) -> &'static str;

    /// One-line description for `repro scenario list`.
    fn summary(&self) -> &'static str;

    /// Runs the scenario and returns its report. Must be deterministic
    /// for a fixed `(scale, seed)` at any thread count.
    fn run(&self, scale: Scale, seed: u64) -> String;
}

/// Every registered scenario, **sorted by name**. The listing order is
/// part of the output contract: `repro scenario list` (and anything
/// that iterates the registry, like the golden-snapshot suite and the
/// CI determinism byte-diff) must not depend on incidental insertion
/// order, so the registry itself is kept sorted and a test pins it.
pub fn registry() -> &'static [&'static dyn Scenario] {
    static CHASING: Chasing = Chasing;
    static FINGERPRINT: Fingerprint = Fingerprint;
    static WEB_MIX: WebMix = WebMix;
    static LINE_RATE: LineRateSweep = LineRateSweep;
    static COVERT: CovertSweep = CovertSweep;
    static NGINX: Nginx = Nginx;
    static TCP_RECV: TcpRecv = TcpRecv;
    static FILE_COPY: FileCopy = FileCopy;
    static REGISTRY: [&dyn Scenario; 8] = [
        &CHASING,
        &COVERT,
        &FILE_COPY,
        &FINGERPRINT,
        &LINE_RATE,
        &NGINX,
        &TCP_RECV,
        &WEB_MIX,
    ];
    &REGISTRY
}

/// Looks a scenario up by CLI name.
pub fn find(name: &str) -> Option<&'static dyn Scenario> {
    registry().iter().copied().find(|s| s.name() == name)
}

/// Renders the body of `repro scenario list`: the name-sorted,
/// two-column registry listing. One renderer shared by the CLI and the
/// golden-snapshot test, so the output contract cannot drift between
/// what CI byte-diffs and what the snapshot pins.
pub fn render_list() -> String {
    let mut out = String::new();
    for s in registry() {
        let _ = writeln!(out, "  {:<16} {}", s.name(), s.summary());
    }
    out
}

/// The three DDIO modes every workload scenario sweeps, with reporting
/// names matching the figure experiments.
fn ddio_modes() -> [(&'static str, DdioMode); 3] {
    [
        ("NoDDIO", DdioMode::Disabled),
        ("DDIO", DdioMode::enabled()),
        ("Adaptive", DdioMode::adaptive()),
    ]
}

/// Packet Chasing's ring-order recovery (the paper's §IV attack) at
/// scenario scale: one monitored window, quality vs ground truth.
struct Chasing;

impl Scenario for Chasing {
    fn name(&self) -> &'static str {
        "chasing"
    }

    fn summary(&self) -> &'static str {
        "ring-buffer sequence recovery over the batched receive path"
    }

    fn run(&self, scale: Scale, seed: u64) -> String {
        let monitored = 16usize;
        let samples = scale.pick(6_000, 60_000);
        let mut tb = TestBed::new(TestBedConfig::paper_baseline().with_seed(seed));
        let geom = tb.hierarchy().llc().geometry();
        let targets: Vec<SliceSet> = pc_core::footprint::page_aligned_targets(&geom)
            .into_iter()
            .take(monitored)
            .collect();
        let pool = AddressPool::allocate(seed ^ 0x5ce, 12288);
        let mut rng = SmallRng::seed_from_u64(seed + 17);
        let frames = ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(200_000)
            .jitter(0.02)
            .generate(
                &mut ConstantSize::blocks(2),
                tb.now() + 1,
                samples * 4,
                &mut rng,
            );
        tb.enqueue(frames);
        let cfg = SequencerConfig {
            samples,
            interval: 33_000,
            ..SequencerConfig::paper_defaults()
        };
        let t0 = tb.now();
        let recovered = recover_window(&mut tb, &pool, &targets, &cfg);
        let elapsed = tb.now() - t0;
        let truth = ground_truth_sequence(tb.hierarchy().llc(), tb.driver(), &targets);
        let q = SequenceQuality::evaluate(&recovered, &truth, elapsed);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sets,samples,levenshtein,error_rate_pct,recovered_len,truth_len"
        );
        let _ = writeln!(
            out,
            "{monitored},{samples},{},{:.1},{},{}",
            q.levenshtein,
            q.error_rate * 100.0,
            q.recovered_len,
            q.truth_len
        );
        let _ = writeln!(out, "# paper: 9.8% error over 32 sets at full scale");
        out
    }
}

/// §V closed-world fingerprinting at scenario scale (DDIO config only —
/// the figure experiment covers the full comparison).
struct Fingerprint;

impl Scenario for Fingerprint {
    fn name(&self) -> &'static str {
        "fingerprint"
    }

    fn summary(&self) -> &'static str {
        "closed-world website fingerprinting through the cache"
    }

    fn run(&self, scale: Scale, seed: u64) -> String {
        let training = scale.pick(3, 8);
        let trials = scale.pick(4, 40);
        let sites = ClosedWorld::paper_five_sites();
        let acc = evaluate_closed_world(
            TestBedConfig::paper_baseline(),
            sites.sites(),
            training,
            trials,
            0.25,
            &CaptureConfig::paper_defaults(),
            seed,
        );
        let mut out = String::new();
        let _ = writeln!(out, "sites,training,trials,accuracy_pct");
        let _ = writeln!(
            out,
            "{},{training},{},{:.1}",
            sites.sites().len(),
            acc.trials,
            acc.accuracy * 100.0
        );
        let _ = writeln!(out, "# paper: 89.7% with DDIO at 1000 trials");
        out
    }
}

/// A mixed web-trace workload: page loads from all five closed-world
/// sites interleaved into one arrival stream — the "many tenants, one
/// NIC" shape none of the paper figures exercises on its own.
struct WebMix;

impl Scenario for WebMix {
    fn name(&self) -> &'static str {
        "web-mix"
    }

    fn summary(&self) -> &'static str {
        "interleaved page loads from every site on one ring"
    }

    fn run(&self, scale: Scale, seed: u64) -> String {
        let rounds = scale.pick(8, 60);
        let sites = ClosedWorld::paper_five_sites();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x3eb);
        // Round-robin page loads over the sites, flattened to one size
        // trace; noise keeps the loads realistically unequal.
        let mut sizes = Vec::new();
        for _round in 0..rounds {
            for profile in sites.sites() {
                for frame in profile.page_load(0.1, &mut rng) {
                    sizes.push(frame.bytes());
                }
            }
        }
        let frames = sizes.len();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "config,frames,cycles_per_frame,llc_miss_rate,dram_lines"
        );
        for (name, mode) in ddio_modes() {
            let mut tb = TestBed::new(TestBedConfig {
                ddio: mode,
                ..TestBedConfig::paper_baseline().with_seed(seed)
            });
            let mut replay = TraceReplay::new(sizes.clone());
            let mut srng = SmallRng::seed_from_u64(seed + 5);
            let schedule = ArrivalSchedule::new(LineRate::gigabit())
                .frames_per_second(250_000)
                .generate(&mut replay, tb.now() + 1, frames, &mut srng);
            tb.enqueue(schedule);
            let t0 = tb.now();
            tb.drain();
            let elapsed = tb.now() - t0;
            let stats = tb.hierarchy().llc().stats();
            let mem = tb.hierarchy().memory_stats();
            let _ = writeln!(
                out,
                "{name},{frames},{},{:.3},{}",
                elapsed / frames as u64,
                stats.miss_rate(),
                mem.total()
            );
        }
        let _ = writeln!(
            out,
            "# {} sites x {rounds} rounds, bimodal page-load mix",
            sites.sites().len()
        );
        out
    }
}

/// Line-rate sweep: the NIC at the wire's maximum frame rate for each
/// size × link speed, measuring what the receive path costs end to end.
struct LineRateSweep;

impl Scenario for LineRateSweep {
    fn name(&self) -> &'static str {
        "line-rate-sweep"
    }

    fn summary(&self) -> &'static str {
        "driver receive cost at wire speed across frame sizes and links"
    }

    fn run(&self, scale: Scale, seed: u64) -> String {
        let count = scale.pick(20_000, 150_000);
        let mut combos = Vec::new();
        for (link_name, link) in [
            ("1GbE", LineRate::gigabit()),
            ("10GbE", LineRate::ten_gigabit()),
        ] {
            for bytes in [64u32, 256, 512, 1514] {
                combos.push((link_name, link, bytes));
            }
        }
        // Independent machines per combo: perfect ordered fan-out.
        let rows = crate::par::parallel_map(combos, |(link_name, link, bytes)| {
            let mut tb = TestBed::new(TestBedConfig::paper_baseline().with_seed(seed));
            let fps = link.max_frames_per_second(bytes);
            let mut rng = SmallRng::seed_from_u64(seed ^ u64::from(bytes));
            let frames = ArrivalSchedule::new(link).frames_per_second(fps).generate(
                &mut ConstantSize::new(pc_net::EthernetFrame::clamped(bytes)),
                tb.now() + 1,
                count,
                &mut rng,
            );
            tb.enqueue(frames);
            let t0 = tb.now();
            tb.drain();
            let elapsed = tb.now() - t0;
            let stats = tb.hierarchy().llc().stats();
            (
                link_name,
                bytes,
                fps,
                elapsed / count as u64,
                stats.miss_rate(),
            )
        });
        let mut out = String::new();
        let _ = writeln!(
            out,
            "link,frame_bytes,wire_fps,cycles_per_frame,llc_miss_rate"
        );
        for (link, bytes, fps, cpf, miss) in rows {
            let _ = writeln!(out, "{link},{bytes},{fps},{cpf},{miss:.3}");
        }
        let _ = writeln!(out, "# paper cites ~500k fps for ~192-byte frames on 1GbE");
        out
    }
}

/// Covert-channel bandwidth sweep: offered packet rate vs achieved
/// bandwidth and error (the single-buffer channel of Figure 11, swept
/// along the rate axis instead of the probe axis).
struct CovertSweep;

impl Scenario for CovertSweep {
    fn name(&self) -> &'static str {
        "covert-sweep"
    }

    fn summary(&self) -> &'static str {
        "covert-channel bandwidth/error across offered packet rates"
    }

    fn run(&self, scale: Scale, seed: u64) -> String {
        let symbols_n = scale.pick(60, 600);
        let rows = crate::par::parallel_map(vec![100_000u64, 200_000, 400_000, 500_000], |rate| {
            let mut tb = TestBed::new(TestBedConfig::paper_baseline().with_seed(seed));
            let pool = AddressPool::allocate(seed ^ 0xc0e7, 12288);
            let symbols = lfsr_symbols(Encoding::Ternary, symbols_n, 0x2fd1);
            let cfg = ChannelConfig {
                encoding: Encoding::Ternary,
                monitored_buffers: 1,
                packet_rate_fps: rate,
                probe_rate_hz: 28_000,
                window: 3,
                background_noise_aps: 100_000,
            };
            let report = run_channel(&mut tb, &pool, &symbols, &cfg);
            (rate, report.bandwidth_bps, report.error_rate)
        });
        let mut out = String::new();
        let _ = writeln!(out, "packet_rate_fps,bandwidth_bps,error_rate_pct");
        for (rate, bw, err) in rows {
            let _ = writeln!(out, "{rate},{bw:.0},{:.1}", err * 100.0);
        }
        let _ = writeln!(out, "# paper: ~3095 bps ternary at line rate, 28 kHz probe");
        out
    }
}

/// Formats one defense-workload row.
fn workload_row(out: &mut String, name: &str, m: &WorkloadMetrics) {
    let _ = writeln!(
        out,
        "{name},{},{:.1},{:.3},{}",
        m.units,
        m.units_per_second() / 1_000.0,
        m.llc.miss_rate(),
        m.mem.total()
    );
}

/// The Figure 14 server workload as a standalone scenario.
struct Nginx;

impl Scenario for Nginx {
    fn name(&self) -> &'static str {
        "nginx"
    }

    fn summary(&self) -> &'static str {
        "nginx-like request serving across DDIO modes"
    }

    fn run(&self, scale: Scale, seed: u64) -> String {
        let requests = scale.pick(400, 4_000);
        let cfg = NginxConfig::paper_defaults();
        let mut out = String::new();
        let _ = writeln!(out, "config,units,kunits_per_sec,llc_miss_rate,dram_lines");
        for (name, mode) in ddio_modes() {
            let mut bench = Workbench::paper_machine(mode, seed);
            nginx(&mut bench, &cfg, requests / 5); // warm-up
            let m = nginx(&mut bench, &cfg, requests);
            workload_row(&mut out, name, &m);
        }
        out
    }
}

/// The §VII-a TCP receiver as a standalone scenario.
struct TcpRecv;

impl Scenario for TcpRecv {
    fn name(&self) -> &'static str {
        "tcp-recv"
    }

    fn summary(&self) -> &'static str {
        "small-payload TCP receive across DDIO modes"
    }

    fn run(&self, scale: Scale, seed: u64) -> String {
        let packets = scale.pick(5_000, 50_000);
        let mut out = String::new();
        let _ = writeln!(out, "config,units,kunits_per_sec,llc_miss_rate,dram_lines");
        for (name, mode) in ddio_modes() {
            let mut bench = Workbench::paper_machine(mode, seed);
            let m = tcp_recv(&mut bench, packets);
            workload_row(&mut out, name, &m);
        }
        out
    }
}

/// The §VII-a file copy as a standalone scenario (rides the sharded
/// batch path end to end).
struct FileCopy;

impl Scenario for FileCopy {
    fn name(&self) -> &'static str {
        "file-copy"
    }

    fn summary(&self) -> &'static str {
        "dd-style DMA file copy across DDIO modes"
    }

    fn run(&self, scale: Scale, seed: u64) -> String {
        let megabytes = scale.pick(2, 16);
        let mut out = String::new();
        let _ = writeln!(out, "config,units,kunits_per_sec,llc_miss_rate,dram_lines");
        for (name, mode) in ddio_modes() {
            let mut bench = Workbench::paper_machine(mode, seed);
            let m = file_copy(&mut bench, megabytes);
            workload_row(&mut out, name, &m);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let mut names: Vec<&str> = registry().iter().map(|s| s.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate scenario name");
        for name in names {
            assert!(find(name).is_some());
        }
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn registry_order_is_sorted_and_stable() {
        // `repro scenario list` prints the registry in order; CI
        // byte-diffs rely on that order being name-sorted, not
        // insertion-accidental.
        let names: Vec<&str> = registry().iter().map(|s| s.name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "registry must stay sorted by name");
        assert_eq!(
            names,
            [
                "chasing",
                "covert-sweep",
                "file-copy",
                "fingerprint",
                "line-rate-sweep",
                "nginx",
                "tcp-recv",
                "web-mix",
            ],
            "listing order is a documented output contract"
        );
    }

    #[test]
    fn workload_scenarios_are_deterministic() {
        // Same (scale, seed) must render the same report; different
        // seeds must not be trivially constant for the traffic-driven
        // scenarios.
        for name in ["tcp-recv", "file-copy"] {
            let s = find(name).expect("registered");
            let a = s.run(Scale::Quick, 11);
            let b = s.run(Scale::Quick, 11);
            assert_eq!(a, b, "{name} not deterministic");
        }
    }
}
