//! Fleet determinism property suite: the merged fleet report is a pure
//! function of `(seed, tenants, templates)` — worker count must never
//! leak into a single byte of output.
//!
//! The CI determinism job byte-diffs `repro fleet` between
//! `PC_BENCH_THREADS=1` and `4` in separate processes; this suite pins
//! the same property in-process across the full
//! `{1,2,4} threads × {16,64,256} tenants` grid, where a scheduling or
//! collection-order bug would show up as a failed string comparison
//! with a readable diff instead of a bare `cmp` exit code.

use pc_bench::experiments::Scale;
use pc_bench::fleet::{run_fleet_outcomes, FleetConfig};

/// Seed the CI determinism job uses throughout.
const SEED: u64 = 2020;

/// The standard mixed template set with shrunk per-tenant work units so
/// the 9-point grid stays fast in debug builds. Shrinking units changes
/// the numbers, not the property: every template, mode, and merge path
/// is still exercised.
fn grid_cfg(tenants: usize, threads: usize) -> FleetConfig {
    let mut cfg = FleetConfig::standard(tenants, SEED, Scale::Quick);
    cfg.threads = threads;
    for t in &mut cfg.templates {
        t.spec = t.spec.clone().with_units(24, 24);
    }
    cfg
}

#[test]
fn merged_report_is_byte_identical_across_thread_counts() {
    for tenants in [16usize, 64, 256] {
        let baseline = pc_bench::fleet::merge(
            &grid_cfg(tenants, 1),
            &run_fleet_outcomes(&grid_cfg(tenants, 1)),
        )
        .render();

        // Non-triviality: the baseline must be a real three-section
        // report over the mixed templates, not an accidentally empty
        // string two runs would trivially agree on.
        assert!(baseline.contains("# == per-template percentiles =="));
        assert!(baseline.contains("# == per-mode breakdown =="));
        assert!(baseline.contains("# == aggregate =="));
        assert!(
            baseline.contains("tcp-recv/DDIO"),
            "mixed templates present"
        );
        assert!(baseline.contains("nginx/DDIO"));
        assert!(
            baseline.contains(&format!("\n{tenants},")),
            "aggregate row counts every tenant"
        );

        for threads in [2usize, 4] {
            let report = pc_bench::fleet::merge(
                &grid_cfg(tenants, threads),
                &run_fleet_outcomes(&grid_cfg(tenants, threads)),
            )
            .render();
            assert_eq!(
                report, baseline,
                "{tenants} tenants: {threads} workers diverged from sequential"
            );
        }
    }
}

#[test]
fn outcomes_not_just_render_are_thread_invariant() {
    // Stronger than string equality on the report: the raw per-tenant
    // metrics (pre-merge, pre-rounding) must match, so a divergence
    // hiding below display precision still fails.
    let sequential = run_fleet_outcomes(&grid_cfg(64, 1));
    let threaded = run_fleet_outcomes(&grid_cfg(64, 4));
    assert_eq!(sequential, threaded);
}
