//! The online phase: chasing packets buffer-to-buffer.
//!
//! With the ring sequence recovered, the spy no longer probes 256 sets —
//! it probes only the *next expected buffer*, advancing on every
//! detection (§III-C, §IV-c). Each watched buffer has probes on the
//! first blocks of **both** half-pages, because `igb_can_reuse_rx_page`
//! flips large-frame buffers to the other half (§V) — but since the flip
//! rule is deterministic (frames above the 256-byte copybreak flip), the
//! spy *tracks* the armed half and probes only one half per sample,
//! halving its probe cost. A mispredicted half (page reallocation) shows
//! up as a timeout and self-corrects by peeking at the other half.

use crate::testbed::TestBed;
use pc_cache::{Cycles, Hierarchy, PhysAddr, SlicedCache};
use pc_nic::IgbDriver;
use pc_probe::{oracle_eviction_sets, AddressPool, EvictionSet, PrimeProbe};

/// Blocks probed per half-page: blocks 0..5. Block 4's set distinguishes
/// "exactly 4 blocks" (≤ copybreak, buffer reused in place) from
/// "5 or more" (> copybreak, the buffer flips halves).
pub const TRACKED_BLOCKS: usize = 5;

/// Size classes reported to the attack: 1, 2, 3 or 4 ("4 or more").
pub const WATCHED_BLOCKS: usize = 4;

/// How many ring slots ahead the spy scans for latched evidence when the
/// current buffer's marks were consumed by shared-set probes.
const FORWARD_SCAN: usize = 8;

/// One observed packet.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct PacketObservation {
    /// Position in the spy's ring sequence.
    pub ring_pos: usize,
    /// Detected size class: 1, 2, 3, or 4 (meaning "4 blocks or more").
    pub size_class: u8,
    /// Cycle of detection.
    pub at: Cycles,
}

/// Probes for one ring buffer: blocks 0..5 of each half-page.
#[derive(Clone, Debug)]
struct BufferProbes {
    halves: [Vec<PrimeProbe>; 2],
}

impl BufferProbes {
    fn prime_half(&self, h: &mut Hierarchy, half: usize) {
        for p in &self.halves[half] {
            p.prime(h);
        }
    }

    /// Cheap detection probe: blocks 0 and 1 only, reported separately so
    /// the caller can accumulate evidence across samples (a packet
    /// landing mid-probe splits its marks over two samples, and a shared
    /// set may have had one mark consumed by an earlier probe of another
    /// buffer).
    fn detect_bits(&self, h: &mut Hierarchy, half: usize) -> (bool, bool) {
        let b0 = self.halves[half][0].probe(h).activity();
        let b1 = self.halves[half][1].probe(h).activity();
        (b0, b1)
    }

    /// Strict single-sample detection: blocks 0 and 1 both fire (DMA plus
    /// the driver's unconditional second-block prefetch).
    fn detect_half(&self, h: &mut Hierarchy, half: usize) -> bool {
        let (b0, b1) = self.detect_bits(h, half);
        b0 && b1
    }

    /// Size probe, run once after a detection: blocks 2..5 were primed
    /// before the packet arrived and their evictions latch, so probing
    /// them now recovers the packet's top block.
    fn size_half(&self, h: &mut Hierarchy, half: usize) -> usize {
        let mut top = 1usize; // blocks 0 and 1 are known active
        for (b, p) in self.halves[half].iter().enumerate().skip(2) {
            if p.probe(h).activity() {
                top = b;
            }
        }
        top
    }

    /// Full probe of one half: detection plus size.
    fn sample_half(&self, h: &mut Hierarchy, half: usize) -> Option<usize> {
        if self.detect_half(h, half) {
            Some(self.size_half(h, half))
        } else {
            None
        }
    }
}

/// The chasing spy: follows the ring one buffer at a time.
#[derive(Clone, Debug)]
pub struct ChasingSpy {
    buffers: Vec<BufferProbes>,
    /// Which half-page each buffer is currently armed at, as predicted
    /// from the observed sizes.
    armed: Vec<u8>,
    pos: usize,
    out_of_syncs: u64,
    observed: u64,
    primed: bool,
    /// Samples the previous observation waited before detecting; used to
    /// judge whether the spy is ahead of the stream (then priming on
    /// arrival clears stale sharer noise) or behind it (then priming
    /// would erase the very evidence it needs).
    last_wait: usize,
}

impl ChasingSpy {
    /// Sets up probes for every ring buffer, in ring order.
    ///
    /// Uses oracle eviction sets for setup (the output of the offline
    /// phase: the attacker has already located every buffer's sets via
    /// §III-B/C; see `pc-probe` docs on the instrumentation boundary).
    pub fn for_ring(llc: &SlicedCache, pool: &AddressPool, driver: &IgbDriver) -> Self {
        let pages = driver.ring().page_addresses();
        ChasingSpy::for_pages(llc, pool, &pages)
    }

    /// Sets up probes for an explicit page list in ring order.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is empty or the pool is too small (see
    /// [`oracle_eviction_sets`]).
    pub fn for_pages(llc: &SlicedCache, pool: &AddressPool, pages: &[PhysAddr]) -> Self {
        assert!(!pages.is_empty(), "spy needs at least one buffer to chase");
        let threshold = pc_cache::LatencyModel::server_defaults().miss_threshold();
        let buffers: Vec<BufferProbes> = pages
            .iter()
            .map(|page| {
                let halves = [0u64, 32].map(|half_start| {
                    let targets: Vec<_> = (0..TRACKED_BLOCKS as u64)
                        .map(|b| llc.locate(page.add_blocks(half_start + b)))
                        .collect();
                    let sets: Vec<EvictionSet> = oracle_eviction_sets(llc, pool, &targets);
                    sets.into_iter()
                        .map(|s| PrimeProbe::new(s, threshold))
                        .collect()
                });
                BufferProbes { halves }
            })
            .collect();
        let armed = vec![0u8; buffers.len()];
        ChasingSpy {
            buffers,
            armed,
            pos: 0,
            out_of_syncs: 0,
            observed: 0,
            primed: false,
            last_wait: usize::MAX,
        }
    }

    /// Primes every buffer's probes (both halves). Run this *before* the
    /// traffic of interest starts — it walks a couple of thousand
    /// eviction sets, which takes simulated milliseconds.
    pub fn prime_all(&mut self, tb: &mut TestBed) {
        for b in &self.buffers {
            b.prime_half(tb.hierarchy_mut(), 0);
            b.prime_half(tb.hierarchy_mut(), 1);
        }
        self.primed = true;
    }

    /// Ring length being chased.
    pub fn ring_len(&self) -> usize {
        self.buffers.len()
    }

    /// Current position in the ring sequence.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Times the spy lost the packet stream and had to resynchronize.
    pub fn out_of_syncs(&self) -> u64 {
        self.out_of_syncs
    }

    /// Packets observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Waits for a packet on the *current* buffer, probing every
    /// `interval` cycles, for at most `max_samples` samples.
    ///
    /// On detection, advances to the next buffer and returns the
    /// observation. On timeout, counts an out-of-sync event and returns
    /// `None` — the spy *stays* on this buffer, because the only way to
    /// resynchronize with a stream that has moved on is to "wait until
    /// completion of the whole ring, or the next time a packet fills
    /// that buffer" (§IV-c); the caller decides how long to wait. Before
    /// giving up, the spy peeks at the buffer's other half-page in case
    /// its flip tracking went stale (page reallocation).
    pub fn observe_next(
        &mut self,
        tb: &mut TestBed,
        interval: Cycles,
        max_samples: usize,
    ) -> Option<PacketObservation> {
        if !self.primed {
            self.prime_all(tb);
        }
        let half = usize::from(self.armed[self.pos]);
        // When the spy is comfortably ahead of the stream (the previous
        // packet took 2+ probe intervals to show up), re-priming on
        // arrival clears any stale sharer noise that accumulated over
        // the last ring pass. When it is running *behind*, the packet's
        // eviction evidence is already latched — priming would erase it,
        // so the spy consumes it instead.
        if self.last_wait >= 2 {
            self.buffers[self.pos].prime_half(tb.hierarchy_mut(), half);
        }
        let probes = &self.buffers[self.pos];
        let (mut seen0, mut seen1) = probes.detect_bits(tb.hierarchy_mut(), half);
        if seen0 && seen1 {
            let top = probes.size_half(tb.hierarchy_mut(), half);
            self.last_wait = 0;
            return Some(self.record(top, tb.now()));
        }
        for wait in 1..=max_samples {
            let next = tb.now() + interval;
            tb.advance_to(next);
            let (a0, a1) = probes.detect_bits(tb.hierarchy_mut(), half);
            seen0 |= a0;
            seen1 |= a1;
            if seen0 && seen1 {
                let top = probes.size_half(tb.hierarchy_mut(), half);
                self.last_wait = wait;
                return Some(self.record(top, tb.now()));
            }
        }
        if seen0 || seen1 {
            // One mark without the other: the twin mark was consumed by
            // an earlier probe of a buffer sharing this cache set (or
            // lost to noise). One-sided evidence is still far more likely
            // a packet than not — accept it rather than stall the chase.
            let top = probes.size_half(tb.hierarchy_mut(), half).max(1);
            self.last_wait = max_samples;
            return Some(self.record(top, tb.now()));
        }
        // Timeout: peek at the other half once — a missed large packet
        // or a reallocation leaves the spy watching the wrong half.
        let other = half ^ 1;
        if let Some(top) = probes.sample_half(tb.hierarchy_mut(), other) {
            self.armed[self.pos] = other as u8;
            self.last_wait = max_samples;
            return Some(self.record(top, tb.now()));
        }
        // This buffer's marks may have been wholly consumed by earlier
        // probes of buffers sharing its sets. If the stream really moved
        // on, the *following* buffers hold latched evidence — scan a few
        // slots ahead and resume there rather than waiting out a lap.
        self.out_of_syncs += 1;
        for j in 1..=FORWARD_SCAN {
            let p = (self.pos + j) % self.buffers.len();
            let half = usize::from(self.armed[p]);
            let (a0, a1) = self.buffers[p].detect_bits(tb.hierarchy_mut(), half);
            if a0 || a1 {
                self.pos = p;
                let top = self.buffers[p].size_half(tb.hierarchy_mut(), half).max(1);
                self.last_wait = 0;
                return Some(self.record(top, tb.now()));
            }
        }
        // Keep waiting on the same buffer without erasing evidence: the
        // retry must catch the ring coming back around.
        self.last_wait = 0;
        None
    }

    /// Books one detection: updates flip tracking, advances the ring
    /// position.
    fn record(&mut self, top_block: usize, at: Cycles) -> PacketObservation {
        // Block 4 active ⇒ ≥5 blocks ⇒ over the copybreak ⇒ the driver
        // flips this buffer to its other half.
        if top_block >= TRACKED_BLOCKS - 1 {
            self.armed[self.pos] ^= 1;
        }
        let size_class = ((top_block + 1).min(WATCHED_BLOCKS)) as u8;
        let obs = PacketObservation {
            ring_pos: self.pos,
            size_class,
            at,
        };
        self.pos = (self.pos + 1) % self.buffers.len();
        self.observed += 1;
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::{TestBed, TestBedConfig};
    use pc_net::{ArrivalSchedule, ConstantSize, CyclingSizes, EthernetFrame, LineRate};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_ring_bed(ring: usize, seed: u64) -> TestBed {
        let mut cfg = TestBedConfig::paper_baseline().with_seed(seed);
        cfg.driver.ring_size = ring;
        TestBed::new(cfg)
    }

    #[test]
    fn chases_a_steady_stream() {
        let mut tb = small_ring_bed(8, 21);
        let pool = AddressPool::allocate(91, 16384);
        let mut spy = ChasingSpy::for_ring(tb.hierarchy().llc(), &pool, tb.driver());
        let mut rng = SmallRng::seed_from_u64(2);
        let frames = ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(20_000)
            .generate(
                &mut ConstantSize::blocks(3),
                tb.now() + 50_000,
                40,
                &mut rng,
            );
        tb.enqueue(frames);
        let mut seen = 0;
        for _ in 0..40 {
            if let Some(obs) = spy.observe_next(&mut tb, 20_000, 40) {
                assert_eq!(obs.size_class, 3);
                seen += 1;
            }
        }
        assert!(seen >= 35, "spy observed only {seen}/40 packets");
        assert!(spy.out_of_syncs() <= 5);
    }

    #[test]
    fn size_classes_follow_frame_sizes() {
        let mut tb = small_ring_bed(4, 22);
        let pool = AddressPool::allocate(92, 16384);
        let mut spy = ChasingSpy::for_ring(tb.hierarchy().llc(), &pool, tb.driver());
        let mut rng = SmallRng::seed_from_u64(3);
        let mut gen = CyclingSizes::new(vec![
            EthernetFrame::with_blocks(3),
            EthernetFrame::with_blocks(4),
        ]);
        let frames = ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(10_000)
            .generate(&mut gen, tb.now() + 50_000, 20, &mut rng);
        tb.enqueue(frames);
        let mut classes = Vec::new();
        for _ in 0..20 {
            if let Some(obs) = spy.observe_next(&mut tb, 20_000, 60) {
                classes.push(obs.size_class);
            }
        }
        assert!(classes.len() >= 16, "too few observations: {classes:?}");
        let threes = classes.iter().filter(|&&c| c == 3).count();
        let fours = classes.iter().filter(|&&c| c == 4).count();
        assert!(threes + fours >= classes.len() - 2, "noise in {classes:?}");
        assert!(threes > 0 && fours > 0);
    }

    #[test]
    fn large_frames_flip_tracking_keeps_up() {
        // MTU frames flip the buffer's half-page on every packet; the spy
        // must keep observing across flips.
        let mut tb = small_ring_bed(4, 24);
        let pool = AddressPool::allocate(94, 16384);
        let mut spy = ChasingSpy::for_ring(tb.hierarchy().llc(), &pool, tb.driver());
        let mut rng = SmallRng::seed_from_u64(5);
        let frames = ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(10_000)
            .generate(
                &mut ConstantSize::new(EthernetFrame::mtu_sized()),
                tb.now() + 50_000,
                24,
                &mut rng,
            );
        tb.enqueue(frames);
        let mut seen = 0;
        for _ in 0..24 {
            if let Some(obs) = spy.observe_next(&mut tb, 20_000, 60) {
                assert_eq!(obs.size_class, 4, "MTU frames report class 4+");
                seen += 1;
            }
        }
        assert!(seen >= 18, "spy lost track across flips: {seen}/24");
    }

    #[test]
    fn timeout_counts_out_of_sync_and_stays_put() {
        let mut tb = small_ring_bed(4, 23);
        let pool = AddressPool::allocate(93, 16384);
        let mut spy = ChasingSpy::for_ring(tb.hierarchy().llc(), &pool, tb.driver());
        // No traffic at all: every observation times out.
        for _ in 0..3 {
            assert!(spy.observe_next(&mut tb, 10_000, 5).is_none());
        }
        assert_eq!(spy.out_of_syncs(), 3);
        assert_eq!(spy.observed(), 0);
        assert_eq!(spy.position(), 0, "spy must wait on the same buffer");
    }
}
