//! The remote covert channel (§IV): receiving packets without network
//! access.
//!
//! A trojan on the same physical network sends broadcast frames whose
//! *sizes* encode symbols; the spy — no network stack, no privileges —
//! decodes them by watching the cache sets of one (or more) ring
//! buffers. The first block of the buffer acts as a clock (every packet
//! lights it); blocks 2 and 3 carry the data.
//!
//! All covert frames are at most 256 bytes, i.e. at or below the IGB
//! copybreak, so buffers are recycled in place and never flip half-pages
//! — the monitored sets stay fixed for the whole transmission.

use crate::footprint::{label_of, ring_histogram};
use crate::testbed::TestBed;
use pc_cache::{Cycles, SlicedCache};
use pc_net::{ArrivalSchedule, EthernetFrame, Lfsr15, LineRate, ScheduledFrame, TraceReplay};
use pc_nic::IgbDriver;
use pc_probe::{oracle_eviction_sets, AddressPool, PrimeProbe};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Symbol alphabet of the channel.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum Encoding {
    /// One bit per packet: 64 B ("0") vs 256 B ("1").
    Binary,
    /// A ternary symbol per packet: 64 B ("0"), 192 B ("1"), 256 B ("2").
    Ternary,
}

impl Encoding {
    /// Number of distinct symbols.
    pub fn alphabet(self) -> u8 {
        match self {
            Encoding::Binary => 2,
            Encoding::Ternary => 3,
        }
    }

    /// Information per symbol in bits.
    pub fn bits_per_symbol(self) -> f64 {
        f64::from(self.alphabet()).log2()
    }

    /// The frame that encodes `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is outside the alphabet.
    pub fn frame_for(self, symbol: u8) -> EthernetFrame {
        assert!(symbol < self.alphabet(), "symbol {symbol} outside alphabet");
        match (self, symbol) {
            (Encoding::Binary, 0) | (Encoding::Ternary, 0) => EthernetFrame::with_blocks(1),
            (Encoding::Binary, 1) => EthernetFrame::with_blocks(4),
            (Encoding::Ternary, 1) => EthernetFrame::with_blocks(3),
            (Encoding::Ternary, 2) => EthernetFrame::with_blocks(4),
            _ => unreachable!("validated above"),
        }
    }

    /// Decodes block-2/block-3 activity into a symbol.
    pub fn decode(self, b2: bool, b3: bool) -> u8 {
        match self {
            // Binary "1" is a 4-block packet: both sets fire. Requiring
            // both makes binary slightly more robust than ternary
            // (paper §IV-b).
            Encoding::Binary => u8::from(b2 && b3),
            Encoding::Ternary => {
                if b3 {
                    2
                } else if b2 {
                    1
                } else {
                    0
                }
            }
        }
    }
}

/// A pseudo-random symbol stream from the paper's 15-bit LFSR
/// methodology.
pub fn lfsr_symbols(encoding: Encoding, count: usize, seed: u16) -> Vec<u8> {
    let mut lfsr = Lfsr15::new(seed);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        match encoding {
            Encoding::Binary => out.push(lfsr.next_bit()),
            Encoding::Ternary => {
                let v = (lfsr.next_bit() << 1) | lfsr.next_bit();
                if v < 3 {
                    out.push(v);
                }
            }
        }
    }
    out
}

/// Channel parameters.
#[derive(Copy, Clone, Debug)]
pub struct ChannelConfig {
    /// Symbol alphabet.
    pub encoding: Encoding,
    /// How many ring buffers the spy monitors (1, 2, 4, 8, 16 in
    /// Figure 12a/b). The trojan sends `ring_size / monitored_buffers`
    /// packets per symbol.
    pub monitored_buffers: usize,
    /// Trojan's frame rate (bounded by line rate).
    pub packet_rate_fps: u64,
    /// Spy's probe rate in Hz (7 k / 14 k / 28 k in Figure 11).
    pub probe_rate_hz: u64,
    /// Decoding window in samples (the paper uses 3).
    pub window: u8,
    /// Background memory activity of unrelated processes, in accesses
    /// per second, biased toward page-aligned lines (structure headers,
    /// allocator metadata). Longer probe intervals accumulate more of
    /// this noise per sample — the mechanism behind Figure 11's error
    /// falling as the probe rate rises.
    pub background_noise_aps: u64,
}

impl ChannelConfig {
    /// Figure 10/11 setup: one monitored buffer, near-line-rate sender,
    /// 14 kHz probes, ternary.
    pub fn paper_defaults() -> Self {
        ChannelConfig {
            encoding: Encoding::Ternary,
            monitored_buffers: 1,
            packet_rate_fps: 500_000,
            probe_rate_hz: 14_000,
            window: 3,
            background_noise_aps: 40_000,
        }
    }
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig::paper_defaults()
    }
}

/// Outcome of one covert transmission.
#[derive(Clone, Debug)]
pub struct ChannelReport {
    /// Symbols the trojan sent.
    pub sent_symbols: usize,
    /// Symbols the spy decoded, in order.
    pub received: Vec<u8>,
    /// Levenshtein error rate against the sent stream.
    pub error_rate: f64,
    /// Raw channel bandwidth in bits/second (sent bits over elapsed
    /// simulated time).
    pub bandwidth_bps: f64,
    /// Simulated cycles the transmission took.
    pub elapsed_cycles: Cycles,
}

/// Picks `n` ring buffers for the spy — the §IV-c selection procedure:
/// buffers whose page-aligned set hosts exactly one buffer (unambiguous
/// signal), one per *symbol arc* of the ring.
///
/// The trojan emits `ring / n` packets per symbol, so symbol `i` of a
/// ring pass occupies slots `[i·ring/n, (i+1)·ring/n)` relative to the
/// ring cursor; picking one buffer per arc (as central as possible) sees
/// each symbol exactly once. When an arc has no unique-set buffer a
/// shared-set one is used — noisier, which is part of why the paper's
/// error rate jumps at 16 monitored buffers.
///
/// Returns ring indices in arc order (symbol observation order).
///
/// # Panics
///
/// Panics if `n` is zero or exceeds the ring size.
pub fn pick_monitored_buffers(llc: &SlicedCache, driver: &IgbDriver, n: usize) -> Vec<usize> {
    assert!(n > 0, "monitor at least one buffer");
    let hist = ring_histogram(llc, driver);
    let geom = llc.geometry();
    let pages = driver.ring().page_addresses();
    let ring = pages.len();
    assert!(n <= ring, "cannot monitor more buffers than the ring holds");
    let phase = driver.ring().next_index();
    let arc = ring / n;
    let is_unique = |i: usize| hist[label_of(&geom, llc.locate(pages[i]))] == 1;
    let mut chosen: Vec<usize> = Vec::with_capacity(n);
    for k in 0..n {
        let arc_slots = (0..arc).map(|j| (phase + k * arc + j) % ring);
        let center = arc / 2;
        let best = arc_slots
            .clone()
            .enumerate()
            .filter(|(_, slot)| is_unique(*slot))
            .min_by_key(|(j, _)| j.abs_diff(center))
            .or_else(|| {
                arc_slots
                    .enumerate()
                    .min_by_key(|(j, _)| j.abs_diff(center))
            })
            .map(|(_, slot)| slot)
            .expect("arc is non-empty");
        chosen.push(best);
    }
    chosen
}

/// Builds the trojan's arrival schedule for `symbols`.
///
/// Each symbol is repeated `packets_per_symbol` times (256/n in the
/// paper) so that it passes over every monitored buffer exactly once.
pub fn trojan_schedule(
    symbols: &[u8],
    encoding: Encoding,
    packets_per_symbol: usize,
    rate_fps: u64,
    start: Cycles,
    seed: u64,
) -> Vec<ScheduledFrame> {
    assert!(
        packets_per_symbol > 0,
        "need at least one packet per symbol"
    );
    let sizes: Vec<u32> = symbols
        .iter()
        .flat_map(|&s| std::iter::repeat_n(encoding.frame_for(s).bytes(), packets_per_symbol))
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let count = sizes.len();
    let mut gen = TraceReplay::new(sizes);
    ArrivalSchedule::new(LineRate::gigabit())
        .frames_per_second(rate_fps)
        .jitter(0.02)
        // Broadcast floods start re-ordering well before nominal line
        // rate (switch queueing): the effect behind Figure 12d's error
        // jump at 640 kbps.
        .reordering(0.55, 0.1)
        .generate(&mut gen, start, count, &mut rng)
}

/// Report for the sequence-chasing channel variant (Figure 12c/d): the
/// spy follows *every* buffer in ring order and decodes one symbol per
/// packet.
#[derive(Clone, Debug)]
pub struct ChasedReport {
    /// Symbols the trojan sent (one per packet).
    pub sent_symbols: usize,
    /// Symbols decoded, in observation order.
    pub decoded: Vec<u8>,
    /// Levenshtein error rate over the synchronized (observed) stream.
    pub error_rate: f64,
    /// Out-of-sync events per sent packet.
    pub out_of_sync_rate: f64,
    /// Offered bandwidth in bits/second.
    pub bandwidth_bps: f64,
}

/// Maps a chasing size class (1..=4 blocks) back to a ternary symbol:
/// 1-block packets light blocks 0–1 (driver prefetch) → class ≤ 2 → "0";
/// 3 blocks → "1"; 4 blocks → "2".
pub fn class_to_ternary(size_class: u8) -> u8 {
    match size_class {
        0..=2 => 0,
        3 => 1,
        _ => 2,
    }
}

/// Runs the Figure 12c/d experiment: ternary symbols, one per packet,
/// chased buffer-to-buffer with the full ring sequence.
pub fn run_chased_channel(
    tb: &mut TestBed,
    pool: &AddressPool,
    symbols: &[u8],
    packet_rate_fps: u64,
) -> ChasedReport {
    let mut spy = crate::chasing::ChasingSpy::for_ring(tb.hierarchy().llc(), pool, tb.driver());
    spy.prime_all(tb);
    let frames = trojan_schedule(
        symbols,
        Encoding::Ternary,
        1,
        packet_rate_fps,
        tb.now() + 10_000,
        0xc4a5ed,
    );
    let t0 = tb.now();
    tb.enqueue(frames);

    // Probe fast relative to the packet gap; wait at most a few gaps
    // before declaring the packet missed, then wait out a full ring wrap
    // to resynchronize (§IV-c).
    let gap = pc_net::CPU_FREQ_HZ / packet_rate_fps;
    let interval = (gap / 4).max(1_000);
    let max_wait = 16usize;
    let ring = tb.driver().ring().len() as u64;
    let wrap_wait = ((2 * ring * gap) / interval.max(1)) as usize + max_wait;

    // Keep receiving until the wire is idle AND no latched evidence
    // remains: when the spy runs slower than the line it builds a backlog
    // of latched evictions it can still read out after the last frame.
    let mut decoded = Vec::with_capacity(symbols.len());
    loop {
        match spy.observe_next(tb, interval, max_wait) {
            Some(obs) => decoded.push(class_to_ternary(obs.size_class)),
            None if tb.pending_frames() == 0 => break,
            None => {
                // Lost the stream mid-flight: camp on this buffer until
                // the ring comes back around.
                if let Some(obs) = spy.observe_next(tb, interval, wrap_wait) {
                    decoded.push(class_to_ternary(obs.size_class));
                } else if tb.pending_frames() == 0 {
                    break;
                }
            }
        }
        if decoded.len() > symbols.len() * 2 {
            break; // runaway guard against pathological noise
        }
    }
    let elapsed = tb.now() - t0;
    let seconds = elapsed as f64 / pc_net::CPU_FREQ_HZ as f64;
    ChasedReport {
        sent_symbols: symbols.len(),
        error_rate: crate::levenshtein::error_rate(&decoded, symbols),
        decoded,
        out_of_sync_rate: spy.out_of_syncs() as f64 / symbols.len().max(1) as f64,
        bandwidth_bps: symbols.len() as f64 * Encoding::Ternary.bits_per_symbol()
            / seconds.max(1e-12),
    }
}

/// Unrelated processes sharing the LLC: random reads biased toward
/// page-aligned lines (structure headers, allocator metadata live
/// there), which is exactly where they collide with the spy's monitored
/// sets. The paper's noise discussion in §IV-b.
#[derive(Clone, Debug)]
pub struct BackgroundNoise {
    accesses_per_second: u64,
    rng: SmallRng,
    carry: f64,
}

/// First page of the noise tenants' region (disjoint from NIC, app and
/// attacker regions).
const NOISE_FIRST_PAGE: u64 = 1 << 21;
const NOISE_PAGES: u64 = 1 << 19;

impl BackgroundNoise {
    /// Noise at `accesses_per_second` (0 disables it).
    pub fn new(accesses_per_second: u64, seed: u64) -> Self {
        BackgroundNoise {
            accesses_per_second,
            rng: SmallRng::seed_from_u64(seed),
            carry: 0.0,
        }
    }

    /// Issues the noise accesses that fall within a `window_cycles`-long
    /// interval.
    pub fn run(&mut self, tb: &mut TestBed, window_cycles: Cycles) {
        if self.accesses_per_second == 0 {
            return;
        }
        self.carry +=
            self.accesses_per_second as f64 * window_cycles as f64 / pc_net::CPU_FREQ_HZ as f64;
        while self.carry >= 1.0 {
            self.carry -= 1.0;
            let page = NOISE_FIRST_PAGE + self.rng.gen_range(0..NOISE_PAGES);
            let block = self.rng.gen_range(0..4u64);
            tb.hierarchy_mut()
                .cpu_read(pc_cache::PhysAddr::new(page * 4096 + block * 64));
        }
    }
}

/// Per-buffer decoding state machine (window-of-3 merging of wide
/// peaks, as in Figure 10's discussion).
#[derive(Clone, Debug)]
struct Decoder {
    clock: PrimeProbe,
    b1: PrimeProbe,
    b2: PrimeProbe,
    b3: PrimeProbe,
    collecting: Option<(u8, bool, bool)>,
    cooldown: u8,
}

impl Decoder {
    fn sample(&mut self, tb: &mut TestBed, window: u8, encoding: Encoding) -> Option<u8> {
        let h = tb.hierarchy_mut();
        // A real packet lights blocks 0 AND 1 (DMA plus the driver's
        // unconditional second-block prefetch); requiring both rejects
        // stray background hits on the clock set.
        let c = self.clock.probe(h).activity() && self.b1.probe(h).activity();
        let b2 = self.b2.probe(h).activity();
        let b3 = self.b3.probe(h).activity();
        if let Some((remaining, acc2, acc3)) = self.collecting.as_mut() {
            *acc2 |= b2;
            *acc3 |= b3;
            if *remaining > 0 {
                *remaining -= 1;
                return None;
            }
            let symbol = encoding.decode(*acc2, *acc3);
            self.collecting = None;
            return Some(symbol);
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return None;
        }
        if c {
            self.collecting = Some((window.saturating_sub(2), b2, b3));
        }
        None
    }
}

/// Runs a full covert transmission end to end and reports quality.
///
/// The spy setup (buffer choice + eviction sets) uses the offline-phase
/// ground truth; the *transmission* is pure PRIME+PROBE.
pub fn run_channel(
    tb: &mut TestBed,
    pool: &AddressPool,
    symbols: &[u8],
    cfg: &ChannelConfig,
) -> ChannelReport {
    let ring = tb.driver().ring().len();
    assert!(
        cfg.monitored_buffers <= ring,
        "cannot monitor more buffers than the ring holds"
    );
    let packets_per_symbol = ring / cfg.monitored_buffers;
    let threshold = tb.hierarchy().latencies().miss_threshold();

    // Spy setup.
    let chosen = pick_monitored_buffers(tb.hierarchy().llc(), tb.driver(), cfg.monitored_buffers);
    let pages = tb.driver().ring().page_addresses();
    let mut decoders: Vec<Decoder> = chosen
        .iter()
        .map(|&i| {
            let page = pages[i];
            let llc = tb.hierarchy().llc();
            let targets = [
                llc.locate(page),
                llc.locate(page.add_blocks(1)),
                llc.locate(page.add_blocks(2)),
                llc.locate(page.add_blocks(3)),
            ];
            let mut sets = oracle_eviction_sets(llc, pool, &targets).into_iter();
            Decoder {
                clock: PrimeProbe::new(sets.next().expect("clock set"), threshold),
                b1: PrimeProbe::new(sets.next().expect("b1 set"), threshold),
                b2: PrimeProbe::new(sets.next().expect("b2 set"), threshold),
                b3: PrimeProbe::new(sets.next().expect("b3 set"), threshold),
                collecting: None,
                cooldown: 0,
            }
        })
        .collect();

    // Trojan transmission.
    let start = tb.now() + 10_000;
    let frames = trojan_schedule(
        symbols,
        cfg.encoding,
        packets_per_symbol,
        cfg.packet_rate_fps,
        start,
        0xbeef,
    );
    // The channel occupies the wire from the first to the last frame;
    // that span is what bandwidth is measured over.
    let span = frames
        .last()
        .map(|f| f.at - frames[0].at)
        .unwrap_or(0)
        .max(1);
    tb.enqueue(frames);

    for d in &decoders {
        d.clock.prime(tb.hierarchy_mut());
        d.b1.prime(tb.hierarchy_mut());
        d.b2.prime(tb.hierarchy_mut());
        d.b3.prime(tb.hierarchy_mut());
    }

    // Receive loop, with other tenants' memory activity in the
    // background.
    let interval = pc_net::CPU_FREQ_HZ / cfg.probe_rate_hz;
    let mut noise = BackgroundNoise::new(cfg.background_noise_aps, 0x2017);
    let mut received = Vec::with_capacity(symbols.len());
    let mut idle_slack = 50usize;
    let mut next = tb.now() + interval;
    while tb.pending_frames() > 0 || idle_slack > 0 {
        if tb.pending_frames() == 0 {
            idle_slack -= 1;
        }
        tb.advance_to(next);
        noise.run(tb, interval);
        for d in decoders.iter_mut() {
            if let Some(sym) = d.sample(tb, cfg.window, cfg.encoding) {
                received.push(sym);
            }
        }
        next = tb.now() + interval;
    }
    let elapsed = span;

    let error_rate = crate::levenshtein::error_rate(&received, symbols);
    let seconds = elapsed as f64 / pc_net::CPU_FREQ_HZ as f64;
    let bandwidth_bps = symbols.len() as f64 * cfg.encoding.bits_per_symbol() / seconds.max(1e-12);
    ChannelReport {
        sent_symbols: symbols.len(),
        received,
        error_rate,
        bandwidth_bps,
        elapsed_cycles: elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::{TestBed, TestBedConfig};

    #[test]
    fn encoding_round_trips() {
        for enc in [Encoding::Binary, Encoding::Ternary] {
            for s in 0..enc.alphabet() {
                let f = enc.frame_for(s);
                let blocks = f.cache_blocks();
                // Decode what the spy would see: blocks 2/3 active iff the
                // frame spans them.
                let decoded = enc.decode(blocks >= 3, blocks >= 4);
                assert_eq!(decoded, s, "{enc:?} symbol {s}");
            }
        }
    }

    #[test]
    fn bits_per_symbol() {
        assert_eq!(Encoding::Binary.bits_per_symbol(), 1.0);
        assert!((Encoding::Ternary.bits_per_symbol() - 1.585).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "outside alphabet")]
    fn invalid_symbol_panics() {
        Encoding::Binary.frame_for(2);
    }

    #[test]
    fn lfsr_symbols_are_in_alphabet_and_balanced() {
        let syms = lfsr_symbols(Encoding::Ternary, 3000, 0x1234);
        assert_eq!(syms.len(), 3000);
        for &s in &syms {
            assert!(s < 3);
        }
        let zeros = syms.iter().filter(|&&s| s == 0).count();
        assert!((700..1400).contains(&zeros), "unbalanced: {zeros} zeros");
    }

    #[test]
    fn trojan_schedule_repeats_symbols() {
        let sched = trojan_schedule(&[0, 2], Encoding::Ternary, 4, 100_000, 0, 1);
        assert_eq!(sched.len(), 8);
        for f in &sched[..4] {
            assert_eq!(f.frame.cache_blocks(), 1);
        }
        for f in &sched[4..] {
            assert_eq!(f.frame.cache_blocks(), 4);
        }
    }

    #[test]
    fn pick_monitored_buffers_one_per_arc() {
        let tb = TestBed::new(TestBedConfig::paper_baseline().with_seed(5));
        let n = 8;
        let chosen = pick_monitored_buffers(tb.hierarchy().llc(), tb.driver(), n);
        assert_eq!(chosen.len(), n);
        let ring = tb.driver().ring().len();
        let arc = ring / n;
        let hist = ring_histogram(tb.hierarchy().llc(), tb.driver());
        let geom = tb.hierarchy().llc().geometry();
        let pages = tb.driver().ring().page_addresses();
        let mut unique = 0;
        for (k, &slot) in chosen.iter().enumerate() {
            // Fresh bed: phase is 0, so arc k covers [k*arc, (k+1)*arc).
            assert!(
                (k * arc..(k + 1) * arc).contains(&slot),
                "buffer {slot} outside arc {k}"
            );
            let lbl = label_of(&geom, tb.hierarchy().llc().locate(pages[slot]));
            unique += usize::from(hist[lbl] == 1);
        }
        assert!(
            unique >= n - 1,
            "only {unique}/{n} unique-set buffers chosen"
        );
    }

    #[test]
    fn short_ternary_transmission_decodes() {
        let mut cfg_bed = TestBedConfig::paper_baseline().with_seed(6);
        cfg_bed.driver.ring_size = 16; // keep the test fast
        let mut tb = TestBed::new(cfg_bed);
        let pool = AddressPool::allocate(71, 12288);
        let symbols = lfsr_symbols(Encoding::Ternary, 40, 0x7ace);
        let cfg = ChannelConfig {
            encoding: Encoding::Ternary,
            monitored_buffers: 1,
            packet_rate_fps: 100_000,
            probe_rate_hz: 28_000,
            window: 3,
            background_noise_aps: 0,
        };
        let report = run_channel(&mut tb, &pool, &symbols, &cfg);
        assert!(
            report.error_rate < 0.15,
            "error {} too high; received {:?}",
            report.error_rate,
            report.received
        );
        assert!(report.bandwidth_bps > 0.0);
    }

    #[test]
    fn binary_is_no_worse_than_ternary() {
        let mut cfg_bed = TestBedConfig::paper_baseline().with_seed(7);
        cfg_bed.driver.ring_size = 16;
        let pool = AddressPool::allocate(72, 12288);
        let run = |enc: Encoding| {
            let mut tb = TestBed::new(cfg_bed);
            let symbols = lfsr_symbols(enc, 30, 0x2bad);
            let cfg = ChannelConfig {
                encoding: enc,
                monitored_buffers: 1,
                packet_rate_fps: 100_000,
                probe_rate_hz: 28_000,
                window: 3,
                background_noise_aps: 0,
            };
            run_channel(&mut tb, &pool, &symbols, &cfg).error_rate
        };
        let bin = run(Encoding::Binary);
        let ter = run(Encoding::Ternary);
        assert!(bin <= ter + 0.05, "binary {bin} vs ternary {ter}");
    }
}
