//! The web-fingerprinting side channel (§V).
//!
//! The spy chases packets while a victim's browser loads a page, giving
//! it a vector of (cache-block-granular) packet sizes over time. Offline,
//! the attacker builds one *representative trace* per site of interest —
//! the point-wise average of training captures — and classifies live
//! captures with a cross-correlation score (the paper's "simple
//! correlation-based classifier").

use crate::chasing::ChasingSpy;
use crate::testbed::{TestBed, TestBedConfig};
use pc_cache::Cycles;
use pc_net::{
    ArrivalSchedule, EthernetFrame, LineRate, LoginOutcome, LoginTraceSource, TraceReplay,
    WebsiteProfile,
};
use pc_probe::AddressPool;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A captured trace: size classes (1..=4 blocks, 4 = "4 or more") of the
/// first `len` packets of a page load.
pub type SizeTrace = Vec<u8>;

/// How the fingerprint experiments drive the capture.
#[derive(Copy, Clone, Debug)]
pub struct CaptureConfig {
    /// Packets per capture (the paper plots/classifies the first 100).
    pub trace_len: usize,
    /// Victim traffic rate in frames/second.
    pub packet_rate_fps: u64,
    /// Spy probe interval in cycles while waiting on a buffer.
    pub probe_interval: Cycles,
    /// Samples to wait before declaring a packet missed.
    pub max_wait_samples: usize,
}

impl CaptureConfig {
    /// Defaults suited to a browser page load over 1 GbE.
    pub fn paper_defaults() -> Self {
        CaptureConfig {
            trace_len: 100,
            packet_rate_fps: 20_000,
            probe_interval: 15_000,
            max_wait_samples: 40,
        }
    }
}

impl Default for CaptureConfig {
    fn default() -> Self {
        CaptureConfig::paper_defaults()
    }
}

/// The ground-truth size classes of a frame list (what tcpdump would
/// show, clamped to the spy's 4-block ceiling).
pub fn true_size_classes(frames: &[EthernetFrame], len: usize) -> SizeTrace {
    frames
        .iter()
        .take(len)
        .map(|f| f.cache_blocks().min(4) as u8)
        .collect()
}

/// Captures one page load through the cache: enqueues the victim's
/// frames and chases them with `spy`, returning the observed size-class
/// trace (padded with 1s if packets were missed).
pub fn capture_trace(
    tb: &mut TestBed,
    spy: &mut ChasingSpy,
    frames: &[EthernetFrame],
    cfg: &CaptureConfig,
) -> SizeTrace {
    spy.prime_all(tb);
    let mut rng = SmallRng::seed_from_u64(tb.now() ^ 0xf1f0);
    let mut gen = TraceReplay::new(frames.iter().map(|f| f.bytes()).collect());
    let schedule = ArrivalSchedule::new(LineRate::gigabit())
        .frames_per_second(cfg.packet_rate_fps)
        .generate(&mut gen, tb.now() + 50_000, frames.len(), &mut rng);
    tb.enqueue(schedule);

    let mut trace = Vec::with_capacity(cfg.trace_len);
    let mut attempts = 0usize;
    while trace.len() < cfg.trace_len && attempts < cfg.trace_len * 2 {
        attempts += 1;
        if let Some(obs) = spy.observe_next(tb, cfg.probe_interval, cfg.max_wait_samples) {
            trace.push(obs.size_class);
        }
        if tb.pending_frames() == 0 && trace.len() < cfg.trace_len {
            break;
        }
    }
    trace.resize(cfg.trace_len, 1);
    trace
}

/// Normalized cross-correlation at lag 0..`max_lag` between a trace and
/// a representative; the classification score.
pub fn cross_correlation_score(trace: &[u8], representative: &[f64], max_lag: usize) -> f64 {
    if trace.is_empty() || representative.is_empty() {
        return 0.0;
    }
    let t: Vec<f64> = trace.iter().map(|&v| f64::from(v)).collect();
    let mut best = f64::MIN;
    for lag in 0..=max_lag {
        let n = t.len().saturating_sub(lag).min(representative.len());
        if n == 0 {
            break;
        }
        let a = &t[lag..lag + n];
        let b = &representative[..n];
        let ma = a.iter().sum::<f64>() / n as f64;
        let mb = b.iter().sum::<f64>() / n as f64;
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for i in 0..n {
            let da = a[i] - ma;
            let db = b[i] - mb;
            cov += da * db;
            va += da * da;
            vb += db * db;
        }
        let denom = (va * vb).sqrt();
        let score = if denom < 1e-12 { 0.0 } else { cov / denom };
        best = best.max(score);
    }
    best
}

/// A trained classifier: one representative (point-wise average) trace
/// per class.
#[derive(Clone, Debug)]
pub struct CorrelationClassifier {
    names: Vec<String>,
    representatives: Vec<Vec<f64>>,
    max_lag: usize,
}

impl CorrelationClassifier {
    /// Trains from labelled traces: `training[class]` is a list of
    /// captures of that class.
    ///
    /// # Panics
    ///
    /// Panics if classes and names differ in count, or any class has no
    /// training traces.
    pub fn train(names: Vec<String>, training: &[Vec<SizeTrace>], max_lag: usize) -> Self {
        assert_eq!(names.len(), training.len(), "one name per class");
        let representatives = training
            .iter()
            .map(|traces| {
                assert!(!traces.is_empty(), "class with no training traces");
                let len = traces.iter().map(Vec::len).max().expect("non-empty");
                let mut avg = vec![0.0f64; len];
                for t in traces {
                    for (i, &v) in t.iter().enumerate() {
                        avg[i] += f64::from(v);
                    }
                }
                for (i, a) in avg.iter_mut().enumerate() {
                    let count = traces.iter().filter(|t| t.len() > i).count().max(1);
                    *a /= count as f64;
                }
                avg
            })
            .collect();
        CorrelationClassifier {
            names,
            representatives,
            max_lag,
        }
    }

    /// Class names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The representative vector for class `idx`.
    pub fn representative(&self, idx: usize) -> &[f64] {
        &self.representatives[idx]
    }

    /// Classifies a trace, returning the best class index and its score.
    pub fn classify(&self, trace: &[u8]) -> (usize, f64) {
        let mut best = (0usize, f64::MIN);
        for (i, rep) in self.representatives.iter().enumerate() {
            let score = cross_correlation_score(trace, rep, self.max_lag);
            if score > best.1 {
                best = (i, score);
            }
        }
        best
    }
}

/// A nearest-neighbor classifier under edit distance.
///
/// The paper uses a correlation classifier on (size, timing) vectors and
/// notes that better classifiers only improve the attack. Our synthetic
/// page loads perturb traces with *insertions and deletions*
/// (retransmissions, drops), which destroys positional alignment — the
/// failure mode cross-correlation cannot absorb. Edit distance is the
/// natural alignment-free metric for the same size-class strings, so the
/// closed-world evaluation uses this classifier; see EXPERIMENTS.md.
#[derive(Clone, Debug)]
pub struct EditDistanceClassifier {
    names: Vec<String>,
    training: Vec<Vec<SizeTrace>>,
}

impl EditDistanceClassifier {
    /// Stores the labelled training captures.
    ///
    /// # Panics
    ///
    /// Panics if names and classes differ in count or a class is empty.
    pub fn train(names: Vec<String>, training: Vec<Vec<SizeTrace>>) -> Self {
        assert_eq!(names.len(), training.len(), "one name per class");
        assert!(
            training.iter().all(|t| !t.is_empty()),
            "every class needs at least one training trace"
        );
        EditDistanceClassifier { names, training }
    }

    /// Class names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Classifies by nearest training trace; returns `(class index,
    /// distance)`.
    pub fn classify(&self, trace: &[u8]) -> (usize, usize) {
        let mut best = (0usize, usize::MAX);
        for (ci, traces) in self.training.iter().enumerate() {
            for t in traces {
                let d = crate::levenshtein::levenshtein(trace, t);
                if d < best.1 {
                    best = (ci, d);
                }
            }
        }
        best
    }
}

/// Result of a closed-world evaluation run.
#[derive(Clone, Debug)]
pub struct FingerprintAccuracy {
    /// Fraction of trials classified correctly.
    pub accuracy: f64,
    /// Trials evaluated.
    pub trials: usize,
    /// Confusion matrix: `confusion[truth][predicted]`.
    pub confusion: Vec<Vec<usize>>,
}

/// Trains and evaluates the closed-world fingerprinting attack on a set
/// of site profiles, capturing every trace through the cache side
/// channel on fresh test beds.
///
/// `bed_config` selects DDIO on/off — the experiment behind the paper's
/// 89.7 % (DDIO) vs 86.5 % (no DDIO) numbers.
///
/// Every capture (site × training run, then site × trial) is an
/// independent page load on a fresh test bed with its own RNG stream
/// derived via [`pc_par::stream_seed`] (the `Capture` domain) from
/// `(seed, salt)`, so the whole
/// site×trial grid fans out over worker threads with ordered collection
/// — the same per-repetition-seed contract the `pc-bench` experiments
/// use. `PC_BENCH_THREADS=1` forces sequential capture; results are
/// identical either way.
pub fn evaluate_closed_world(
    bed_config: TestBedConfig,
    sites: &[WebsiteProfile],
    training_per_site: usize,
    trials_per_site: usize,
    noise: f64,
    capture: &CaptureConfig,
    seed: u64,
) -> FingerprintAccuracy {
    let pool = AddressPool::allocate(seed ^ 0xf00d, 16384);

    let capture_one = |site: usize, salt: u64| {
        // A fresh bed per page load: the victim machine's ring state
        // differs per session; the spy re-syncs each time. The page-load
        // noise stream is a pure function of (seed, salt), never of the
        // schedule that ran this capture.
        let mut rng =
            SmallRng::seed_from_u64(pc_par::stream_seed(seed, pc_par::SeedDomain::Capture, salt));
        let mut tb = TestBed::new(bed_config.with_seed(seed ^ salt));
        let mut spy = ChasingSpy::for_ring(tb.hierarchy().llc(), &pool, tb.driver());
        let frames = sites[site].page_load(noise, &mut rng);
        capture_trace(&mut tb, &mut spy, &frames, capture)
    };

    // Train: one job per (site, training run), collected in input order
    // and regrouped per site.
    let train_jobs: Vec<(usize, u64)> = (0..sites.len())
        .flat_map(|si| (0..training_per_site).map(move |t| (si, (si * 1000 + t) as u64)))
        .collect();
    let mut captured =
        pc_par::parallel_map(train_jobs, |(si, salt)| capture_one(si, salt)).into_iter();
    let training: Vec<Vec<SizeTrace>> = (0..sites.len())
        .map(|_| captured.by_ref().take(training_per_site).collect())
        .collect();
    let classifier = EditDistanceClassifier::train(
        sites.iter().map(|s| s.name().to_owned()).collect(),
        training,
    );

    // Evaluate: one job per (site, trial); classification happens on the
    // worker too (the classifier is immutable shared state).
    let eval_jobs: Vec<(usize, u64)> = (0..sites.len())
        .flat_map(|si| (0..trials_per_site).map(move |t| (si, (0x5a5a + si * 7717 + t) as u64)))
        .collect();
    let predictions = pc_par::parallel_map(eval_jobs, |(si, salt)| {
        let trace = capture_one(si, salt);
        (si, classifier.classify(&trace).0)
    });

    let mut confusion = vec![vec![0usize; sites.len()]; sites.len()];
    let mut correct = 0usize;
    let mut trials = 0usize;
    for (si, pred) in predictions {
        confusion[si][pred] += 1;
        correct += usize::from(pred == si);
        trials += 1;
    }
    FingerprintAccuracy {
        accuracy: correct as f64 / trials.max(1) as f64,
        trials,
        confusion,
    }
}

/// The Figure 13 experiment: original vs recovered size traces for a
/// successful and an unsuccessful hotcrp login.
///
/// Returns `(original, recovered)` for the requested outcome.
pub fn login_trace_pair(
    bed_config: TestBedConfig,
    outcome: LoginOutcome,
    capture: &CaptureConfig,
    seed: u64,
) -> (SizeTrace, SizeTrace) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let source = LoginTraceSource::hotcrp();
    let frames = source.trace(outcome, capture.trace_len, 0.05, &mut rng);
    let original = true_size_classes(&frames, capture.trace_len);

    let pool = AddressPool::allocate(seed ^ 0xf00d, 16384);
    let mut tb = TestBed::new(bed_config.with_seed(seed));
    let mut spy = ChasingSpy::for_ring(tb.hierarchy().llc(), &pool, tb.driver());
    let recovered = capture_trace(&mut tb, &mut spy, &frames, capture);
    (original, recovered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_net::ClosedWorld;

    #[test]
    fn correlation_prefers_the_matching_representative() {
        let rep_a: Vec<f64> = vec![4.0, 4.0, 1.0, 1.0, 4.0, 1.0, 4.0, 4.0];
        let rep_b: Vec<f64> = vec![1.0, 1.0, 4.0, 4.0, 1.0, 4.0, 1.0, 1.0];
        let trace_a: Vec<u8> = vec![4, 4, 1, 1, 4, 1, 4, 4];
        assert!(
            cross_correlation_score(&trace_a, &rep_a, 2)
                > cross_correlation_score(&trace_a, &rep_b, 2)
        );
    }

    #[test]
    fn correlation_tolerates_small_shifts() {
        let rep: Vec<f64> = vec![1.0, 4.0, 4.0, 1.0, 4.0, 1.0, 1.0, 4.0, 2.0, 3.0];
        let shifted: Vec<u8> = vec![2, 1, 4, 4, 1, 4, 1, 1, 4, 2]; // lag 1
        assert!(cross_correlation_score(&shifted, &rep, 3) > 0.8);
    }

    #[test]
    fn classifier_separates_synthetic_classes() {
        let a: SizeTrace = vec![4, 4, 4, 1, 1, 1, 4, 4, 4, 1];
        let b: SizeTrace = vec![1, 1, 4, 4, 1, 1, 4, 4, 1, 1];
        let clf = CorrelationClassifier::train(
            vec!["a".into(), "b".into()],
            &[vec![a.clone(), a.clone()], vec![b.clone(), b.clone()]],
            2,
        );
        assert_eq!(clf.classify(&a).0, 0);
        assert_eq!(clf.classify(&b).0, 1);
        assert_eq!(clf.names(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn true_size_classes_clamp_at_four() {
        let frames = vec![
            EthernetFrame::with_blocks(1),
            EthernetFrame::with_blocks(3),
            EthernetFrame::mtu_sized(),
        ];
        assert_eq!(true_size_classes(&frames, 3), vec![1, 3, 4]);
    }

    #[test]
    fn captured_trace_tracks_original() {
        // One page load, captured through the cache, must correlate far
        // better with its own ground truth than with a different site's.
        let world = ClosedWorld::paper_five_sites();
        let mut rng = SmallRng::seed_from_u64(31);
        let cfg = CaptureConfig {
            trace_len: 60,
            ..CaptureConfig::paper_defaults()
        };
        let mut bed_cfg = TestBedConfig::paper_baseline().with_seed(9);
        bed_cfg.driver.ring_size = 32; // fast setup
        let pool = AddressPool::allocate(77, 16384);

        let frames_a = world.sites()[0].page_load(0.02, &mut rng);
        let frames_b = world.sites()[1].page_load(0.02, &mut rng);
        let truth_a: Vec<f64> = true_size_classes(&frames_a, 60)
            .iter()
            .map(|&v| f64::from(v))
            .collect();
        let truth_b: Vec<f64> = true_size_classes(&frames_b, 60)
            .iter()
            .map(|&v| f64::from(v))
            .collect();

        let mut tb = TestBed::new(bed_cfg);
        let mut spy = ChasingSpy::for_ring(tb.hierarchy().llc(), &pool, tb.driver());
        let captured = capture_trace(&mut tb, &mut spy, &frames_a, &cfg);

        let self_score = cross_correlation_score(&captured, &truth_a, 4);
        let cross_score = cross_correlation_score(&captured, &truth_b, 4);
        assert!(
            self_score > cross_score,
            "captured trace correlates better with the wrong site \
             (self {self_score:.3} vs cross {cross_score:.3})"
        );
        assert!(
            self_score > 0.5,
            "self correlation too weak: {self_score:.3}"
        );
    }

    #[test]
    fn login_outcomes_are_distinguishable() {
        let cfg = CaptureConfig {
            trace_len: 100,
            ..CaptureConfig::paper_defaults()
        };
        let mut bed_cfg = TestBedConfig::paper_baseline();
        bed_cfg.driver.ring_size = 32;
        let (orig_ok, rec_ok) = login_trace_pair(bed_cfg, LoginOutcome::Successful, &cfg, 41);
        let (orig_bad, rec_bad) = login_trace_pair(bed_cfg, LoginOutcome::Unsuccessful, &cfg, 42);
        let rep_ok: Vec<f64> = orig_ok.iter().map(|&v| f64::from(v)).collect();
        let rep_bad: Vec<f64> = orig_bad.iter().map(|&v| f64::from(v)).collect();
        // Each recovered trace matches its own outcome better.
        assert!(
            cross_correlation_score(&rec_ok, &rep_ok, 4)
                > cross_correlation_score(&rec_ok, &rep_bad, 4)
        );
        assert!(
            cross_correlation_score(&rec_bad, &rep_bad, 4)
                > cross_correlation_score(&rec_bad, &rep_ok, 4)
        );
    }
}
