//! The offline discovery phase (§III-B): finding the ring's cache
//! footprint.
//!
//! The key insight: rx buffers start on page (or half-page) boundaries,
//! so their first blocks can only live in the 256 *page-aligned*
//! set-slices (32 page-aligned indices per slice × 8 slices). Monitoring
//! those — instead of all 16 384 sets — is what makes the attack's probe
//! rate feasible.

use crate::testbed::TestBed;
use pc_cache::{CacheGeometry, Cycles, SliceSet, SlicedCache};
use pc_nic::{DriverConfig, IgbDriver, PageAllocator};
use pc_probe::{oracle_eviction_sets, AddressPool, Monitor, MonitorTarget, SampleMatrix};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The spy's numbering of a page-aligned set-slice: `0..256` on the
/// paper's machine, ordering sets within a slice first.
pub fn label_of(geom: &CacheGeometry, ss: SliceSet) -> usize {
    debug_assert!(geom.is_page_aligned_set(ss.set & !63));
    ss.slice * geom.page_aligned_sets_per_slice() + (ss.set >> 6)
}

/// All page-aligned set-slices, in label order — the candidate locations
/// of every rx buffer's first block.
pub fn page_aligned_targets(geom: &CacheGeometry) -> Vec<SliceSet> {
    block_row_targets(geom, 0)
}

/// The set-slices that can hold block `block` (0..64) of any page: set
/// indices congruent to `block` mod 64. Row `k` of Figure 8 monitors
/// `block_row_targets(geom, k)`.
///
/// # Panics
///
/// Panics if `block >= 64` (a page holds 64 lines).
pub fn block_row_targets(geom: &CacheGeometry, block: usize) -> Vec<SliceSet> {
    assert!(block < 64, "a 4 KiB page has 64 cache lines");
    let mut out = Vec::with_capacity(geom.page_aligned_set_slices());
    for slice in 0..geom.slices() {
        for i in 0..geom.page_aligned_sets_per_slice() {
            out.push(SliceSet::new(slice, geom.page_aligned_set_index(i) + block));
        }
    }
    out
}

/// Builds a labelled monitor over `targets` using oracle eviction sets
/// (experiment setup; see `pc-probe` docs on the instrumentation
/// boundary). Labels are positions in `targets`.
pub fn build_monitor(llc: &SlicedCache, pool: &AddressPool, targets: &[SliceSet]) -> Monitor {
    let threshold = pc_cache::LatencyModel::server_defaults().miss_threshold();
    let sets = oracle_eviction_sets(llc, pool, targets);
    let targets = sets
        .into_iter()
        .enumerate()
        .map(|(label, set)| MonitorTarget::new(label, set, threshold))
        .collect();
    Monitor::new(targets)
}

/// Samples `monitor` every `interval` cycles for `samples` rounds while
/// the test bed delivers whatever traffic is queued — the Figure 7
/// heat-map loop.
pub fn watch(
    tb: &mut TestBed,
    monitor: &Monitor,
    samples: usize,
    interval: Cycles,
) -> SampleMatrix {
    let mut matrix = monitor.matrix();
    monitor.prime_all(tb.hierarchy_mut());
    let mut next = tb.now() + interval;
    for _ in 0..samples {
        tb.advance_to(next);
        matrix.push(monitor.sample(tb.hierarchy_mut()));
        next += interval;
    }
    matrix
}

/// Ground truth for Figure 5: how many of the driver's rx buffer *pages*
/// map to each page-aligned set label.
///
/// (The paper gets this by instrumenting the driver to print buffer
/// physical addresses.)
pub fn ring_histogram(llc: &SlicedCache, driver: &IgbDriver) -> Vec<usize> {
    let geom = llc.geometry();
    let mut counts = vec![0usize; geom.page_aligned_set_slices()];
    for page in driver.ring().page_addresses() {
        counts[label_of(&geom, llc.locate(page))] += 1;
    }
    counts
}

/// The Figure 6 experiment: allocate the ring `instances` times and
/// histogram how many page-aligned sets end up with 0, 1, 2, … buffers.
///
/// Returns `dist` where `dist[k]` = total number of (instance, set) pairs
/// with exactly `k` buffers mapped.
pub fn mapping_distribution(geom: &CacheGeometry, instances: usize, seed: u64) -> Vec<usize> {
    let hash = pc_cache::SliceHash::for_slices(geom.slices() as u32);
    let mut dist: Vec<usize> = Vec::new();
    for inst in 0..instances {
        let mut rng = SmallRng::seed_from_u64(seed + inst as u64);
        let alloc = PageAllocator::new(
            seed.wrapping_add((inst as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let driver = IgbDriver::new(DriverConfig::paper_defaults(), alloc, &mut rng);
        let mut counts = vec![0usize; geom.page_aligned_set_slices()];
        for page in driver.ring().page_addresses() {
            let ss = SliceSet::new(hash.slice_of(page), geom.set_index(page));
            counts[label_of(geom, ss)] += 1;
        }
        for c in counts {
            if c >= dist.len() {
                dist.resize(c + 1, 0);
            }
            dist[c] += 1;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::TestBedConfig;
    use pc_net::{ArrivalSchedule, ConstantSize, LineRate};

    #[test]
    fn labels_cover_0_to_255() {
        let geom = CacheGeometry::xeon_e5_2660();
        let targets = page_aligned_targets(&geom);
        assert_eq!(targets.len(), 256);
        let labels: Vec<usize> = targets.iter().map(|t| label_of(&geom, *t)).collect();
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..256).collect::<Vec<_>>());
        assert_eq!(
            labels,
            (0..256).collect::<Vec<_>>(),
            "targets are in label order"
        );
    }

    #[test]
    fn block_rows_shift_set_index() {
        let geom = CacheGeometry::xeon_e5_2660();
        let row0 = block_row_targets(&geom, 0);
        let row3 = block_row_targets(&geom, 3);
        for (a, b) in row0.iter().zip(&row3) {
            assert_eq!(b.set, a.set + 3);
            assert_eq!(b.slice, a.slice);
        }
    }

    #[test]
    fn ring_histogram_sums_to_ring_size() {
        let tb = TestBed::new(TestBedConfig::paper_baseline());
        let hist = ring_histogram(tb.hierarchy().llc(), tb.driver());
        assert_eq!(hist.len(), 256);
        assert_eq!(hist.iter().sum::<usize>(), 256);
        // Nonuniform: some sets empty, some multiply loaded.
        assert!(hist.contains(&0));
        assert!(hist.iter().any(|&c| c >= 2));
    }

    #[test]
    fn mapping_distribution_matches_poisson_shape() {
        let geom = CacheGeometry::xeon_e5_2660();
        let dist = mapping_distribution(&geom, 50, 99);
        let total: usize = dist.iter().sum();
        assert_eq!(total, 50 * 256);
        // ~e^-1 of sets empty (paper: "around 35%").
        let empty_frac = dist[0] as f64 / total as f64;
        assert!(
            (0.30..0.45).contains(&empty_frac),
            "empty fraction {empty_frac}"
        );
        // >4 buffers per set is rare (paper: 5 in 1000).
        let heavy: usize = dist.iter().skip(5).sum();
        assert!((heavy as f64) < total as f64 * 0.01);
    }

    #[test]
    fn watch_sees_receiving_vs_idle() {
        let mut tb = TestBed::new(TestBedConfig::paper_baseline());
        let geom = tb.hierarchy().llc().geometry();
        // Monitor a modest subset to keep the test fast.
        let targets: Vec<SliceSet> = page_aligned_targets(&geom).into_iter().take(32).collect();
        let pool = AddressPool::allocate(41, 12288);
        let monitor = build_monitor(tb.hierarchy().llc(), &pool, &targets);

        // Phase 1: idle.
        let idle = watch(&mut tb, &monitor, 20, 100_000);
        let idle_events: usize = idle.activity_counts().iter().sum();

        // Phase 2: broadcast frames arriving.
        let mut rng = SmallRng::seed_from_u64(1);
        let frames = ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(200_000)
            .generate(&mut ConstantSize::blocks(4), tb.now(), 2000, &mut rng);
        tb.enqueue(frames);
        let busy = watch(&mut tb, &monitor, 20, 100_000);
        let busy_events: usize = busy.activity_counts().iter().sum();

        assert_eq!(idle_events, 0, "idle phase must be clean");
        assert!(
            busy_events > 10,
            "receiving phase must light up ({busy_events} events)"
        );
    }
}
