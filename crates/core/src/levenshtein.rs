//! Levenshtein (edit) distance — the paper's metric for both sequence
//! recovery quality (Table I) and covert-channel error rates (§IV-a).

/// Edit distance between two sequences: the minimum number of
/// single-element insertions, deletions or substitutions turning `a`
/// into `b`.
///
/// ```
/// use pc_core::levenshtein::levenshtein;
/// assert_eq!(levenshtein(b"kitten", b"sitting"), 3);
/// assert_eq!(levenshtein(&[1, 2, 3], &[1, 3]), 1);
/// ```
pub fn levenshtein<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Two-row DP.
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, ai) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, bj) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ai != bj);
            curr[j + 1] = sub.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Edit distance treating `a` as a *ring*: the minimum
/// [`levenshtein`] over all rotations of `a`.
///
/// The recovered buffer sequence has an arbitrary starting point ("the
/// choice of the starting node doesn't change the outcome"), so Table I's
/// distance is computed against the best alignment.
pub fn cyclic_levenshtein<T: PartialEq + Clone>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() || b.is_empty() {
        return levenshtein(a, b);
    }
    let mut best = usize::MAX;
    let mut rotated: Vec<T> = a.to_vec();
    for _ in 0..a.len() {
        best = best.min(levenshtein(&rotated, b));
        rotated.rotate_left(1);
    }
    best
}

/// Length of the longest run of consecutive mismatches in the optimal
/// (greedy, rotation-aligned) element-wise comparison — Table I's
/// "Longest Mismatch" row.
pub fn longest_mismatch_run<T: PartialEq + Clone>(recovered: &[T], truth: &[T]) -> usize {
    if recovered.is_empty() || truth.is_empty() {
        return recovered.len().max(truth.len());
    }
    // Align by the rotation that minimizes plain Hamming-style mismatch.
    let n = recovered.len().min(truth.len());
    let mut best_run = usize::MAX;
    let mut rotated = recovered.to_vec();
    for _ in 0..recovered.len() {
        let mut run = 0usize;
        let mut longest = 0usize;
        for i in 0..n {
            if rotated[i] != truth[i] {
                run += 1;
                longest = longest.max(run);
            } else {
                run = 0;
            }
        }
        longest = longest.max(recovered.len().abs_diff(truth.len()));
        best_run = best_run.min(longest);
        rotated.rotate_left(1);
    }
    best_run
}

/// Error rate in `[0, 1]`: edit distance normalized by the reference
/// length (the paper's "Error Rate (%)" rows).
pub fn error_rate<T: PartialEq>(received: &[T], reference: &[T]) -> f64 {
    if reference.is_empty() {
        return if received.is_empty() { 0.0 } else { 1.0 };
    }
    levenshtein(received, reference) as f64 / reference.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_is_zero() {
        assert_eq!(levenshtein(b"abc", b"abc"), 0);
        assert_eq!(cyclic_levenshtein(b"abc", b"abc"), 0);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(levenshtein::<u8>(&[], &[]), 0);
        assert_eq!(levenshtein(b"", b"abc"), 3);
        assert_eq!(levenshtein(b"abc", b""), 3);
    }

    #[test]
    fn classic_examples() {
        assert_eq!(levenshtein(b"kitten", b"sitting"), 3);
        assert_eq!(levenshtein(b"flaw", b"lawn"), 2);
        assert_eq!(levenshtein(b"ab", b"ba"), 2);
    }

    #[test]
    fn symmetry() {
        assert_eq!(
            levenshtein(b"hello", b"world"),
            levenshtein(b"world", b"hello")
        );
    }

    #[test]
    fn cyclic_finds_rotation() {
        // "cdeab" is "abcde" rotated; plain distance is large, cyclic 0.
        assert!(levenshtein(b"cdeab", b"abcde") > 0);
        assert_eq!(cyclic_levenshtein(b"cdeab", b"abcde"), 0);
    }

    #[test]
    fn cyclic_counts_real_edits() {
        // one substitution survives every rotation
        assert_eq!(cyclic_levenshtein(b"cdxab", b"abcde"), 1);
    }

    #[test]
    fn error_rate_normalizes() {
        assert_eq!(error_rate(b"abcd", b"abcd"), 0.0);
        assert!((error_rate(b"abxd", b"abcd") - 0.25).abs() < 1e-12);
        assert_eq!(error_rate::<u8>(&[], &[]), 0.0);
        assert_eq!(error_rate(b"a", b""), 1.0);
    }

    #[test]
    fn mismatch_run_detects_burst() {
        let truth = [1, 2, 3, 4, 5, 6, 7, 8];
        let recovered = [1, 2, 9, 9, 9, 6, 7, 8];
        assert_eq!(longest_mismatch_run(&recovered, &truth), 3);
        assert_eq!(longest_mismatch_run(&truth, &truth), 0);
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let seqs: [&[u8]; 4] = [b"abc", b"abd", b"xbd", b"xyz"];
        for a in seqs {
            for b in seqs {
                for c in seqs {
                    assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
                }
            }
        }
    }
}
