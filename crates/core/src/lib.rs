//! # pc-core — the Packet Chasing attack
//!
//! This crate implements the paper's contribution on top of the
//! substrates:
//!
//! * [`TestBed`] — glues the simulated machine together: hierarchy + IGB
//!   driver + scheduled frame arrivals + the deferred payload reads of
//!   the no-DDIO path, all on one cycle clock.
//! * [`footprint`] — the offline discovery phase (§III-B): monitoring the
//!   256 page-aligned set-slices, recovering the ring's cache footprint
//!   (Figures 5–7) and packet sizes (Figure 8).
//! * [`sequencer`] — Algorithm 1: recovering the *order* in which ring
//!   buffers fill, from cache samples alone (Table I).
//! * [`chasing`] — the online phase: following packets buffer-to-buffer
//!   using the recovered sequence, with out-of-sync detection
//!   (Figure 12c/d).
//! * [`covert`] — the remote covert channel (§IV): a trojan encodes
//!   symbols in broadcast-frame sizes; a spy with no network access
//!   decodes them through the cache (Figures 10–12).
//! * [`fingerprint`] — the web-fingerprinting side channel (§V): packet
//!   size-class traces and the correlation classifier (Figure 13 and the
//!   89.7 % / 86.5 % closed-world result).
//! * [`levenshtein`] — the edit-distance metric used for both sequence
//!   quality (Table I) and channel error rates.
//!
//! ## Example
//!
//! Stand up the paper's machine and watch one packet land:
//!
//! ```
//! use pc_core::{TestBed, TestBedConfig};
//! use pc_net::{EthernetFrame, ScheduledFrame};
//!
//! let mut tb = TestBed::new(TestBedConfig::paper_baseline());
//! let before = tb.hierarchy().llc().stats().io_misses;
//! tb.enqueue(vec![ScheduledFrame::new(
//!     tb.now(),
//!     EthernetFrame::clamped(192), // 3 cache blocks via DDIO
//! )]);
//! tb.drain();
//! assert!(tb.hierarchy().llc().stats().io_misses > before);
//! assert_eq!(tb.records().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chasing;
pub mod covert;
pub mod fingerprint;
pub mod footprint;
pub mod levenshtein;
pub mod sequencer;
mod testbed;

pub use testbed::{
    reset_window_stats, rss_queues_from_env, rx_engine_from_env, window_stats_snapshot, RxEngine,
    RxRecord, TestBed, TestBedConfig, WindowStats,
};
