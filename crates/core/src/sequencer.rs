//! Algorithm 1: recovering the ring-buffer fill order from cache samples.
//!
//! The spy monitors a window of page-aligned sets while packets stream
//! in. Because the ring is filled strictly in order, consecutive
//! activity observations are (noisy) adjacent pairs of the cyclic buffer
//! sequence. The paper's SEQUENCER builds a *second-order* transition
//! graph — edges keyed by `(prev, curr) → cand` so that two different
//! buffers sharing one cache set can be told apart by their successors —
//! then walks the heaviest edges to read the ring order back out.

use crate::footprint::{build_monitor, label_of};
use crate::levenshtein::{cyclic_levenshtein, longest_mismatch_run};
use crate::testbed::TestBed;
use pc_cache::{Cycles, SliceSet, SlicedCache};
use pc_nic::IgbDriver;
use pc_probe::{AddressPool, SampleMatrix};

/// Tuning for the sequence-recovery procedure.
#[derive(Copy, Clone, Debug)]
pub struct SequencerConfig {
    /// Samples to collect per monitoring window.
    pub samples: usize,
    /// Cycles between samples (probe period).
    pub interval: Cycles,
    /// Stop the graph walk when the best outgoing edge weighs less than
    /// this.
    pub weight_cutoff: u32,
    /// GET_CLEAN_SAMPLES: a set active in more than this fraction of
    /// samples is considered always-miss and swapped for the page's
    /// second block.
    pub activity_cutoff: f64,
    /// Safety cap on recovered-sequence length (a multiple of the number
    /// of monitored sets).
    pub max_length_factor: usize,
}

impl SequencerConfig {
    /// Defaults mirroring Table I's parameters, scaled to the simulator:
    /// 100 k samples per window is the paper's number; tests use fewer.
    pub fn paper_defaults() -> Self {
        SequencerConfig {
            samples: 100_000,
            interval: 120_000,
            weight_cutoff: 2,
            activity_cutoff: 0.9,
            max_length_factor: 4,
        }
    }
}

impl Default for SequencerConfig {
    fn default() -> Self {
        SequencerConfig::paper_defaults()
    }
}

/// The second-order transition graph: `weight[(prev, curr)][cand]`.
#[derive(Clone, Debug)]
pub struct EdgeGraph {
    n: usize,
    w: Vec<u32>, // flattened n³
}

impl EdgeGraph {
    /// BUILD_GRAPH over an activity matrix (columns are monitor labels).
    pub fn build(matrix: &SampleMatrix) -> Self {
        let n = matrix.labels().len();
        let mut g = EdgeGraph {
            n,
            w: vec![0; n * n * n],
        };
        let (mut prev, mut curr) = (0usize, 0usize);
        let mut started = false;
        for row in matrix.rows() {
            // Rows are sparse bitsets; walk only the active columns.
            for cand in row.iter_active() {
                if !started {
                    prev = cand;
                    curr = cand;
                    started = true;
                    continue;
                }
                if cand == curr {
                    // Wide peak: the same packet's activity spanning two
                    // samples — not a transition.
                    continue;
                }
                if curr != prev {
                    g.w[(prev * n + curr) * n + cand] += 1;
                }
                prev = curr;
                curr = cand;
            }
        }
        g
    }

    /// Number of monitored sets (columns).
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the graph is over zero sets.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Edge weight for `(prev, curr) → cand`.
    pub fn weight(&self, prev: usize, curr: usize, cand: usize) -> u32 {
        self.w[(prev * self.n + curr) * self.n + cand]
    }

    fn weight_mut(&mut self, prev: usize, curr: usize, cand: usize) -> &mut u32 {
        &mut self.w[(prev * self.n + curr) * self.n + cand]
    }

    /// The heaviest `(prev, curr)` edges — candidate traversal roots, by
    /// descending weight.
    fn roots(&self, limit: usize) -> Vec<(usize, usize)> {
        let mut pairs: Vec<((usize, usize), u64)> = Vec::new();
        for p in 0..self.n {
            for c in 0..self.n {
                let total: u64 = (0..self.n).map(|x| u64::from(self.weight(p, c, x))).sum();
                if total > 0 {
                    pairs.push(((p, c), total));
                }
            }
        }
        pairs.sort_by_key(|&(_, total)| std::cmp::Reverse(total));
        pairs.into_iter().take(limit).map(|(pc, _)| pc).collect()
    }

    /// MAKE_SEQUENCE: walk the heaviest edges from a root until the walk
    /// returns to it (one full ring) or weights drop below `cutoff`.
    /// Returns monitor-column indices in ring order.
    ///
    /// The paper notes the starting node doesn't change the outcome *on a
    /// clean graph*; with sampling noise a walk can strand early, so we
    /// try several heavy roots and keep the longest recovered cycle.
    pub fn make_sequence(self, cutoff: u32, max_len: usize) -> Vec<usize> {
        let mut best: Vec<usize> = Vec::new();
        for root in self.roots(8) {
            let seq = self.clone().walk_from(root, cutoff, max_len);
            if seq.len() > best.len() {
                best = seq;
            }
        }
        best
    }

    fn walk_from(mut self, root: (usize, usize), cutoff: u32, max_len: usize) -> Vec<usize> {
        let (mut prev, mut curr) = root;
        let mut sequence = Vec::new();
        loop {
            sequence.push(curr);
            if sequence.len() >= max_len {
                break;
            }
            let next = (0..self.n)
                .max_by_key(|&x| self.weight(prev, curr, x))
                .expect("graph has columns");
            let weight = self.weight(prev, curr, next);
            if weight < cutoff {
                break;
            }
            *self.weight_mut(prev, curr, next) = 0; // mark visited
            prev = curr;
            curr = next;
            if (prev, curr) == root {
                break;
            }
        }
        sequence
    }
}

/// Recovers the ring order of the monitored `targets` (by label index in
/// `targets`) from one sampling window.
///
/// The caller must have traffic queued on the test bed (the paper uses a
/// cooperating remote sender, but *any* steady packet stream works —
/// "noise in this step only helps the spy").
pub fn recover_window(
    tb: &mut TestBed,
    pool: &AddressPool,
    targets: &[SliceSet],
    cfg: &SequencerConfig,
) -> Vec<usize> {
    let matrix = sample_targets(tb, pool, targets, cfg);
    let graph = EdgeGraph::build(&matrix);
    graph.make_sequence(cfg.weight_cutoff, targets.len() * cfg.max_length_factor)
}

/// Extends a recovered window to the full target list — the paper's
/// §III-C procedure: "we first find the sequence for 32 cache sets, then
/// we repeat the SEQUENCER procedure with the first 31 nodes plus a
/// candidate node and we try to find the location of the candidate in
/// the sequence", splicing each candidate between the neighbors the
/// window run reveals.
///
/// The caller must keep enough traffic queued on the test bed: every
/// candidate costs one full sampling window.
///
/// Returns indices into `targets` in ring order. Candidates that never
/// fire (their set hosts no buffer) are correctly absent; candidates
/// whose neighbors cannot be matched are appended to the end and counted
/// in the second return value (`unplaced`).
pub fn recover_ring_sequence(
    tb: &mut TestBed,
    pool: &AddressPool,
    targets: &[SliceSet],
    window: usize,
    cfg: &SequencerConfig,
) -> (Vec<usize>, usize) {
    assert!(window >= 3, "window must hold at least three sets");
    let window = window.min(targets.len());
    // Base sequence over the first `window` targets (global indices
    // 0..window coincide with local ones).
    let mut seq = recover_window(tb, pool, &targets[..window], cfg);
    let mut unplaced = 0usize;

    for cand in window..targets.len() {
        // Monitor the first window-1 base sets plus the candidate.
        let mut mon: Vec<SliceSet> = targets[..window - 1].to_vec();
        mon.push(targets[cand]);
        let sub = recover_window(tb, pool, &mon, cfg);
        let cand_local = window - 1;
        let Some(p) = sub.iter().position(|&x| x == cand_local) else {
            continue; // candidate set hosts no buffer (or was missed)
        };
        if sub.len() < 3 {
            unplaced += 1;
            seq.push(cand);
            continue;
        }
        let pred = sub[(p + sub.len() - 1) % sub.len()];
        let succ = sub[(p + 1) % sub.len()];
        // `pred`/`succ` are indices into the shared window prefix, which
        // are global indices too. Find that adjacency in the base
        // sequence — the (prev, curr) pair disambiguates duplicate sets.
        let n = seq.len();
        let slot = (0..n).find(|&j| seq[j] == pred && seq[(j + 1) % n] == succ);
        match slot.or_else(|| (0..n).find(|&j| seq[j] == pred)) {
            Some(j) => seq.insert((j + 1) % n.max(1), cand),
            None => {
                unplaced += 1;
                seq.push(cand);
            }
        }
    }
    (seq, unplaced)
}

/// GET_CLEAN_SAMPLES: samples `targets`, swapping any always-miss target
/// for the page's second block and resampling once.
pub fn sample_targets(
    tb: &mut TestBed,
    pool: &AddressPool,
    targets: &[SliceSet],
    cfg: &SequencerConfig,
) -> SampleMatrix {
    let mut working: Vec<SliceSet> = targets.to_vec();
    for _attempt in 0..2 {
        let monitor = build_monitor(tb.hierarchy().llc(), pool, &working);
        let matrix = crate::footprint::watch(tb, &monitor, cfg.samples, cfg.interval);
        let noisy: Vec<usize> = matrix
            .activity_fractions()
            .iter()
            .enumerate()
            .filter(|(_, f)| **f > cfg.activity_cutoff)
            .map(|(i, _)| i)
            .collect();
        if noisy.is_empty() {
            return matrix;
        }
        for i in noisy {
            // Replace with the second cache block of the page.
            working[i] = SliceSet::new(working[i].slice, working[i].set + 1);
        }
    }
    let monitor = build_monitor(tb.hierarchy().llc(), pool, &working);
    crate::footprint::watch(tb, &monitor, cfg.samples, cfg.interval)
}

/// Ground truth: the cyclic label sequence the monitored sets *should*
/// produce — ring slots in order, keeping only buffers whose page maps
/// to a monitored target, emitting that target's index.
pub fn ground_truth_sequence(
    llc: &SlicedCache,
    driver: &IgbDriver,
    targets: &[SliceSet],
) -> Vec<usize> {
    let geom = llc.geometry();
    let target_labels: Vec<usize> = targets.iter().map(|t| label_of(&geom, *t)).collect();
    let mut out = Vec::new();
    for page in driver.ring().page_addresses() {
        let lbl = label_of(&geom, llc.locate(page));
        if let Some(idx) = target_labels.iter().position(|&t| t == lbl) {
            out.push(idx);
        }
    }
    out
}

/// Table I's quality metrics for a recovered sequence.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SequenceQuality {
    /// Cyclic edit distance to ground truth.
    pub levenshtein: usize,
    /// Distance normalized by ground-truth length.
    pub error_rate: f64,
    /// Longest run of consecutive mismatches.
    pub longest_mismatch: usize,
    /// Recovered sequence length.
    pub recovered_len: usize,
    /// Ground-truth sequence length.
    pub truth_len: usize,
    /// Simulated cycles the recovery took.
    pub elapsed_cycles: Cycles,
}

impl SequenceQuality {
    /// Compares a recovered sequence against ground truth.
    pub fn evaluate(recovered: &[usize], truth: &[usize], elapsed_cycles: Cycles) -> Self {
        let lev = cyclic_levenshtein(recovered, truth);
        SequenceQuality {
            levenshtein: lev,
            error_rate: if truth.is_empty() {
                0.0
            } else {
                lev as f64 / truth.len() as f64
            },
            longest_mismatch: longest_mismatch_run(recovered, truth),
            recovered_len: recovered.len(),
            truth_len: truth.len(),
            elapsed_cycles,
        }
    }

    /// Recovery time in simulated minutes at the modelled clock (Table
    /// I's "Time (Minutes)" row).
    pub fn minutes(&self) -> f64 {
        self.elapsed_cycles as f64 / pc_net::CPU_FREQ_HZ as f64 / 60.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::page_aligned_targets;
    use crate::testbed::TestBedConfig;
    use pc_net::{ArrivalSchedule, ConstantSize, LineRate};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Synthetic matrix: a clean cyclic pattern 0→1→…→n-1→0.
    fn clean_matrix(n: usize, rounds: usize) -> SampleMatrix {
        let mut m = SampleMatrix::new((0..n).collect());
        for r in 0..rounds * n {
            let active = r % n;
            let mut row = vec![false; n];
            row[active] = true;
            m.push(row);
        }
        m
    }

    #[test]
    fn clean_cycle_is_recovered_exactly() {
        let m = clean_matrix(8, 20);
        let seq = EdgeGraph::build(&m).make_sequence(2, 32);
        assert_eq!(seq.len(), 8, "one full ring: {seq:?}");
        let truth: Vec<usize> = (0..8).collect();
        assert_eq!(cyclic_levenshtein(&seq, &truth), 0, "recovered {seq:?}");
    }

    #[test]
    fn wide_peaks_are_deduplicated() {
        // Each activity spans two samples (the "wide peak" case of
        // Figure 10); the sequence must not contain doubled entries.
        let n = 6;
        let mut m = SampleMatrix::new((0..n).collect());
        for r in 0..n * 15 {
            let active = r % n;
            let mut row = vec![false; n];
            row[active] = true;
            m.push(row.clone());
            m.push(row); // duplicate sample
        }
        let seq = EdgeGraph::build(&m).make_sequence(2, 24);
        let truth: Vec<usize> = (0..n).collect();
        assert_eq!(cyclic_levenshtein(&seq, &truth), 0, "recovered {seq:?}");
    }

    #[test]
    fn shared_sets_resolved_by_history() {
        // Ring: 0 1 2 1 3 — set 1 hosts two buffers (like cache set 2 in
        // the paper's Figure 9). First-order inference cannot recover
        // this; the (prev, curr) keyed graph can.
        let ring = [0usize, 1, 2, 1, 3];
        let n = 4;
        let mut m = SampleMatrix::new((0..n).collect());
        for r in 0..ring.len() * 40 {
            let active = ring[r % ring.len()];
            let mut row = vec![false; n];
            row[active] = true;
            m.push(row);
        }
        let seq = EdgeGraph::build(&m).make_sequence(2, 20);
        assert_eq!(cyclic_levenshtein(&seq, &ring), 0, "recovered {seq:?}");
    }

    #[test]
    fn empty_matrix_gives_empty_sequence() {
        let m = SampleMatrix::new(vec![0, 1, 2]);
        let seq = EdgeGraph::build(&m).make_sequence(2, 12);
        assert!(seq.is_empty());
    }

    #[test]
    fn quality_metrics_on_perfect_recovery() {
        let truth: Vec<usize> = (0..16).collect();
        let mut recovered = truth.clone();
        recovered.rotate_left(5);
        let q = SequenceQuality::evaluate(&recovered, &truth, 3_300_000_000 * 60);
        assert_eq!(q.levenshtein, 0);
        assert_eq!(q.error_rate, 0.0);
        assert_eq!(q.longest_mismatch, 0);
        assert!((q.minutes() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn window_extension_places_candidates() {
        let mut tb = TestBed::new(TestBedConfig::paper_baseline().with_seed(88));
        let geom = tb.hierarchy().llc().geometry();
        let targets: Vec<SliceSet> = page_aligned_targets(&geom).into_iter().take(16).collect();
        let pool = AddressPool::allocate(56, 12288);
        let mut rng = SmallRng::seed_from_u64(6);
        // Enough traffic for the base window plus 8 extension windows.
        let frames = ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(40_000)
            .jitter(0.01)
            .generate(
                &mut ConstantSize::blocks(2),
                tb.now() + 1000,
                110_000,
                &mut rng,
            );
        tb.enqueue(frames);
        let cfg = SequencerConfig {
            samples: 7_000,
            interval: pc_net::CPU_FREQ_HZ / 40_000 / 2,
            ..SequencerConfig::paper_defaults()
        };
        let (seq, unplaced) = recover_ring_sequence(&mut tb, &pool, &targets, 8, &cfg);
        let truth = ground_truth_sequence(tb.hierarchy().llc(), tb.driver(), &targets);
        let q = SequenceQuality::evaluate(&seq, &truth, 0);
        assert!(
            q.error_rate < 0.40,
            "extension too lossy: {q:?} seq={seq:?} truth={truth:?} unplaced={unplaced}"
        );
        assert!(unplaced <= 3, "{unplaced} candidates unplaced");
    }

    #[test]
    fn end_to_end_window_recovery() {
        // Full pipeline on the simulator: monitor 12 page-aligned sets
        // while a constant packet stream loops the ring, then check the
        // recovered order against driver ground truth.
        let mut tb = TestBed::new(TestBedConfig::paper_baseline().with_seed(77));
        let geom = tb.hierarchy().llc().geometry();
        let targets: Vec<SliceSet> = page_aligned_targets(&geom).into_iter().take(12).collect();
        let pool = AddressPool::allocate(55, 12288);

        // Traffic: 2-block broadcast frames, steady rate. Choose the rate
        // and probe interval so roughly one monitored buffer fires per
        // sample window (the paper's tuning discussion).
        let mut rng = SmallRng::seed_from_u64(4);
        let frames = ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(40_000)
            .jitter(0.01)
            .generate(
                &mut ConstantSize::blocks(2),
                tb.now() + 1000,
                12_000,
                &mut rng,
            );
        tb.enqueue(frames);

        let cfg = SequencerConfig {
            samples: 9_000,
            interval: pc_net::CPU_FREQ_HZ / 40_000 / 2, // 2 samples per packet
            ..SequencerConfig::paper_defaults()
        };
        let recovered = recover_window(&mut tb, &pool, &targets, &cfg);
        let truth = ground_truth_sequence(tb.hierarchy().llc(), tb.driver(), &targets);
        assert!(!truth.is_empty());
        let q = SequenceQuality::evaluate(&recovered, &truth, 0);
        assert!(
            q.error_rate < 0.35,
            "recovery too poor: {:?} truth={truth:?} recovered={recovered:?}",
            q
        );
    }
}
