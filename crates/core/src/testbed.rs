//! The simulated machine the attack runs on: hierarchy + driver +
//! scheduled arrivals, all sharing one clock.
//!
//! ## Burst delivery and clock windows
//!
//! Frame delivery is windowed on the default engine: every queued
//! arrival that is provably in the past gets fused into **one**
//! [`IgbDriver::receive_burst`] op batch (sharded by slice when it is
//! big enough), and the window is cut only where something must observe
//! the mid-stream clock:
//!
//! * **gap syncs** — an arrival ahead of the replay clock jumps the
//!   clock to an absolute time, which a fixed [`pc_cache::CacheOp`]
//!   lead cannot express mid-batch (the lead's value would depend on
//!   the latencies still being replayed); the window flushes, the gap
//!   is applied at the now-exact clock, and the next window opens;
//! * **deferred no-DDIO reads** — a large frame without DDIO needs the
//!   exact cycle its header reads finished (to schedule its payload
//!   reads), and while any deferred read is pending every frame
//!   boundary must run the due ones at the exact clock;
//! * **probe epochs** — each [`TestBed::advance_to`] call returns with
//!   all pending ops applied, so a monitor sampling between calls (the
//!   `footprint::watch` loop) always observes a fully synchronized
//!   machine. Windows never span an `advance_to` boundary.
//!
//! Whether a queued arrival is "provably in the past" is decided
//! without observing the clock: the bed tracks a lower bound (window
//! start plus each collected frame's [`DriverConfig::min_frame_cycles`])
//! and cuts the window when the next arrival could outrun it. Within a
//! window every inter-frame gap is therefore zero, and the remaining
//! clock movement — driver overheads, defense costs — rides the op
//! stream as [`pc_cache::CacheOp::lead`]s. All engines are
//! byte-identical; see `RxEngine`.

use pc_cache::{CacheGeometry, Cycles, DdioMode, Hierarchy, LatencyModel, PhysAddr};
use pc_net::ScheduledFrame;
use pc_nic::{DeferredReads, DriverConfig, IgbDriver, PageAllocator};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Which replay engine drives frame receives through the hierarchy.
///
/// All paths are byte-identical (pinned by `pc-nic`'s equivalence
/// suite and this module's own tests); the choice is purely about
/// performance and observability.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub enum RxEngine {
    /// Windowed burst delivery — the fast path, and the default: every
    /// pending arrival in a clock window replays as one fused
    /// [`IgbDriver::receive_burst`] batch (sharded by slice when large
    /// enough), flushing only where a frame must observe the
    /// mid-stream clock (see the module docs).
    #[default]
    Batched,
    /// One op batch per frame through [`IgbDriver::receive`] — the
    /// pre-windowing default, kept as the burst engine's per-frame
    /// reference.
    PerFrame,
    /// Access-by-access replay ([`IgbDriver::receive_scalar`]) — the
    /// equivalence oracle; pick it when an experiment must observe
    /// per-access latencies in the middle of a frame.
    PerAccess,
}

impl RxEngine {
    /// Parses a CLI/environment engine name (`batched`, `per-frame`,
    /// `per-access`). The single name list — [`rx_engine_from_env`]
    /// and `repro --rx-engine` both go through it, so the two cannot
    /// drift.
    pub fn parse(name: &str) -> Option<RxEngine> {
        match name {
            "batched" => Some(RxEngine::Batched),
            "per-frame" => Some(RxEngine::PerFrame),
            "per-access" => Some(RxEngine::PerAccess),
            _ => None,
        }
    }
}

/// Upper bound on the op count of one delivery window (the workspace
/// op-scratch cap, [`pc_cache::ops::OP_SCRATCH_CAP`] = 64 Ki ops, well
/// past the sharded-dispatch threshold). Cutting a window early is
/// always legal — a flush is a correct place to observe the clock —
/// so the cap is a pure scheduling choice and never changes results
/// (the delivery property tests and the CI thread-count byte-diff hold
/// for any cap); it bounds the op scratch when a drain faces a huge
/// backlog.
const MAX_WINDOW_OPS: u64 = pc_cache::ops::OP_SCRATCH_CAP;

/// Reads the `PC_RX_ENGINE` environment variable (`batched`,
/// `per-frame` or `per-access`) — the CI determinism job uses it to
/// byte-diff whole scenario runs across engines without touching
/// scenario code. Returns `None` when unset.
///
/// # Panics
///
/// Panics on an unrecognized value: a CI matrix leg silently falling
/// back to the default engine would pass vacuously.
pub fn rx_engine_from_env() -> Option<RxEngine> {
    let v = std::env::var("PC_RX_ENGINE").ok()?;
    Some(
        RxEngine::parse(&v).unwrap_or_else(|| {
            panic!("PC_RX_ENGINE must be batched|per-frame|per-access, got `{v}`")
        }),
    )
}

/// Everything needed to stand up a [`TestBed`].
#[derive(Copy, Clone, Debug)]
pub struct TestBedConfig {
    /// LLC shape (default: the paper's Xeon E5-2660).
    pub geometry: CacheGeometry,
    /// DDIO mode under test.
    pub ddio: DdioMode,
    /// Driver configuration (ring size, copybreak, defenses…).
    pub driver: DriverConfig,
    /// Component latencies.
    pub latencies: LatencyModel,
    /// Master seed for the bed's stochastic pieces (page placement,
    /// driver decisions).
    pub seed: u64,
    /// Record every received packet as ground truth (cheap; on by
    /// default).
    pub record_rx: bool,
    /// How frame receives replay against the hierarchy.
    pub rx_engine: RxEngine,
}

impl TestBedConfig {
    /// The paper's vulnerable baseline: DDIO on, stock IGB driver.
    ///
    /// The receive engine honours [`rx_engine_from_env`] so one binary
    /// can run a whole scenario suite on each engine; an explicit
    /// [`TestBedConfig::with_rx_engine`] still wins.
    pub fn paper_baseline() -> Self {
        TestBedConfig {
            geometry: CacheGeometry::xeon_e5_2660(),
            ddio: DdioMode::enabled(),
            driver: DriverConfig::paper_defaults(),
            latencies: LatencyModel::server_defaults(),
            seed: 0x9ac4e7,
            record_rx: true,
            rx_engine: rx_engine_from_env().unwrap_or_default(),
        }
    }

    /// Same machine with DDIO disabled (§IV-d / §V "without DDIO").
    pub fn no_ddio() -> Self {
        TestBedConfig {
            ddio: DdioMode::Disabled,
            ..TestBedConfig::paper_baseline()
        }
    }

    /// Same machine under the adaptive partitioning defense (§VII).
    pub fn adaptive_defense() -> Self {
        TestBedConfig {
            ddio: DdioMode::adaptive(),
            ..TestBedConfig::paper_baseline()
        }
    }

    /// Replaces the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the receive replay engine (builder style).
    pub fn with_rx_engine(mut self, rx_engine: RxEngine) -> Self {
        self.rx_engine = rx_engine;
        self
    }
}

impl Default for TestBedConfig {
    fn default() -> Self {
        TestBedConfig::paper_baseline()
    }
}

/// Ground-truth record of one received frame.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct RxRecord {
    /// Cycle the NIC received the frame (its scheduled arrival time —
    /// pure input data, so the record is identical on every
    /// [`RxEngine`]; a backlogged frame is *processed* later than
    /// this).
    pub at: Cycles,
    /// Ring descriptor index it landed in.
    pub buffer_index: usize,
    /// DMA address of the buffer's first block.
    pub buffer_addr: PhysAddr,
    /// Cache blocks written.
    pub blocks: u32,
}

/// The victim machine: one hierarchy, one NIC driver, a queue of future
/// frame arrivals, and the deferred payload reads of the no-DDIO path.
///
/// The spy and the experiments drive time forward through
/// [`TestBed::advance_to`] and probe through
/// [`TestBed::hierarchy_mut`]; frames scheduled with
/// [`TestBed::enqueue`] are delivered whenever the clock passes their
/// arrival time — fused into burst windows on the default engine (see
/// the module docs).
#[derive(Clone, Debug)]
pub struct TestBed {
    h: Hierarchy,
    driver: IgbDriver,
    pending: VecDeque<ScheduledFrame>,
    deferred: DeferredReads,
    rng: SmallRng,
    records: Vec<RxRecord>,
    record_rx: bool,
    rx_engine: RxEngine,
    /// Window scratch (frames + arrival times of the burst being
    /// collected); content never outlives one flush, capacity carried.
    burst_frames: Vec<pc_net::EthernetFrame>,
    burst_ats: Vec<Cycles>,
}

impl TestBed {
    /// The seeded machine parts: hierarchy, driver, RNG — one
    /// definition shared by [`TestBed::new`] and [`TestBed::reset`] so
    /// a reused bed can never drift from a freshly built one.
    fn build(cfg: &TestBedConfig) -> (Hierarchy, IgbDriver, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let llc = pc_cache::SlicedCache::new(cfg.geometry, cfg.ddio);
        let h = Hierarchy::with_llc(llc).with_latencies(cfg.latencies);
        let alloc = PageAllocator::new(cfg.seed ^ 0x5eed_1a7e);
        let driver = IgbDriver::new(cfg.driver, alloc, &mut rng);
        (h, driver, rng)
    }

    /// Builds the machine.
    pub fn new(cfg: TestBedConfig) -> Self {
        let (h, driver, rng) = TestBed::build(&cfg);
        TestBed {
            h,
            driver,
            pending: VecDeque::new(),
            deferred: DeferredReads::new(),
            rng,
            records: Vec::new(),
            record_rx: cfg.record_rx,
            rx_engine: cfg.rx_engine,
            burst_frames: Vec::new(),
            burst_ats: Vec::new(),
        }
    }

    /// Rebuilds this bed in place for `cfg`, behaviourally identical to
    /// `*self = TestBed::new(cfg)` but keeping the heap capacity of the
    /// bed's queues and scratch buffers. The fleet driver runs
    /// thousands of tenants per worker thread; resetting one bed per
    /// worker instead of building one per tenant keeps the per-tenant
    /// setup cost at clears rather than allocations.
    pub fn reset(&mut self, cfg: TestBedConfig) {
        let (h, driver, rng) = TestBed::build(&cfg);
        self.h = h;
        self.driver = driver;
        self.rng = rng;
        self.pending.clear();
        self.deferred = DeferredReads::new();
        self.records.clear();
        self.record_rx = cfg.record_rx;
        self.rx_engine = cfg.rx_engine;
        self.burst_frames.clear();
        self.burst_ats.clear();
    }

    /// Current cycle.
    pub fn now(&self) -> Cycles {
        self.h.now()
    }

    /// The hierarchy, for the spy's probes.
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.h
    }

    /// Read-only hierarchy view.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.h
    }

    /// The driver (ground-truth ring inspection).
    pub fn driver(&self) -> &IgbDriver {
        &self.driver
    }

    /// The active receive engine.
    pub fn rx_engine(&self) -> RxEngine {
        self.rx_engine
    }

    /// Ground-truth receive log (empty when `record_rx` is off).
    pub fn records(&self) -> &[RxRecord] {
        &self.records
    }

    /// Clears the receive log.
    pub fn clear_records(&mut self) {
        self.records.clear();
    }

    /// Frames still waiting to arrive.
    pub fn pending_frames(&self) -> usize {
        self.pending.len()
    }

    /// Queues future arrivals. Frames must be sorted by time; they are
    /// merged with whatever is already pending.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is not sorted by arrival time.
    pub fn enqueue(&mut self, frames: Vec<ScheduledFrame>) {
        assert!(
            frames.windows(2).all(|w| w[0].at <= w[1].at),
            "arrival stream must be sorted"
        );
        if self.pending.is_empty() {
            self.pending = frames.into();
        } else {
            let existing: Vec<ScheduledFrame> = self.pending.drain(..).collect();
            self.pending = pc_net::merge_schedules(existing, frames).into();
        }
    }

    /// Delivers every frame whose arrival time has passed and runs due
    /// deferred reads. Returns the number of frames delivered.
    ///
    /// Frames already due are back-to-back by definition (nothing
    /// between them observes the clock — this entry point runs deferred
    /// reads once, at the end), so on the burst engine the backlog
    /// fuses into [`IgbDriver::receive_burst`] batches, cut only by the
    /// op scratch cap.
    pub fn deliver_due(&mut self) -> usize {
        // Same scheduling rule as advance_to: windowing feeds the
        // sharded batch engine, so a worker-less host delivers per
        // frame (byte-identical either way).
        let delivered = match self.rx_engine {
            RxEngine::Batched if pc_par::max_threads() > 1 => {
                let cfg = *self.driver.config();
                let mut frames = std::mem::take(&mut self.burst_frames);
                let mut ats = std::mem::take(&mut self.burst_ats);
                let mut n = 0;
                // Delivery advances the clock, which can make further
                // frames due (the per-frame loop re-checks after every
                // frame); burst the due prefix repeatedly until none is.
                loop {
                    let now = self.h.now();
                    let mut ops_estimate = 0u64;
                    frames.clear();
                    ats.clear();
                    while let Some(front) = self.pending.front() {
                        if front.at > now || ops_estimate >= MAX_WINDOW_OPS {
                            break;
                        }
                        let sf = self.pending.pop_front().expect("peeked");
                        let (blocks, small) = cfg.frame_shape(sf.frame);
                        ops_estimate += cfg.frame_op_count(blocks, small);
                        frames.push(sf.frame);
                        ats.push(sf.at);
                    }
                    if frames.is_empty() {
                        break;
                    }
                    self.flush_burst(&frames, &ats);
                    n += frames.len();
                }
                frames.clear();
                ats.clear();
                self.burst_frames = frames;
                self.burst_ats = ats;
                n
            }
            _ => {
                let mut delivered = 0;
                while let Some(front) = self.pending.front() {
                    if front.at > self.h.now() {
                        break;
                    }
                    let sf = self.pending.pop_front().expect("peeked");
                    self.receive_now(sf);
                    delivered += 1;
                }
                delivered
            }
        };
        self.deferred.run_due(&mut self.h);
        delivered
    }

    /// Advances the clock to `target`, delivering arrivals on the way.
    /// (If the clock is already past `target` this only delivers due
    /// work.)
    ///
    /// On the burst engine this is [`TestBed::run_window`] plus the
    /// trailing advance; the per-frame engines deliver one frame at a
    /// time. Both orders of operations are byte-identical.
    pub fn advance_to(&mut self, target: Cycles) {
        // Windowing exists to feed the sharded batch engine; without
        // worker threads the op-recording round-trip cannot pay for
        // itself, so a sequential host delivers per frame — the paths
        // are byte-identical (this module's tests pin it), the choice
        // is pure scheduling.
        if self.rx_engine == RxEngine::Batched && pc_par::max_threads() > 1 {
            self.advance_to_windowed(target);
        } else {
            self.deliver_per_frame_to(target);
            self.finish_advance(target);
        }
    }

    /// The windowed arm of [`TestBed::advance_to`] — one definition,
    /// shared with the property tests (which drive it directly so the
    /// burst machinery is exercised even on hosts where the public
    /// entry point legitimately picks per-frame delivery).
    fn advance_to_windowed(&mut self, target: Cycles) {
        self.run_window(target);
        self.finish_advance(target);
    }

    /// The shared tail of every advance: trailing clock advance to
    /// `target`, then due deferred reads.
    fn finish_advance(&mut self, target: Cycles) {
        if target > self.h.now() {
            let gap = target - self.h.now();
            self.h.advance(gap);
        }
        self.deferred.run_due(&mut self.h);
    }

    /// Per-frame delivery of every arrival up to `target` (gap advance,
    /// one receive, due deferred reads — per frame), on whichever
    /// receive path [`TestBed::receive_now`] selects for the engine.
    /// Returns the number of frames delivered.
    fn deliver_per_frame_to(&mut self, target: Cycles) -> usize {
        let mut delivered = 0;
        loop {
            let next_arrival = self.pending.front().map(|f| f.at);
            match next_arrival {
                Some(at) if at <= target => {
                    if at > self.h.now() {
                        let gap = at - self.h.now();
                        self.h.advance(gap);
                    }
                    let sf = self.pending.pop_front().expect("peeked");
                    self.receive_now(sf);
                    self.deferred.run_due(&mut self.h);
                    delivered += 1;
                }
                _ => break,
            }
        }
        delivered
    }

    /// Runs one delivery window: every pending arrival up to `target`
    /// is delivered as fused [`IgbDriver::receive_burst`] batches,
    /// flushing only at the clock-observation points listed in the
    /// module docs. Returns the number of frames delivered; the clock
    /// ends wherever the last delivered work left it (callers wanting
    /// the clock *at* `target` use [`TestBed::advance_to`]).
    ///
    /// Byte-identical to per-frame delivery of the same arrivals —
    /// events, records, clock, statistics, ring state and RNG stream —
    /// for any window shape, including zero inter-arrival gaps,
    /// duplicate arrival times and a `target` landing exactly on an
    /// arrival (this module's property tests pin those edges).
    ///
    /// On the `PerFrame` / `PerAccess` engines this honours the
    /// configured receive path instead of windowing: an experiment
    /// that picked the per-access oracle to observe mid-frame
    /// latencies keeps that observability whichever delivery entry
    /// point drives it.
    pub fn run_window(&mut self, target: Cycles) -> usize {
        if self.rx_engine != RxEngine::Batched {
            return self.deliver_per_frame_to(target);
        }
        let _engine = pc_cache::fault::engine_scope(pc_cache::fault::Engine::WindowedRx);
        let lat = self.h.latencies();
        let min_lat = lat.llc_hit.min(lat.dram);
        let ddio = self.h.llc().mode().allocates_in_llc();
        let cfg = *self.driver.config();
        let mut delivered = 0usize;
        let mut frames = std::mem::take(&mut self.burst_frames);
        let mut ats = std::mem::take(&mut self.burst_ats);
        while let Some(front_at) = self.pending.front().map(|f| f.at) {
            if front_at > target {
                break;
            }
            // Gap sync: the window boundary is the one place the clock
            // is exact, so an arrival still ahead of it jumps the clock
            // here; inside the window gaps are zero by construction.
            if front_at > self.h.now() {
                let gap = front_at - self.h.now();
                self.h.advance(gap);
            }
            // Collect the longest run of arrivals provably in the past:
            // `lb` is a lower bound on the clock after replaying the
            // frames collected so far.
            let mut lb = self.h.now();
            let mut ops_estimate = 0u64;
            frames.clear();
            ats.clear();
            while let Some(front) = self.pending.front() {
                if front.at > target || front.at > lb || ops_estimate >= MAX_WINDOW_OPS {
                    break;
                }
                let sf = self.pending.pop_front().expect("peeked");
                let (blocks, small) = cfg.frame_shape(sf.frame);
                lb += cfg.min_shape_cycles(blocks, small, min_lat);
                ops_estimate += cfg.frame_op_count(blocks, small);
                frames.push(sf.frame);
                ats.push(sf.at);
                // Clock-observing boundaries close the window: a
                // deferring frame (its payload-read due time), and —
                // while deferred reads are pending — every frame (the
                // due ones must run between frames, at the exact
                // clock). Fault site `burst-flush-elision` lets the
                // windowed engine skip one deferred-pending cut, so
                // pending payload reads replay after frames they
                // should precede.
                if (!small && !ddio)
                    || (!self.deferred.is_empty()
                        && !pc_cache::fault::fires(pc_cache::fault::FaultSite::BurstFlushElision))
                {
                    break;
                }
            }
            debug_assert!(!frames.is_empty(), "the sync put the front in the past");
            self.flush_burst(&frames, &ats);
            self.deferred.run_due(&mut self.h);
            delivered += frames.len();
        }
        frames.clear();
        ats.clear();
        self.burst_frames = frames;
        self.burst_ats = ats;
        delivered
    }

    /// Replays one collected window. The window *boundaries* encode the
    /// clock-observation semantics; which engine replays the inside is
    /// a pure scheduling choice between byte-identical paths (pc-nic's
    /// equivalence suite pins them): a multi-frame window takes the
    /// batch engine ([`IgbDriver::receive_burst`]), whose fused op
    /// stream shards by slice; a degenerate one-frame window streams
    /// through [`IgbDriver::receive`] rather than paying the batch
    /// scratch round-trip for nothing.
    fn flush_burst(&mut self, frames: &[pc_net::EthernetFrame], ats: &[Cycles]) {
        if frames.len() > 1 {
            let events = self
                .driver
                .receive_burst(&mut self.h, frames, &mut self.rng);
            for (ev, &at) in events.iter().zip(ats) {
                self.record_event(ev, at);
            }
        } else {
            for (&frame, &at) in frames.iter().zip(ats) {
                let ev = self.driver.receive(&mut self.h, frame, &mut self.rng);
                self.record_event(&ev, at);
            }
        }
    }

    fn record_event(&mut self, ev: &pc_nic::RxEvent, at: Cycles) {
        self.deferred.extend(ev.deferred_reads.iter().copied());
        if self.record_rx {
            self.records.push(RxRecord {
                at,
                buffer_index: ev.buffer_index,
                buffer_addr: ev.buffer_addr,
                blocks: ev.blocks,
            });
        }
    }

    /// Runs until every queued frame has been delivered.
    pub fn drain(&mut self) {
        while let Some(last_at) = self.pending.back().map(|f| f.at) {
            self.advance_to(last_at);
        }
        self.deferred.drain_all(&mut self.h);
    }

    fn receive_now(&mut self, sf: ScheduledFrame) {
        // The frame's memory traffic pipelines as one op batch on the
        // per-frame engine; the per-access oracle replays it one access
        // at a time (identical results, pinned below and in pc-nic).
        let ev = match self.rx_engine {
            RxEngine::Batched | RxEngine::PerFrame => {
                self.driver.receive(&mut self.h, sf.frame, &mut self.rng)
            }
            RxEngine::PerAccess => self
                .driver
                .receive_scalar(&mut self.h, sf.frame, &mut self.rng),
        };
        self.record_event(&ev, sf.at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_net::{ArrivalSchedule, ConstantSize, LineRate};

    fn bed() -> TestBed {
        TestBed::new(TestBedConfig::paper_baseline())
    }

    fn schedule(count: usize, start: u64) -> Vec<ScheduledFrame> {
        let mut rng = SmallRng::seed_from_u64(9);
        ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(100_000)
            .generate(&mut ConstantSize::blocks(3), start, count, &mut rng)
    }

    #[test]
    fn frames_deliver_when_clock_passes() {
        let mut tb = bed();
        tb.enqueue(schedule(10, 0));
        assert_eq!(tb.pending_frames(), 10);
        let last = 10 * pc_net::CPU_FREQ_HZ / 100_000 + 100_000;
        tb.advance_to(last);
        assert_eq!(tb.pending_frames(), 0);
        assert_eq!(tb.records().len(), 10);
        assert_eq!(tb.driver().packets_received(), 10);
    }

    #[test]
    fn partial_advance_delivers_partially() {
        let mut tb = bed();
        let frames = schedule(10, 0);
        let t5 = frames[4].at;
        tb.enqueue(frames);
        tb.advance_to(t5);
        assert_eq!(tb.records().len(), 5);
        assert_eq!(tb.pending_frames(), 5);
    }

    #[test]
    fn drain_delivers_everything() {
        let mut tb = bed();
        tb.enqueue(schedule(25, 1_000_000));
        tb.drain();
        assert_eq!(tb.pending_frames(), 0);
        assert_eq!(tb.records().len(), 25);
    }

    #[test]
    fn records_follow_ring_order() {
        let mut tb = bed();
        tb.enqueue(schedule(8, 0));
        tb.drain();
        for (i, r) in tb.records().iter().enumerate() {
            assert_eq!(r.buffer_index, i);
            assert_eq!(r.blocks, 3);
        }
    }

    #[test]
    fn records_carry_arrival_times() {
        let mut tb = bed();
        let frames = schedule(8, 0);
        let ats: Vec<Cycles> = frames.iter().map(|f| f.at).collect();
        tb.enqueue(frames);
        tb.drain();
        let got: Vec<Cycles> = tb.records().iter().map(|r| r.at).collect();
        assert_eq!(got, ats, "RxRecord.at is the scheduled arrival cycle");
    }

    #[test]
    fn enqueue_merges_sorted_streams() {
        let mut tb = bed();
        tb.enqueue(schedule(5, 0));
        tb.enqueue(schedule(5, 7_777));
        let times: Vec<u64> = tb.pending.iter().map(|f| f.at).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(tb.pending_frames(), 10);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_enqueue_panics() {
        let mut tb = bed();
        let mut frames = schedule(3, 0);
        frames.reverse();
        tb.enqueue(frames);
    }

    /// Compares two beds field by field after identical driving.
    fn assert_beds_identical(a: &TestBed, b: &TestBed, what: &str) {
        assert_eq!(a.records(), b.records(), "{what}: records");
        assert_eq!(a.now(), b.now(), "{what}: clock");
        assert_eq!(
            a.hierarchy().llc().stats(),
            b.hierarchy().llc().stats(),
            "{what}: llc stats"
        );
        assert_eq!(
            a.hierarchy().memory_stats(),
            b.hierarchy().memory_stats(),
            "{what}: memory stats"
        );
        assert_eq!(
            a.driver().ring().page_addresses(),
            b.driver().ring().page_addresses(),
            "{what}: ring pages"
        );
        assert_eq!(a.rng, b.rng, "{what}: RNG stream");
    }

    #[test]
    fn all_engines_are_byte_identical() {
        // Same config, same seeds, all three engines, through the full
        // arrival pipeline (merging, gaps, deferred reads): records,
        // clock, statistics, ring state and RNG must all agree.
        for cfg in [
            TestBedConfig::paper_baseline(),
            TestBedConfig::no_ddio(),
            TestBedConfig::adaptive_defense(),
        ] {
            let mut batched = TestBed::new(cfg.with_rx_engine(RxEngine::Batched));
            let mut per_frame = TestBed::new(cfg.with_rx_engine(RxEngine::PerFrame));
            let mut oracle = TestBed::new(cfg.with_rx_engine(RxEngine::PerAccess));
            for tb in [&mut batched, &mut per_frame, &mut oracle] {
                let mut rng = SmallRng::seed_from_u64(42);
                let frames = ArrivalSchedule::new(LineRate::gigabit())
                    .frames_per_second(150_000)
                    .generate(&mut pc_net::UniformSizes::full_range(), 0, 400, &mut rng);
                tb.enqueue(frames);
                tb.drain();
            }
            assert_beds_identical(&batched, &per_frame, "batched vs per-frame");
            assert_beds_identical(&batched, &oracle, "batched vs per-access");
        }
    }

    /// Drives a bed through `advance_to`'s windowed arm directly (the
    /// production code, not a copy), unconditionally — so the burst
    /// machinery is exercised deterministically even on a single-core
    /// host, where the public entry point would (legitimately) pick
    /// per-frame delivery.
    fn advance_windowed(tb: &mut TestBed, target: Cycles) {
        tb.advance_to_windowed(target);
    }

    fn drain_windowed(tb: &mut TestBed) {
        while let Some(last_at) = tb.pending.back().map(|f| f.at) {
            advance_windowed(tb, last_at);
        }
        tb.deferred.drain_all(&mut tb.h);
    }

    #[test]
    fn windowed_delivery_matches_per_frame_on_edge_windows() {
        // Unsorted-window edge cases: zero gaps, duplicate arrival
        // times, and window boundaries landing exactly on an arrival.
        for cfg in [
            TestBedConfig::paper_baseline(),
            TestBedConfig::no_ddio(),
            TestBedConfig::adaptive_defense(),
        ] {
            let mut windowed = TestBed::new(cfg.with_rx_engine(RxEngine::Batched));
            let mut per_frame = TestBed::new(cfg.with_rx_engine(RxEngine::PerFrame));
            for (tb, win) in [(&mut windowed, true), (&mut per_frame, false)] {
                let advance = |tb: &mut TestBed, target| {
                    if win {
                        advance_windowed(tb, target);
                    } else {
                        tb.advance_to(target);
                    }
                };
                let mut rng = SmallRng::seed_from_u64(7);
                // A dense backlog with duplicate times: every frame at
                // one of 4 timestamps, all due at once.
                let mut frames = ArrivalSchedule::new(LineRate::ten_gigabit())
                    .frames_per_second(5_000_000)
                    .generate(&mut pc_net::UniformSizes::full_range(), 10, 64, &mut rng);
                for (i, f) in frames.iter_mut().enumerate() {
                    f.at = 10 + (i as u64 / 16) * 5; // 4 duplicate groups, zero gaps
                }
                tb.enqueue(frames);
                // Boundary exactly on an arrival: the group at t=15.
                advance(tb, 15);
                // Mid-stream probe epoch, then everything else.
                advance(tb, 16);
                if win {
                    drain_windowed(tb);
                } else {
                    tb.drain();
                }
                // A paced tail: arrivals far apart (every gap is a sync).
                let tail = ArrivalSchedule::new(LineRate::gigabit())
                    .frames_per_second(1_000)
                    .generate(&mut ConstantSize::blocks(2), tb.now() + 1, 8, &mut rng);
                let last = tail.last().unwrap().at;
                tb.enqueue(tail);
                advance(tb, last); // boundary exactly on the last arrival
                if win {
                    drain_windowed(tb);
                } else {
                    tb.drain();
                }
            }
            assert_beds_identical(&windowed, &per_frame, "edge windows");
        }
    }

    #[test]
    fn windowed_drain_matches_every_engine_on_mixed_traffic() {
        // The explicit windowed driver against all three public
        // engines, over a mixed paced/backlogged stream with deferred
        // reads (no-DDIO sizes cross the copybreak both ways).
        for cfg in [TestBedConfig::paper_baseline(), TestBedConfig::no_ddio()] {
            let mut windowed = TestBed::new(cfg.with_rx_engine(RxEngine::Batched));
            let mut oracle = TestBed::new(cfg.with_rx_engine(RxEngine::PerAccess));
            for (tb, win) in [(&mut windowed, true), (&mut oracle, false)] {
                let mut rng = SmallRng::seed_from_u64(21);
                let frames = ArrivalSchedule::new(LineRate::gigabit())
                    .frames_per_second(400_000)
                    .generate(&mut pc_net::UniformSizes::full_range(), 5, 300, &mut rng);
                tb.enqueue(frames);
                if win {
                    drain_windowed(tb);
                } else {
                    tb.drain();
                }
            }
            assert_beds_identical(&windowed, &oracle, "windowed vs per-access");
        }
    }

    #[test]
    fn deliver_due_bursts_the_backlog() {
        for cfg in [TestBedConfig::paper_baseline(), TestBedConfig::no_ddio()] {
            let mut batched = TestBed::new(cfg.with_rx_engine(RxEngine::Batched));
            let mut per_frame = TestBed::new(cfg.with_rx_engine(RxEngine::PerFrame));
            for tb in [&mut batched, &mut per_frame] {
                let mut rng = SmallRng::seed_from_u64(3);
                let frames = ArrivalSchedule::new(LineRate::gigabit())
                    .frames_per_second(200_000)
                    .generate(&mut pc_net::UniformSizes::full_range(), 0, 50, &mut rng);
                let mid = frames[24].at;
                tb.enqueue(frames);
                tb.hierarchy_mut().advance(mid);
                // Delivery keeps going while processing latency makes
                // further frames due, exactly like the per-frame loop.
                let n = tb.deliver_due();
                assert!(n >= 25, "at least the due prefix delivers ({n})");
            }
            assert_beds_identical(&batched, &per_frame, "deliver_due");
        }
    }

    #[test]
    fn reset_bed_is_byte_identical_to_a_fresh_one() {
        // A bed reused across tenants (dirtied by a full run, then
        // reset for a different config) must be indistinguishable from
        // a bed built fresh — same records, clock, stats, ring pages
        // and RNG stream after identical driving.
        let dirty_cfg = TestBedConfig::paper_baseline().with_seed(77);
        let mut reused = TestBed::new(dirty_cfg);
        let mut rng = SmallRng::seed_from_u64(13);
        let frames = ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(150_000)
            .generate(&mut pc_net::UniformSizes::full_range(), 0, 120, &mut rng);
        reused.enqueue(frames);
        reused.drain();
        assert!(!reused.records().is_empty(), "the dirtying run did work");

        for cfg in [
            TestBedConfig::no_ddio().with_seed(2020),
            TestBedConfig::adaptive_defense().with_seed(5),
            TestBedConfig::paper_baseline().with_seed(77),
        ] {
            reused.reset(cfg);
            let mut fresh = TestBed::new(cfg);
            assert_beds_identical(&reused, &fresh, "after reset, before driving");
            for tb in [&mut reused, &mut fresh] {
                let mut rng = SmallRng::seed_from_u64(4);
                let frames = ArrivalSchedule::new(LineRate::gigabit())
                    .frames_per_second(200_000)
                    .generate(&mut pc_net::UniformSizes::full_range(), 0, 80, &mut rng);
                tb.enqueue(frames);
                tb.drain();
            }
            assert_beds_identical(&reused, &fresh, "after reset + identical driving");
        }
    }

    #[test]
    fn rx_engine_names_parse() {
        // The parser directly — mutating the process environment would
        // race other tests, and every branch is reachable this way.
        assert_eq!(RxEngine::parse("batched"), Some(RxEngine::Batched));
        assert_eq!(RxEngine::parse("per-frame"), Some(RxEngine::PerFrame));
        assert_eq!(RxEngine::parse("per-access"), Some(RxEngine::PerAccess));
        assert_eq!(RxEngine::parse("Batched"), None, "names are exact");
        assert_eq!(RxEngine::parse(""), None);
    }

    #[test]
    fn no_ddio_bed_runs_deferred_reads() {
        let mut tb = TestBed::new(TestBedConfig::no_ddio());
        let mut rng = SmallRng::seed_from_u64(9);
        let frames = ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(50_000)
            .generate(
                &mut ConstantSize::new(pc_net::EthernetFrame::mtu_sized()),
                0,
                5,
                &mut rng,
            );
        tb.enqueue(frames);
        tb.drain();
        // After draining, payload blocks are in the cache via CPU reads.
        let r = tb.records()[0];
        assert!(tb.hierarchy().llc().contains(r.buffer_addr.add_blocks(5)));
    }
}
