//! The simulated machine the attack runs on: hierarchy + driver +
//! scheduled arrivals, all sharing one clock.
//!
//! ## Burst delivery and clock windows
//!
//! Frame delivery is windowed on the default engine: pending arrivals
//! fuse into **one** segment-marked op batch per window (emitted via
//! [`IgbDriver::receive_fused`], replayed — sharded by slice when big
//! enough — via [`pc_cache::Hierarchy::run_ops_segmented`]), and the
//! clock for every frame is **reconstructed after the fact** from the
//! per-segment cycle subtotals. The op-stream determinism contract
//! makes every outcome — hits, evictions, statistics, RNG draws, the
//! adaptive defense's access-count clock — independent of the clock
//! value, so a window may span what used to be hard flush points:
//!
//! * **gap syncs** — an arrival ahead of the reconstructed clock no
//!   longer cuts the window: each frame opens a segment, and the
//!   post-hoc subtotals let the bed replay `clock = max(arrival,
//!   clock); clock += segment cycles` over the segment list, applying
//!   every gap's `max` retroactively and the residual as one trailing
//!   advance — byte-identical to a per-gap flush;
//! * **deferred no-DDIO reads** — a large frame's payload-read due
//!   time is the reconstructed end of its emit segment (its second
//!   segment mark) plus the header-to-payload delay; the reads are
//!   filed *unresolved* against that segment
//!   ([`DeferredReads::push_unresolved`]) and resolved once the window
//!   replays. The window is cut only when a **pending** read could
//!   actually fall due at a frame boundary: the bed tracks a lower
//!   bound `lb` (fold of `max(lb, arrival) + min_shape_cycles` plus
//!   each packet's exact defense cost) and an upper bound `ub` (same
//!   fold at `max_shape_cycles`), and cuts when the earliest pending
//!   due — an exact heap due, or an in-window deferral's lower bound
//!   `lb + header_to_payload_delay` — could be `<= ub` at the
//!   boundary, so the due reads run at an exact clock exactly where
//!   the per-frame engine runs them;
//! * **probe epochs** — each [`TestBed::advance_to`] call still
//!   returns with all pending ops applied, so a monitor sampling
//!   between calls (the `footprint::watch` loop) always observes a
//!   fully synchronized machine; `pc-probe`'s monitor fuses the
//!   per-target probes *within* one epoch the same way (one segmented
//!   batch, one subtotal per target).
//!
//! The only remaining cuts are the op-scratch cap
//! (`MAX_WINDOW_OPS`), the `advance_to` target itself, and the
//! could-fall-due rule above. Defense costs fold into both bounds
//! *exactly* ([`DriverConfig::defense_cost_for_packet`] — the
//! `EveryNPackets` tick is a pure function of the packet counter; the
//! adaptive cache defense charges no cycles at all), so defense ticks
//! never cut a window. All engines are byte-identical; see
//! [`RxEngine`].

use pc_cache::{CacheGeometry, Cycles, DdioMode, Hierarchy, LatencyModel, PhysAddr};
use pc_net::ScheduledFrame;
use pc_nic::{DeferredReads, DriverConfig, IgbDriver, PageAllocator, RssConfig};
use pc_par::{stream_seed, SeedDomain};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Which replay engine drives frame receives through the hierarchy.
///
/// All paths are byte-identical (pinned by `pc-nic`'s equivalence
/// suite and this module's own tests); the choice is purely about
/// performance and observability.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub enum RxEngine {
    /// Windowed burst delivery — the fast path, and the default:
    /// pending arrivals fuse into segment-marked op batches
    /// ([`IgbDriver::receive_fused`], sharded by slice when large
    /// enough) spanning gaps, deferring frames and defense ticks, with
    /// every frame's clock reconstructed from per-segment subtotals
    /// after the replay (see the module docs).
    #[default]
    Batched,
    /// One op batch per frame through [`IgbDriver::receive`] — the
    /// pre-windowing default, kept as the burst engine's per-frame
    /// reference.
    PerFrame,
    /// Access-by-access replay ([`IgbDriver::receive_scalar`]) — the
    /// equivalence oracle; pick it when an experiment must observe
    /// per-access latencies in the middle of a frame.
    PerAccess,
}

impl RxEngine {
    /// Parses a CLI/environment engine name (`batched`, `per-frame`,
    /// `per-access`). The single name list — [`rx_engine_from_env`]
    /// and `repro --rx-engine` both go through it, so the two cannot
    /// drift.
    pub fn parse(name: &str) -> Option<RxEngine> {
        match name {
            "batched" => Some(RxEngine::Batched),
            "per-frame" => Some(RxEngine::PerFrame),
            "per-access" => Some(RxEngine::PerAccess),
            _ => None,
        }
    }
}

/// Upper bound on the op count of one delivery window (the workspace
/// op-scratch cap, [`pc_cache::ops::OP_SCRATCH_CAP`] = 64 Ki ops, well
/// past the sharded-dispatch threshold). Cutting a window early is
/// always legal — a flush is a correct place to observe the clock —
/// so the cap is a pure scheduling choice and never changes results
/// (the delivery property tests and the CI thread-count byte-diff hold
/// for any cap); it bounds the op scratch when a drain faces a huge
/// backlog.
const MAX_WINDOW_OPS: u64 = pc_cache::ops::OP_SCRATCH_CAP;

/// Buckets of the per-window frame-count histogram.
const HIST_BUCKETS: usize = 32;

/// Log2 histogram bucket for a window carrying `frames` frames.
/// Everything at or beyond `2^31` frames saturates explicitly into the
/// last bucket, so the histogram never indexes out of range however
/// large a window grows. The per-bed [`WindowStats`] and the
/// process-wide atomics both bucket through this one function — the
/// two histograms cannot drift.
fn hist_bucket(frames: u64) -> usize {
    (frames.max(1).ilog2() as usize).min(HIST_BUCKETS - 1)
}

/// Telemetry of the windowed receive engine: how many fused delivery
/// windows formed and how many frames each carried. Cheap to keep
/// (a few counters and a log2 histogram), reported on stderr by the
/// `repro` harness — never on stdout, so the byte-diffed outputs stay
/// engine- and thread-invariant while the window sizes (the thing the
/// fusion engine exists to grow) stay observable.
#[derive(Copy, Clone, Debug, Default)]
pub struct WindowStats {
    /// Fused delivery windows formed.
    pub windows: u64,
    /// Frames delivered through those windows.
    pub frames: u64,
    /// Largest single window, in frames.
    pub max_frames: u64,
    /// `hist[k]` counts windows carrying `2^k <= frames < 2^(k+1)`
    /// frames (last bucket saturating, see [`hist_bucket`]) — enough
    /// for a bucketed median without per-window storage.
    hist: [u64; HIST_BUCKETS],
}

impl WindowStats {
    fn record(&mut self, frames: u64) {
        self.windows += 1;
        self.frames += frames;
        self.max_frames = self.max_frames.max(frames);
        self.hist[hist_bucket(frames)] += 1;
    }

    /// Mean frames per window (0 when no window formed).
    pub fn mean_frames(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.frames as f64 / self.windows as f64
        }
    }

    /// Median frames per window at power-of-two resolution: the lower
    /// bound of the histogram bucket holding the median window (0 when
    /// no window formed).
    pub fn p50_frames(&self) -> u64 {
        let mut seen = 0;
        for (k, &n) in self.hist.iter().enumerate() {
            seen += n;
            if 2 * seen >= self.windows && n > 0 {
                return 1 << k;
            }
        }
        0
    }
}

/// Process-wide window telemetry: scenarios build (and reset) their
/// beds internally, often on worker threads, so the per-bed
/// [`WindowStats`] are unreachable from the harness; every bed also
/// folds each window into these relaxed atomics. Stderr reporting
/// only — nothing deterministic reads them.
mod global_window_stats {
    use std::sync::atomic::AtomicU64;

    pub(super) static WINDOWS: AtomicU64 = AtomicU64::new(0);
    pub(super) static FRAMES: AtomicU64 = AtomicU64::new(0);
    pub(super) static MAX_FRAMES: AtomicU64 = AtomicU64::new(0);
    pub(super) static HIST: [AtomicU64; super::HIST_BUCKETS] =
        [const { AtomicU64::new(0) }; super::HIST_BUCKETS];
}

/// Snapshot of the process-wide window telemetry (every bed, every
/// thread, since start or the last [`reset_window_stats`]).
pub fn window_stats_snapshot() -> WindowStats {
    use std::sync::atomic::Ordering::Relaxed;
    let mut hist = [0u64; HIST_BUCKETS];
    for (h, g) in hist.iter_mut().zip(&global_window_stats::HIST) {
        *h = g.load(Relaxed);
    }
    WindowStats {
        windows: global_window_stats::WINDOWS.load(Relaxed),
        frames: global_window_stats::FRAMES.load(Relaxed),
        max_frames: global_window_stats::MAX_FRAMES.load(Relaxed),
        hist,
    }
}

/// Zeroes the process-wide window telemetry, so a harness can report
/// per-phase deltas.
pub fn reset_window_stats() {
    use std::sync::atomic::Ordering::Relaxed;
    global_window_stats::WINDOWS.store(0, Relaxed);
    global_window_stats::FRAMES.store(0, Relaxed);
    global_window_stats::MAX_FRAMES.store(0, Relaxed);
    for g in &global_window_stats::HIST {
        g.store(0, Relaxed);
    }
}

/// Reads the `PC_RX_ENGINE` environment variable (`batched`,
/// `per-frame` or `per-access`) — the CI determinism job uses it to
/// byte-diff whole scenario runs across engines without touching
/// scenario code. Returns `None` when unset.
///
/// # Panics
///
/// Panics on an unrecognized value: a CI matrix leg silently falling
/// back to the default engine would pass vacuously.
pub fn rx_engine_from_env() -> Option<RxEngine> {
    let v = std::env::var("PC_RX_ENGINE").ok()?;
    Some(
        RxEngine::parse(&v).unwrap_or_else(|| {
            panic!("PC_RX_ENGINE must be batched|per-frame|per-access, got `{v}`")
        }),
    )
}

/// Reads the `PC_RSS_QUEUES` environment variable (an rx queue count,
/// `1..=`[`pc_nic::MAX_RSS_QUEUES`]) — the CI multi-queue determinism
/// job and `repro --queues` use it to re-run whole scenario suites at
/// another queue count without touching scenario code. Returns `None`
/// when unset.
///
/// # Panics
///
/// Panics on a non-numeric or out-of-range value, for the same reason
/// [`rx_engine_from_env`] does: a CI leg silently falling back to the
/// default queue count would pass vacuously.
pub fn rss_queues_from_env() -> Option<usize> {
    let v = std::env::var("PC_RSS_QUEUES").ok()?;
    let n: usize = v
        .parse()
        .unwrap_or_else(|_| panic!("PC_RSS_QUEUES must be a queue count, got `{v}`"));
    assert!(
        (1..=pc_nic::MAX_RSS_QUEUES).contains(&n),
        "PC_RSS_QUEUES must be 1..={}, got {n}",
        pc_nic::MAX_RSS_QUEUES
    );
    Some(n)
}

/// Everything needed to stand up a [`TestBed`].
#[derive(Copy, Clone, Debug)]
pub struct TestBedConfig {
    /// LLC shape (default: the paper's Xeon E5-2660).
    pub geometry: CacheGeometry,
    /// DDIO mode under test.
    pub ddio: DdioMode,
    /// Driver configuration (ring size, copybreak, defenses…).
    pub driver: DriverConfig,
    /// Component latencies.
    pub latencies: LatencyModel,
    /// Master seed for the bed's stochastic pieces (page placement,
    /// driver decisions).
    pub seed: u64,
    /// Record every received packet as ground truth (cheap; on by
    /// default).
    pub record_rx: bool,
    /// How frame receives replay against the hierarchy.
    pub rx_engine: RxEngine,
    /// Rx queue count: RSS spreads flows over this many independent
    /// rings / driver streams (1 — the default — is the pre-RSS
    /// single-ring model; legacy all-zero flows always land on
    /// queue 0, whatever the count).
    pub rss_queues: usize,
}

impl TestBedConfig {
    /// The paper's vulnerable baseline: DDIO on, stock IGB driver.
    ///
    /// The receive engine honours [`rx_engine_from_env`] and the queue
    /// count honours [`rss_queues_from_env`], so one binary can run a
    /// whole scenario suite on each engine or queue count; an explicit
    /// [`TestBedConfig::with_rx_engine`] / [`TestBedConfig::with_queues`]
    /// still wins.
    pub fn paper_baseline() -> Self {
        TestBedConfig {
            geometry: CacheGeometry::xeon_e5_2660(),
            ddio: DdioMode::enabled(),
            driver: DriverConfig::paper_defaults(),
            latencies: LatencyModel::server_defaults(),
            seed: 0x9ac4e7,
            record_rx: true,
            rx_engine: rx_engine_from_env().unwrap_or_default(),
            rss_queues: rss_queues_from_env().unwrap_or(1),
        }
    }

    /// Same machine with DDIO disabled (§IV-d / §V "without DDIO").
    pub fn no_ddio() -> Self {
        TestBedConfig {
            ddio: DdioMode::Disabled,
            ..TestBedConfig::paper_baseline()
        }
    }

    /// Same machine under the adaptive partitioning defense (§VII).
    pub fn adaptive_defense() -> Self {
        TestBedConfig {
            ddio: DdioMode::adaptive(),
            ..TestBedConfig::paper_baseline()
        }
    }

    /// Replaces the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the receive replay engine (builder style).
    pub fn with_rx_engine(mut self, rx_engine: RxEngine) -> Self {
        self.rx_engine = rx_engine;
        self
    }

    /// Replaces the rx queue count (builder style).
    pub fn with_queues(mut self, rss_queues: usize) -> Self {
        self.rss_queues = rss_queues;
        self
    }
}

impl Default for TestBedConfig {
    fn default() -> Self {
        TestBedConfig::paper_baseline()
    }
}

/// Ground-truth record of one received frame.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct RxRecord {
    /// Cycle the NIC received the frame (its scheduled arrival time —
    /// pure input data, so the record is identical on every
    /// [`RxEngine`]; a backlogged frame is *processed* later than
    /// this).
    pub at: Cycles,
    /// Ring descriptor index it landed in.
    pub buffer_index: usize,
    /// DMA address of the buffer's first block.
    pub buffer_addr: PhysAddr,
    /// Cache blocks written.
    pub blocks: u32,
}

/// One rx queue's private slice of the NIC: its ring / driver, the
/// deferred payload reads it owes, and its driver RNG stream. Queue 0
/// runs on the bed's legacy base-seed streams; queues `1..` derive
/// theirs through [`SeedDomain::Queue`], so adding queues never
/// perturbs queue 0 and a queue count of 1 is byte-identical to the
/// pre-RSS single-ring model.
#[derive(Clone, Debug)]
struct RxQueue {
    driver: IgbDriver,
    deferred: DeferredReads,
    rng: SmallRng,
}

/// The victim machine: one hierarchy, one or more rx queues (each its
/// own NIC ring, driver streams and deferred payload reads), a queue
/// of future frame arrivals, and the RSS steer that assigns each
/// arrival's flow to a queue.
///
/// The spy and the experiments drive time forward through
/// [`TestBed::advance_to`] and probe through
/// [`TestBed::hierarchy_mut`]; frames scheduled with
/// [`TestBed::enqueue`] are delivered whenever the clock passes their
/// arrival time — fused into burst windows on the default engine (see
/// the module docs).
///
/// ## Multi-queue delivery order
///
/// Steering picks *which queue's state* a frame advances; it never
/// reorders processing. Frames process in global arrival order on
/// every engine (cutting a window early must stay legal, which a
/// queue-grouped replay would break), and wherever queues synchronize
/// at one clock — window cuts, per-frame boundaries, trailing
/// advances — their due deferred reads run in **queue index order**,
/// the documented merge rule that makes multi-queue runs byte-
/// identical across thread counts and engines.
#[derive(Clone, Debug)]
pub struct TestBed {
    h: Hierarchy,
    rss: RssConfig,
    queues: Vec<RxQueue>,
    pending: VecDeque<ScheduledFrame>,
    records: Vec<RxRecord>,
    record_rx: bool,
    rx_engine: RxEngine,
    /// Fused-window scratch: the segment-marked op batch being
    /// collected, its per-segment subtotals, the arrival attached to
    /// each frame-start segment (`None` on post-deferral segments) and
    /// the reconstructed segment end clocks. Contents never outlive
    /// one window; capacity carried across windows and resets.
    fused_ops: pc_cache::OpBuffer,
    seg_sums: Vec<pc_cache::TraceSummary>,
    seg_arrivals: Vec<Option<Cycles>>,
    seg_ends: Vec<Cycles>,
    window_stats: WindowStats,
}

impl TestBed {
    /// The seeded machine parts: hierarchy and per-queue driver
    /// streams — one definition shared by [`TestBed::new`] and
    /// [`TestBed::reset`] so a reused bed can never drift from a
    /// freshly built one.
    fn build(cfg: &TestBedConfig) -> (Hierarchy, Vec<RxQueue>) {
        let llc = pc_cache::SlicedCache::new(cfg.geometry, cfg.ddio);
        let h = Hierarchy::with_llc(llc).with_latencies(cfg.latencies);
        let queues = (0..cfg.rss_queues)
            .map(|q| {
                // Queue 0 keeps the bed's historical streams exactly —
                // not `stream_seed(seed, Queue, 0)` — so every pre-RSS
                // golden replays unchanged at any queue count.
                let qseed = if q == 0 {
                    cfg.seed
                } else {
                    stream_seed(cfg.seed, SeedDomain::Queue, q as u64)
                };
                let mut rng = SmallRng::seed_from_u64(qseed);
                let alloc = PageAllocator::new(qseed ^ 0x5eed_1a7e);
                let driver = IgbDriver::new(cfg.driver, alloc, &mut rng);
                RxQueue {
                    driver,
                    deferred: DeferredReads::new(),
                    rng,
                }
            })
            .collect();
        (h, queues)
    }

    /// Builds the machine.
    pub fn new(cfg: TestBedConfig) -> Self {
        let (h, queues) = TestBed::build(&cfg);
        TestBed {
            h,
            rss: RssConfig::new(cfg.rss_queues, cfg.seed),
            queues,
            pending: VecDeque::new(),
            records: Vec::new(),
            record_rx: cfg.record_rx,
            rx_engine: cfg.rx_engine,
            fused_ops: pc_cache::OpBuffer::new(),
            seg_sums: Vec::new(),
            seg_arrivals: Vec::new(),
            seg_ends: Vec::new(),
            window_stats: WindowStats::default(),
        }
    }

    /// Rebuilds this bed in place for `cfg`, behaviourally identical to
    /// `*self = TestBed::new(cfg)` but keeping the heap capacity of the
    /// bed's queues and scratch buffers. The fleet driver runs
    /// thousands of tenants per worker thread; resetting one bed per
    /// worker instead of building one per tenant keeps the per-tenant
    /// setup cost at clears rather than allocations.
    pub fn reset(&mut self, cfg: TestBedConfig) {
        let (h, queues) = TestBed::build(&cfg);
        self.h = h;
        self.rss = RssConfig::new(cfg.rss_queues, cfg.seed);
        self.queues = queues;
        self.pending.clear();
        self.records.clear();
        self.record_rx = cfg.record_rx;
        self.rx_engine = cfg.rx_engine;
        self.fused_ops.clear();
        self.seg_sums.clear();
        self.seg_arrivals.clear();
        self.seg_ends.clear();
        self.window_stats = WindowStats::default();
    }

    /// Current cycle.
    pub fn now(&self) -> Cycles {
        self.h.now()
    }

    /// The hierarchy, for the spy's probes.
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.h
    }

    /// Read-only hierarchy view.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.h
    }

    /// Queue 0's driver (ground-truth ring inspection; the only queue
    /// on single-queue beds). Other queues: [`TestBed::queue_driver`].
    pub fn driver(&self) -> &IgbDriver {
        &self.queues[0].driver
    }

    /// Queue `q`'s driver.
    ///
    /// # Panics
    ///
    /// Panics if `q >= queue_count()`.
    pub fn queue_driver(&self, q: usize) -> &IgbDriver {
        &self.queues[q].driver
    }

    /// Rx queues this bed models.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// The RSS steering configuration assigning flows to queues.
    pub fn rss(&self) -> &RssConfig {
        &self.rss
    }

    /// Packets received summed over every queue (equals queue 0's
    /// [`IgbDriver::packets_received`] on single-queue beds).
    pub fn packets_received_total(&self) -> u64 {
        self.queues
            .iter()
            .map(|q| q.driver.packets_received())
            .sum()
    }

    /// The active receive engine.
    pub fn rx_engine(&self) -> RxEngine {
        self.rx_engine
    }

    /// This bed's windowed-delivery telemetry (zeros on the per-frame
    /// engines, which form no windows).
    pub fn window_stats(&self) -> &WindowStats {
        &self.window_stats
    }

    /// Ground-truth receive log (empty when `record_rx` is off).
    pub fn records(&self) -> &[RxRecord] {
        &self.records
    }

    /// Clears the receive log.
    pub fn clear_records(&mut self) {
        self.records.clear();
    }

    /// Frames still waiting to arrive.
    pub fn pending_frames(&self) -> usize {
        self.pending.len()
    }

    /// Queues future arrivals. Frames must be sorted by time; they are
    /// merged with whatever is already pending.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is not sorted by arrival time.
    pub fn enqueue(&mut self, frames: Vec<ScheduledFrame>) {
        assert!(
            frames.windows(2).all(|w| w[0].at <= w[1].at),
            "arrival stream must be sorted"
        );
        if self.pending.is_empty() {
            self.pending = frames.into();
        } else {
            let existing: Vec<ScheduledFrame> = self.pending.drain(..).collect();
            self.pending = pc_net::merge_schedules(existing, frames).into();
        }
    }

    /// Delivers every frame whose arrival time has passed and runs due
    /// deferred reads. Returns the number of frames delivered.
    ///
    /// Frames already due are back-to-back by definition (nothing
    /// between them observes the clock — this entry point runs deferred
    /// reads once, at the end), so on the burst engine the backlog
    /// fuses into segmented [`IgbDriver::receive_fused`] windows, cut
    /// only by the op scratch cap.
    pub fn deliver_due(&mut self) -> usize {
        // Same scheduling rule as advance_to: windowing feeds the
        // sharded batch engine, so a worker-less host delivers per
        // frame (byte-identical either way).
        let delivered = match self.rx_engine {
            RxEngine::Batched if pc_par::max_threads() > 1 => {
                // Delivery advances the clock, which can make further
                // frames due (the per-frame loop re-checks after every
                // frame); fuse the due prefix repeatedly until none is.
                // No could-fall-due cut: this entry point runs deferred
                // reads once, at the end, on every engine.
                let mut n = 0;
                loop {
                    let now = self.h.now();
                    let got = self.fuse_window(now, false);
                    if got == 0 {
                        break;
                    }
                    n += got;
                }
                n
            }
            _ => {
                let mut delivered = 0;
                while let Some(front) = self.pending.front() {
                    if front.at > self.h.now() {
                        break;
                    }
                    let sf = self.pending.pop_front().expect("peeked");
                    self.receive_now(sf);
                    delivered += 1;
                }
                delivered
            }
        };
        self.run_due_all();
        delivered
    }

    /// Runs every queue's due deferred reads, in **queue index
    /// order** — the documented merge rule wherever queues synchronize
    /// at one clock (window cuts, per-frame boundaries, trailing
    /// advances). Every engine sequences dues through this one
    /// function, so the order cannot drift between them.
    fn run_due_all(&mut self) {
        for q in &mut self.queues {
            q.deferred.run_due(&mut self.h);
        }
    }

    /// Earliest pending deferred due across every queue's heap.
    fn min_next_due(&self) -> Option<Cycles> {
        self.queues
            .iter()
            .filter_map(|q| q.deferred.next_due())
            .min()
    }

    /// Advances the clock to `target`, delivering arrivals on the way.
    /// (If the clock is already past `target` this only delivers due
    /// work.)
    ///
    /// On the burst engine this is [`TestBed::run_window`] plus the
    /// trailing advance; the per-frame engines deliver one frame at a
    /// time. Both orders of operations are byte-identical.
    pub fn advance_to(&mut self, target: Cycles) {
        // Windowing exists to feed the sharded batch engine; without
        // worker threads the op-recording round-trip cannot pay for
        // itself, so a sequential host delivers per frame — the paths
        // are byte-identical (this module's tests pin it), the choice
        // is pure scheduling.
        if self.rx_engine == RxEngine::Batched && pc_par::max_threads() > 1 {
            self.advance_to_windowed(target);
        } else {
            self.deliver_per_frame_to(target);
            self.finish_advance(target);
        }
    }

    /// The windowed arm of [`TestBed::advance_to`] — one definition,
    /// shared with the property tests (which drive it directly so the
    /// burst machinery is exercised even on hosts where the public
    /// entry point legitimately picks per-frame delivery).
    fn advance_to_windowed(&mut self, target: Cycles) {
        self.run_window(target);
        self.finish_advance(target);
    }

    /// The shared tail of every advance: trailing clock advance to
    /// `target`, then due deferred reads.
    fn finish_advance(&mut self, target: Cycles) {
        if target > self.h.now() {
            let gap = target - self.h.now();
            self.h.advance(gap);
        }
        self.run_due_all();
    }

    /// Per-frame delivery of every arrival up to `target` (gap advance,
    /// one receive, due deferred reads — per frame), on whichever
    /// receive path [`TestBed::receive_now`] selects for the engine.
    /// Returns the number of frames delivered.
    fn deliver_per_frame_to(&mut self, target: Cycles) -> usize {
        let mut delivered = 0;
        loop {
            let next_arrival = self.pending.front().map(|f| f.at);
            match next_arrival {
                Some(at) if at <= target => {
                    if at > self.h.now() {
                        let gap = at - self.h.now();
                        self.h.advance(gap);
                    }
                    let sf = self.pending.pop_front().expect("peeked");
                    self.receive_now(sf);
                    self.run_due_all();
                    delivered += 1;
                }
                _ => break,
            }
        }
        delivered
    }

    /// Runs one delivery pass: every pending arrival up to `target` is
    /// delivered as fused segment-marked windows, cut only at the
    /// points listed in the module docs (op scratch cap, could-fall-due
    /// deferred reads). Returns the number of frames delivered; the
    /// clock ends wherever the last delivered work left it (callers
    /// wanting the clock *at* `target` use [`TestBed::advance_to`]).
    ///
    /// Byte-identical to per-frame delivery of the same arrivals —
    /// events, records, clock, statistics, ring state and RNG stream —
    /// for any window shape, including zero inter-arrival gaps,
    /// duplicate arrival times, arbitrarily large gaps mid-window, a
    /// `target` landing exactly on an arrival, and deferred reads due
    /// inside a later window (this module's property tests pin those
    /// edges).
    ///
    /// On the `PerFrame` / `PerAccess` engines this honours the
    /// configured receive path instead of windowing: an experiment
    /// that picked the per-access oracle to observe mid-frame
    /// latencies keeps that observability whichever delivery entry
    /// point drives it.
    pub fn run_window(&mut self, target: Cycles) -> usize {
        if self.rx_engine != RxEngine::Batched {
            return self.deliver_per_frame_to(target);
        }
        let _engine = pc_cache::fault::engine_scope(pc_cache::fault::Engine::WindowedRx);
        let mut delivered = 0usize;
        loop {
            let n = self.fuse_window(target, true);
            if n == 0 {
                break;
            }
            // The window ended at a point where a deferred read may be
            // due; the reconstruction made the clock exact, so run them
            // here — exactly where the per-frame engine runs them.
            self.run_due_all();
            delivered += n;
        }
        delivered
    }

    /// Collects, replays and reconstructs **one** fused delivery
    /// window: the longest run of pending arrivals `<= target` the cut
    /// rules allow. Each frame is emitted into the segment-marked
    /// batch by [`IgbDriver::receive_fused`] (ring, RNG and counters
    /// advance normally; the clock does not), the batch replays once
    /// through [`pc_cache::Hierarchy::run_ops_segmented`], and the
    /// per-segment subtotals reconstruct every frame's exact clock —
    /// `clock = max(arrival, clock) + segment cycles` — with the gap
    /// residual applied as one trailing advance. Deferred payload
    /// reads are filed against their emit segment and resolved against
    /// the reconstructed segment ends.
    ///
    /// With `due_cut`, the window is cut at any frame boundary where a
    /// pending deferred read could fall due (earliest exact heap due,
    /// or an in-window deferral's `lb + header_to_payload_delay` lower
    /// bound, `<=` the boundary's upper-bound clock `ub`) — the caller
    /// runs due reads between windows at the exact clock, where the
    /// per-frame engine runs them. Fault site `burst-flush-elision`
    /// lets the engine skip one such cut, so pending payload reads
    /// replay after frames they should precede. Without `due_cut`
    /// ([`TestBed::deliver_due`]'s contract), nothing runs between
    /// frames and only the op scratch cap cuts.
    ///
    /// Returns the frames delivered — 0 exactly when nothing is
    /// pending at or before `target`. Does **not** run due deferred
    /// reads; callers sequence those per their own contract.
    fn fuse_window(&mut self, target: Cycles, due_cut: bool) -> usize {
        match self.pending.front() {
            Some(f) if f.at <= target => {}
            _ => return 0,
        }
        let _engine = pc_cache::fault::engine_scope(pc_cache::fault::Engine::WindowedRx);
        let lat = self.h.latencies();
        let min_lat = lat.llc_hit.min(lat.dram);
        let max_lat = lat.llc_hit.max(lat.dram);
        let ddio = self.h.llc().mode().allocates_in_llc();
        // Every queue shares one DriverConfig; queue 0's copy speaks
        // for all of them.
        let cfg = *self.queues[0].driver.config();
        let delay = cfg.header_to_payload_delay;

        // Clock bounds over the frames collected so far, both folding
        // the arrivals' `max` and each packet's exact defense cost;
        // `lb` prices every op at the cheapest latency, `ub` at the
        // costliest. The true reconstructed clock at any boundary is
        // provably within [lb, ub] without observing the replay.
        let c0 = self.h.now();
        let mut lb = c0;
        let mut ub = c0;
        // Earliest pending deferred due across every queue: exact heap
        // dues now, joined by in-window deferral lower bounds as
        // deferring frames are collected.
        let mut min_due = self.min_next_due();
        let mut ops_estimate = 0u64;
        let mut frames = 0u64;

        let mut ops = std::mem::take(&mut self.fused_ops);
        ops.clear();
        self.seg_arrivals.clear();
        while let Some(front) = self.pending.front() {
            if front.at > target || ops_estimate >= MAX_WINDOW_OPS {
                break;
            }
            if due_cut
                && frames > 0
                && min_due.is_some_and(|d| d <= ub)
                && !pc_cache::fault::fires(pc_cache::fault::FaultSite::BurstFlushElision)
            {
                break;
            }
            let sf = self.pending.pop_front().expect("peeked");
            // Steering picks whose ring / RNG / deferred state this
            // frame advances; processing order stays global arrival
            // order (see the struct docs).
            let qi = self.rss.steer(sf.flow);
            let (blocks, small) = cfg.frame_shape(sf.frame);
            ops_estimate += cfg.frame_op_count(blocks, small);
            self.seg_arrivals.push(Some(sf.at));
            let queue = &mut self.queues[qi];
            let ev = queue
                .driver
                .receive_fused(&mut ops, ddio, sf.frame, &mut queue.rng);
            // The frame just emitted is its queue's
            // `packets_received()`-th packet; its defense cost is a
            // pure function of that ordinal, so both bounds carry it
            // exactly and defense ticks never cut the window.
            let defense = cfg.defense_cost_for_packet(queue.driver.packets_received());
            lb = lb.max(sf.at) + cfg.min_shape_cycles(blocks, small, min_lat);
            ub = ub.max(sf.at) + cfg.max_shape_cycles(blocks, small, max_lat);
            if let Some(seg) = ev.deferral_segment {
                // An in-window deferral: its exact due is this emit
                // boundary's reconstructed clock plus the delay, known
                // only after replay — bound it below by `lb` here
                // (both exclude the defense cost, which lands after
                // the dues on every engine). Filed on the owning queue
                // against the *global* segment index, so every queue
                // resolves against the one shared reconstruction.
                let d = lb + delay;
                min_due = Some(min_due.map_or(d, |m| m.min(d)));
                self.seg_arrivals.push(None);
                for b in 2..ev.blocks {
                    queue
                        .deferred
                        .push_unresolved(seg, ev.buffer_addr.add_blocks(u64::from(b)));
                }
            }
            lb += defense;
            ub += defense;
            if self.record_rx {
                self.records.push(RxRecord {
                    at: sf.at,
                    buffer_index: ev.buffer_index,
                    buffer_addr: ev.buffer_addr,
                    blocks: ev.blocks,
                });
            }
            frames += 1;
        }
        debug_assert!(frames > 0, "the guarded entry put the front in range");

        // One replay for the whole window, then the per-segment
        // subtotals replace the mid-stream clock observations: fold
        // `max(arrival, clock)` into each frame-start segment and walk
        // the subtotals to every segment's exact end clock. The replay
        // advanced the clock by the subtotals alone, so the fold's
        // excess over it is exactly the gaps' residual.
        self.h.run_ops_segmented(&ops, &mut self.seg_sums);
        debug_assert_eq!(
            self.seg_sums.len(),
            self.seg_arrivals.len(),
            "one subtotal per emitted segment"
        );
        self.seg_ends.clear();
        let mut c = c0;
        for (sum, arrival) in self.seg_sums.iter().zip(&self.seg_arrivals) {
            if let Some(at) = arrival {
                c = c.max(*at);
            }
            c += sum.cycles;
            self.seg_ends.push(c);
        }
        debug_assert!(lb <= c && c <= ub, "bounds bracket the reconstruction");
        let residual = c - self.h.now();
        if residual > 0 {
            self.h.advance(residual);
        }
        for q in &mut self.queues {
            q.deferred.resolve_segments(&self.seg_ends, delay);
        }

        ops.clear();
        self.fused_ops = ops;
        self.note_window(frames);
        frames as usize
    }

    /// Folds one formed window into this bed's [`WindowStats`] and the
    /// process-wide telemetry.
    fn note_window(&mut self, frames: u64) {
        use std::sync::atomic::Ordering::Relaxed;
        self.window_stats.record(frames);
        global_window_stats::WINDOWS.fetch_add(1, Relaxed);
        global_window_stats::FRAMES.fetch_add(frames, Relaxed);
        global_window_stats::MAX_FRAMES.fetch_max(frames, Relaxed);
        global_window_stats::HIST[hist_bucket(frames)].fetch_add(1, Relaxed);
    }

    fn record_event(&mut self, qi: usize, ev: &pc_nic::RxEvent, at: Cycles) {
        self.queues[qi]
            .deferred
            .extend(ev.deferred_reads.iter().copied());
        if self.record_rx {
            self.records.push(RxRecord {
                at,
                buffer_index: ev.buffer_index,
                buffer_addr: ev.buffer_addr,
                blocks: ev.blocks,
            });
        }
    }

    /// Runs until every queued frame has been delivered.
    pub fn drain(&mut self) {
        while let Some(last_at) = self.pending.back().map(|f| f.at) {
            self.advance_to(last_at);
        }
        for q in &mut self.queues {
            q.deferred.drain_all(&mut self.h);
        }
    }

    fn receive_now(&mut self, sf: ScheduledFrame) {
        // The frame's memory traffic pipelines as one op batch on the
        // per-frame engine; the per-access oracle replays it one access
        // at a time (identical results, pinned below and in pc-nic).
        let qi = self.rss.steer(sf.flow);
        let queue = &mut self.queues[qi];
        let ev = match self.rx_engine {
            RxEngine::Batched | RxEngine::PerFrame => {
                queue.driver.receive(&mut self.h, sf.frame, &mut queue.rng)
            }
            RxEngine::PerAccess => {
                queue
                    .driver
                    .receive_scalar(&mut self.h, sf.frame, &mut queue.rng)
            }
        };
        self.record_event(qi, &ev, sf.at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_net::{ArrivalSchedule, ConstantSize, LineRate};

    fn bed() -> TestBed {
        TestBed::new(TestBedConfig::paper_baseline())
    }

    fn schedule(count: usize, start: u64) -> Vec<ScheduledFrame> {
        let mut rng = SmallRng::seed_from_u64(9);
        ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(100_000)
            .generate(&mut ConstantSize::blocks(3), start, count, &mut rng)
    }

    #[test]
    fn frames_deliver_when_clock_passes() {
        let mut tb = bed();
        tb.enqueue(schedule(10, 0));
        assert_eq!(tb.pending_frames(), 10);
        let last = 10 * pc_net::CPU_FREQ_HZ / 100_000 + 100_000;
        tb.advance_to(last);
        assert_eq!(tb.pending_frames(), 0);
        assert_eq!(tb.records().len(), 10);
        assert_eq!(tb.driver().packets_received(), 10);
    }

    #[test]
    fn partial_advance_delivers_partially() {
        let mut tb = bed();
        let frames = schedule(10, 0);
        let t5 = frames[4].at;
        tb.enqueue(frames);
        tb.advance_to(t5);
        assert_eq!(tb.records().len(), 5);
        assert_eq!(tb.pending_frames(), 5);
    }

    #[test]
    fn drain_delivers_everything() {
        let mut tb = bed();
        tb.enqueue(schedule(25, 1_000_000));
        tb.drain();
        assert_eq!(tb.pending_frames(), 0);
        assert_eq!(tb.records().len(), 25);
    }

    #[test]
    fn records_follow_ring_order() {
        let mut tb = bed();
        tb.enqueue(schedule(8, 0));
        tb.drain();
        for (i, r) in tb.records().iter().enumerate() {
            assert_eq!(r.buffer_index, i);
            assert_eq!(r.blocks, 3);
        }
    }

    #[test]
    fn records_carry_arrival_times() {
        let mut tb = bed();
        let frames = schedule(8, 0);
        let ats: Vec<Cycles> = frames.iter().map(|f| f.at).collect();
        tb.enqueue(frames);
        tb.drain();
        let got: Vec<Cycles> = tb.records().iter().map(|r| r.at).collect();
        assert_eq!(got, ats, "RxRecord.at is the scheduled arrival cycle");
    }

    #[test]
    fn enqueue_merges_sorted_streams() {
        let mut tb = bed();
        tb.enqueue(schedule(5, 0));
        tb.enqueue(schedule(5, 7_777));
        let times: Vec<u64> = tb.pending.iter().map(|f| f.at).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(tb.pending_frames(), 10);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_enqueue_panics() {
        let mut tb = bed();
        let mut frames = schedule(3, 0);
        frames.reverse();
        tb.enqueue(frames);
    }

    /// Compares two beds field by field after identical driving.
    fn assert_beds_identical(a: &TestBed, b: &TestBed, what: &str) {
        assert_eq!(a.records(), b.records(), "{what}: records");
        assert_eq!(a.now(), b.now(), "{what}: clock");
        assert_eq!(
            a.hierarchy().llc().stats(),
            b.hierarchy().llc().stats(),
            "{what}: llc stats"
        );
        assert_eq!(
            a.hierarchy().memory_stats(),
            b.hierarchy().memory_stats(),
            "{what}: memory stats"
        );
        assert_eq!(a.queue_count(), b.queue_count(), "{what}: queue count");
        for (qi, (qa, qb)) in a.queues.iter().zip(&b.queues).enumerate() {
            assert_eq!(
                qa.driver.ring().page_addresses(),
                qb.driver.ring().page_addresses(),
                "{what}: queue {qi} ring pages"
            );
            assert_eq!(qa.rng, qb.rng, "{what}: queue {qi} RNG stream");
        }
    }

    #[test]
    fn all_engines_are_byte_identical() {
        // Same config, same seeds, all three engines, through the full
        // arrival pipeline (merging, gaps, deferred reads): records,
        // clock, statistics, ring state and RNG must all agree.
        for cfg in [
            TestBedConfig::paper_baseline(),
            TestBedConfig::no_ddio(),
            TestBedConfig::adaptive_defense(),
        ] {
            let mut batched = TestBed::new(cfg.with_rx_engine(RxEngine::Batched));
            let mut per_frame = TestBed::new(cfg.with_rx_engine(RxEngine::PerFrame));
            let mut oracle = TestBed::new(cfg.with_rx_engine(RxEngine::PerAccess));
            for tb in [&mut batched, &mut per_frame, &mut oracle] {
                let mut rng = SmallRng::seed_from_u64(42);
                let frames = ArrivalSchedule::new(LineRate::gigabit())
                    .frames_per_second(150_000)
                    .generate(&mut pc_net::UniformSizes::full_range(), 0, 400, &mut rng);
                tb.enqueue(frames);
                tb.drain();
            }
            assert_beds_identical(&batched, &per_frame, "batched vs per-frame");
            assert_beds_identical(&batched, &oracle, "batched vs per-access");
        }
    }

    /// Drives a bed through `advance_to`'s windowed arm directly (the
    /// production code, not a copy), unconditionally — so the burst
    /// machinery is exercised deterministically even on a single-core
    /// host, where the public entry point would (legitimately) pick
    /// per-frame delivery.
    fn advance_windowed(tb: &mut TestBed, target: Cycles) {
        tb.advance_to_windowed(target);
    }

    fn drain_windowed(tb: &mut TestBed) {
        while let Some(last_at) = tb.pending.back().map(|f| f.at) {
            advance_windowed(tb, last_at);
        }
        for q in &mut tb.queues {
            q.deferred.drain_all(&mut tb.h);
        }
    }

    #[test]
    fn windowed_delivery_matches_per_frame_on_edge_windows() {
        // Unsorted-window edge cases: zero gaps, duplicate arrival
        // times, and window boundaries landing exactly on an arrival.
        for cfg in [
            TestBedConfig::paper_baseline(),
            TestBedConfig::no_ddio(),
            TestBedConfig::adaptive_defense(),
        ] {
            let mut windowed = TestBed::new(cfg.with_rx_engine(RxEngine::Batched));
            let mut per_frame = TestBed::new(cfg.with_rx_engine(RxEngine::PerFrame));
            for (tb, win) in [(&mut windowed, true), (&mut per_frame, false)] {
                let advance = |tb: &mut TestBed, target| {
                    if win {
                        advance_windowed(tb, target);
                    } else {
                        tb.advance_to(target);
                    }
                };
                let mut rng = SmallRng::seed_from_u64(7);
                // A dense backlog with duplicate times: every frame at
                // one of 4 timestamps, all due at once.
                let mut frames = ArrivalSchedule::new(LineRate::ten_gigabit())
                    .frames_per_second(5_000_000)
                    .generate(&mut pc_net::UniformSizes::full_range(), 10, 64, &mut rng);
                for (i, f) in frames.iter_mut().enumerate() {
                    f.at = 10 + (i as u64 / 16) * 5; // 4 duplicate groups, zero gaps
                }
                tb.enqueue(frames);
                // Boundary exactly on an arrival: the group at t=15.
                advance(tb, 15);
                // Mid-stream probe epoch, then everything else.
                advance(tb, 16);
                if win {
                    drain_windowed(tb);
                } else {
                    tb.drain();
                }
                // A paced tail: arrivals far apart (every gap is a sync).
                let tail = ArrivalSchedule::new(LineRate::gigabit())
                    .frames_per_second(1_000)
                    .generate(&mut ConstantSize::blocks(2), tb.now() + 1, 8, &mut rng);
                let last = tail.last().unwrap().at;
                tb.enqueue(tail);
                advance(tb, last); // boundary exactly on the last arrival
                if win {
                    drain_windowed(tb);
                } else {
                    tb.drain();
                }
            }
            assert_beds_identical(&windowed, &per_frame, "edge windows");
        }
    }

    #[test]
    fn windowed_delivery_matches_per_frame_across_gaps_and_epochs() {
        // Cross-gap fusion edges: zero-gap bursts alternating with
        // large gaps (each gap folds into the window as a retroactive
        // `max`), deferred reads falling due inside later segments
        // (no-DDIO large frames under dense traffic), defense ticks
        // folding into the bounds (EveryNPackets / EveryPacket), a
        // probe epoch landing mid-backlog, and an arrival placed
        // exactly on the reconstructed window-end clock.
        use pc_nic::RandomizeMode;
        let mut defended = TestBedConfig::paper_baseline();
        defended.driver.randomize = RandomizeMode::EveryNPackets(7);
        let mut defended_no_ddio = TestBedConfig::no_ddio();
        defended_no_ddio.driver.randomize = RandomizeMode::EveryPacket;
        for cfg in [
            TestBedConfig::paper_baseline(),
            TestBedConfig::no_ddio(),
            TestBedConfig::adaptive_defense(),
            defended,
            defended_no_ddio,
        ] {
            let mut windowed = TestBed::new(cfg.with_rx_engine(RxEngine::Batched));
            let mut per_frame = TestBed::new(cfg.with_rx_engine(RxEngine::PerFrame));
            for (tb, win) in [(&mut windowed, true), (&mut per_frame, false)] {
                let advance = |tb: &mut TestBed, target| {
                    if win {
                        advance_windowed(tb, target);
                    } else {
                        tb.advance_to(target);
                    }
                };
                let mut rng = SmallRng::seed_from_u64(31);
                // Zero-gap + large-gap alternation: 8 bursts of 12
                // frames each, every burst at one timestamp, bursts
                // 250 k cycles apart (far beyond any frame's cost, so
                // each gap used to be a hard window cut).
                let mut frames = ArrivalSchedule::new(LineRate::ten_gigabit())
                    .frames_per_second(2_000_000)
                    .generate(&mut pc_net::UniformSizes::full_range(), 0, 96, &mut rng);
                for (i, f) in frames.iter_mut().enumerate() {
                    f.at = 1_000 + (i as u64 / 12) * 250_000;
                }
                tb.enqueue(frames);
                // Probe epoch mid-backlog: stop between bursts, touch
                // monitor-style addresses at the synchronized clock.
                advance(tb, 620_000);
                for line in 0..16u64 {
                    tb.hierarchy_mut().cpu_read(PhysAddr::new(line << 6));
                }
                if win {
                    drain_windowed(tb);
                } else {
                    tb.drain();
                }
                // Dense no-DDIO-style tail spanning several deferral
                // delays: deferred reads fall due inside later fused
                // windows, exercising the could-fall-due cut.
                let tail = ArrivalSchedule::new(LineRate::gigabit())
                    .frames_per_second(120_000)
                    .generate(
                        &mut ConstantSize::new(pc_net::EthernetFrame::mtu_sized()),
                        tb.now() + 5_000,
                        40,
                        &mut rng,
                    );
                let last = tail.last().unwrap().at;
                tb.enqueue(tail);
                advance(tb, last);
                if win {
                    drain_windowed(tb);
                } else {
                    tb.drain();
                }
                // Arrival exactly on the reconstructed clock: the next
                // frame lands on the cycle the last window ended, so
                // its gap `max` is exactly a no-op at the boundary.
                let exact = vec![ScheduledFrame::new(
                    tb.now(),
                    pc_net::EthernetFrame::new(64).unwrap(),
                )];
                tb.enqueue(exact);
                if win {
                    drain_windowed(tb);
                } else {
                    tb.drain();
                }
            }
            assert_beds_identical(&windowed, &per_frame, "cross-gap windows");
            assert!(
                windowed.window_stats().windows > 0,
                "the windowed bed formed windows"
            );
            if cfg.ddio.allocates_in_llc() {
                // Nothing defers, so nothing cuts: whole zero-gap
                // bursts and the 250 k-cycle gaps between them fuse
                // into single windows.
                assert!(
                    windowed.window_stats().max_frames >= 12,
                    "a burst and its gaps fused into one window (got {})",
                    windowed.window_stats().max_frames
                );
            }
        }
    }

    #[test]
    fn window_stats_track_fused_windows() {
        let mut tb =
            TestBed::new(TestBedConfig::paper_baseline().with_rx_engine(RxEngine::Batched));
        tb.enqueue(schedule(32, 0));
        drain_windowed(&mut tb);
        let ws = *tb.window_stats();
        assert_eq!(ws.frames, 32);
        assert!(ws.windows >= 1 && ws.windows <= 32);
        assert!(ws.max_frames as f64 >= ws.mean_frames());
        assert!(ws.p50_frames() >= 1 && ws.p50_frames() <= ws.max_frames);
        let snap = window_stats_snapshot();
        assert!(snap.windows >= ws.windows, "globals fold every bed");
        // Paced arrivals (one frame per ~28 k cycles) still fuse: the
        // gaps reconstruct retroactively instead of cutting.
        assert!(
            ws.max_frames > 1,
            "cross-gap fusion spans paced arrivals (max {})",
            ws.max_frames
        );
        tb.reset(TestBedConfig::paper_baseline());
        assert_eq!(tb.window_stats().windows, 0, "reset clears telemetry");
    }

    #[test]
    fn windowed_drain_matches_every_engine_on_mixed_traffic() {
        // The explicit windowed driver against all three public
        // engines, over a mixed paced/backlogged stream with deferred
        // reads (no-DDIO sizes cross the copybreak both ways).
        for cfg in [TestBedConfig::paper_baseline(), TestBedConfig::no_ddio()] {
            let mut windowed = TestBed::new(cfg.with_rx_engine(RxEngine::Batched));
            let mut oracle = TestBed::new(cfg.with_rx_engine(RxEngine::PerAccess));
            for (tb, win) in [(&mut windowed, true), (&mut oracle, false)] {
                let mut rng = SmallRng::seed_from_u64(21);
                let frames = ArrivalSchedule::new(LineRate::gigabit())
                    .frames_per_second(400_000)
                    .generate(&mut pc_net::UniformSizes::full_range(), 5, 300, &mut rng);
                tb.enqueue(frames);
                if win {
                    drain_windowed(tb);
                } else {
                    tb.drain();
                }
            }
            assert_beds_identical(&windowed, &oracle, "windowed vs per-access");
        }
    }

    #[test]
    fn deliver_due_bursts_the_backlog() {
        for cfg in [TestBedConfig::paper_baseline(), TestBedConfig::no_ddio()] {
            let mut batched = TestBed::new(cfg.with_rx_engine(RxEngine::Batched));
            let mut per_frame = TestBed::new(cfg.with_rx_engine(RxEngine::PerFrame));
            for tb in [&mut batched, &mut per_frame] {
                let mut rng = SmallRng::seed_from_u64(3);
                let frames = ArrivalSchedule::new(LineRate::gigabit())
                    .frames_per_second(200_000)
                    .generate(&mut pc_net::UniformSizes::full_range(), 0, 50, &mut rng);
                let mid = frames[24].at;
                tb.enqueue(frames);
                tb.hierarchy_mut().advance(mid);
                // Delivery keeps going while processing latency makes
                // further frames due, exactly like the per-frame loop.
                let n = tb.deliver_due();
                assert!(n >= 25, "at least the due prefix delivers ({n})");
            }
            assert_beds_identical(&batched, &per_frame, "deliver_due");
        }
    }

    #[test]
    fn reset_bed_is_byte_identical_to_a_fresh_one() {
        // A bed reused across tenants (dirtied by a full run, then
        // reset for a different config) must be indistinguishable from
        // a bed built fresh — same records, clock, stats, ring pages
        // and RNG stream after identical driving.
        let dirty_cfg = TestBedConfig::paper_baseline().with_seed(77);
        let mut reused = TestBed::new(dirty_cfg);
        let mut rng = SmallRng::seed_from_u64(13);
        let frames = ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(150_000)
            .generate(&mut pc_net::UniformSizes::full_range(), 0, 120, &mut rng);
        reused.enqueue(frames);
        reused.drain();
        assert!(!reused.records().is_empty(), "the dirtying run did work");

        for cfg in [
            TestBedConfig::no_ddio().with_seed(2020),
            TestBedConfig::adaptive_defense().with_seed(5),
            TestBedConfig::paper_baseline().with_seed(77),
        ] {
            reused.reset(cfg);
            let mut fresh = TestBed::new(cfg);
            assert_beds_identical(&reused, &fresh, "after reset, before driving");
            for tb in [&mut reused, &mut fresh] {
                let mut rng = SmallRng::seed_from_u64(4);
                let frames = ArrivalSchedule::new(LineRate::gigabit())
                    .frames_per_second(200_000)
                    .generate(&mut pc_net::UniformSizes::full_range(), 0, 80, &mut rng);
                tb.enqueue(frames);
                tb.drain();
            }
            assert_beds_identical(&reused, &fresh, "after reset + identical driving");
        }
    }

    #[test]
    fn rx_engine_names_parse() {
        // The parser directly — mutating the process environment would
        // race other tests, and every branch is reachable this way.
        assert_eq!(RxEngine::parse("batched"), Some(RxEngine::Batched));
        assert_eq!(RxEngine::parse("per-frame"), Some(RxEngine::PerFrame));
        assert_eq!(RxEngine::parse("per-access"), Some(RxEngine::PerAccess));
        assert_eq!(RxEngine::parse("Batched"), None, "names are exact");
        assert_eq!(RxEngine::parse(""), None);
    }

    #[test]
    fn window_histogram_saturates_into_the_last_bucket() {
        assert_eq!(hist_bucket(0), 0);
        assert_eq!(hist_bucket(1), 0);
        assert_eq!(hist_bucket(3), 1);
        assert_eq!(hist_bucket(1 << 31), HIST_BUCKETS - 1);
        assert_eq!(hist_bucket(u64::MAX), HIST_BUCKETS - 1);
        let mut ws = WindowStats::default();
        ws.record(u64::MAX);
        assert_eq!(ws.hist[HIST_BUCKETS - 1], 1, "explicit saturation");
        assert_eq!(ws.p50_frames(), 1 << (HIST_BUCKETS - 1));
    }

    /// A flow-cycled schedule: `count` frames across `clients` client
    /// flows, sizes spanning the copybreak both ways.
    fn flow_schedule(clients: u64, count: usize, seed: u64) -> Vec<ScheduledFrame> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut gen = pc_net::FlowCycle::clients(pc_net::UniformSizes::full_range(), clients, 80);
        ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(150_000)
            .generate(&mut gen, 0, count, &mut rng)
    }

    #[test]
    fn multi_queue_delivery_is_byte_identical_across_engines() {
        // Four queues, flows spread across them, all three engines plus
        // the explicit windowed driver: records, clock, statistics and
        // every queue's ring and RNG stream must agree.
        for cfg in [
            TestBedConfig::paper_baseline().with_queues(4),
            TestBedConfig::no_ddio().with_queues(4),
        ] {
            let mut windowed = TestBed::new(cfg.with_rx_engine(RxEngine::Batched));
            let mut per_frame = TestBed::new(cfg.with_rx_engine(RxEngine::PerFrame));
            let mut oracle = TestBed::new(cfg.with_rx_engine(RxEngine::PerAccess));
            for (tb, win) in [
                (&mut windowed, true),
                (&mut per_frame, false),
                (&mut oracle, false),
            ] {
                tb.enqueue(flow_schedule(9, 300, 17));
                if win {
                    drain_windowed(tb);
                } else {
                    tb.drain();
                }
            }
            assert_beds_identical(&windowed, &per_frame, "multi-queue windowed vs per-frame");
            assert_beds_identical(&windowed, &oracle, "multi-queue windowed vs per-access");
            let active = (0..windowed.queue_count())
                .filter(|&q| windowed.queue_driver(q).packets_received() > 0)
                .count();
            assert!(active >= 2, "flows actually spread over queues ({active})");
            assert_eq!(windowed.packets_received_total(), 300);
        }
    }

    #[test]
    fn legacy_flows_pin_to_queue_zero_at_any_queue_count() {
        // A flow-less (legacy) schedule on a 4-queue bed: queues 1..
        // stay completely idle and the observable run — records,
        // clock, cache statistics, queue 0's ring and RNG — is
        // byte-identical to the single-queue bed. Pre-RSS goldens
        // therefore replay unchanged at any queue count.
        let mut single = TestBed::new(TestBedConfig::paper_baseline().with_queues(1));
        let mut multi = TestBed::new(TestBedConfig::paper_baseline().with_queues(4));
        for tb in [&mut single, &mut multi] {
            tb.enqueue(schedule(60, 0));
            tb.drain();
        }
        assert_eq!(single.records(), multi.records(), "records");
        assert_eq!(single.now(), multi.now(), "clock");
        assert_eq!(
            single.hierarchy().llc().stats(),
            multi.hierarchy().llc().stats(),
            "llc stats"
        );
        assert_eq!(
            single.driver().ring().page_addresses(),
            multi.driver().ring().page_addresses(),
            "queue 0 ring pages"
        );
        assert_eq!(single.queues[0].rng, multi.queues[0].rng, "queue 0 RNG");
        for q in 1..multi.queue_count() {
            assert_eq!(
                multi.queue_driver(q).packets_received(),
                0,
                "queue {q} stays idle under legacy flows"
            );
        }
    }

    #[test]
    fn queue_streams_are_independent_of_queue_count() {
        // Steering is a pure flow property, and each queue's streams
        // derive from the master seed alone — so a reset to a
        // different queue count then back reproduces the original run
        // exactly (the fleet driver reuses beds across tenant
        // configs with different queue counts).
        let cfg = TestBedConfig::paper_baseline().with_queues(4).with_seed(99);
        let mut fresh = TestBed::new(cfg);
        let mut reused = TestBed::new(TestBedConfig::paper_baseline().with_queues(2));
        reused.enqueue(flow_schedule(5, 80, 3));
        reused.drain();
        reused.reset(cfg);
        for tb in [&mut fresh, &mut reused] {
            tb.enqueue(flow_schedule(7, 120, 11));
            tb.drain();
        }
        assert_beds_identical(&fresh, &reused, "reset across queue counts");
    }

    #[test]
    fn no_ddio_bed_runs_deferred_reads() {
        let mut tb = TestBed::new(TestBedConfig::no_ddio());
        let mut rng = SmallRng::seed_from_u64(9);
        let frames = ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(50_000)
            .generate(
                &mut ConstantSize::new(pc_net::EthernetFrame::mtu_sized()),
                0,
                5,
                &mut rng,
            );
        tb.enqueue(frames);
        tb.drain();
        // After draining, payload blocks are in the cache via CPU reads.
        let r = tb.records()[0];
        assert!(tb.hierarchy().llc().contains(r.buffer_addr.add_blocks(5)));
    }
}
