//! The simulated machine the attack runs on: hierarchy + driver +
//! scheduled arrivals, all sharing one clock.

use pc_cache::{CacheGeometry, Cycles, DdioMode, Hierarchy, LatencyModel, PhysAddr};
use pc_net::ScheduledFrame;
use pc_nic::{DeferredReads, DriverConfig, IgbDriver, PageAllocator};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Which replay engine drives frame receives through the hierarchy.
///
/// Both paths are byte-identical (pinned by `pc-nic`'s equivalence
/// suite and this module's own test); the choice is purely about
/// performance and observability.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub enum RxEngine {
    /// Per-frame op batches through [`pc_cache::Hierarchy::run_ops`] —
    /// the fast path, and the default.
    #[default]
    Batched,
    /// Access-by-access replay ([`IgbDriver::receive_scalar`]) — the
    /// equivalence oracle; pick it when an experiment must observe
    /// per-access latencies in the middle of a frame.
    PerAccess,
}

/// Everything needed to stand up a [`TestBed`].
#[derive(Copy, Clone, Debug)]
pub struct TestBedConfig {
    /// LLC shape (default: the paper's Xeon E5-2660).
    pub geometry: CacheGeometry,
    /// DDIO mode under test.
    pub ddio: DdioMode,
    /// Driver configuration (ring size, copybreak, defenses…).
    pub driver: DriverConfig,
    /// Component latencies.
    pub latencies: LatencyModel,
    /// Master seed for the bed's stochastic pieces (page placement,
    /// driver decisions).
    pub seed: u64,
    /// Record every received packet as ground truth (cheap; on by
    /// default).
    pub record_rx: bool,
    /// How frame receives replay against the hierarchy.
    pub rx_engine: RxEngine,
}

impl TestBedConfig {
    /// The paper's vulnerable baseline: DDIO on, stock IGB driver.
    pub fn paper_baseline() -> Self {
        TestBedConfig {
            geometry: CacheGeometry::xeon_e5_2660(),
            ddio: DdioMode::enabled(),
            driver: DriverConfig::paper_defaults(),
            latencies: LatencyModel::server_defaults(),
            seed: 0x9ac4e7,
            record_rx: true,
            rx_engine: RxEngine::Batched,
        }
    }

    /// Same machine with DDIO disabled (§IV-d / §V "without DDIO").
    pub fn no_ddio() -> Self {
        TestBedConfig {
            ddio: DdioMode::Disabled,
            ..TestBedConfig::paper_baseline()
        }
    }

    /// Same machine under the adaptive partitioning defense (§VII).
    pub fn adaptive_defense() -> Self {
        TestBedConfig {
            ddio: DdioMode::adaptive(),
            ..TestBedConfig::paper_baseline()
        }
    }

    /// Replaces the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the receive replay engine (builder style).
    pub fn with_rx_engine(mut self, rx_engine: RxEngine) -> Self {
        self.rx_engine = rx_engine;
        self
    }
}

impl Default for TestBedConfig {
    fn default() -> Self {
        TestBedConfig::paper_baseline()
    }
}

/// Ground-truth record of one received frame.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct RxRecord {
    /// Cycle the driver processed the frame.
    pub at: Cycles,
    /// Ring descriptor index it landed in.
    pub buffer_index: usize,
    /// DMA address of the buffer's first block.
    pub buffer_addr: PhysAddr,
    /// Cache blocks written.
    pub blocks: u32,
}

/// The victim machine: one hierarchy, one NIC driver, a queue of future
/// frame arrivals, and the deferred payload reads of the no-DDIO path.
///
/// The spy and the experiments drive time forward through
/// [`TestBed::advance_to`] and probe through
/// [`TestBed::hierarchy_mut`]; frames scheduled with
/// [`TestBed::enqueue`] are delivered whenever the clock passes their
/// arrival time.
#[derive(Clone, Debug)]
pub struct TestBed {
    h: Hierarchy,
    driver: IgbDriver,
    pending: VecDeque<ScheduledFrame>,
    deferred: DeferredReads,
    rng: SmallRng,
    records: Vec<RxRecord>,
    record_rx: bool,
    rx_engine: RxEngine,
}

impl TestBed {
    /// Builds the machine.
    pub fn new(cfg: TestBedConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let llc = pc_cache::SlicedCache::new(cfg.geometry, cfg.ddio);
        let h = Hierarchy::with_llc(llc).with_latencies(cfg.latencies);
        let alloc = PageAllocator::new(cfg.seed ^ 0x5eed_1a7e);
        let driver = IgbDriver::new(cfg.driver, alloc, &mut rng);
        TestBed {
            h,
            driver,
            pending: VecDeque::new(),
            deferred: DeferredReads::new(),
            rng,
            records: Vec::new(),
            record_rx: cfg.record_rx,
            rx_engine: cfg.rx_engine,
        }
    }

    /// Current cycle.
    pub fn now(&self) -> Cycles {
        self.h.now()
    }

    /// The hierarchy, for the spy's probes.
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.h
    }

    /// Read-only hierarchy view.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.h
    }

    /// The driver (ground-truth ring inspection).
    pub fn driver(&self) -> &IgbDriver {
        &self.driver
    }

    /// Ground-truth receive log (empty when `record_rx` is off).
    pub fn records(&self) -> &[RxRecord] {
        &self.records
    }

    /// Clears the receive log.
    pub fn clear_records(&mut self) {
        self.records.clear();
    }

    /// Frames still waiting to arrive.
    pub fn pending_frames(&self) -> usize {
        self.pending.len()
    }

    /// Queues future arrivals. Frames must be sorted by time; they are
    /// merged with whatever is already pending.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is not sorted by arrival time.
    pub fn enqueue(&mut self, frames: Vec<ScheduledFrame>) {
        assert!(
            frames.windows(2).all(|w| w[0].at <= w[1].at),
            "arrival stream must be sorted"
        );
        if self.pending.is_empty() {
            self.pending = frames.into();
        } else {
            let existing: Vec<ScheduledFrame> = self.pending.drain(..).collect();
            self.pending = pc_net::merge_schedules(existing, frames).into();
        }
    }

    /// Delivers every frame whose arrival time has passed and runs due
    /// deferred reads. Returns the number of frames delivered.
    pub fn deliver_due(&mut self) -> usize {
        let mut delivered = 0;
        while let Some(front) = self.pending.front() {
            if front.at > self.h.now() {
                break;
            }
            let sf = self.pending.pop_front().expect("peeked");
            self.receive_now(sf);
            delivered += 1;
        }
        self.deferred.run_due(&mut self.h);
        delivered
    }

    /// Advances the clock to `target`, delivering arrivals on the way.
    /// (If the clock is already past `target` this only delivers due
    /// work.)
    pub fn advance_to(&mut self, target: Cycles) {
        loop {
            let next_arrival = self.pending.front().map(|f| f.at);
            match next_arrival {
                Some(at) if at <= target => {
                    if at > self.h.now() {
                        let gap = at - self.h.now();
                        self.h.advance(gap);
                    }
                    let sf = self.pending.pop_front().expect("peeked");
                    self.receive_now(sf);
                    self.deferred.run_due(&mut self.h);
                }
                _ => break,
            }
        }
        if target > self.h.now() {
            let gap = target - self.h.now();
            self.h.advance(gap);
        }
        self.deferred.run_due(&mut self.h);
    }

    /// Runs until every queued frame has been delivered.
    pub fn drain(&mut self) {
        while let Some(front) = self.pending.front() {
            let at = front.at;
            self.advance_to(at);
        }
        self.deferred.drain_all(&mut self.h);
    }

    fn receive_now(&mut self, sf: ScheduledFrame) {
        // The frame's memory traffic pipelines as one op batch on the
        // default engine; the per-access oracle replays it one access at
        // a time (identical results, pinned below and in pc-nic).
        let ev = match self.rx_engine {
            RxEngine::Batched => self.driver.receive(&mut self.h, sf.frame, &mut self.rng),
            RxEngine::PerAccess => self
                .driver
                .receive_scalar(&mut self.h, sf.frame, &mut self.rng),
        };
        self.deferred.extend(ev.deferred_reads.iter().copied());
        if self.record_rx {
            self.records.push(RxRecord {
                at: self.h.now(),
                buffer_index: ev.buffer_index,
                buffer_addr: ev.buffer_addr,
                blocks: ev.blocks,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_net::{ArrivalSchedule, ConstantSize, LineRate};

    fn bed() -> TestBed {
        TestBed::new(TestBedConfig::paper_baseline())
    }

    fn schedule(count: usize, start: u64) -> Vec<ScheduledFrame> {
        let mut rng = SmallRng::seed_from_u64(9);
        ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(100_000)
            .generate(&mut ConstantSize::blocks(3), start, count, &mut rng)
    }

    #[test]
    fn frames_deliver_when_clock_passes() {
        let mut tb = bed();
        tb.enqueue(schedule(10, 0));
        assert_eq!(tb.pending_frames(), 10);
        let last = 10 * pc_net::CPU_FREQ_HZ / 100_000 + 100_000;
        tb.advance_to(last);
        assert_eq!(tb.pending_frames(), 0);
        assert_eq!(tb.records().len(), 10);
        assert_eq!(tb.driver().packets_received(), 10);
    }

    #[test]
    fn partial_advance_delivers_partially() {
        let mut tb = bed();
        let frames = schedule(10, 0);
        let t5 = frames[4].at;
        tb.enqueue(frames);
        tb.advance_to(t5);
        assert_eq!(tb.records().len(), 5);
        assert_eq!(tb.pending_frames(), 5);
    }

    #[test]
    fn drain_delivers_everything() {
        let mut tb = bed();
        tb.enqueue(schedule(25, 1_000_000));
        tb.drain();
        assert_eq!(tb.pending_frames(), 0);
        assert_eq!(tb.records().len(), 25);
    }

    #[test]
    fn records_follow_ring_order() {
        let mut tb = bed();
        tb.enqueue(schedule(8, 0));
        tb.drain();
        for (i, r) in tb.records().iter().enumerate() {
            assert_eq!(r.buffer_index, i);
            assert_eq!(r.blocks, 3);
        }
    }

    #[test]
    fn enqueue_merges_sorted_streams() {
        let mut tb = bed();
        tb.enqueue(schedule(5, 0));
        tb.enqueue(schedule(5, 7_777));
        let times: Vec<u64> = tb.pending.iter().map(|f| f.at).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(tb.pending_frames(), 10);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_enqueue_panics() {
        let mut tb = bed();
        let mut frames = schedule(3, 0);
        frames.reverse();
        tb.enqueue(frames);
    }

    #[test]
    fn batched_and_per_access_engines_are_byte_identical() {
        // Same config, same seeds, both engines, through the full
        // arrival pipeline (merging, gaps, deferred reads): records,
        // clock, statistics and ring state must all agree.
        for cfg in [
            TestBedConfig::paper_baseline(),
            TestBedConfig::no_ddio(),
            TestBedConfig::adaptive_defense(),
        ] {
            let mut batched = TestBed::new(cfg);
            let mut oracle = TestBed::new(cfg.with_rx_engine(RxEngine::PerAccess));
            for tb in [&mut batched, &mut oracle] {
                let mut rng = SmallRng::seed_from_u64(42);
                let frames = ArrivalSchedule::new(LineRate::gigabit())
                    .frames_per_second(150_000)
                    .generate(&mut pc_net::UniformSizes::full_range(), 0, 400, &mut rng);
                tb.enqueue(frames);
                tb.drain();
            }
            assert_eq!(batched.records(), oracle.records());
            assert_eq!(batched.now(), oracle.now());
            assert_eq!(
                batched.hierarchy().llc().stats(),
                oracle.hierarchy().llc().stats()
            );
            assert_eq!(
                batched.hierarchy().memory_stats(),
                oracle.hierarchy().memory_stats()
            );
            assert_eq!(
                batched.driver().ring().page_addresses(),
                oracle.driver().ring().page_addresses()
            );
        }
    }

    #[test]
    fn no_ddio_bed_runs_deferred_reads() {
        let mut tb = TestBed::new(TestBedConfig::no_ddio());
        let mut rng = SmallRng::seed_from_u64(9);
        let frames = ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(50_000)
            .generate(
                &mut ConstantSize::new(pc_net::EthernetFrame::mtu_sized()),
                0,
                5,
                &mut rng,
            );
        tb.enqueue(frames);
        tb.drain();
        // After draining, payload blocks are in the cache via CPU reads.
        let r = tb.records()[0];
        assert!(tb.hierarchy().llc().contains(r.buffer_addr.add_blocks(5)));
    }
}
