//! Kill tests for the rx-engine fault sites: the windowed (burst)
//! delivery engine is mutated and the windowed ↔ per-frame trajectory
//! comparison must notice.
//!
//! The two catalog sites above the op-stream engines —
//! `dropped-deferred-read` and `burst-flush-elision`
//! (`pc_cache::fault`) — mutate windowed delivery only, so the
//! detector drives the same arrival schedule through a `Batched` bed
//! (via the public [`TestBed::run_window`], so windows form on any
//! host core count) and a `PerFrame` bed, comparing the *trajectory* —
//! clock, memory traffic, LLC statistics after every step — not just
//! the end state: a dropped or reordered deferred read shows up
//! mid-flight. The cache is deliberately minuscule (4 sets × 2 ways
//! per slice) so reordering a single read across a frame replay is
//! almost surely visible in LRU state.
//!
//! The no-fault run of the same detector is the negative control: the
//! windowed and per-frame engines must stay byte-identical, pinning
//! that the injection hooks perturb nothing — and doubling as an extra
//! engine-equivalence regression over deferred-read-heavy traffic.

use pc_cache::fault::{self, FaultSite, FaultSpec};
use pc_cache::{CacheGeometry, DdioMode};
use pc_core::{RxEngine, TestBed, TestBedConfig};
use pc_net::{EthernetFrame, ScheduledFrame};
use pc_nic::DriverConfig;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn config(rx_engine: RxEngine) -> TestBedConfig {
    TestBedConfig {
        // Tiny and 2-way: maximal conflict pressure, so any reordering
        // of the deferred payload reads perturbs LRU state.
        geometry: CacheGeometry::new(2, 2, 2),
        // Deferred reads only exist without DDIO.
        ddio: DdioMode::Disabled,
        driver: DriverConfig {
            // Small ring: buffers recycle quickly, so deferred reads
            // and later frames' DMA fight over the same lines.
            ring_size: 8,
            ..DriverConfig::paper_defaults()
        },
        ..TestBedConfig::no_ddio()
    }
    .with_seed(0x517e)
    .with_rx_engine(rx_engine)
}

/// Bursts shaped to exercise both rx fault sites: one MTU frame defers
/// its payload reads (due ≈ +18 k cycles, the driver default), then a
/// zero-gap train of copybreak frames arrives just past that due time
/// — so windows are collected *while* deferred reads are pending (the
/// deferred-pending cut engages) and the due reads run between those
/// windows (inside `run_window`, where the windowed-rx sites live).
fn schedule() -> Vec<ScheduledFrame> {
    let mtu = EthernetFrame::new(1514).expect("legal size");
    let small = EthernetFrame::new(64).expect("legal size");
    let mut frames = Vec::new();
    let mut t = 1_000u64;
    for _ in 0..40 {
        frames.push(ScheduledFrame { at: t, frame: mtu });
        // Past the MTU's payload due time (arrival + ~5 k replay +
        // 18 k delay): the first small is collected with the dues
        // pending (the cut engages) and the dues run right after it.
        for _ in 0..6 {
            frames.push(ScheduledFrame {
                at: t + 24_000,
                frame: small,
            });
        }
        t += 40_000;
    }
    frames
}

/// Drives the windowed and per-frame beds through the schedule in
/// lockstep and returns the first trajectory divergence, if any.
fn detect() -> Option<String> {
    let mut windowed = TestBed::new(config(RxEngine::Batched));
    let mut perframe = TestBed::new(config(RxEngine::PerFrame));
    let frames = schedule();
    let end = frames.last().expect("nonempty").at + 40_000;
    windowed.enqueue(frames.clone());
    perframe.enqueue(frames);
    // One step per burst, landing after the burst's smalls: the dues
    // must still be pending when the small train is collected, so no
    // step boundary may fall between the due time and the train.
    let mut t = 0;
    while t < end {
        t += 40_000;
        // The public windowed entry point (window collection plus the
        // trailing advance) — explicit, so windows form even on hosts
        // where `advance_to` legitimately picks per-frame delivery.
        windowed.run_window(t);
        windowed.advance_to(t);
        perframe.advance_to(t);
        if windowed.now() != perframe.now() {
            return Some(format!(
                "clock at step {t}: windowed {} != per-frame {}",
                windowed.now(),
                perframe.now()
            ));
        }
        let (wh, ph) = (windowed.hierarchy(), perframe.hierarchy());
        if wh.memory_stats() != ph.memory_stats() {
            return Some(format!("memory traffic at step {t}"));
        }
        if wh.llc().stats() != ph.llc().stats() {
            return Some(format!("LLC stats at step {t}"));
        }
        if windowed.records() != perframe.records() {
            return Some(format!("receive records at step {t}"));
        }
        // Residency must be compared *mid-flight*: a reordered
        // deferred read perturbs LRU state in sets where every later
        // access is a forced miss (DMA invalidates first), so the
        // divergence never reaches the statistics and the recycling
        // ring eventually rewrites the evidence.
        for rec in windowed.records() {
            for b in 0..u64::from(rec.blocks) {
                let addr = rec.buffer_addr.add_blocks(b);
                if wh.llc().contains(addr) != ph.llc().contains(addr) {
                    return Some(format!("residency of {addr} at step {t}"));
                }
            }
        }
    }
    windowed.drain();
    perframe.drain();
    if windowed.records() != perframe.records() {
        return Some("receive records after drain".into());
    }
    if windowed.driver().ring().page_addresses() != perframe.driver().ring().page_addresses() {
        return Some("ring placement after drain".into());
    }
    for rec in windowed.records() {
        for b in 0..u64::from(rec.blocks) {
            let addr = rec.buffer_addr.add_blocks(b);
            if windowed.hierarchy().llc().contains(addr)
                != perframe.hierarchy().llc().contains(addr)
            {
                return Some(format!("residency of {addr} after drain"));
            }
        }
    }
    None
}

const RX_SITES: [FaultSite; 2] = [FaultSite::DroppedDeferredRead, FaultSite::BurstFlushElision];

#[test]
fn every_rx_fault_site_is_killed_for_every_seed() {
    let _g = serialized();
    let mut survivors = Vec::new();
    for site in RX_SITES {
        for seed in 0..3u64 {
            fault::arm(FaultSpec {
                site,
                seed,
                nth: None,
            });
            let outcome = catch_unwind(AssertUnwindSafe(detect));
            let consultations = fault::consultations();
            fault::disarm();
            if matches!(outcome, Ok(None)) {
                survivors.push(format!(
                    "{}:{seed} survived ({consultations} consultations)",
                    site.name()
                ));
            }
        }
    }
    assert!(
        survivors.is_empty(),
        "surviving mutants:\n{}",
        survivors.join("\n")
    );
}

/// Negative control: no fault armed → the windowed and per-frame
/// engines are byte-identical over the deferred-read-heavy schedule.
#[test]
fn windowed_and_per_frame_agree_with_no_fault_armed() {
    let _g = serialized();
    fault::disarm();
    assert_eq!(detect(), None);
}
