//! Kill tests for the rx-engine fault sites: the windowed (burst)
//! delivery engine is mutated and the windowed ↔ per-frame trajectory
//! comparison must notice.
//!
//! The four catalog sites above the op-stream engines —
//! `dropped-deferred-read`, `burst-flush-elision`,
//! `swapped-segment-subtotal` and `stale-deferred-segment-index`
//! (`pc_cache::fault`) — mutate windowed delivery only, so the
//! detector drives the same arrival schedule through a `Batched` bed
//! (via the public [`TestBed::run_window`], so windows form on any
//! host core count) and a `PerFrame` bed, comparing the *trajectory* —
//! clock, memory traffic, LLC statistics after every step — not just
//! the end state: a dropped or reordered deferred read shows up
//! mid-flight. The cache is deliberately minuscule (4 sets × 2 ways
//! per slice) so reordering a single read across a frame replay is
//! almost surely visible in LRU state.
//!
//! The no-fault run of the same detector is the negative control: the
//! windowed and per-frame engines must stay byte-identical, pinning
//! that the injection hooks perturb nothing — and doubling as an extra
//! engine-equivalence regression over deferred-read-heavy traffic.

use pc_cache::fault::{self, FaultSite, FaultSpec};
use pc_cache::{CacheGeometry, DdioMode};
use pc_core::{RxEngine, TestBed, TestBedConfig};
use pc_net::{EthernetFrame, ScheduledFrame};
use pc_nic::DriverConfig;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn config(rx_engine: RxEngine) -> TestBedConfig {
    TestBedConfig {
        // Tiny and 2-way: maximal conflict pressure, so any reordering
        // of the deferred payload reads perturbs LRU state.
        geometry: CacheGeometry::new(2, 2, 2),
        // Deferred reads only exist without DDIO.
        ddio: DdioMode::Disabled,
        driver: DriverConfig {
            // Small ring: buffers recycle quickly, so deferred reads
            // and later frames' DMA fight over the same lines.
            ring_size: 8,
            ..DriverConfig::paper_defaults()
        },
        ..TestBedConfig::no_ddio()
    }
    .with_seed(0x517e)
    .with_rx_engine(rx_engine)
}

/// Burst period; each burst is observed in two detect steps (head and
/// tail, see [`schedule`]).
const BURST_PERIOD: u64 = 60_000;

/// Bursts shaped to exercise all four rx fault sites. Each burst puts
/// `burst % 24` zero-gap copybreak frames *before* its MTU frame, so
/// the MTU — the frame that defers its payload reads — lands at every
/// fused-window segment index 0..23: the keyed sites
/// (`stale-deferred-segment-index` keys on the deferral's segment,
/// `swapped-segment-subtotal` on the swapped boundary) are consulted
/// across their whole modulus range, and a fired mutation shifts the
/// payload due ~5.5 k cycles earlier (the MTU replay's cost). A small
/// train then brackets the true due time (due = emit end + 18 k, the
/// driver default delay) at ~900-cycle (one replay) spacing, so the
/// 22 payload reads land between specific train frames and any due
/// shift reorders them across several frames' DMA — near the *end* of
/// the burst, where the minuscule cache still remembers the order at
/// the next trajectory check. The detector observes each burst in two
/// steps: the head step delivers `[smalls…, MTU]` alone and resolves
/// the deferral against reconstructed segment ends; the tail step
/// then delivers the train, so every deferred-pending cut it takes
/// comes from an *exact* heap due — a cut the reads run right behind,
/// which is precisely the cut `burst-flush-elision` must not get away
/// with eliding (and each read consults `dropped-deferred-read`).
fn schedule() -> Vec<ScheduledFrame> {
    let mtu = EthernetFrame::new(1514).expect("legal size");
    let small = EthernetFrame::new(64).expect("legal size");
    let mut frames = Vec::new();
    let mut t = 1_000u64;
    for burst in 0..40u64 {
        let leading = burst % 24;
        for _ in 0..leading {
            frames.push(ScheduledFrame::new(t, small));
        }
        frames.push(ScheduledFrame::new(t, mtu));
        // The train starts just past the earliest mutated due
        // (emit end − MTU cost + delay ≈ +18 k from the emit end) and
        // runs past the true due (+18 k), one frame per replay cost.
        let emit_end = 900 * leading + 5_500;
        for j in 0..8u64 {
            frames.push(ScheduledFrame::new(t + emit_end + 12_800 + j * 900, small));
        }
        t += BURST_PERIOD;
    }
    frames
}

/// Drives the windowed and per-frame beds through the schedule in
/// lockstep and returns the first trajectory divergence, if any.
fn detect() -> Option<String> {
    let mut windowed = TestBed::new(config(RxEngine::Batched));
    let mut perframe = TestBed::new(config(RxEngine::PerFrame));
    let frames = schedule();
    let end = frames.last().expect("nonempty").at + BURST_PERIOD;
    windowed.enqueue(frames.clone());
    perframe.enqueue(frames);
    // Two steps per burst: the head step (`+12 k`, before any due can
    // fall) delivers `[smalls…, MTU]` and resolves the deferral; the
    // tail step delivers the train, where every deferred-pending cut
    // comes from the exact resolved due (see `schedule`).
    let mut steps = Vec::new();
    let mut burst_at = 1_000;
    while burst_at < end {
        steps.push(burst_at + 12_000);
        steps.push(burst_at + 52_000);
        burst_at += BURST_PERIOD;
    }
    for t in steps {
        // The public windowed entry point (window collection plus the
        // trailing advance) — explicit, so windows form even on hosts
        // where `advance_to` legitimately picks per-frame delivery.
        windowed.run_window(t);
        windowed.advance_to(t);
        perframe.advance_to(t);
        if windowed.now() != perframe.now() {
            return Some(format!(
                "clock at step {t}: windowed {} != per-frame {}",
                windowed.now(),
                perframe.now()
            ));
        }
        let (wh, ph) = (windowed.hierarchy(), perframe.hierarchy());
        if wh.memory_stats() != ph.memory_stats() {
            return Some(format!("memory traffic at step {t}"));
        }
        if wh.llc().stats() != ph.llc().stats() {
            return Some(format!("LLC stats at step {t}"));
        }
        if windowed.records() != perframe.records() {
            return Some(format!("receive records at step {t}"));
        }
        // Residency must be compared *mid-flight*: a reordered
        // deferred read perturbs LRU state in sets where every later
        // access is a forced miss (DMA invalidates first), so the
        // divergence never reaches the statistics and the recycling
        // ring eventually rewrites the evidence.
        for rec in windowed.records() {
            for b in 0..u64::from(rec.blocks) {
                let addr = rec.buffer_addr.add_blocks(b);
                if wh.llc().contains(addr) != ph.llc().contains(addr) {
                    return Some(format!("residency of {addr} at step {t}"));
                }
            }
        }
    }
    windowed.drain();
    perframe.drain();
    if windowed.records() != perframe.records() {
        return Some("receive records after drain".into());
    }
    if windowed.driver().ring().page_addresses() != perframe.driver().ring().page_addresses() {
        return Some("ring placement after drain".into());
    }
    for rec in windowed.records() {
        for b in 0..u64::from(rec.blocks) {
            let addr = rec.buffer_addr.add_blocks(b);
            if windowed.hierarchy().llc().contains(addr)
                != perframe.hierarchy().llc().contains(addr)
            {
                return Some(format!("residency of {addr} after drain"));
            }
        }
    }
    None
}

const RX_SITES: [FaultSite; 4] = [
    FaultSite::DroppedDeferredRead,
    FaultSite::BurstFlushElision,
    FaultSite::SwappedSegmentSubtotal,
    FaultSite::StaleDeferredSegmentIndex,
];

#[test]
fn every_rx_fault_site_is_killed_for_every_seed() {
    let _g = serialized();
    let mut survivors = Vec::new();
    for site in RX_SITES {
        for seed in 0..3u64 {
            fault::arm(FaultSpec {
                site,
                seed,
                nth: None,
            });
            let outcome = catch_unwind(AssertUnwindSafe(detect));
            let consultations = fault::consultations();
            fault::disarm();
            if matches!(outcome, Ok(None)) {
                survivors.push(format!(
                    "{}:{seed} survived ({consultations} consultations)",
                    site.name()
                ));
            }
        }
    }
    assert!(
        survivors.is_empty(),
        "surviving mutants:\n{}",
        survivors.join("\n")
    );
}

/// Negative control: no fault armed → the windowed and per-frame
/// engines are byte-identical over the deferred-read-heavy schedule.
#[test]
fn windowed_and_per_frame_agree_with_no_fault_armed() {
    let _g = serialized();
    fault::disarm();
    assert_eq!(detect(), None);
}
