//! Property-based tests for the attack core's algorithms.

use pc_core::covert::{class_to_ternary, lfsr_symbols, Encoding};
use pc_core::levenshtein::{cyclic_levenshtein, error_rate, levenshtein, longest_mismatch_run};
use pc_core::sequencer::EdgeGraph;
use pc_probe::SampleMatrix;
use proptest::prelude::*;

fn seq_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..5, 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Metric axioms: identity, symmetry, triangle inequality.
    #[test]
    fn levenshtein_is_a_metric(a in seq_strategy(), b in seq_strategy(), c in seq_strategy()) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    /// Distance is bounded by the longer length and at least the length
    /// difference.
    #[test]
    fn levenshtein_bounds(a in seq_strategy(), b in seq_strategy()) {
        let d = levenshtein(&a, &b);
        prop_assert!(d <= a.len().max(b.len()));
        prop_assert!(d >= a.len().abs_diff(b.len()));
    }

    /// Any rotation of a sequence has cyclic distance zero to it.
    #[test]
    fn cyclic_distance_ignores_rotation(a in proptest::collection::vec(0u8..5, 1..30), rot in 0usize..30) {
        let mut rotated = a.clone();
        rotated.rotate_left(rot % a.len());
        prop_assert_eq!(cyclic_levenshtein(&rotated, &a), 0);
    }

    /// Cyclic distance never exceeds plain distance.
    #[test]
    fn cyclic_never_worse(a in seq_strategy(), b in seq_strategy()) {
        prop_assert!(cyclic_levenshtein(&a, &b) <= levenshtein(&a, &b));
    }

    /// Error rate is a normalized distance in [0, max(1, ...)] and zero
    /// iff equal (for non-empty references).
    #[test]
    fn error_rate_normalization(a in seq_strategy(), b in proptest::collection::vec(0u8..5, 1..40)) {
        let e = error_rate(&a, &b);
        prop_assert!(e >= 0.0);
        if a == b {
            prop_assert_eq!(e, 0.0);
        }
    }

    /// Longest mismatch run is bounded by the longer sequence and zero
    /// for identical sequences.
    #[test]
    fn mismatch_run_bounds(a in proptest::collection::vec(0u8..5, 1..30)) {
        prop_assert_eq!(longest_mismatch_run(&a, &a), 0);
        let mut b = a.clone();
        b.reverse();
        prop_assert!(longest_mismatch_run(&b, &a) <= a.len());
    }

    /// The sequencer recovers any noise-free ring exactly (up to
    /// rotation) when every node is distinct.
    #[test]
    fn sequencer_recovers_random_rings(n in 3usize..24, rounds in 5usize..20, seed in 0u64..1000) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut ring: Vec<usize> = (0..n).collect();
        ring.shuffle(&mut rng);
        let mut m = SampleMatrix::new((0..n).collect());
        for r in 0..n * rounds {
            let mut row = vec![false; n];
            row[ring[r % n]] = true;
            m.push(row);
        }
        let seq = EdgeGraph::build(&m).make_sequence(2, n * 4);
        prop_assert_eq!(cyclic_levenshtein(&seq, &ring), 0, "ring {:?} -> {:?}", ring, seq);
    }

    /// Encoding round trip: every symbol's frame decodes back to the
    /// symbol via the block-activity rule, for both alphabets.
    #[test]
    fn covert_encoding_round_trips(symbol in 0u8..3) {
        for enc in [Encoding::Binary, Encoding::Ternary] {
            if symbol >= enc.alphabet() {
                continue;
            }
            let frame = enc.frame_for(symbol);
            let blocks = frame.cache_blocks();
            let decoded = enc.decode(blocks >= 3, blocks >= 4);
            prop_assert_eq!(decoded, symbol);
        }
    }

    /// Chasing size classes map onto ternary symbols consistently with
    /// the encoder (1-block packets read as class 2 via the prefetch).
    #[test]
    fn class_mapping_consistent(symbol in 0u8..3) {
        let frame = Encoding::Ternary.frame_for(symbol);
        let class = (frame.cache_blocks().clamp(2, 4)) as u8;
        prop_assert_eq!(class_to_ternary(class), symbol);
    }

    /// LFSR symbol streams stay in-alphabet and roughly balanced.
    #[test]
    fn lfsr_streams_in_alphabet(count in 30usize..300, seed in 1u16..0x7fff) {
        for enc in [Encoding::Binary, Encoding::Ternary] {
            let syms = lfsr_symbols(enc, count, seed);
            prop_assert_eq!(syms.len(), count);
            prop_assert!(syms.iter().all(|&s| s < enc.alphabet()));
        }
    }
}
