//! Physical addresses and the line/page arithmetic used throughout the
//! reproduction.

use std::fmt;

/// Cache line size in bytes (64 on every Intel machine the paper targets).
pub const LINE_SIZE: usize = 64;
/// `log2(LINE_SIZE)`.
pub const LINE_SIZE_LOG2: u32 = 6;
/// Page size in bytes (4 KiB).
pub const PAGE_SIZE: usize = 4096;
/// `log2(PAGE_SIZE)`.
pub const PAGE_SIZE_LOG2: u32 = 12;

/// A physical memory address.
///
/// The Packet Chasing attack reasons about physical addresses because both
/// the NIC's DMA engine and the LLC index operate on them. The newtype
/// keeps them from being confused with virtual addresses, loop counters or
/// cycle counts.
///
/// ```
/// use pc_cache::PhysAddr;
/// let a = PhysAddr::new(0x12345);
/// assert_eq!(a.page_base().raw(), 0x12000);
/// assert_eq!(a.block_in_page(), 0xD);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from its raw value.
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// The raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The address rounded down to the containing cache line.
    pub const fn line_base(self) -> Self {
        PhysAddr(self.0 & !((LINE_SIZE as u64) - 1))
    }

    /// The address rounded down to the containing 4 KiB page.
    pub const fn page_base(self) -> Self {
        PhysAddr(self.0 & !((PAGE_SIZE as u64) - 1))
    }

    /// The physical page frame number (address divided by the page size).
    pub const fn page_number(self) -> u64 {
        self.0 >> PAGE_SIZE_LOG2
    }

    /// Byte offset within the containing page.
    pub const fn offset_in_page(self) -> usize {
        (self.0 & ((PAGE_SIZE as u64) - 1)) as usize
    }

    /// Index of the containing cache line within its page (0..64).
    pub const fn block_in_page(self) -> usize {
        self.offset_in_page() >> LINE_SIZE_LOG2
    }

    /// `true` when the address is page aligned (low 12 bits zero).
    ///
    /// Page-aligned addresses are the key to the attack: the IGB driver's
    /// rx buffers start on page (or half-page) boundaries, so only the
    /// 256 page-aligned set-slices can hold a buffer's first block.
    pub const fn is_page_aligned(self) -> bool {
        self.0 & ((PAGE_SIZE as u64) - 1) == 0
    }

    /// `true` when the address is cache-line aligned.
    pub const fn is_line_aligned(self) -> bool {
        self.0 & ((LINE_SIZE as u64) - 1) == 0
    }

    /// The address `blocks` cache lines after `self`.
    ///
    /// Used to derive the addresses of blocks 1..=3 of a packet buffer from
    /// the buffer's base, exactly as the spy does in §IV-b of the paper.
    pub const fn add_blocks(self, blocks: u64) -> Self {
        PhysAddr(self.0 + blocks * LINE_SIZE as u64)
    }

    /// The address `bytes` bytes after `self`.
    pub const fn add_bytes(self, bytes: u64) -> Self {
        PhysAddr(self.0 + bytes)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysAddr({:#x})", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::Octal for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        PhysAddr(raw)
    }
}

impl From<PhysAddr> for u64 {
    fn from(addr: PhysAddr) -> Self {
        addr.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_base_masks_low_bits() {
        assert_eq!(PhysAddr::new(0x1fff).line_base(), PhysAddr::new(0x1fc0));
        assert_eq!(PhysAddr::new(0x1fc0).line_base(), PhysAddr::new(0x1fc0));
    }

    #[test]
    fn page_base_and_offset_recompose() {
        let a = PhysAddr::new(0xdead_beef);
        assert_eq!(a.page_base().raw() + a.offset_in_page() as u64, a.raw());
    }

    #[test]
    fn page_alignment_detection() {
        assert!(PhysAddr::new(0).is_page_aligned());
        assert!(PhysAddr::new(0x7000).is_page_aligned());
        assert!(!PhysAddr::new(0x7040).is_page_aligned());
        assert!(PhysAddr::new(0x7040).is_line_aligned());
        assert!(!PhysAddr::new(0x7041).is_line_aligned());
    }

    #[test]
    fn block_in_page_counts_lines() {
        assert_eq!(PhysAddr::new(0x1000).block_in_page(), 0);
        assert_eq!(PhysAddr::new(0x1040).block_in_page(), 1);
        assert_eq!(PhysAddr::new(0x1fc0).block_in_page(), 63);
    }

    #[test]
    fn add_blocks_advances_by_lines() {
        let base = PhysAddr::new(0x4000);
        assert_eq!(base.add_blocks(3).raw(), 0x40c0);
        assert_eq!(base.add_blocks(3).block_in_page(), 3);
    }

    #[test]
    fn half_page_buffer_second_half() {
        // The IGB driver packs two 2048-byte buffers into one page; the
        // second half starts at block 32.
        let page = PhysAddr::new(0x9000);
        let second_half = page.add_bytes(2048);
        assert_eq!(second_half.block_in_page(), 32);
        assert!(second_half.is_line_aligned());
        assert!(!second_half.is_page_aligned());
    }

    #[test]
    fn conversions_round_trip() {
        let a: PhysAddr = 0x42u64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 0x42);
    }

    #[test]
    fn debug_is_nonempty_and_hex() {
        let s = format!("{:?}", PhysAddr::new(0x1234));
        assert!(s.contains("0x1234"));
        assert_eq!(format!("{:x}", PhysAddr::new(0xab)), "ab");
        assert_eq!(format!("{:X}", PhysAddr::new(0xab)), "AB");
        assert_eq!(format!("{:b}", PhysAddr::new(0b101)), "101");
        assert_eq!(format!("{:o}", PhysAddr::new(0o17)), "17");
    }
}
