//! Seeded single-point fault injection: the invariant catalog made
//! executable.
//!
//! The reproduction's determinism story rests on differential suites —
//! op-fuzz rounds, driver batch equivalence, test-bed engine
//! equivalence, scenario goldens — that compare independent engines
//! byte for byte. A suite that has never caught a divergence proves
//! nothing; this module gives it something to catch. Each
//! [`FaultSite`] names one single-point mutation of one engine (an
//! off-by-one, a dropped flush, a skipped update), armed globally via
//! [`arm`] or the `PC_FAULT` environment variable and consulted by a
//! hook at the mutation site. The kill-matrix harness
//! (`repro fault-matrix`, `fault_kill` tests) arms every site in turn
//! and asserts at least one suite kills each mutant.
//!
//! ## Arming rules
//!
//! * At most one site is armed at a time, process-globally.
//! * The hot-path predicates ([`fires`], [`fires_keyed`]) check a
//!   single relaxed atomic first; when nothing is armed they cost one
//!   load and a predictable branch — the negative-control suites pin
//!   that arming hooks perturb nothing.
//! * Every site mutates exactly **one** engine, so the differential
//!   suites always have a clean engine to differ against. Sites whose
//!   hook sits in substrate shared by several engines (the shard hit
//!   path, the deferred-read queue) additionally require an
//!   [`Engine`] context tag, set by the engine driver via
//!   [`engine_scope`]; without the matching tag the site never fires.
//! * Firing is deterministic. *Counter* sites fire exactly once, on
//!   the `nth` consultation after arming (`nth` derived from the
//!   fault seed when not given). *Keyed* sites fire as a pure
//!   function of the consulted key — `mix_seed(seed, key) % m == 0` —
//!   so parallel engines fire identically under any thread schedule.
//!
//! ## Adding a site
//!
//! When a new engine joins an equivalence class, give it a site here:
//! add a variant, extend [`FaultSite::ALL`] and the `match` tables
//! (name, kind, engine, description), hook the mutation into the new
//! engine behind [`fires`]/[`fires_keyed`], and add the site to the
//! kill harness — the matrix then proves the suites notice when that
//! engine, and only that engine, misbehaves.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// Which replay engine a fault mutates (and therefore which context
/// tag its hook requires when the hook sits in shared substrate).
///
/// The per-access oracle deliberately has no variant: it is the clean
/// reference every differential suite compares against, so no catalog
/// site ever mutates it.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum Engine {
    /// The batched replay paths (`run_ops`, `run_trace_threads`, the
    /// slice-sharded dispatcher and the buffered short loop).
    Batch,
    /// The streaming [`crate::OpApplier`].
    Streaming,
    /// The test bed's windowed (burst) receive engine.
    WindowedRx,
}

/// How a site decides to fire (see the module-level arming rules).
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum FiringKind {
    /// Fires exactly once, on the `nth` consultation after arming.
    Counter,
    /// Fires whenever `mix_seed(seed, key) % modulus == 0` — a pure
    /// function of the consulted key, schedule-independent.
    Keyed,
}

/// The catalog of single-point mutations. Each variant names one
/// injection site in one engine; the doc comment on each is the
/// invariant the site falsifies.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum FaultSite {
    /// `CacheStats::merge` adds one extra CPU hit — the per-slice
    /// shard totals no longer sum to what a shared counter set would
    /// have seen. Counter-fired at the aggregation layer (merged
    /// [`crate::SlicedCache::stats`]), so only merged totals lie;
    /// per-slice stats stay truthful.
    StatOffByOne,
    /// [`crate::OpApplier`]'s drop skips flushing its accumulated
    /// clock/memory deltas — the streaming engine silently loses its
    /// tail. Counter-fired, streaming engine only.
    DroppedFlush,
    /// The shard hit path skips the LRU touch for keyed tags — batch
    /// replay ages lines the oracle refreshes, so eviction order
    /// drifts. Keyed on the line tag; requires the [`Engine::Batch`]
    /// context tag (the hook sits in the shared shard substrate).
    StaleLru,
    /// The slice-sharded dispatcher bins keyed addresses into the
    /// neighbouring slice — the undocumented hash and the shard
    /// partition disagree. Keyed on the raw address; lexically
    /// batch-only (the binning loop exists nowhere else).
    SwappedSliceBin,
    /// [`crate::OpBuffer`] skews keyed ops' leads by +13 cycles — the
    /// buffered batch's clock walks away from the per-access oracle's.
    /// Keyed on the raw address; buffered producers only.
    CorruptedLead,
    /// The deferred-read queue drops one due payload read instead of
    /// executing it — the windowed engine loses a memory access the
    /// per-frame engine performs. Counter-fired; requires the
    /// [`Engine::WindowedRx`] context tag.
    DroppedDeferredRead,
    /// A shard skips one adaptive-defense period evaluation — the
    /// streaming engine's defense clock crosses a boundary without
    /// re-evaluating. Keyed on the shard's defense clock; requires
    /// the [`Engine::Streaming`] context tag.
    SkippedDefenseEval,
    /// The burst window collector elides the cut it must make while
    /// deferred reads are pending, fusing later frames into the
    /// current window — pending payload reads then replay after
    /// traffic they should precede. Counter-fired, windowed engine
    /// only.
    BurstFlushElision,
    /// The adaptive defense's incremental bookkeeping stamps a keyed
    /// set's dirty epoch without pushing it onto the dirty worklist —
    /// the set silently skips its period evaluation while later writes
    /// think it is queued. Keyed on the slice-local set index; requires
    /// the [`Engine::Batch`] context tag (the hook sits in the shared
    /// shard substrate).
    StaleDirtySet,
    /// A shard's period evaluation skips the epoch bump that retires
    /// last period's dirty stamps — sets touched last period falsely
    /// appear already-queued, so their next I/O write never re-enters
    /// them into the worklist. Keyed on the shard's defense clock;
    /// requires the [`Engine::Streaming`] context tag.
    SkippedEpochBump,
    /// The packed 8-byte `CacheOp` decode truncates a keyed escaped
    /// lead to the largest inline value — the buffered batch's clock
    /// falls short of the per-access oracle's. Keyed on the packed op
    /// word; lexically buffered-decode-only (streaming and oracle
    /// engines never decode).
    TruncatedLead,
    /// The segmented replay swaps keyed neighbouring segments' cycle
    /// subtotals — totals (and the final clock) stay right, but a
    /// consumer reconstructing per-segment clocks (the fused window's
    /// gap max, deferred-read dues) reads the wrong boundary. Keyed on
    /// the segment index; lexically segmented-replay-only.
    SwappedSegmentSubtotal,
    /// The fused receive path files a keyed deferred payload read under
    /// the *previous* segment's index — its due time reconstructs from
    /// the wrong segment base, so the read replays earlier than the
    /// per-frame engine performs it. Keyed on the deferral's segment
    /// index; lexically fused-receive-only.
    StaleDeferredSegmentIndex,
    /// The monitor's fused cross-epoch sample inverts a keyed target's
    /// classification (misses become `accesses - misses`) — the fused
    /// batch aggregate disagrees with the per-target probe walk it
    /// summarizes. Keyed on the target index; lexically
    /// fused-sample-only.
    CrossEpochMisclassify,
    /// The RSS steer routes a keyed flow to the *next* queue index —
    /// frames land in the wrong ring, so per-queue ring order, page
    /// placement and RNG streams all diverge from the steering
    /// contract. Keyed on the flow tuple's digest; lexically
    /// steer-only (`pc-nic`'s `rss.rs`), and inert at queue count 1
    /// (`(q+1) % 1 == q`), so armed single-queue runs stay byte-exact.
    SwappedQueueSteer,
}

impl FaultSite {
    /// Every catalog entry, in matrix order.
    pub const ALL: [FaultSite; 15] = [
        FaultSite::StatOffByOne,
        FaultSite::DroppedFlush,
        FaultSite::StaleLru,
        FaultSite::SwappedSliceBin,
        FaultSite::CorruptedLead,
        FaultSite::DroppedDeferredRead,
        FaultSite::SkippedDefenseEval,
        FaultSite::BurstFlushElision,
        FaultSite::StaleDirtySet,
        FaultSite::SkippedEpochBump,
        FaultSite::TruncatedLead,
        FaultSite::SwappedSegmentSubtotal,
        FaultSite::StaleDeferredSegmentIndex,
        FaultSite::CrossEpochMisclassify,
        FaultSite::SwappedQueueSteer,
    ];

    /// The site's kebab-case name (the `PC_FAULT` spelling).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::StatOffByOne => "stat-off-by-one",
            FaultSite::DroppedFlush => "dropped-flush",
            FaultSite::StaleLru => "stale-lru",
            FaultSite::SwappedSliceBin => "swapped-slice-bin",
            FaultSite::CorruptedLead => "corrupted-lead",
            FaultSite::DroppedDeferredRead => "dropped-deferred-read",
            FaultSite::SkippedDefenseEval => "skipped-defense-eval",
            FaultSite::BurstFlushElision => "burst-flush-elision",
            FaultSite::StaleDirtySet => "stale-dirty-set",
            FaultSite::SkippedEpochBump => "skipped-epoch-bump",
            FaultSite::TruncatedLead => "truncated-lead",
            FaultSite::SwappedSegmentSubtotal => "swapped-segment-subtotal",
            FaultSite::StaleDeferredSegmentIndex => "stale-deferred-segment-index",
            FaultSite::CrossEpochMisclassify => "cross-epoch-misclassify",
            FaultSite::SwappedQueueSteer => "swapped-queue-steer",
        }
    }

    /// Parses a kebab-case site name.
    pub fn parse(s: &str) -> Result<FaultSite, String> {
        FaultSite::ALL
            .into_iter()
            .find(|site| site.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = FaultSite::ALL.iter().map(|s| s.name()).collect();
                format!(
                    "unknown fault site `{s}`; known sites: {}",
                    names.join(", ")
                )
            })
    }

    /// How the site fires (see [`FiringKind`]).
    pub fn kind(self) -> FiringKind {
        match self {
            FaultSite::StatOffByOne
            | FaultSite::DroppedFlush
            | FaultSite::DroppedDeferredRead
            | FaultSite::BurstFlushElision => FiringKind::Counter,
            FaultSite::StaleLru
            | FaultSite::SwappedSliceBin
            | FaultSite::CorruptedLead
            | FaultSite::SkippedDefenseEval
            | FaultSite::StaleDirtySet
            | FaultSite::SkippedEpochBump
            | FaultSite::TruncatedLead
            | FaultSite::SwappedSegmentSubtotal
            | FaultSite::StaleDeferredSegmentIndex
            | FaultSite::CrossEpochMisclassify
            | FaultSite::SwappedQueueSteer => FiringKind::Keyed,
        }
    }

    /// The engine-context tag the site's hook requires, for hooks in
    /// substrate shared by several engines. `None` means the hook's
    /// location is already unique to one engine.
    pub fn required_engine(self) -> Option<Engine> {
        match self {
            FaultSite::StaleLru | FaultSite::StaleDirtySet => Some(Engine::Batch),
            FaultSite::SkippedDefenseEval | FaultSite::SkippedEpochBump => Some(Engine::Streaming),
            FaultSite::DroppedDeferredRead => Some(Engine::WindowedRx),
            _ => None,
        }
    }

    /// One-line description of the mutation, for the kill-matrix
    /// report and docs.
    pub fn description(self) -> &'static str {
        match self {
            FaultSite::StatOffByOne => "stats merge adds one extra CPU hit",
            FaultSite::DroppedFlush => "streaming applier drop loses its flush",
            FaultSite::StaleLru => "batch shard hit skips the LRU touch",
            FaultSite::SwappedSliceBin => "sharded dispatch bins into the wrong slice",
            FaultSite::CorruptedLead => "buffered op lead skewed by +13 cycles",
            FaultSite::DroppedDeferredRead => "windowed rx drops one due payload read",
            FaultSite::SkippedDefenseEval => "streaming shard skips a defense evaluation",
            FaultSite::BurstFlushElision => "window collector elides the deferred-pending cut",
            FaultSite::StaleDirtySet => "batch shard stamps a set dirty without queueing it",
            FaultSite::SkippedEpochBump => "streaming shard keeps last period's dirty stamps live",
            FaultSite::TruncatedLead => "packed op decode truncates an escaped lead",
            FaultSite::SwappedSegmentSubtotal => {
                "segmented replay swaps neighbouring segment subtotals"
            }
            FaultSite::StaleDeferredSegmentIndex => {
                "fused receive files a deferred read under the previous segment"
            }
            FaultSite::CrossEpochMisclassify => {
                "fused monitor sample inverts one target's classification"
            }
            FaultSite::SwappedQueueSteer => "RSS steer routes a flow to the next queue",
        }
    }

    fn index(self) -> u64 {
        FaultSite::ALL.iter().position(|&s| s == self).unwrap() as u64
    }
}

/// A parsed, armable fault: which site, which seed, and (optionally)
/// an explicit firing parameter — the consultation index for counter
/// sites, the key modulus for keyed sites. When `nth` is `None` the
/// parameter is derived from the seed, so `site:seed` alone already
/// names a concrete mutant.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct FaultSpec {
    /// The catalog entry to mutate.
    pub site: FaultSite,
    /// Seed for the firing decision (trigger derivation / key hash).
    pub seed: u64,
    /// Explicit firing parameter; derived from the seed when absent.
    pub nth: Option<u64>,
}

impl FaultSpec {
    /// Parses `<site>:<seed>[:<nth>]` (the `PC_FAULT` format),
    /// rejecting anything malformed with a message naming the problem.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut parts = s.split(':');
        let site = parts
            .next()
            .filter(|p| !p.is_empty())
            .ok_or_else(|| "empty fault spec; expected <site>:<seed>[:<nth>]".to_string())?;
        let site = FaultSite::parse(site)?;
        let seed = parts.next().ok_or_else(|| {
            format!("fault spec `{s}` is missing a seed; expected <site>:<seed>[:<nth>]")
        })?;
        let seed: u64 = seed
            .parse()
            .map_err(|_| format!("fault seed `{seed}` is not a non-negative integer"))?;
        let nth = match parts.next() {
            None => None,
            Some(n) => Some(
                n.parse::<u64>()
                    .map_err(|_| format!("fault nth `{n}` is not a non-negative integer"))?,
            ),
        };
        if let Some(extra) = parts.next() {
            return Err(format!(
                "fault spec `{s}` has trailing field `{extra}`; expected <site>:<seed>[:<nth>]"
            ));
        }
        Ok(FaultSpec { site, seed, nth })
    }

    /// The resolved firing parameter: the explicit `nth` (clamped to
    /// at least 1), else derived from the seed — counter sites fire on
    /// consultation 1..=4, keyed sites use a modulus in 5..=13.
    pub fn resolved_param(&self) -> u64 {
        match self.nth {
            Some(n) => n.max(1),
            None => match self.site.kind() {
                FiringKind::Counter => {
                    1 + pc_par::mix_seed(self.seed, 0xFA_0100 + self.site.index()) % 4
                }
                FiringKind::Keyed => {
                    5 + pc_par::mix_seed(self.seed, 0xFA_0200 + self.site.index()) % 9
                }
            },
        }
    }
}

impl std::fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.site.name(), self.seed)?;
        if let Some(n) = self.nth {
            write!(f, ":{n}")?;
        }
        Ok(())
    }
}

// The armed fault, split for the hot path: ARMED is the only load a
// disarmed process ever pays; the rest is read behind it. SPEC mirrors
// the same state for introspection (current()).
static ARMED: AtomicBool = AtomicBool::new(false);
static SITE: AtomicU8 = AtomicU8::new(0);
static SEED: AtomicU64 = AtomicU64::new(0);
static PARAM: AtomicU64 = AtomicU64::new(0);
static EVENTS: AtomicU64 = AtomicU64::new(0);
static SPEC: Mutex<Option<FaultSpec>> = Mutex::new(None);

fn spec_slot() -> std::sync::MutexGuard<'static, Option<FaultSpec>> {
    // The slot only holds a Copy spec; a poisoned lock (a test that
    // panicked mid-arm) can't leave it inconsistent.
    SPEC.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Arms `spec`, replacing any previously armed fault and resetting the
/// consultation counter (so counter sites fire freshly per arming).
pub fn arm(spec: FaultSpec) {
    let mut slot = spec_slot();
    ARMED.store(false, Ordering::SeqCst);
    SITE.store(spec.site.index() as u8 + 1, Ordering::SeqCst);
    SEED.store(spec.seed, Ordering::SeqCst);
    PARAM.store(spec.resolved_param(), Ordering::SeqCst);
    EVENTS.store(0, Ordering::SeqCst);
    *slot = Some(spec);
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms whatever fault is armed (a no-op when none is).
pub fn disarm() {
    let mut slot = spec_slot();
    ARMED.store(false, Ordering::SeqCst);
    SITE.store(0, Ordering::SeqCst);
    *slot = None;
}

/// The currently armed fault, if any.
pub fn current() -> Option<FaultSpec> {
    *spec_slot()
}

/// How many times the armed site's predicate has been consulted since
/// arming (counter sites only; keyed sites don't count). Harness
/// diagnostics: a mutant that "survived" with zero consultations was
/// never reached, which is a harness bug, not a suite gap.
pub fn consultations() -> u64 {
    EVENTS.load(Ordering::SeqCst)
}

/// Arms from the `PC_FAULT` environment variable if set, returning the
/// armed spec. A malformed value is a hard error (panic) — a fault
/// that silently fails to arm would fake a surviving mutant.
pub fn arm_from_env() -> Option<FaultSpec> {
    let v = std::env::var("PC_FAULT").ok()?;
    match FaultSpec::parse(&v) {
        Ok(spec) => {
            arm(spec);
            Some(spec)
        }
        Err(e) => panic!("invalid PC_FAULT: {e}"),
    }
}

/// Guard for golden refreshes: `Err` when a fault is armed (in-process
/// or via `PC_FAULT`), so `PC_BLESS=1` refuses to bless mutated
/// snapshots.
pub fn bless_guard() -> Result<(), String> {
    if let Some(spec) = current() {
        return Err(format!(
            "refusing to bless goldens while fault `{spec}` is armed"
        ));
    }
    if let Some(v) = std::env::var_os("PC_FAULT") {
        return Err(format!(
            "refusing to bless goldens while PC_FAULT={} is set",
            v.to_string_lossy()
        ));
    }
    Ok(())
}

thread_local! {
    static ENGINE_CTX: std::cell::Cell<u8> = const { std::cell::Cell::new(0) };
}

/// RAII guard that tags the current thread as running inside `engine`
/// (see [`engine_scope`]); restores the previous tag on drop.
#[derive(Debug)]
pub struct EngineScope {
    prev: u8,
    active: bool,
}

impl Drop for EngineScope {
    fn drop(&mut self) {
        if self.active {
            ENGINE_CTX.set(self.prev);
        }
    }
}

/// Tags the current thread as running inside `engine` until the
/// returned guard drops. Engine drivers whose replay shares substrate
/// with other engines set this so shared-path sites can target one
/// engine; when no fault is armed the guard is inert (one atomic
/// load, no TLS write).
pub fn engine_scope(engine: Engine) -> EngineScope {
    if !ARMED.load(Ordering::Relaxed) {
        return EngineScope {
            prev: 0,
            active: false,
        };
    }
    let tag = engine as u8 + 1;
    let prev = ENGINE_CTX.replace(tag);
    EngineScope { prev, active: true }
}

fn engine_ctx_matches(required: Engine) -> bool {
    ENGINE_CTX.get() == required as u8 + 1
}

/// Hot-path predicate for counter sites: `true` exactly when `site` is
/// armed, its engine context (if any) is active, and this is the
/// resolved `nth` consultation since arming. One relaxed load when
/// nothing is armed.
#[inline]
pub fn fires(site: FaultSite) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    fires_slow(site, None)
}

/// Hot-path predicate for keyed sites: `true` exactly when `site` is
/// armed, its engine context (if any) is active, and
/// `mix_seed(seed, key)` lands on the resolved modulus — a pure
/// function of `key`, schedule-independent. One relaxed load when
/// nothing is armed.
#[inline]
pub fn fires_keyed(site: FaultSite, key: u64) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    fires_slow(site, Some(key))
}

#[cold]
fn fires_slow(site: FaultSite, key: Option<u64>) -> bool {
    if SITE.load(Ordering::Relaxed) != site.index() as u8 + 1 {
        return false;
    }
    if let Some(required) = site.required_engine() {
        if !engine_ctx_matches(required) {
            return false;
        }
    }
    match key {
        Some(k) => {
            let m = PARAM.load(Ordering::Relaxed).max(1);
            pc_par::mix_seed(SEED.load(Ordering::Relaxed), k).is_multiple_of(m)
        }
        None => EVENTS.fetch_add(1, Ordering::Relaxed) + 1 == PARAM.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The fault state is process-global; every test that arms must
    // hold this lock so libtest's parallel runner can't interleave.
    static LOCK: Mutex<()> = Mutex::new(());

    fn serialized() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn parser_accepts_site_seed_and_optional_nth() {
        let spec = FaultSpec::parse("stale-lru:7").unwrap();
        assert_eq!(spec.site, FaultSite::StaleLru);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.nth, None);
        let spec = FaultSpec::parse("dropped-flush:0:3").unwrap();
        assert_eq!(spec.site, FaultSite::DroppedFlush);
        assert_eq!(spec.nth, Some(3));
        assert_eq!(spec.to_string(), "dropped-flush:0:3");
    }

    #[test]
    fn parser_rejects_malformed_specs_with_clear_errors() {
        let unknown = FaultSpec::parse("no-such-site:1").unwrap_err();
        assert!(unknown.contains("unknown fault site `no-such-site`"));
        assert!(
            unknown.contains("stat-off-by-one"),
            "error lists the catalog: {unknown}"
        );
        assert!(FaultSpec::parse("")
            .unwrap_err()
            .contains("empty fault spec"));
        assert!(FaultSpec::parse("stale-lru")
            .unwrap_err()
            .contains("missing a seed"));
        assert!(FaultSpec::parse("stale-lru:x")
            .unwrap_err()
            .contains("not a non-negative integer"));
        assert!(FaultSpec::parse("stale-lru:1:y")
            .unwrap_err()
            .contains("not a non-negative integer"));
        assert!(FaultSpec::parse("stale-lru:1:2:3")
            .unwrap_err()
            .contains("trailing field"));
    }

    #[test]
    fn every_site_name_round_trips_through_the_parser() {
        for site in FaultSite::ALL {
            assert_eq!(FaultSite::parse(site.name()).unwrap(), site);
            let spec = FaultSpec::parse(&format!("{}:42", site.name())).unwrap();
            assert_eq!(spec.site, site);
        }
    }

    #[test]
    fn counter_sites_fire_exactly_once_on_the_nth_consultation() {
        let _g = serialized();
        arm(FaultSpec {
            site: FaultSite::DroppedFlush,
            seed: 0,
            nth: Some(3),
        });
        let fired: Vec<bool> = (0..6).map(|_| fires(FaultSite::DroppedFlush)).collect();
        assert_eq!(fired, [false, false, true, false, false, false]);
        assert_eq!(consultations(), 6);
        // Re-arming resets the one-shot.
        arm(FaultSpec {
            site: FaultSite::DroppedFlush,
            seed: 0,
            nth: Some(1),
        });
        assert!(fires(FaultSite::DroppedFlush));
        disarm();
        assert!(!fires(FaultSite::DroppedFlush));
    }

    #[test]
    fn keyed_sites_are_pure_in_the_key_and_respect_the_armed_site() {
        let _g = serialized();
        arm(FaultSpec {
            site: FaultSite::CorruptedLead,
            seed: 11,
            nth: Some(5),
        });
        let hits: Vec<u64> = (0..200u64)
            .filter(|&k| fires_keyed(FaultSite::CorruptedLead, k))
            .collect();
        assert!(!hits.is_empty(), "a 1-in-5 keyed site hits within 200 keys");
        for &k in &hits {
            assert!(fires_keyed(FaultSite::CorruptedLead, k), "pure in key");
        }
        // A different (un-armed) site never fires.
        assert!((0..200u64).all(|k| !fires_keyed(FaultSite::SwappedSliceBin, k)));
        disarm();
    }

    #[test]
    fn context_gated_sites_need_their_engine_scope() {
        let _g = serialized();
        arm(FaultSpec {
            site: FaultSite::StaleLru,
            seed: 3,
            nth: Some(1), // modulus 1: fires on every key, context permitting
        });
        assert!(!fires_keyed(FaultSite::StaleLru, 0), "no scope, no fire");
        {
            let _scope = engine_scope(Engine::Streaming);
            assert!(!fires_keyed(FaultSite::StaleLru, 0), "wrong engine");
            {
                let _inner = engine_scope(Engine::Batch);
                assert!(fires_keyed(FaultSite::StaleLru, 0));
            }
            assert!(
                !fires_keyed(FaultSite::StaleLru, 0),
                "inner scope restored the outer tag"
            );
        }
        disarm();
    }

    #[test]
    fn seed_derived_params_are_in_range_and_seed_dependent() {
        for site in FaultSite::ALL {
            let mut params = std::collections::BTreeSet::new();
            for seed in 0..32 {
                let p = FaultSpec {
                    site,
                    seed,
                    nth: None,
                }
                .resolved_param();
                match site.kind() {
                    FiringKind::Counter => assert!((1..=4).contains(&p), "{site:?} {p}"),
                    FiringKind::Keyed => assert!((5..=13).contains(&p), "{site:?} {p}"),
                }
                params.insert(p);
            }
            assert!(params.len() > 1, "{site:?}: params vary with the seed");
        }
    }

    #[test]
    fn bless_guard_rejects_an_armed_fault() {
        let _g = serialized();
        assert!(bless_guard().is_ok());
        arm(FaultSpec {
            site: FaultSite::StatOffByOne,
            seed: 1,
            nth: None,
        });
        let err = bless_guard().unwrap_err();
        assert!(
            err.contains("refusing to bless") && err.contains("stat-off-by-one:1"),
            "{err}"
        );
        disarm();
        assert!(bless_guard().is_ok());
    }
}
