//! Cache geometry: how a physical address splits into tag / set index /
//! block offset, and how many slices, sets and ways the LLC has.

use crate::addr::{PhysAddr, LINE_SIZE_LOG2, PAGE_SIZE_LOG2};

/// The shape of a sliced, set-associative last-level cache.
///
/// Figure 2 of the paper shows Intel's complex indexing: the low 6 bits of
/// a physical address are the block offset, the next 11 bits select one of
/// 2048 sets *within a slice*, and an undocumented hash of (mostly upper)
/// address bits selects the slice. `CacheGeometry` captures everything
/// except the hash, which lives in [`crate::SliceHash`].
///
/// ```
/// use pc_cache::CacheGeometry;
/// let g = CacheGeometry::xeon_e5_2660();
/// assert_eq!(g.total_bytes(), 20 * 1024 * 1024);
/// assert_eq!(g.page_aligned_sets_per_slice(), 32);
/// assert_eq!(g.page_aligned_set_slices(), 256);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct CacheGeometry {
    sets_per_slice_log2: u32,
    slices: u32,
    ways: u32,
}

impl CacheGeometry {
    /// Creates a geometry with `2^sets_per_slice_log2` sets per slice.
    ///
    /// # Panics
    ///
    /// Panics if `slices` is zero or not a power of two, if `ways` is zero,
    /// or if `sets_per_slice_log2` exceeds 24 (an absurd cache).
    pub fn new(sets_per_slice_log2: u32, slices: u32, ways: u32) -> Self {
        assert!(
            slices > 0 && slices.is_power_of_two(),
            "slices must be a power of two"
        );
        assert!(ways > 0, "ways must be non-zero");
        assert!(sets_per_slice_log2 <= 24, "sets_per_slice_log2 too large");
        CacheGeometry {
            sets_per_slice_log2,
            slices,
            ways,
        }
    }

    /// The paper's evaluation machine: Xeon E5-2660, 20 MiB LLC,
    /// 8 slices × 2048 sets × 20 ways × 64 B lines (16384 sets total).
    pub fn xeon_e5_2660() -> Self {
        CacheGeometry::new(11, 8, 20)
    }

    /// The same slice/set shape with a different capacity in MiB, used by
    /// the paper's Figure 14 LLC-size sensitivity study (20/11/8 MiB).
    ///
    /// One way of this geometry is exactly 1 MiB, so capacity in MiB equals
    /// the number of ways.
    ///
    /// # Panics
    ///
    /// Panics if `mib` is zero.
    pub fn xeon_scaled_mib(mib: u32) -> Self {
        assert!(mib > 0, "capacity must be non-zero");
        CacheGeometry::new(11, 8, mib)
    }

    /// A tiny geometry for fast unit tests: 2 slices × 16 sets × 4 ways.
    pub fn tiny() -> Self {
        CacheGeometry::new(4, 2, 4)
    }

    /// Number of sets in each slice.
    pub fn sets_per_slice(&self) -> usize {
        1usize << self.sets_per_slice_log2
    }

    /// `log2` of the number of sets per slice.
    pub fn sets_per_slice_log2(&self) -> u32 {
        self.sets_per_slice_log2
    }

    /// Number of slices.
    pub fn slices(&self) -> usize {
        self.slices as usize
    }

    /// Associativity (ways per set).
    pub fn ways(&self) -> usize {
        self.ways as usize
    }

    /// Total number of sets across all slices.
    pub fn total_sets(&self) -> usize {
        self.sets_per_slice() * self.slices()
    }

    /// Total capacity in bytes.
    pub fn total_bytes(&self) -> usize {
        self.total_sets() * self.ways() * crate::LINE_SIZE
    }

    /// Set index (within a slice) for an address: bits
    /// `[6 .. 6 + sets_per_slice_log2)`.
    pub fn set_index(&self, addr: PhysAddr) -> usize {
        ((addr.raw() >> LINE_SIZE_LOG2) & ((1 << self.sets_per_slice_log2) - 1)) as usize
    }

    /// Tag for an address: everything above the set-index bits.
    pub fn tag(&self, addr: PhysAddr) -> u64 {
        addr.raw() >> (LINE_SIZE_LOG2 + self.sets_per_slice_log2)
    }

    /// Number of distinct set indices a page-aligned address can map to,
    /// per slice.
    ///
    /// A page-aligned address has its low 12 bits zero, so the low
    /// `12 - 6 = 6` bits of its set index are zero, leaving
    /// `sets_per_slice / 64` possibilities (32 for the Xeon geometry).
    pub fn page_aligned_sets_per_slice(&self) -> usize {
        let page_index_bits = PAGE_SIZE_LOG2 - LINE_SIZE_LOG2; // 6
        if self.sets_per_slice_log2 <= page_index_bits {
            1
        } else {
            1usize << (self.sets_per_slice_log2 - page_index_bits)
        }
    }

    /// Total number of (set, slice) pairs a page-aligned address can map
    /// to: 256 on the paper's machine — the sets the spy must monitor.
    pub fn page_aligned_set_slices(&self) -> usize {
        self.page_aligned_sets_per_slice() * self.slices()
    }

    /// The `i`-th page-aligned set index within a slice
    /// (`i < page_aligned_sets_per_slice()`): `i * 64`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn page_aligned_set_index(&self, i: usize) -> usize {
        assert!(
            i < self.page_aligned_sets_per_slice(),
            "page-aligned set out of range"
        );
        i << (PAGE_SIZE_LOG2 - LINE_SIZE_LOG2)
    }

    /// `true` if `set_index` is one a page-aligned address can map to.
    pub fn is_page_aligned_set(&self, set_index: usize) -> bool {
        set_index < self.sets_per_slice()
            && set_index & ((1 << (PAGE_SIZE_LOG2 - LINE_SIZE_LOG2)) - 1) == 0
    }
}

impl Default for CacheGeometry {
    fn default() -> Self {
        CacheGeometry::xeon_e5_2660()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_geometry_matches_paper() {
        let g = CacheGeometry::xeon_e5_2660();
        assert_eq!(g.sets_per_slice(), 2048);
        assert_eq!(g.slices(), 8);
        assert_eq!(g.ways(), 20);
        assert_eq!(g.total_sets(), 16384); // "20 MB last level cache with 16384 sets"
        assert_eq!(g.total_bytes(), 20 << 20);
    }

    #[test]
    fn page_aligned_candidates_are_256() {
        let g = CacheGeometry::xeon_e5_2660();
        assert_eq!(g.page_aligned_sets_per_slice(), 32);
        assert_eq!(g.page_aligned_set_slices(), 256);
    }

    #[test]
    fn set_index_uses_bits_6_to_17() {
        let g = CacheGeometry::xeon_e5_2660();
        assert_eq!(g.set_index(PhysAddr::new(0)), 0);
        assert_eq!(g.set_index(PhysAddr::new(0x40)), 1);
        assert_eq!(g.set_index(PhysAddr::new(0x1000)), 64); // page stride = 64 sets
        assert_eq!(g.set_index(PhysAddr::new(0x2_0000)), 0); // wraps at 2048 sets
    }

    #[test]
    fn tag_ignores_index_and_offset() {
        let g = CacheGeometry::xeon_e5_2660();
        let a = PhysAddr::new(0xabc2_0040);
        let b = PhysAddr::new(0xabc2_0000);
        assert_eq!(g.tag(a), g.tag(b));
        assert_ne!(g.tag(a), g.tag(PhysAddr::new(0x1_abc2_0040)));
    }

    #[test]
    fn page_aligned_set_enumeration() {
        let g = CacheGeometry::xeon_e5_2660();
        assert_eq!(g.page_aligned_set_index(0), 0);
        assert_eq!(g.page_aligned_set_index(1), 64);
        assert_eq!(g.page_aligned_set_index(31), 1984);
        assert!(g.is_page_aligned_set(64));
        assert!(!g.is_page_aligned_set(65));
    }

    #[test]
    #[should_panic(expected = "page-aligned set out of range")]
    fn page_aligned_set_index_bounds() {
        CacheGeometry::xeon_e5_2660().page_aligned_set_index(32);
    }

    #[test]
    fn scaled_capacity_tracks_ways() {
        assert_eq!(CacheGeometry::xeon_scaled_mib(11).total_bytes(), 11 << 20);
        assert_eq!(CacheGeometry::xeon_scaled_mib(8).total_bytes(), 8 << 20);
    }

    #[test]
    fn page_aligned_addresses_land_on_page_aligned_sets() {
        let g = CacheGeometry::xeon_e5_2660();
        for page in 0..1000u64 {
            let idx = g.set_index(PhysAddr::new(page * 4096));
            assert!(g.is_page_aligned_set(idx));
        }
    }

    #[test]
    #[should_panic(expected = "slices must be a power of two")]
    fn rejects_non_power_of_two_slices() {
        CacheGeometry::new(11, 3, 20);
    }
}
