//! The memory hierarchy facade: one cycle clock, one LLC, one memory
//! controller.
//!
//! Every crate in the reproduction talks to the machine through this
//! type: the NIC driver model issues `io_write`s for arriving packet
//! blocks, the spy issues `cpu_read`s to prime and probe, and the defense
//! workloads issue both. Latencies are returned *and* accumulated on the
//! shared clock, so interleaving (who runs when) falls out naturally.

use crate::addr::PhysAddr;
use crate::geometry::CacheGeometry;
use crate::llc::{AccessKind, DdioMode, SlicedCache};
use crate::memory::MemoryStats;
use crate::Cycles;

/// Latency (in cycles) of the modelled components.
///
/// Absolute values are calibrated to a ~3.3 GHz server-class part; only
/// the *gap* between `llc_hit` and `dram` matters for the attack (that gap
/// is the PRIME+PROBE signal).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct LatencyModel {
    /// LLC hit latency.
    pub llc_hit: Cycles,
    /// DRAM access latency (LLC miss penalty).
    pub dram: Cycles,
    /// Cost of non-memory attacker work per probed address (pointer
    /// chasing overhead, timer reads).
    pub op: Cycles,
}

impl LatencyModel {
    /// Defaults: 40-cycle LLC hit, 200-cycle DRAM, 2-cycle ALU op.
    pub fn server_defaults() -> Self {
        LatencyModel { llc_hit: 40, dram: 200, op: 2 }
    }

    /// The threshold a timing attacker would use to call an access a miss:
    /// halfway between hit and miss latency.
    pub fn miss_threshold(&self) -> Cycles {
        (self.llc_hit + self.dram) / 2
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::server_defaults()
    }
}

/// The simulated machine: clock + LLC + memory controller.
///
/// ```
/// use pc_cache::{CacheGeometry, DdioMode, Hierarchy, PhysAddr};
/// let mut h = Hierarchy::new(CacheGeometry::tiny(), DdioMode::enabled());
/// let t0 = h.now();
/// h.io_write(PhysAddr::new(0x2000)); // a packet block lands in the LLC
/// assert!(h.now() > t0);
/// ```
#[derive(Clone, Debug)]
pub struct Hierarchy {
    llc: SlicedCache,
    mem: MemoryStats,
    lat: LatencyModel,
    clock: Cycles,
}

impl Hierarchy {
    /// Creates a hierarchy with default latencies and a default-seeded
    /// LLC.
    pub fn new(geom: CacheGeometry, mode: DdioMode) -> Self {
        Hierarchy::with_llc(SlicedCache::new(geom, mode))
    }

    /// Wraps an explicitly configured cache.
    pub fn with_llc(llc: SlicedCache) -> Self {
        Hierarchy { llc, mem: MemoryStats::new(), lat: LatencyModel::server_defaults(), clock: 0 }
    }

    /// Overrides the latency model (builder style).
    pub fn with_latencies(mut self, lat: LatencyModel) -> Self {
        self.lat = lat;
        self
    }

    /// Current cycle count.
    pub fn now(&self) -> Cycles {
        self.clock
    }

    /// The latency model in use.
    pub fn latencies(&self) -> LatencyModel {
        self.lat
    }

    /// Advances the clock without touching memory (spinning, sleeping,
    /// waiting for the next probe slot).
    pub fn advance(&mut self, cycles: Cycles) {
        self.clock += cycles;
    }

    /// Read-only view of the LLC (ground truth / instrumentation).
    pub fn llc(&self) -> &SlicedCache {
        &self.llc
    }

    /// Mutable view of the LLC, for experiment setup (flushes etc.).
    pub fn llc_mut(&mut self) -> &mut SlicedCache {
        &mut self.llc
    }

    /// Memory-controller traffic so far.
    pub fn memory_stats(&self) -> MemoryStats {
        self.mem
    }

    /// Resets LLC and memory statistics (contents and clock unchanged).
    pub fn reset_stats(&mut self) {
        self.mem = MemoryStats::new();
        self.llc.reset_stats();
    }

    fn run(&mut self, addr: PhysAddr, kind: AccessKind) -> Cycles {
        let out = self.llc.access(addr, kind, self.clock);
        self.mem.reads += out.dram_reads as u64;
        self.mem.writes += out.dram_writes as u64;
        let latency = if out.hit {
            self.lat.llc_hit
        } else {
            match kind {
                // Misses pay DRAM; DDIO-allocating writes complete at
                // cache speed (the whole point of DDIO).
                AccessKind::IoWrite if self.llc.mode().allocates_in_llc() => self.lat.llc_hit,
                _ => self.lat.dram,
            }
        };
        self.clock += latency;
        latency
    }

    /// CPU load; returns its latency. This is what the spy times.
    pub fn cpu_read(&mut self, addr: PhysAddr) -> Cycles {
        self.run(addr, AccessKind::CpuRead)
    }

    /// CPU store; returns its latency.
    pub fn cpu_write(&mut self, addr: PhysAddr) -> Cycles {
        self.run(addr, AccessKind::CpuWrite)
    }

    /// DMA write of one cache line from an I/O device (a packet block).
    pub fn io_write(&mut self, addr: PhysAddr) -> Cycles {
        self.run(addr, AccessKind::IoWrite)
    }

    /// DMA read of one cache line by an I/O device.
    pub fn io_read(&mut self, addr: PhysAddr) -> Cycles {
        self.run(addr, AccessKind::IoRead)
    }

    /// `true` if `latency` would be classified as an LLC miss by a timing
    /// attacker using this hierarchy's latency model.
    pub fn is_miss_latency(&self, latency: Cycles) -> bool {
        latency >= self.lat.miss_threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(mode: DdioMode) -> Hierarchy {
        Hierarchy::new(CacheGeometry::tiny(), mode)
    }

    #[test]
    fn clock_advances_with_every_access() {
        let mut h = h(DdioMode::enabled());
        let t0 = h.now();
        h.cpu_read(PhysAddr::new(0x1000));
        let t1 = h.now();
        assert!(t1 > t0);
        h.advance(100);
        assert_eq!(h.now(), t1 + 100);
    }

    #[test]
    fn hit_is_faster_than_miss() {
        let mut h = h(DdioMode::enabled());
        let a = PhysAddr::new(0x3000);
        let miss = h.cpu_read(a);
        let hit = h.cpu_read(a);
        assert!(h.is_miss_latency(miss));
        assert!(!h.is_miss_latency(hit));
    }

    #[test]
    fn ddio_write_is_cache_speed_and_counts_no_dram() {
        let mut h = h(DdioMode::enabled());
        let lat = h.io_write(PhysAddr::new(0x5000));
        assert_eq!(lat, h.latencies().llc_hit);
        assert_eq!(h.memory_stats().total(), 0, "DDIO bypasses DRAM entirely");
    }

    #[test]
    fn non_ddio_write_hits_dram() {
        let mut h = h(DdioMode::Disabled);
        h.io_write(PhysAddr::new(0x5000));
        assert_eq!(h.memory_stats().writes, 1);
        // Subsequent CPU read demand-fetches from DRAM.
        h.cpu_read(PhysAddr::new(0x5000));
        assert_eq!(h.memory_stats().reads, 1);
    }

    #[test]
    fn reset_stats_clears_traffic() {
        let mut h = h(DdioMode::Disabled);
        h.io_write(PhysAddr::new(0x5000));
        h.reset_stats();
        assert_eq!(h.memory_stats().total(), 0);
        assert_eq!(h.llc().stats().total_accesses(), 0);
    }

    #[test]
    fn miss_threshold_separates_latencies() {
        let lat = LatencyModel::server_defaults();
        assert!(lat.llc_hit < lat.miss_threshold());
        assert!(lat.dram >= lat.miss_threshold());
    }
}
