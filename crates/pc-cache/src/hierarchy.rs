//! The memory hierarchy facade: one cycle clock, one LLC, one memory
//! controller.
//!
//! Every crate in the reproduction talks to the machine through this
//! type: the NIC driver model issues `io_write`s for arriving packet
//! blocks, the spy issues `cpu_read`s to prime and probe, and the defense
//! workloads issue both. Latencies are returned *and* accumulated on the
//! shared clock, so interleaving (who runs when) falls out naturally.

use crate::addr::PhysAddr;
use crate::geometry::CacheGeometry;
use crate::llc::{AccessKind, DdioMode, SlicedCache};
use crate::memory::MemoryStats;
use crate::ops::{CacheOp, OpBuffer, OpSink};
use crate::Cycles;

/// Latency (in cycles) of the modelled components.
///
/// Absolute values are calibrated to a ~3.3 GHz server-class part; only
/// the *gap* between `llc_hit` and `dram` matters for the attack (that gap
/// is the PRIME+PROBE signal).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct LatencyModel {
    /// LLC hit latency.
    pub llc_hit: Cycles,
    /// DRAM access latency (LLC miss penalty).
    pub dram: Cycles,
    /// Cost of non-memory attacker work per probed address (pointer
    /// chasing overhead, timer reads).
    pub op: Cycles,
}

impl LatencyModel {
    /// Defaults: 40-cycle LLC hit, 200-cycle DRAM, 2-cycle ALU op.
    pub fn server_defaults() -> Self {
        LatencyModel {
            llc_hit: 40,
            dram: 200,
            op: 2,
        }
    }

    /// The threshold a timing attacker would use to call an access a miss:
    /// halfway between hit and miss latency.
    pub fn miss_threshold(&self) -> Cycles {
        (self.llc_hit + self.dram) / 2
    }

    /// The single latency rule: what one access costs given whether it
    /// hit and whether I/O writes allocate in the LLC
    /// ([`crate::DdioMode::allocates_in_llc`]). Shared by the scalar
    /// entry points, the sequential trace replay and the sharded trace
    /// replay, so the paths cannot diverge.
    #[inline]
    pub fn access_latency(&self, hit: bool, kind: AccessKind, allocates_in_llc: bool) -> Cycles {
        if hit {
            self.llc_hit
        } else {
            match kind {
                // Misses pay DRAM; DDIO-allocating writes complete at
                // cache speed (the whole point of DDIO).
                AccessKind::IoWrite if allocates_in_llc => self.llc_hit,
                _ => self.dram,
            }
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::server_defaults()
    }
}

/// The simulated machine: clock + LLC + memory controller.
///
/// ```
/// use pc_cache::{CacheGeometry, DdioMode, Hierarchy, PhysAddr};
/// let mut h = Hierarchy::new(CacheGeometry::tiny(), DdioMode::enabled());
/// let t0 = h.now();
/// h.io_write(PhysAddr::new(0x2000)); // a packet block lands in the LLC
/// assert!(h.now() > t0);
/// ```
#[derive(Clone, Debug)]
pub struct Hierarchy {
    llc: SlicedCache,
    mem: MemoryStats,
    lat: LatencyModel,
    clock: Cycles,
    /// Reusable op scratch for [`Hierarchy::run_trace`]'s collect step,
    /// carried across calls like the cache's `TraceBins` — content never
    /// outlives one replay, so a clone starting empty is equivalent.
    scratch: Vec<CacheOp>,
}

impl Hierarchy {
    /// Creates a hierarchy with default latencies and a default-seeded
    /// LLC.
    pub fn new(geom: CacheGeometry, mode: DdioMode) -> Self {
        Hierarchy::with_llc(SlicedCache::new(geom, mode))
    }

    /// Wraps an explicitly configured cache.
    pub fn with_llc(llc: SlicedCache) -> Self {
        Hierarchy {
            llc,
            mem: MemoryStats::new(),
            lat: LatencyModel::server_defaults(),
            clock: 0,
            scratch: Vec::new(),
        }
    }

    /// Overrides the latency model (builder style).
    pub fn with_latencies(mut self, lat: LatencyModel) -> Self {
        self.lat = lat;
        self
    }

    /// Current cycle count.
    pub fn now(&self) -> Cycles {
        self.clock
    }

    /// The latency model in use.
    pub fn latencies(&self) -> LatencyModel {
        self.lat
    }

    /// Advances the clock without touching memory (spinning, sleeping,
    /// waiting for the next probe slot).
    pub fn advance(&mut self, cycles: Cycles) {
        self.clock += cycles;
    }

    /// Read-only view of the LLC (ground truth / instrumentation).
    pub fn llc(&self) -> &SlicedCache {
        &self.llc
    }

    /// Mutable view of the LLC, for experiment setup (flushes etc.).
    pub fn llc_mut(&mut self) -> &mut SlicedCache {
        &mut self.llc
    }

    /// Memory-controller traffic so far.
    pub fn memory_stats(&self) -> MemoryStats {
        self.mem
    }

    /// Resets LLC and memory statistics (contents and clock unchanged).
    pub fn reset_stats(&mut self) {
        self.mem = MemoryStats::new();
        self.llc.reset_stats();
    }

    /// Invalidates the whole LLC, accounting the dirty writebacks as
    /// memory-controller writes.
    ///
    /// Flushing through the hierarchy (rather than `llc_mut().flush_all()`)
    /// keeps [`Hierarchy::memory_stats`] honest: a flush's writebacks are
    /// real DRAM traffic, which the LLC-level entry point can't record.
    pub fn flush_all(&mut self) {
        let wb = self.llc.flush_all();
        self.mem.writes += wb as u64;
    }

    /// [`LatencyModel::access_latency`] applied to this hierarchy's LLC.
    #[inline]
    fn latency_of(&self, hit: bool, kind: AccessKind) -> Cycles {
        self.lat
            .access_latency(hit, kind, self.llc.mode().allocates_in_llc())
    }

    fn run(&mut self, addr: PhysAddr, kind: AccessKind) -> Cycles {
        let out = self.llc.access(addr, kind);
        self.mem.reads += out.dram_reads as u64;
        self.mem.writes += out.dram_writes as u64;
        let latency = self.latency_of(out.hit, kind);
        self.clock += latency;
        latency
    }

    /// CPU load; returns its latency. This is what the spy times.
    pub fn cpu_read(&mut self, addr: PhysAddr) -> Cycles {
        self.run(addr, AccessKind::CpuRead)
    }

    /// CPU store; returns its latency.
    pub fn cpu_write(&mut self, addr: PhysAddr) -> Cycles {
        self.run(addr, AccessKind::CpuWrite)
    }

    /// DMA write of one cache line from an I/O device (a packet block).
    pub fn io_write(&mut self, addr: PhysAddr) -> Cycles {
        self.run(addr, AccessKind::IoWrite)
    }

    /// DMA read of one cache line by an I/O device.
    pub fn io_read(&mut self, addr: PhysAddr) -> Cycles {
        self.run(addr, AccessKind::IoRead)
    }

    /// `true` if `latency` would be classified as an LLC miss by a timing
    /// attacker using this hierarchy's latency model.
    pub fn is_miss_latency(&self, latency: Cycles) -> bool {
        latency >= self.lat.miss_threshold()
    }

    /// Replays a trace of [`CacheOp`]s back-to-back, advancing the clock
    /// per access (plus any [`CacheOp::lead`]s) exactly as the scalar
    /// entry points do, and returns the aggregate.
    ///
    /// This is the batch entry point for producers that don't need
    /// per-access latencies — `PrimeProbe::prime` (and through it every
    /// monitor priming pass in the attack) replays its eviction set here
    /// — saving a call and two stat read-modify-writes per line.
    /// Per-access behaviour (RNG stream, adaptation timing, statistics)
    /// is identical to issuing the ops one at a time.
    ///
    /// A long trace is partitioned by slice inside worker threads and
    /// replayed sharded (one shard group per worker; `PC_BENCH_THREADS`
    /// bounds the pool, `=1` forces the sequential walk) — in **every**
    /// [`DdioMode`], `Adaptive` included, because each slice's
    /// adaptation period runs off that slice's own access-count defense
    /// clock rather than the outcome-dependent cycle clock. The
    /// summary, statistics and final clock are byte-identical for any
    /// worker count.
    ///
    /// ```
    /// use pc_cache::{CacheGeometry, CacheOp, DdioMode, Hierarchy, PhysAddr};
    /// let mut h = Hierarchy::new(CacheGeometry::tiny(), DdioMode::adaptive());
    /// let ops = (0..100u64).map(|i| CacheOp::read(PhysAddr::new(i * 0x1040)));
    /// let sum = h.run_trace(ops);
    /// assert_eq!(sum.accesses, 100);
    /// assert_eq!(sum.cycles, h.now(), "the clock advanced by the replay");
    /// ```
    pub fn run_trace<I>(&mut self, ops: I) -> TraceSummary
    where
        I: IntoIterator<Item = CacheOp>,
    {
        let ops = ops.into_iter();
        // The dominant caller is `PrimeProbe::prime` with a handful of
        // ops per call: when the trace provably cannot shard (one slice,
        // or a known-short iterator) stream it with no allocation and no
        // thread-pool sizing — both cost real time at that call rate.
        let short = matches!(ops.size_hint(), (_, Some(hi)) if hi < crate::llc::PAR_BATCH_MIN);
        if short || self.llc.geometry().slices() <= 1 {
            return self.run_trace_sequential(ops);
        }
        // Collect into the reusable scratch (capacity carried across
        // calls; taken out for the duration so the borrow of `self`
        // stays free for the replay).
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend(ops);
        let sum = self.run_trace_threads(&scratch, pc_par::max_threads());
        // Restore the scratch emptied: capacity is what gets reused, and
        // a clone of the hierarchy should not memcpy stale ops.
        scratch.clear();
        self.scratch = scratch;
        sum
    }

    /// [`Hierarchy::run_trace`] with an explicit worker bound, for
    /// callers that must pin the count instead of reading
    /// `PC_BENCH_THREADS` (thread-invariance tests, benches) or that
    /// replay a borrowed trace repeatedly. Results are byte-identical
    /// for every `threads` value; short traces still replay inline.
    pub fn run_trace_threads(&mut self, ops: &[CacheOp], threads: usize) -> TraceSummary {
        if self.llc.batch_worth_sharding(ops.len(), threads) {
            // Leads are input data, independent of the replay outcome:
            // total clock movement is sum(leads) + sum(latencies) in any
            // order, so they are summed here once and the workers never
            // see them.
            let lead: Cycles = ops.iter().map(|op| op.lead).sum();
            let mut sum = self.llc.trace_batch_threads(ops, threads, self.lat);
            sum.cycles += lead;
            self.clock += sum.cycles;
            self.mem.reads += sum.dram_reads;
            self.mem.writes += sum.dram_writes;
            return sum;
        }
        self.run_trace_sequential(ops.iter().copied())
    }

    /// Replays a recorded op batch: the ops through the trace engine
    /// (sharded where legal), then the buffer's trailing advance.
    ///
    /// This is the entry point behind every emit-then-replay producer
    /// (the NIC driver's per-frame batches, the defense workloads'
    /// chunked inner loops): emit into an [`OpBuffer`], call `run_ops`,
    /// get byte-identical results to issuing the same ops one at a time
    /// against the hierarchy — which is exactly what pointing the emit
    /// code at the hierarchy itself (it implements [`OpSink`]) does.
    pub fn run_ops(&mut self, buf: &OpBuffer) -> TraceSummary {
        let mut sum = if buf.len() < crate::llc::PAR_BATCH_MIN {
            self.run_trace_sequential(buf.iter())
        } else {
            // Sharding wants a contiguous slice; decode the packed words
            // into the trace scratch once, then fan out.
            let mut scratch = std::mem::take(&mut self.scratch);
            scratch.clear();
            scratch.extend(buf.iter());
            let sum = self.run_trace_threads(&scratch, pc_par::max_threads());
            scratch.clear();
            self.scratch = scratch;
            sum
        };
        // Trailing advance plus any segment-mark carries: a marked
        // buffer replays identically whether or not the caller asks for
        // subtotals.
        let advances = buf.trailing() + buf.carry_total();
        self.clock += advances;
        sum.cycles += advances;
        sum
    }

    /// [`Hierarchy::run_ops`] for callers that discard the summary (the
    /// NIC driver replays a handful of ops per frame at millions of
    /// calls per experiment): identical replay, clock and statistics,
    /// no per-op aggregate bookkeeping.
    pub fn apply_ops(&mut self, buf: &OpBuffer) {
        if buf.len() >= crate::llc::PAR_BATCH_MIN {
            let mut scratch = std::mem::take(&mut self.scratch);
            scratch.clear();
            scratch.extend(buf.iter());
            self.run_trace_threads(&scratch, pc_par::max_threads());
            scratch.clear();
            self.scratch = scratch;
        } else {
            let _engine = crate::fault::engine_scope(crate::fault::Engine::Batch);
            let allocates = self.llc.mode().allocates_in_llc();
            let mut clock = self.clock;
            let mut reads = 0u64;
            let mut writes = 0u64;
            for op in buf.iter() {
                let out = self.llc.access(op.addr, op.kind);
                reads += u64::from(out.dram_reads);
                writes += u64::from(out.dram_writes);
                clock += op.lead + self.lat.access_latency(out.hit, op.kind, allocates);
            }
            self.clock = clock;
            self.mem.reads += reads;
            self.mem.writes += writes;
        }
        self.clock += buf.trailing() + buf.carry_total();
    }

    /// Replays a segment-marked op batch (see
    /// [`OpBuffer::mark_segment`]), additionally reporting one
    /// [`TraceSummary`] per segment, in mark order, into `seg_out`.
    ///
    /// Segment subtotals partition the whole replay: each op's lead and
    /// latency land in its segment, each mark's carry and the buffer's
    /// trailing advance land in the segment they close, so the
    /// subtotals' cycles sum to exactly the unsegmented replay's clock
    /// motion. Cache behaviour, statistics and the final clock are
    /// byte-identical to [`Hierarchy::run_ops`] on the same buffer —
    /// segmentation is pure reporting. This is what lets the windowed
    /// receive engine replay an arbitrarily long fused window first and
    /// reconstruct every frame's clock after the fact: the determinism
    /// contract makes outcomes clock-independent, and the subtotals
    /// recover where the clock *would* have stood at every segment
    /// boundary.
    ///
    /// A buffer with no marks reports one segment spanning everything.
    pub fn run_ops_segmented(
        &mut self,
        buf: &OpBuffer,
        seg_out: &mut Vec<TraceSummary>,
    ) -> TraceSummary {
        seg_out.clear();
        let mut spans = buf.segment_spans();
        if spans.is_empty() {
            spans.push((0, buf.len(), buf.trailing()));
        }
        let threads = pc_par::max_threads();
        let total = if self.llc.batch_worth_sharding(buf.len(), threads) {
            let mut scratch = std::mem::take(&mut self.scratch);
            scratch.clear();
            scratch.extend(buf.iter());
            let total = self.run_trace_threads_segmented(&scratch, &spans, threads, seg_out);
            scratch.clear();
            self.scratch = scratch;
            total
        } else {
            self.run_trace_sequential_segmented(buf.iter(), &spans, seg_out)
        };
        // Fault site `swapped-segment-subtotal`: the segmented replay
        // reports keyed neighbouring segments' cycle subtotals in the
        // wrong order. The total (and so the final clock) is unchanged —
        // only a consumer that *reconstructs* per-segment clocks (the
        // windowed receive engine's gap max, deferred-read dues) can
        // notice, which is exactly the invariant the site guards.
        for k in 0..seg_out.len().saturating_sub(1) {
            if crate::fault::fires_keyed(crate::fault::FaultSite::SwappedSegmentSubtotal, k as u64)
            {
                let (a, b) = (seg_out[k].cycles, seg_out[k + 1].cycles);
                seg_out[k].cycles = b;
                seg_out[k + 1].cycles = a;
            }
        }
        total
    }

    /// Segment-reporting variant of [`Hierarchy::run_trace_threads`] for
    /// borrowed traces: `starts` are ascending segment start indices
    /// (`starts[0] == 0`), and one [`TraceSummary`] per segment lands in
    /// `seg_out`. Replay, statistics and final clock are byte-identical
    /// to the unsegmented call; the monitor uses this to classify many
    /// probe targets from one fused batch.
    pub fn run_trace_segmented(
        &mut self,
        ops: &[CacheOp],
        starts: &[usize],
        seg_out: &mut Vec<TraceSummary>,
    ) -> TraceSummary {
        seg_out.clear();
        let spans: Vec<(usize, usize, Cycles)> = starts
            .iter()
            .enumerate()
            .map(|(k, &start)| {
                let end = starts.get(k + 1).copied().unwrap_or(ops.len());
                (start, end, 0)
            })
            .collect();
        let threads = pc_par::max_threads();
        if self.llc.batch_worth_sharding(ops.len(), threads) {
            self.run_trace_threads_segmented(ops, &spans, threads, seg_out)
        } else {
            self.run_trace_sequential_segmented(ops.iter().copied(), &spans, seg_out)
        }
    }

    /// The sequential arm of the segmented replays: one walk with a
    /// span cursor, closing each segment (and spending its tail advance)
    /// as the ops pass its end.
    fn run_trace_sequential_segmented<I>(
        &mut self,
        ops: I,
        spans: &[(usize, usize, Cycles)],
        seg_out: &mut Vec<TraceSummary>,
    ) -> TraceSummary
    where
        I: Iterator<Item = CacheOp>,
    {
        let _engine = crate::fault::engine_scope(crate::fault::Engine::Batch);
        let allocates = self.llc.mode().allocates_in_llc();
        let mut cur = TraceSummary::default();
        let mut seg = 0usize;
        for (idx, op) in ops.enumerate() {
            while seg < spans.len() && idx >= spans[seg].1 {
                cur.cycles += spans[seg].2;
                seg_out.push(cur);
                cur = TraceSummary::default();
                seg += 1;
            }
            let out = self.llc.access(op.addr, op.kind);
            let latency = self.lat.access_latency(out.hit, op.kind, allocates);
            cur.accesses += 1;
            cur.hits += u64::from(out.hit);
            cur.cycles += op.lead + latency;
            cur.dram_reads += u64::from(out.dram_reads);
            cur.dram_writes += u64::from(out.dram_writes);
        }
        while seg < spans.len() {
            cur.cycles += spans[seg].2;
            seg_out.push(cur);
            cur = TraceSummary::default();
            seg += 1;
        }
        let mut total = TraceSummary::default();
        for sum in seg_out.iter() {
            total.merge(sum);
        }
        self.clock += total.cycles;
        self.mem.reads += total.dram_reads;
        self.mem.writes += total.dram_writes;
        total
    }

    /// The sharded arm of the segmented replays: per-segment latency
    /// summaries from the sliced engine, then leads and tail advances
    /// folded in per segment (outcome-independent input data, exactly as
    /// in [`Hierarchy::run_trace_threads`]).
    fn run_trace_threads_segmented(
        &mut self,
        ops: &[CacheOp],
        spans: &[(usize, usize, Cycles)],
        threads: usize,
        seg_out: &mut Vec<TraceSummary>,
    ) -> TraceSummary {
        let starts: Vec<usize> = spans.iter().map(|&(start, _, _)| start).collect();
        self.llc
            .trace_batch_threads_segmented(ops, &starts, threads, self.lat, seg_out);
        let mut seg = 0usize;
        for (idx, op) in ops.iter().enumerate() {
            while seg + 1 < starts.len() && idx >= starts[seg + 1] {
                seg += 1;
            }
            seg_out[seg].cycles += op.lead;
        }
        for (sum, &(_, _, tail)) in seg_out.iter_mut().zip(spans) {
            sum.cycles += tail;
        }
        let mut total = TraceSummary::default();
        for sum in seg_out.iter() {
            total.merge(sum);
        }
        self.clock += total.cycles;
        self.mem.reads += total.dram_reads;
        self.mem.writes += total.dram_writes;
        total
    }

    /// The clock-advancing sequential walk shared by every `run_trace`
    /// path that doesn't shard.
    fn run_trace_sequential<I>(&mut self, ops: I) -> TraceSummary
    where
        I: Iterator<Item = CacheOp>,
    {
        let _engine = crate::fault::engine_scope(crate::fault::Engine::Batch);
        let mut sum = TraceSummary::default();
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut clock = self.clock;
        // The latency rule's mode input is loop-invariant; hoist it so
        // the per-op work is the access and a few adds.
        let allocates = self.llc.mode().allocates_in_llc();
        for op in ops {
            let out = self.llc.access(op.addr, op.kind);
            reads += u64::from(out.dram_reads);
            writes += u64::from(out.dram_writes);
            let latency = self.lat.access_latency(out.hit, op.kind, allocates);
            clock += op.lead + latency;
            sum.accesses += 1;
            sum.hits += u64::from(out.hit);
            sum.cycles += op.lead + latency;
        }
        self.clock = clock;
        self.mem.reads += reads;
        self.mem.writes += writes;
        sum.dram_reads = reads;
        sum.dram_writes = writes;
        sum
    }
}

/// A streaming replay sink: applies each emitted op immediately with
/// the batch engine's lean loop body — the DDIO-mode input of the
/// latency rule hoisted at construction, clock and memory traffic
/// accumulated in locals and flushed into the hierarchy on drop.
///
/// This is the op-stream IR's third engine, for producers whose batch
/// is too small to shard (the NIC driver replays ~6 ops per frame):
/// same results as emitting into an [`OpBuffer`] and replaying it, and
/// as issuing the accesses one at a time, with neither the buffer
/// round-trip of the former nor the per-op statistics read-modify-write
/// of the latter. Nothing mid-stream can observe the clock — callers
/// that need that use the hierarchy itself as the sink.
pub struct OpApplier<'a> {
    h: &'a mut Hierarchy,
    allocates: bool,
    clock: Cycles,
    reads: u64,
    writes: u64,
    /// Tags the applier's thread as the streaming engine for the whole
    /// applier lifetime (inert unless a fault is armed).
    _engine: crate::fault::EngineScope,
}

impl Hierarchy {
    /// A streaming [`OpSink`] over this hierarchy (see [`OpApplier`]).
    /// Totals flush when the applier drops.
    pub fn applier(&mut self) -> OpApplier<'_> {
        let allocates = self.llc.mode().allocates_in_llc();
        OpApplier {
            allocates,
            clock: 0,
            reads: 0,
            writes: 0,
            _engine: crate::fault::engine_scope(crate::fault::Engine::Streaming),
            h: self,
        }
    }
}

impl OpSink for OpApplier<'_> {
    #[inline]
    fn op(&mut self, op: CacheOp) {
        let out = self.h.llc.access(op.addr, op.kind);
        self.reads += u64::from(out.dram_reads);
        self.writes += u64::from(out.dram_writes);
        self.clock += op.lead + self.h.lat.access_latency(out.hit, op.kind, self.allocates);
    }

    #[inline]
    fn advance(&mut self, cycles: Cycles) {
        self.clock += cycles;
    }
}

impl Drop for OpApplier<'_> {
    fn drop(&mut self) {
        // Fault site `dropped-flush`: the streaming engine silently
        // loses one applier's accumulated clock and memory deltas.
        if crate::fault::fires(crate::fault::FaultSite::DroppedFlush) {
            return;
        }
        self.h.clock += self.clock;
        self.h.mem.reads += self.reads;
        self.h.mem.writes += self.writes;
    }
}

/// The per-access replay path of the op-stream IR: each emitted op is
/// applied immediately (lead, then the access), each advance moves the
/// clock. Producers written against [`OpSink`] can therefore target the
/// hierarchy directly — the equivalence oracle for the batched paths,
/// and the path to use when per-access latencies are needed mid-stream.
impl OpSink for Hierarchy {
    #[inline]
    fn op(&mut self, op: CacheOp) {
        self.clock += op.lead;
        self.run(op.addr, op.kind);
    }

    #[inline]
    fn advance(&mut self, cycles: Cycles) {
        Hierarchy::advance(self, cycles);
    }
}

/// Aggregate of a [`Hierarchy::run_trace`] replay.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct TraceSummary {
    /// Ops replayed.
    pub accesses: u64,
    /// Ops that hit in the LLC.
    pub hits: u64,
    /// Cycles the clock advanced over the replay.
    pub cycles: Cycles,
    /// DRAM lines read.
    pub dram_reads: u64,
    /// DRAM lines written.
    pub dram_writes: u64,
}

impl TraceSummary {
    /// Accumulates another summary into this one, field by field.
    #[inline]
    pub fn merge(&mut self, other: &TraceSummary) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.cycles += other.cycles;
        self.dram_reads += other.dram_reads;
        self.dram_writes += other.dram_writes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(mode: DdioMode) -> Hierarchy {
        Hierarchy::new(CacheGeometry::tiny(), mode)
    }

    #[test]
    fn clock_advances_with_every_access() {
        let mut h = h(DdioMode::enabled());
        let t0 = h.now();
        h.cpu_read(PhysAddr::new(0x1000));
        let t1 = h.now();
        assert!(t1 > t0);
        h.advance(100);
        assert_eq!(h.now(), t1 + 100);
    }

    #[test]
    fn hit_is_faster_than_miss() {
        let mut h = h(DdioMode::enabled());
        let a = PhysAddr::new(0x3000);
        let miss = h.cpu_read(a);
        let hit = h.cpu_read(a);
        assert!(h.is_miss_latency(miss));
        assert!(!h.is_miss_latency(hit));
    }

    #[test]
    fn ddio_write_is_cache_speed_and_counts_no_dram() {
        let mut h = h(DdioMode::enabled());
        let lat = h.io_write(PhysAddr::new(0x5000));
        assert_eq!(lat, h.latencies().llc_hit);
        assert_eq!(h.memory_stats().total(), 0, "DDIO bypasses DRAM entirely");
    }

    #[test]
    fn non_ddio_write_hits_dram() {
        let mut h = h(DdioMode::Disabled);
        h.io_write(PhysAddr::new(0x5000));
        assert_eq!(h.memory_stats().writes, 1);
        // Subsequent CPU read demand-fetches from DRAM.
        h.cpu_read(PhysAddr::new(0x5000));
        assert_eq!(h.memory_stats().reads, 1);
    }

    #[test]
    fn reset_stats_clears_traffic() {
        let mut h = h(DdioMode::Disabled);
        h.io_write(PhysAddr::new(0x5000));
        h.reset_stats();
        assert_eq!(h.memory_stats().total(), 0);
        assert_eq!(h.llc().stats().total_accesses(), 0);
    }

    #[test]
    fn run_trace_matches_scalar_replay() {
        let ops: Vec<CacheOp> = (0..300u64)
            .map(|i| {
                let kind = match i % 5 {
                    0 => AccessKind::IoWrite,
                    1 => AccessKind::CpuWrite,
                    2 => AccessKind::IoRead,
                    _ => AccessKind::CpuRead,
                };
                CacheOp::new(PhysAddr::new((i % 41) * 0x2040), kind)
            })
            .collect();
        // Every mode: the latency rule differs per mode (DDIO-allocating
        // writes complete at cache speed), and both paths must agree.
        for mode in [
            DdioMode::Disabled,
            DdioMode::enabled(),
            DdioMode::adaptive(),
        ] {
            let mut scalar = h(mode);
            let mut cycles = 0u64;
            for &op in &ops {
                let t0 = scalar.now();
                match op.kind {
                    AccessKind::CpuRead => scalar.cpu_read(op.addr),
                    AccessKind::CpuWrite => scalar.cpu_write(op.addr),
                    AccessKind::IoWrite => scalar.io_write(op.addr),
                    AccessKind::IoRead => scalar.io_read(op.addr),
                };
                cycles += scalar.now() - t0;
            }
            let mut batched = h(mode);
            let sum = batched.run_trace(ops.iter().copied());
            let s = batched.llc().stats();
            assert_eq!(sum.accesses, ops.len() as u64, "{mode:?}");
            assert_eq!(sum.hits, s.cpu_hits + s.io_hits, "{mode:?}");
            assert_eq!(sum.cycles, cycles, "{mode:?}");
            assert_eq!(batched.now(), scalar.now(), "{mode:?}");
            assert_eq!(batched.memory_stats(), scalar.memory_stats(), "{mode:?}");
            assert_eq!(batched.llc().stats(), scalar.llc().stats(), "{mode:?}");
        }
    }

    #[test]
    fn sharded_trace_replay_is_thread_count_invariant() {
        // A trace long enough to take the sharded path must leave the
        // hierarchy in a byte-identical state (summary, clock, memory
        // traffic, LLC stats — per slice, so adaptation boundaries are
        // pinned too — and residency) for every worker count, in every
        // mode including `Adaptive`.
        let ops: Vec<CacheOp> = (0..6000u64)
            .map(|i| {
                let kind = match i % 5 {
                    0 => AccessKind::IoWrite,
                    1 => AccessKind::CpuWrite,
                    2 => AccessKind::IoRead,
                    _ => AccessKind::CpuRead,
                };
                // A small deterministic lead on every 7th op: the
                // sharded replay must account leads identically to the
                // sequential walk.
                CacheOp::new(PhysAddr::new((i % 97) * 0x3040), kind).after((i % 7 == 0) as u64 * 11)
            })
            .collect();
        for mode in [
            DdioMode::Disabled,
            DdioMode::enabled(),
            DdioMode::adaptive(),
        ] {
            let mut seq = h(mode);
            let want = seq.run_trace_threads(&ops, 1);
            if matches!(mode, DdioMode::Adaptive(_)) {
                assert!(
                    seq.llc().stats().defense_evals > 0,
                    "the trace must actually exercise adaptation"
                );
            }
            for threads in [2usize, 4, 16] {
                let mut par = h(mode);
                let got = par.run_trace_threads(&ops, threads);
                assert_eq!(got, want, "{mode:?} threads={threads}");
                assert_eq!(par.now(), seq.now(), "{mode:?} threads={threads}");
                assert_eq!(par.memory_stats(), seq.memory_stats(), "{mode:?}");
                for slice in 0..par.llc().geometry().slices() {
                    assert_eq!(
                        par.llc().slice_stats(slice),
                        seq.llc().slice_stats(slice),
                        "{mode:?} threads={threads} slice={slice}"
                    );
                }
                for &op in &ops {
                    assert_eq!(par.llc().contains(op.addr), seq.llc().contains(op.addr));
                }
            }
        }
    }

    /// The segmented replay is pure reporting: same outcomes, clock,
    /// stats as `run_ops`, subtotals that partition the total exactly,
    /// and thread-count invariance of the per-segment summaries.
    #[test]
    fn segmented_replay_matches_unsegmented_and_is_thread_invariant() {
        use crate::ops::OpSink;
        let marks = [0usize, 1, 13, 900, 4096, 4097, 5000, 5999];
        let mut buf = OpBuffer::new();
        let mut next_mark = 0;
        for i in 0..6000u64 {
            if next_mark < marks.len() && marks[next_mark] == i as usize {
                buf.mark_segment();
                next_mark += 1;
            }
            let kind = match i % 5 {
                0 => AccessKind::IoWrite,
                1 => AccessKind::CpuWrite,
                2 => AccessKind::IoRead,
                _ => AccessKind::CpuRead,
            };
            buf.op(CacheOp::new(PhysAddr::new((i % 97) * 0x3040), kind)
                .after((i % 7 == 0) as u64 * 11));
            if i % 1000 == 999 {
                // Becomes a carry when a mark follows (i == 4999), a
                // folded lead otherwise — both attributions must agree
                // with the unsegmented walk.
                buf.advance(123);
            }
        }
        buf.advance(77);
        buf.mark_segment(); // empty trailing segment, carry 77
        assert_eq!(buf.segments(), marks.len() + 1);
        for mode in [
            DdioMode::Disabled,
            DdioMode::enabled(),
            DdioMode::adaptive(),
        ] {
            let mut plain = h(mode);
            let want = plain.run_ops(&buf);
            let mut seq = h(mode);
            let mut segs = Vec::new();
            let spans = buf.segment_spans();
            let got = seq.run_trace_sequential_segmented(buf.iter(), &spans, &mut segs);
            assert_eq!(got, want, "{mode:?}");
            assert_eq!(seq.now(), plain.now(), "{mode:?}");
            assert_eq!(seq.memory_stats(), plain.memory_stats(), "{mode:?}");
            assert_eq!(seq.llc().stats(), plain.llc().stats(), "{mode:?}");
            let mut fold = TraceSummary::default();
            for sum in &segs {
                fold.merge(sum);
            }
            assert_eq!(fold, got, "{mode:?}: subtotals partition the replay");
            let ops: Vec<CacheOp> = buf.iter().collect();
            for threads in [2usize, 4, 16] {
                let mut par = h(mode);
                let mut psegs = Vec::new();
                let ptotal = par.run_trace_threads_segmented(&ops, &spans, threads, &mut psegs);
                assert_eq!(ptotal, got, "{mode:?} threads={threads}");
                assert_eq!(psegs, segs, "{mode:?} threads={threads}");
                assert_eq!(par.now(), seq.now(), "{mode:?} threads={threads}");
                assert_eq!(par.memory_stats(), seq.memory_stats(), "{mode:?}");
                assert_eq!(par.llc().stats(), seq.llc().stats(), "{mode:?}");
            }
            // The public entry point (whichever arm it picks) agrees too.
            let mut auto = h(mode);
            let mut asegs = Vec::new();
            assert_eq!(auto.run_ops_segmented(&buf, &mut asegs), got, "{mode:?}");
            assert_eq!(asegs, segs, "{mode:?}");
        }
    }

    /// `run_trace_segmented` (borrowed trace + explicit starts) agrees
    /// with `run_trace` and reports per-segment hit/miss splits — the
    /// aggregates the monitor's fused cross-epoch sample consumes.
    #[test]
    fn trace_segmented_reports_per_segment_aggregates() {
        let ops: Vec<CacheOp> = (0..5000u64)
            .map(|i| CacheOp::read(PhysAddr::new((i % 61) * 0x5040)))
            .collect();
        let starts = [0usize, 1000, 1000, 2500, 4999];
        let mut plain = h(DdioMode::enabled());
        let want = plain.run_trace(ops.iter().copied());
        let mut seg = h(DdioMode::enabled());
        let mut segs = Vec::new();
        let got = seg.run_trace_segmented(&ops, &starts, &mut segs);
        assert_eq!(got, want);
        assert_eq!(seg.now(), plain.now());
        assert_eq!(segs.len(), starts.len());
        assert_eq!(segs[1], TraceSummary::default(), "empty segment");
        let mut fold = TraceSummary::default();
        for sum in &segs {
            fold.merge(sum);
        }
        assert_eq!(fold, got);
        assert_eq!(segs[0].accesses, 1000);
        assert_eq!(segs[4].accesses, 1);
    }

    #[test]
    fn flush_all_counts_writebacks_as_memory_writes() {
        let mut h = h(DdioMode::enabled());
        h.cpu_write(PhysAddr::new(0x1000));
        h.cpu_write(PhysAddr::new(0x2000));
        let writes_before = h.memory_stats().writes;
        h.flush_all();
        assert!(!h.llc().contains(PhysAddr::new(0x1000)));
        assert_eq!(
            h.memory_stats().writes,
            writes_before + 2,
            "flushing dirty lines is DRAM write traffic"
        );
        assert_eq!(h.llc().stats().writebacks, 2);
    }

    #[test]
    fn miss_threshold_separates_latencies() {
        let lat = LatencyModel::server_defaults();
        assert!(lat.llc_hit < lat.miss_threshold());
        assert!(lat.dram >= lat.miss_threshold());
    }
}
