//! # pc-cache — memory-hierarchy substrate for the Packet Chasing reproduction
//!
//! This crate simulates the part of an Intel Xeon server that the
//! *Packet Chasing* attack (Taram, Venkat, Tullsen — ISCA 2020) observes:
//! a large, sliced, set-associative last-level cache (LLC) that is shared
//! between CPU cores and I/O devices via Intel **Data Direct I/O (DDIO)**.
//!
//! The paper's experiments ran on a Xeon E5-2660 with a 20 MiB LLC split
//! into 8 slices of 2048 sets × 20 ways, with an undocumented hash mapping
//! physical addresses to slices. All of that is modelled here:
//!
//! * [`PhysAddr`] / [`CacheGeometry`] — address decomposition (tag / set /
//!   block offset) for an arbitrary geometry; the paper's machine is
//!   [`CacheGeometry::xeon_e5_2660`].
//! * [`SliceHash`] — XOR-of-address-bits slice selection in the style
//!   reverse-engineered by Maurice et al.; unknown to the attacker crates.
//! * [`SlicedCache`] — the LLC proper, with per-line *domains*
//!   ([`Domain::Cpu`] vs [`Domain::Io`]) so that DDIO's write-allocation
//!   restriction (at most 2 ways per set for I/O) and the paper's adaptive
//!   partitioning defense can be expressed.
//! * [`DdioMode`] — `Disabled` (pre-DDIO DMA to memory), `Enabled`
//!   (vulnerable baseline), or `Adaptive` (the paper's §VII defense).
//! * [`Hierarchy`] — the facade every other crate uses: a cycle clock plus
//!   `cpu_read` / `cpu_write` / `io_write` / `io_read` operations that
//!   return latencies and maintain memory-traffic statistics.
//! * [`CacheOp`] / [`OpSink`] / [`OpBuffer`] — the batched op-stream IR:
//!   producers (the NIC driver, the spy's walks, workload loops) emit
//!   op batches once and replay them through the slice-sharded engine
//!   ([`Hierarchy::run_ops`]), or point the same emit code at the
//!   [`Hierarchy`] itself for the per-access equivalence oracle.
//!
//! The simulator is deterministic: all randomized behaviour (the `Random`
//! replacement policy) draws from an RNG seeded at construction.
//!
//! ## Example
//!
//! ```
//! use pc_cache::{CacheGeometry, DdioMode, Hierarchy, PhysAddr};
//!
//! let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
//! let addr = PhysAddr::new(0x1234_0000);
//! let cold = h.cpu_read(addr); // miss: goes to memory
//! let warm = h.cpu_read(addr); // hit: LLC latency
//! assert!(cold > warm);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
pub mod fault;
mod geometry;
mod hierarchy;
mod llc;
mod memory;
pub mod ops;
mod partition;
pub mod reference;
mod replacement;
mod set;
mod shard;
mod slicehash;
mod stats;
mod store;

pub use addr::{PhysAddr, LINE_SIZE, LINE_SIZE_LOG2, PAGE_SIZE, PAGE_SIZE_LOG2};
pub use geometry::CacheGeometry;
pub use hierarchy::{Hierarchy, LatencyModel, OpApplier, TraceSummary};
pub use llc::{AccessKind, AccessOutcome, BatchOutcome, DdioMode, SliceSet, SlicedCache};
pub use memory::MemoryStats;
pub use ops::{CacheOp, OpBuffer, OpIter, OpSink};
pub use partition::AdaptiveConfig;
pub use replacement::ReplacementPolicy;
pub use set::Domain;
pub use slicehash::SliceHash;
pub use stats::CacheStats;

/// Simulated clock cycles.
///
/// The whole reproduction uses a single monotonically increasing cycle
/// counter owned by [`Hierarchy`]; see [`Hierarchy::now`].
pub type Cycles = u64;
