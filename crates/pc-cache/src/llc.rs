//! The sliced last-level cache with DDIO write allocation and the
//! adaptive I/O partitioning defense.
//!
//! Storage and simulation state are sharded by slice
//! ([`crate::shard::Shard`]): each slice owns its cut of the SoA line
//! store, its RNG stream, its statistics, its defense clock and its
//! adaptive-partition worklists. Scalar accesses route to the owning
//! shard; the batch entry points partition a trace by slice-hash range
//! *inside* the worker threads (each worker bins and replays its own
//! shard group), merging statistics in slice order — byte-identical to
//! the sequential walk for any seed and any thread count, in every
//! [`DdioMode`] including `Adaptive`.

use crate::addr::PhysAddr;
use crate::geometry::CacheGeometry;
use crate::hierarchy::{LatencyModel, TraceSummary};
use crate::ops::CacheOp;
use crate::partition::AdaptiveConfig;
use crate::replacement::ReplacementPolicy;
use crate::set::Domain;
use crate::shard::Shard;
use crate::slicehash::SliceHash;
use crate::stats::CacheStats;
use std::fmt;

/// How DMA from I/O devices interacts with the LLC.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DdioMode {
    /// Pre-DDIO behaviour: DMA writes go to main memory (invalidating any
    /// cached copy); the CPU later demand-fetches the data.
    Disabled,
    /// Intel DDIO: I/O writes allocate directly in the LLC, restricted to
    /// `io_way_limit` ways per set (2 on real parts). I/O fills beyond the
    /// limit displace other I/O lines, but fills *within* the limit can
    /// displace CPU lines — the vulnerability the paper exploits.
    Enabled {
        /// Maximum ways per set an I/O fill may occupy.
        io_way_limit: u8,
    },
    /// The paper's §VII defense: per-set I/O partitions sized by an
    /// activity-driven saturating counter; I/O fills can *only* displace
    /// I/O lines, so the spy's primed lines never observe packets.
    Adaptive(AdaptiveConfig),
}

impl DdioMode {
    /// DDIO with Intel's 2-way allocation limit (the vulnerable baseline).
    pub fn enabled() -> Self {
        DdioMode::Enabled { io_way_limit: 2 }
    }

    /// The adaptive partitioning defense with the paper's defaults.
    pub fn adaptive() -> Self {
        DdioMode::Adaptive(AdaptiveConfig::paper_defaults())
    }

    /// `true` for any mode in which I/O writes allocate in the LLC.
    pub fn allocates_in_llc(&self) -> bool {
        !matches!(self, DdioMode::Disabled)
    }
}

impl Default for DdioMode {
    fn default() -> Self {
        DdioMode::enabled()
    }
}

/// A (slice, set-index) pair — one concrete cache set in the sliced LLC.
///
/// The spy's "page-aligned cache sets" (256 of them on the paper's
/// machine) are values of this type.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub struct SliceSet {
    /// Slice number (`0..geometry.slices()`).
    pub slice: usize,
    /// Set index within the slice (`0..geometry.sets_per_slice()`).
    pub set: usize,
}

impl SliceSet {
    /// Creates a slice/set pair.
    pub fn new(slice: usize, set: usize) -> Self {
        SliceSet { slice, set }
    }
}

impl fmt::Display for SliceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}#{}", self.slice, self.set)
    }
}

/// The kind of access presented to the LLC.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum AccessKind {
    /// CPU load.
    CpuRead,
    /// CPU store (write-allocate, write-back).
    CpuWrite,
    /// DMA write from an I/O device (a packet block arriving).
    IoWrite,
    /// DMA read by an I/O device (descriptor fetches, transmit).
    IoRead,
}

impl AccessKind {
    /// `true` for the two I/O kinds.
    pub fn is_io(self) -> bool {
        matches!(self, AccessKind::IoWrite | AccessKind::IoRead)
    }
}

/// What a single access did, in units the memory controller cares about.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct AccessOutcome {
    /// The line was present in the LLC.
    pub hit: bool,
    /// DRAM lines read because of this access.
    pub dram_reads: u32,
    /// DRAM lines written because of this access (writebacks and
    /// non-DDIO DMA writes).
    pub dram_writes: u32,
    /// This access displaced a CPU-domain line from the LLC — the event
    /// the Packet Chasing spy detects.
    pub evicted_cpu: bool,
}

/// Aggregate of a batch of accesses (see [`SlicedCache::access_batch`]).
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct BatchOutcome {
    /// Accesses that hit in the LLC.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Total DRAM lines read.
    pub dram_reads: u64,
    /// Total DRAM lines written.
    pub dram_writes: u64,
    /// Accesses that displaced a CPU-domain line.
    pub evicted_cpu: u64,
}

impl BatchOutcome {
    #[inline]
    fn absorb(&mut self, out: AccessOutcome) {
        if out.hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        self.dram_reads += u64::from(out.dram_reads);
        self.dram_writes += u64::from(out.dram_writes);
        self.evicted_cpu += u64::from(out.evicted_cpu);
    }

    /// Folds another aggregate into this one (all counters are sums, so
    /// merging per-shard aggregates in any order equals the sequential
    /// total; the dispatcher still merges in slice order by convention).
    #[inline]
    pub fn merge(&mut self, other: BatchOutcome) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.dram_reads += other.dram_reads;
        self.dram_writes += other.dram_writes;
        self.evicted_cpu += other.evicted_cpu;
    }
}

/// One decoded access, binned per slice by the batch dispatcher.
type BinnedOp = (u32, u64, AccessKind); // (local set, tag, kind)

/// A [`BinnedOp`] that also remembers which segment of the trace it
/// came from, for the segment-reporting dispatcher.
type SegBinnedOp = (u32, u32, u64, AccessKind); // (segment, local set, tag, kind)

/// Reusable per-slice bin scratch for the batch dispatchers.
///
/// Binning a trace needs one `Vec` per slice; allocating them per batch
/// costs real time at `Hierarchy::run_trace` call rates, so the cache
/// carries one of these across batches (every dispatching entry point —
/// `run_trace` through [`crate::Hierarchy`], `access_batch*` directly —
/// shares it) and the dispatcher clears (capacity-preserving) rather
/// than reallocates. The content never outlives a dispatch — this is
/// scratch, not state — so a cloned cache starting from an empty
/// scratch is equivalent.
#[derive(Clone, Debug, Default)]
pub(crate) struct TraceBins {
    bins: Vec<Vec<BinnedOp>>,
}

impl TraceBins {
    /// Clears all bins and makes sure one exists per slice; keeps
    /// whatever capacity previous batches grew.
    fn reset(&mut self, slices: usize) {
        self.bins.resize_with(slices, Vec::new);
        for bin in &mut self.bins {
            bin.clear();
        }
    }
}

/// [`TraceBins`] for the segment-reporting dispatcher. A separate
/// scratch (rather than widening [`BinnedOp`]) keeps the unsegmented
/// hot path's bin records at their current size.
#[derive(Clone, Debug, Default)]
pub(crate) struct SegTraceBins {
    bins: Vec<Vec<SegBinnedOp>>,
}

impl SegTraceBins {
    fn reset(&mut self, slices: usize) {
        self.bins.resize_with(slices, Vec::new);
        for bin in &mut self.bins {
            bin.clear();
        }
    }
}

/// Batches shorter than this replay inline: binning + thread hand-off
/// costs more than it saves. Crossing the threshold never changes
/// results (the two paths are byte-equivalent), only who runs them.
pub(crate) const PAR_BATCH_MIN: usize = 4096;

/// The sliced, set-associative LLC.
///
/// All addresses are physical. The cache stores only metadata (tags,
/// dirty bits, domains); no data bytes are simulated. Storage is one
/// contiguous structure-of-arrays *per slice* (`src/store.rs`), owned
/// by that slice's simulation shard — there is no per-set object on the
/// hot path, and no cross-slice state at all.
///
/// ```
/// use pc_cache::{AccessKind, CacheGeometry, DdioMode, PhysAddr, SlicedCache};
/// let mut llc = SlicedCache::new(CacheGeometry::tiny(), DdioMode::enabled());
/// let a = PhysAddr::new(0x8000);
/// assert!(!llc.access(a, AccessKind::CpuRead).hit);
/// assert!(llc.access(a, AccessKind::CpuRead).hit);
/// ```
#[derive(Clone, Debug)]
pub struct SlicedCache {
    geom: CacheGeometry,
    hash: SliceHash,
    mode: DdioMode,
    shards: Vec<Shard>,
    /// Per-slice bin scratch reused across batch dispatches.
    bins: TraceBins,
    /// Per-slice bin scratch for the segment-reporting dispatcher.
    seg_bins: SegTraceBins,
}

impl SlicedCache {
    /// Creates a cache with LRU replacement and a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if the geometry's slice count is unsupported by the slice
    /// hash (must be 1/2/4/8) or if an [`AdaptiveConfig`] is invalid for
    /// the geometry.
    pub fn new(geom: CacheGeometry, mode: DdioMode) -> Self {
        SlicedCache::with_policy_and_seed(geom, mode, ReplacementPolicy::Lru, 0x9e37_79b9)
    }

    /// Creates a cache with an explicit replacement policy and RNG seed.
    ///
    /// Each slice's shard derives its own RNG stream from
    /// `pc_par::mix_seed(seed, slice)`, so a slice's randomized decisions
    /// depend only on the accesses that slice receives — the property
    /// that makes parallel and sequential simulation byte-identical.
    ///
    /// # Panics
    ///
    /// Same conditions as [`SlicedCache::new`].
    pub fn with_policy_and_seed(
        geom: CacheGeometry,
        mode: DdioMode,
        policy: ReplacementPolicy,
        seed: u64,
    ) -> Self {
        let hash = SliceHash::for_slices(geom.slices() as u32);
        let initial_io_limit = match mode {
            DdioMode::Disabled => 0,
            DdioMode::Enabled { io_way_limit } => {
                assert!(io_way_limit > 0, "DDIO way limit must be non-zero");
                assert!(
                    (io_way_limit as usize) <= geom.ways(),
                    "DDIO way limit exceeds associativity"
                );
                io_way_limit
            }
            DdioMode::Adaptive(cfg) => {
                cfg.validate(geom.ways());
                cfg.min_io_lines
            }
        };
        SlicedCache {
            geom,
            hash,
            mode,
            shards: (0..geom.slices())
                .map(|slice| {
                    Shard::new(
                        geom.sets_per_slice(),
                        geom.ways(),
                        policy,
                        initial_io_limit,
                        seed,
                        slice,
                    )
                })
                .collect(),
            bins: TraceBins::default(),
            seg_bins: SegTraceBins::default(),
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// The DDIO mode the cache was built with.
    pub fn mode(&self) -> DdioMode {
        self.mode
    }

    /// The slice hash (ground truth — attacker code must not call this).
    pub fn slice_hash(&self) -> SliceHash {
        self.hash
    }

    /// The concrete (slice, set) an address maps to. Ground truth for
    /// instrumentation and tests; the attacker discovers this by timing.
    pub fn locate(&self, addr: PhysAddr) -> SliceSet {
        SliceSet {
            slice: self.hash.slice_of(addr),
            set: self.geom.set_index(addr),
        }
    }

    /// Whether `addr` is currently cached (oracle for tests).
    pub fn contains(&self, addr: PhysAddr) -> bool {
        let ss = self.locate(addr);
        self.shards[ss.slice]
            .lookup(ss.set, self.geom.tag(addr))
            .is_some()
    }

    /// Number of valid lines of `domain` in a concrete set.
    pub fn domain_count(&self, ss: SliceSet, domain: Domain) -> usize {
        self.shards[ss.slice].count_domain(ss.set, domain)
    }

    /// Current I/O partition size of a set (meaningful in `Enabled` /
    /// `Adaptive` modes).
    pub fn io_partition_limit(&self, ss: SliceSet) -> usize {
        self.shards[ss.slice].io_limit(ss.set)
    }

    /// Accumulated statistics, merged over the shards in slice order.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::new();
        for shard in &self.shards {
            total.merge(shard.stats());
        }
        total
    }

    /// Statistics accumulated by one slice's shard alone.
    ///
    /// Summing this over all slices equals [`SlicedCache::stats`]. The
    /// per-slice view exists so tests can pin the sharded replay to the
    /// sequential walk at slice granularity — in particular
    /// [`CacheStats::defense_evals`], the per-slice count of adaptive
    /// period re-evaluations, must match exactly, not just in total.
    ///
    /// # Panics
    ///
    /// Panics if `slice >= geometry().slices()`.
    pub fn slice_stats(&self, slice: usize) -> CacheStats {
        self.shards[slice].stats()
    }

    /// Resets statistics to zero (the cache contents are untouched).
    pub fn reset_stats(&mut self) {
        for shard in &mut self.shards {
            shard.reset_stats();
        }
    }

    /// Invalidates the whole cache, counting writebacks into the stats.
    ///
    /// Returns the number of dirty lines written back so callers that
    /// track DRAM traffic (e.g. [`crate::Hierarchy::flush_all`]) can
    /// account the flush as memory writes — the original implementation
    /// silently dropped that traffic.
    pub fn flush_all(&mut self) -> usize {
        self.shards.iter_mut().map(Shard::flush_all).sum()
    }

    /// Performs one access and reports what happened.
    ///
    /// In `Adaptive` mode the access ticks the owning slice's defense
    /// clock, which drives that slice's periodic boundary re-evaluation
    /// (see [`crate::AdaptiveConfig`]); other modes keep the clock
    /// ticking but never read it.
    #[inline]
    pub fn access(&mut self, addr: PhysAddr, kind: AccessKind) -> AccessOutcome {
        let ss = self.locate(addr);
        let tag = self.geom.tag(addr);
        self.shards[ss.slice].access(self.mode, ss.set, tag, kind)
    }

    /// Runs a batch of [`CacheOp`]s and returns the aggregate outcome.
    ///
    /// Semantically identical to calling [`SlicedCache::access`] once per
    /// element — and, because the shards share no state and every
    /// slice's defense clock is a pure function of its own access
    /// stream, identical for *any* worker-thread count, in every mode
    /// including `Adaptive` (this entry point fans large batches out
    /// over [`pc_par::max_threads`] workers; set `PC_BENCH_THREADS=1` to
    /// force the sequential walk). This cache-level replay is
    /// *clockless*: [`CacheOp::lead`]s are ignored (there is no clock to
    /// advance — leads never affect cache behaviour). Clock-advancing
    /// callers should use [`crate::Hierarchy::run_trace`] /
    /// [`crate::Hierarchy::run_ops`]; this variant serves clockless
    /// replay like the `cache_throughput` bench.
    ///
    /// ```
    /// use pc_cache::{CacheGeometry, CacheOp, DdioMode, PhysAddr, SlicedCache};
    /// let mut llc = SlicedCache::new(CacheGeometry::tiny(), DdioMode::adaptive());
    /// // Prime every set with CPU lines, then storm the same sets with
    /// // DMA fills at conflicting tags.
    /// let cpu: Vec<_> = (0..64u64)
    ///     .map(|i| CacheOp::read(PhysAddr::new(i * 0x1040)))
    ///     .collect();
    /// let io: Vec<_> = (0..64u64)
    ///     .map(|i| CacheOp::io_write(PhysAddr::new(0x10_0000 + i * 0x1040)))
    ///     .collect();
    /// llc.access_batch(&cpu);
    /// let out = llc.access_batch(&io);
    /// assert_eq!(out.hits + out.misses, 64);
    /// assert_eq!(out.evicted_cpu, 0, "the adaptive defense shields CPU lines");
    /// ```
    pub fn access_batch(&mut self, ops: &[CacheOp]) -> BatchOutcome {
        let threads = pc_par::max_threads();
        if !self.batch_worth_sharding(ops.len(), threads) {
            // Short batch: binning + thread hand-off would cost more than
            // it saves. Same results either way.
            return self.access_batch_threads(ops, 1);
        }
        self.access_batch_threads(ops, threads)
    }

    /// [`SlicedCache::access_batch`] with an explicit worker bound.
    ///
    /// Shards whenever `threads > 1` — no batch-length heuristic — so
    /// determinism tests and benches exercise the dispatcher on traces
    /// of any size; results are byte-identical for every `threads`
    /// value.
    pub fn access_batch_threads(&mut self, ops: &[CacheOp], threads: usize) -> BatchOutcome {
        if threads <= 1 || self.shards.len() <= 1 || ops.is_empty() {
            let mut agg = BatchOutcome::default();
            for &op in ops {
                agg.absorb(self.access(op.addr, op.kind));
            }
            return agg;
        }
        let mode = self.mode;
        let per_shard = self.run_sharded(ops, threads, &|shard, bin| {
            let mut agg = BatchOutcome::default();
            for &(set, tag, kind) in bin {
                agg.absorb(shard.access(mode, set as usize, tag, kind));
            }
            agg
        });
        let mut total = BatchOutcome::default();
        for out in per_shard {
            total.merge(out);
        }
        total
    }

    /// Sharded trace replay for [`crate::Hierarchy::run_trace`]: like
    /// [`SlicedCache::access_batch_threads`] but also prices every access
    /// with `lat`, so the caller can advance its clock by the summed
    /// cycles. [`CacheOp::lead`]s are *not* included here — they are
    /// outcome-independent input data, so the caller sums them in one
    /// pass and the workers never see them.
    ///
    /// Valid for **every** mode: an access outcome is a pure function of
    /// the owning shard's prior accesses (the adaptive period runs off
    /// the shard's own defense clock, not the cycle clock), so per-shard
    /// replay equals the sequential clock-advancing walk byte for byte.
    pub(crate) fn trace_batch_threads(
        &mut self,
        ops: &[CacheOp],
        threads: usize,
        lat: LatencyModel,
    ) -> TraceSummary {
        let mode = self.mode;
        let allocates = mode.allocates_in_llc();
        let per_shard = self.run_sharded(ops, threads, &|shard, bin| {
            let mut sum = TraceSummary::default();
            for &(set, tag, kind) in bin {
                let out = shard.access(mode, set as usize, tag, kind);
                sum.accesses += 1;
                sum.hits += u64::from(out.hit);
                sum.cycles += lat.access_latency(out.hit, kind, allocates);
                sum.dram_reads += u64::from(out.dram_reads);
                sum.dram_writes += u64::from(out.dram_writes);
            }
            sum
        });
        let mut total = TraceSummary::default();
        for sum in per_shard {
            total.accesses += sum.accesses;
            total.hits += sum.hits;
            total.cycles += sum.cycles;
            total.dram_reads += sum.dram_reads;
            total.dram_writes += sum.dram_writes;
        }
        total
    }

    /// Whether a batch of `len` ops should take the sharded path.
    pub(crate) fn batch_worth_sharding(&self, len: usize, threads: usize) -> bool {
        threads > 1 && self.shards.len() > 1 && len >= PAR_BATCH_MIN
    }

    /// Segment-reporting [`SlicedCache::trace_batch_threads`]: `starts`
    /// are ascending segment start indices (`starts[0] == 0`), and
    /// `seg_out` receives one latency-priced [`TraceSummary`] per
    /// segment, merged across shards in slice order. The access stream
    /// each shard replays is identical to the unsegmented dispatch —
    /// segment tags ride along in the bins purely as reporting keys —
    /// so cache state, statistics and the segment-summed totals are
    /// byte-identical to [`SlicedCache::trace_batch_threads`], for any
    /// thread count. Leads are again the caller's job.
    pub(crate) fn trace_batch_threads_segmented(
        &mut self,
        ops: &[CacheOp],
        starts: &[usize],
        threads: usize,
        lat: LatencyModel,
        seg_out: &mut Vec<TraceSummary>,
    ) {
        let nsegs = starts.len();
        seg_out.clear();
        seg_out.resize(nsegs, TraceSummary::default());
        let mode = self.mode;
        let allocates = mode.allocates_in_llc();
        let slices = self.shards.len();
        self.seg_bins.reset(slices);
        let hash = self.hash;
        let geom = self.geom;
        let shards = &mut self.shards;
        let bins = &mut self.seg_bins.bins;
        // Same keyed misbinning fault as the unsegmented dispatcher
        // (`swapped-slice-bin`): the two arms must stay equally covered.
        let slice_of = |addr: crate::PhysAddr| {
            let slice = hash.slice_of(addr);
            if slices > 1
                && crate::fault::fires_keyed(crate::fault::FaultSite::SwappedSliceBin, addr.raw())
            {
                slice ^ 1
            } else {
                slice
            }
        };
        let run = |shard: &mut Shard, bin: &[SegBinnedOp]| {
            let mut sums = vec![TraceSummary::default(); nsegs];
            for &(seg, set, tag, kind) in bin {
                let out = shard.access(mode, set as usize, tag, kind);
                let sum = &mut sums[seg as usize];
                sum.accesses += 1;
                sum.hits += u64::from(out.hit);
                sum.cycles += lat.access_latency(out.hit, kind, allocates);
                sum.dram_reads += u64::from(out.dram_reads);
                sum.dram_writes += u64::from(out.dram_writes);
            }
            sums
        };
        let per_shard: Vec<Vec<TraceSummary>> = if threads <= 1 || slices <= 1 {
            let _engine = crate::fault::engine_scope(crate::fault::Engine::Batch);
            let per_slice_hint = ops.len() / slices + ops.len() / 8 + 1;
            for bin in bins.iter_mut() {
                bin.reserve(per_slice_hint);
            }
            let mut seg = 0u32;
            for (idx, &op) in ops.iter().enumerate() {
                while (seg as usize + 1) < nsegs && idx >= starts[seg as usize + 1] {
                    seg += 1;
                }
                bins[slice_of(op.addr)].push((
                    seg,
                    geom.set_index(op.addr) as u32,
                    geom.tag(op.addr),
                    op.kind,
                ));
            }
            shards
                .iter_mut()
                .zip(bins.iter())
                .map(|(shard, bin)| run(shard, bin))
                .collect()
        } else {
            let groups = pc_par::parallel_zip_chunks_threads(
                shards,
                bins,
                threads,
                |first_slice, shard_group, bin_group| {
                    let _engine = crate::fault::engine_scope(crate::fault::Engine::Batch);
                    let range = first_slice..first_slice + shard_group.len();
                    let mut seg = 0u32;
                    for (idx, &op) in ops.iter().enumerate() {
                        while (seg as usize + 1) < nsegs && idx >= starts[seg as usize + 1] {
                            seg += 1;
                        }
                        let slice = slice_of(op.addr);
                        if range.contains(&slice) {
                            bin_group[slice - first_slice].push((
                                seg,
                                geom.set_index(op.addr) as u32,
                                geom.tag(op.addr),
                                op.kind,
                            ));
                        }
                    }
                    shard_group
                        .iter_mut()
                        .zip(bin_group.iter())
                        .map(|(shard, bin)| run(shard, bin))
                        .collect::<Vec<Vec<TraceSummary>>>()
                },
            );
            groups.into_iter().flatten().collect()
        };
        for sums in per_shard {
            for (out, sum) in seg_out.iter_mut().zip(sums) {
                out.merge(&sum);
            }
        }
    }

    /// Partitions `ops` by slice-hash range and runs `run` once per
    /// shard with that shard's bin, on up to `threads` workers, returning
    /// results in slice order.
    ///
    /// The binning pass is folded *into* the workers: shards are cut
    /// into contiguous groups ([`pc_par::parallel_zip_chunks_threads`]
    /// pairs each group with its cut of the bin scratch), and each
    /// worker scans the whole trace once, decoding and keeping only the
    /// ops whose slice hash lands in its range. Per-slice op order is
    /// preserved by construction (one scanner per slice), so the bins —
    /// and therefore the replay — are identical to a single sequential
    /// binning pass, with no serial phase left in front of the workers.
    fn run_sharded<R, F>(&mut self, ops: &[CacheOp], threads: usize, run: &F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Shard, &[BinnedOp]) -> R + Sync,
    {
        let slices = self.shards.len();
        self.bins.reset(slices);
        let hash = self.hash;
        let geom = self.geom;
        // Disjoint field borrows: the workers mutate the shards and the
        // bin scratch, nothing else of `self`.
        let shards = &mut self.shards;
        let bins = &mut self.bins.bins;
        let bin_one = |bin: &mut Vec<BinnedOp>, op: CacheOp| {
            bin.push((geom.set_index(op.addr) as u32, geom.tag(op.addr), op.kind));
        };
        // Fault site `swapped-slice-bin`: the dispatcher routes keyed
        // addresses to the neighbouring slice, disagreeing with the
        // hash the sequential walk uses. Keyed (pure in the address),
        // so every worker schedule misbins the same ops. Shared by
        // both dispatch arms so thread count still can't matter.
        let slice_of = |addr: crate::PhysAddr| {
            let slice = hash.slice_of(addr);
            if slices > 1
                && crate::fault::fires_keyed(crate::fault::FaultSite::SwappedSliceBin, addr.raw())
            {
                slice ^ 1
            } else {
                slice
            }
        };
        if threads <= 1 || slices <= 1 {
            // One sequential binning pass, then the shards in order.
            let _engine = crate::fault::engine_scope(crate::fault::Engine::Batch);
            let per_slice_hint = ops.len() / slices + ops.len() / 8 + 1;
            for bin in bins.iter_mut() {
                bin.reserve(per_slice_hint);
            }
            for &op in ops {
                bin_one(&mut bins[slice_of(op.addr)], op);
            }
            return shards
                .iter_mut()
                .zip(bins.iter())
                .map(|(shard, bin)| run(shard, bin))
                .collect();
        }
        let groups = pc_par::parallel_zip_chunks_threads(
            shards,
            bins,
            threads,
            |first_slice, shard_group, bin_group| {
                let _engine = crate::fault::engine_scope(crate::fault::Engine::Batch);
                let range = first_slice..first_slice + shard_group.len();
                for &op in ops {
                    let slice = slice_of(op.addr);
                    if range.contains(&slice) {
                        bin_one(&mut bin_group[slice - first_slice], op);
                    }
                }
                shard_group
                    .iter_mut()
                    .zip(bin_group.iter())
                    .map(|(shard, bin)| run(shard, bin))
                    .collect::<Vec<R>>()
            },
        );
        groups.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_llc(mode: DdioMode) -> SlicedCache {
        SlicedCache::new(CacheGeometry::tiny(), mode)
    }

    /// Addresses that all map to the same (slice, set) as `base`, spaced
    /// one set-stride apart in the tag bits.
    fn conflicting_addrs(llc: &SlicedCache, base: PhysAddr, n: usize) -> Vec<PhysAddr> {
        let target = llc.locate(base);
        let stride = (llc.geometry().sets_per_slice() * crate::LINE_SIZE) as u64;
        let mut out = Vec::new();
        let mut a = base.raw();
        while out.len() < n {
            let cand = PhysAddr::new(a);
            if llc.locate(cand) == target {
                out.push(cand);
            }
            a += stride;
        }
        out
    }

    /// An address in the same slice as `base` but a different set — used
    /// to drive the adaptation clock of `base`'s slice without touching
    /// its set (adaptation is per-slice, so traffic in *another* slice
    /// would not re-evaluate this one).
    fn same_slice_other_set(llc: &SlicedCache, base: PhysAddr) -> PhysAddr {
        let target = llc.locate(base);
        (1u64..)
            .map(|i| PhysAddr::new(base.raw() + i * crate::LINE_SIZE as u64))
            .find(|&a| {
                let ss = llc.locate(a);
                ss.slice == target.slice && ss.set != target.set
            })
            .expect("a same-slice, different-set address exists")
    }

    #[test]
    fn miss_then_hit() {
        let mut llc = tiny_llc(DdioMode::enabled());
        let a = PhysAddr::new(0x4_0000);
        assert!(!llc.access(a, AccessKind::CpuRead).hit);
        assert!(llc.access(a, AccessKind::CpuRead).hit);
        assert_eq!(llc.stats().cpu_hits, 1);
        assert_eq!(llc.stats().cpu_misses, 1);
    }

    #[test]
    fn associativity_is_respected() {
        let mut llc = tiny_llc(DdioMode::enabled());
        let ways = llc.geometry().ways();
        let addrs = conflicting_addrs(&llc, PhysAddr::new(0), ways + 1);
        for &a in &addrs {
            llc.access(a, AccessKind::CpuRead);
        }
        // First (LRU) address must have been displaced by the last fill.
        assert!(!llc.contains(addrs[0]));
        for &a in &addrs[1..] {
            assert!(llc.contains(a));
        }
    }

    #[test]
    fn ddio_fill_evicts_cpu_line_within_limit() {
        let mut llc = tiny_llc(DdioMode::enabled());
        let base = PhysAddr::new(0);
        let ways = llc.geometry().ways();
        let primes = conflicting_addrs(&llc, base, ways + 1);
        // Prime the set with CPU lines using addresses [1..=ways].
        for &a in &primes[1..] {
            llc.access(a, AccessKind::CpuRead);
        }
        // An I/O write to the same set must displace a primed line.
        let out = llc.access(primes[0], AccessKind::IoWrite);
        assert!(out.evicted_cpu, "DDIO fill should displace a CPU line");
        assert_eq!(llc.stats().io_evicted_cpu, 1);
    }

    #[test]
    fn ddio_way_limit_recycles_io_lines() {
        let mut llc = tiny_llc(DdioMode::Enabled { io_way_limit: 2 });
        let addrs = conflicting_addrs(&llc, PhysAddr::new(0), 5);
        for &a in &addrs {
            llc.access(a, AccessKind::IoWrite);
        }
        let ss = llc.locate(addrs[0]);
        assert!(
            llc.domain_count(ss, Domain::Io) <= 2,
            "I/O must never hold more than the way limit"
        );
    }

    #[test]
    fn disabled_ddio_sends_dma_to_memory() {
        let mut llc = tiny_llc(DdioMode::Disabled);
        let a = PhysAddr::new(0x8000);
        let out = llc.access(a, AccessKind::IoWrite);
        assert!(!out.hit);
        assert_eq!(out.dram_writes, 1);
        assert!(!llc.contains(a), "no allocation without DDIO");
        // CPU read later demand-fetches it.
        let out = llc.access(a, AccessKind::CpuRead);
        assert!(!out.hit);
        assert_eq!(out.dram_reads, 1);
        assert!(llc.contains(a));
    }

    #[test]
    fn disabled_ddio_invalidates_stale_cached_copy() {
        let mut llc = tiny_llc(DdioMode::Disabled);
        let a = PhysAddr::new(0x8000);
        llc.access(a, AccessKind::CpuRead);
        assert!(llc.contains(a));
        llc.access(a, AccessKind::IoWrite);
        assert!(
            !llc.contains(a),
            "DMA write must invalidate the cached copy"
        );
    }

    #[test]
    fn adaptive_never_evicts_cpu_lines_on_io_fill() {
        let mut llc = tiny_llc(DdioMode::adaptive());
        let ways = llc.geometry().ways();
        let addrs = conflicting_addrs(&llc, PhysAddr::new(0), 2 * ways);
        // Fill the CPU partition.
        for &a in &addrs[..ways] {
            llc.access(a, AccessKind::CpuRead);
        }
        // Hammer the set with I/O fills.
        for &a in &addrs[ways..] {
            let out = llc.access(a, AccessKind::IoWrite);
            assert!(
                !out.evicted_cpu,
                "adaptive mode must never displace CPU lines"
            );
        }
        assert_eq!(llc.stats().io_evicted_cpu, 0);
    }

    #[test]
    fn adaptive_grows_partition_under_sustained_io() {
        let cfg = AdaptiveConfig {
            period: 10,
            t_high: 2,
            t_low: 1,
            min_io_lines: 1,
            max_io_lines: 3,
        };
        let mut llc = tiny_llc(DdioMode::Adaptive(cfg));
        let addrs = conflicting_addrs(&llc, PhysAddr::new(0), 6);
        let ss = llc.locate(addrs[0]);
        assert_eq!(llc.io_partition_limit(ss), 1);
        // Sustained I/O activity across several periods (one per 10
        // accesses to this slice) grows the limit.
        for _ in 0..20 {
            for &a in &addrs {
                llc.access(a, AccessKind::IoWrite);
            }
        }
        assert!(
            llc.io_partition_limit(ss) > 1,
            "partition should have grown"
        );
        assert!(llc.io_partition_limit(ss) <= 3);
    }

    #[test]
    fn adaptive_shrinks_partition_when_idle() {
        let cfg = AdaptiveConfig {
            period: 10,
            t_high: 2,
            t_low: 1,
            min_io_lines: 1,
            max_io_lines: 3,
        };
        let mut llc = tiny_llc(DdioMode::Adaptive(cfg));
        let addrs = conflicting_addrs(&llc, PhysAddr::new(0), 6);
        let ss = llc.locate(addrs[0]);
        for _ in 0..20 {
            for &a in &addrs {
                llc.access(a, AccessKind::IoWrite);
            }
        }
        assert!(llc.io_partition_limit(ss) > 1);
        // Standing I/O lines keep the partition grown (presence
        // semantics); once they leave the cache and I/O stays idle, the
        // partition shrinks back to the floor. CPU traffic in a
        // different set *of the same slice* keeps that shard's
        // adaptation clock moving.
        llc.flush_all();
        let other = same_slice_other_set(&llc, addrs[0]);
        for _ in 0..50 {
            llc.access(other, AccessKind::CpuRead);
        }
        assert_eq!(
            llc.io_partition_limit(ss),
            1,
            "partition should shrink back"
        );
    }

    #[test]
    fn adaptive_shrink_below_occupancy_evicts_surplus() {
        // The boundary-shrink clamp: grow the partition to 3 under heavy
        // traffic, keep 3 I/O lines resident, then go idle with
        // `t_low = 4` so the presence floor (3) is *below* the shrink
        // threshold. The boundary steps down beneath the standing
        // occupancy, and the surplus lines must be displaced eagerly
        // (with writebacks — DDIO lines are dirty) so occupancy never
        // exceeds the clamped boundary.
        let cfg = AdaptiveConfig {
            period: 10,
            t_high: 4,
            t_low: 4,
            min_io_lines: 1,
            max_io_lines: 3,
        };
        let mut llc = tiny_llc(DdioMode::Adaptive(cfg));
        let addrs = conflicting_addrs(&llc, PhysAddr::new(0), 8);
        let ss = llc.locate(addrs[0]);
        while llc.io_partition_limit(ss) < 3 {
            for &a in &addrs[..6] {
                llc.access(a, AccessKind::IoWrite);
            }
        }
        // Refill the grown partition so occupancy == 3.
        for &a in &addrs[..3] {
            llc.access(a, AccessKind::IoWrite);
        }
        assert_eq!(llc.domain_count(ss, Domain::Io), 3);
        let wb_before = llc.stats().writebacks;
        // Idle periods: ticks in another set of the same slice drive
        // adaptation. The boundary steps down one line per period; each
        // step displaces a surplus resident I/O line.
        let other = same_slice_other_set(&llc, addrs[0]);
        for _ in 0..80 {
            llc.access(other, AccessKind::CpuRead);
        }
        let limit = llc.io_partition_limit(ss);
        assert_eq!(
            limit, 1,
            "partition should have shrunk to the floor, got {limit}"
        );
        assert!(
            llc.domain_count(ss, Domain::Io) <= limit,
            "occupancy must not exceed the shrunk boundary"
        );
        assert!(
            llc.stats().partition_invalidations >= 2,
            "surplus lines are displaced eagerly"
        );
        assert!(
            llc.stats().writebacks > wb_before,
            "dirty DDIO lines write back"
        );
    }

    #[test]
    fn adaptation_is_per_slice() {
        // Traffic in one slice must never re-evaluate another slice's
        // partitions: grow a partition in `base`'s slice, then hammer a
        // *different* slice with CPU reads — the grown partition must
        // stay exactly where it was (its shard's clock never advanced).
        let cfg = AdaptiveConfig {
            period: 10,
            t_high: 2,
            t_low: 1,
            min_io_lines: 1,
            max_io_lines: 3,
        };
        let mut llc = tiny_llc(DdioMode::Adaptive(cfg));
        let base = PhysAddr::new(0);
        let addrs = conflicting_addrs(&llc, base, 6);
        let ss = llc.locate(base);
        for _ in 0..20 {
            for &a in &addrs {
                llc.access(a, AccessKind::IoWrite);
            }
        }
        let grown = llc.io_partition_limit(ss);
        assert!(grown > 1);
        llc.flush_all();
        let other_slice = (1u64..)
            .map(|i| PhysAddr::new(i * crate::LINE_SIZE as u64))
            .find(|&a| llc.locate(a).slice != ss.slice)
            .expect("tiny geometry has two slices");
        for _ in 0..100 {
            llc.access(other_slice, AccessKind::CpuRead);
        }
        assert_eq!(
            llc.io_partition_limit(ss),
            grown,
            "cross-slice traffic must not drive this slice's adaptation"
        );
    }

    #[test]
    fn writebacks_counted_on_dirty_eviction() {
        let mut llc = tiny_llc(DdioMode::enabled());
        let ways = llc.geometry().ways();
        let addrs = conflicting_addrs(&llc, PhysAddr::new(0), ways + 1);
        for &a in &addrs[..ways] {
            llc.access(a, AccessKind::CpuWrite); // dirty lines
        }
        let out = llc.access(addrs[ways], AccessKind::CpuRead);
        assert_eq!(out.dram_writes, 1, "dirty LRU line must write back");
        assert_eq!(llc.stats().writebacks, 1);
    }

    #[test]
    fn io_read_does_not_allocate() {
        let mut llc = tiny_llc(DdioMode::enabled());
        let a = PhysAddr::new(0xc000);
        let out = llc.access(a, AccessKind::IoRead);
        assert!(!out.hit);
        assert_eq!(out.dram_reads, 1);
        assert!(!llc.contains(a));
    }

    #[test]
    fn flush_all_empties_cache_and_reports_writebacks() {
        let mut llc = tiny_llc(DdioMode::enabled());
        let a = PhysAddr::new(0x1000);
        llc.access(a, AccessKind::CpuWrite);
        assert_eq!(llc.flush_all(), 1, "one dirty line flushed");
        assert!(!llc.contains(a));
        assert_eq!(llc.stats().writebacks, 1);
    }

    fn mixed_ops(n: u64) -> Vec<CacheOp> {
        (0..n)
            .map(|i| {
                let kind = match i % 4 {
                    0 => AccessKind::IoWrite,
                    1 => AccessKind::CpuWrite,
                    2 => AccessKind::IoRead,
                    _ => AccessKind::CpuRead,
                };
                CacheOp::new(PhysAddr::new((i % 37) * 0x1040), kind)
            })
            .collect()
    }

    #[test]
    fn access_batch_matches_scalar_accesses() {
        let ops = mixed_ops(200);
        let mut scalar = tiny_llc(DdioMode::enabled());
        let mut agg = BatchOutcome::default();
        for &op in &ops {
            agg.absorb(scalar.access(op.addr, op.kind));
        }
        let mut batched = tiny_llc(DdioMode::enabled());
        let got = batched.access_batch(&ops);
        assert_eq!(got, agg);
        assert_eq!(batched.stats(), scalar.stats());
        for &op in &ops {
            assert_eq!(batched.contains(op.addr), scalar.contains(op.addr));
        }
    }

    #[test]
    fn sharded_batch_is_thread_count_invariant() {
        // The determinism contract in one test: a batch large enough to
        // take the sharded path must produce identical aggregates, stats
        // and residency for every worker count, in every mode.
        let ops = mixed_ops(PAR_BATCH_MIN as u64 + 500);
        for mode in [
            DdioMode::Disabled,
            DdioMode::enabled(),
            DdioMode::adaptive(),
        ] {
            let mut scalar = tiny_llc(mode);
            let mut want = BatchOutcome::default();
            for &op in &ops {
                want.absorb(scalar.access(op.addr, op.kind));
            }
            for threads in [1usize, 2, 3, 8] {
                let mut sharded = tiny_llc(mode);
                let got = sharded.access_batch_threads(&ops, threads);
                assert_eq!(got, want, "{mode:?} threads={threads}");
                assert_eq!(
                    sharded.stats(),
                    scalar.stats(),
                    "{mode:?} threads={threads}"
                );
                for &op in &ops {
                    assert_eq!(sharded.contains(op.addr), scalar.contains(op.addr));
                }
            }
        }
    }

    #[test]
    fn locate_agrees_with_geometry_and_hash() {
        let llc = tiny_llc(DdioMode::enabled());
        let a = PhysAddr::new(0x1_2340);
        let ss = llc.locate(a);
        assert_eq!(ss.set, llc.geometry().set_index(a));
        assert_eq!(ss.slice, llc.slice_hash().slice_of(a));
    }
}
