//! The sliced last-level cache with DDIO write allocation and the
//! adaptive I/O partitioning defense, backed by a contiguous
//! structure-of-arrays line store.

use crate::addr::PhysAddr;
use crate::geometry::CacheGeometry;
use crate::partition::AdaptiveConfig;
use crate::replacement::{ReplacementPolicy, Victims};
use crate::set::Domain;
use crate::slicehash::SliceHash;
use crate::stats::CacheStats;
use crate::store::{LineStore, FLAG_ELEVATED, FLAG_TOUCHED};
use crate::Cycles;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;

/// How DMA from I/O devices interacts with the LLC.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DdioMode {
    /// Pre-DDIO behaviour: DMA writes go to main memory (invalidating any
    /// cached copy); the CPU later demand-fetches the data.
    Disabled,
    /// Intel DDIO: I/O writes allocate directly in the LLC, restricted to
    /// `io_way_limit` ways per set (2 on real parts). I/O fills beyond the
    /// limit displace other I/O lines, but fills *within* the limit can
    /// displace CPU lines — the vulnerability the paper exploits.
    Enabled {
        /// Maximum ways per set an I/O fill may occupy.
        io_way_limit: u8,
    },
    /// The paper's §VII defense: per-set I/O partitions sized by an
    /// activity-driven saturating counter; I/O fills can *only* displace
    /// I/O lines, so the spy's primed lines never observe packets.
    Adaptive(AdaptiveConfig),
}

impl DdioMode {
    /// DDIO with Intel's 2-way allocation limit (the vulnerable baseline).
    pub fn enabled() -> Self {
        DdioMode::Enabled { io_way_limit: 2 }
    }

    /// The adaptive partitioning defense with the paper's defaults.
    pub fn adaptive() -> Self {
        DdioMode::Adaptive(AdaptiveConfig::paper_defaults())
    }

    /// `true` for any mode in which I/O writes allocate in the LLC.
    pub fn allocates_in_llc(&self) -> bool {
        !matches!(self, DdioMode::Disabled)
    }
}

impl Default for DdioMode {
    fn default() -> Self {
        DdioMode::enabled()
    }
}

/// A (slice, set-index) pair — one concrete cache set in the sliced LLC.
///
/// The spy's "page-aligned cache sets" (256 of them on the paper's
/// machine) are values of this type.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub struct SliceSet {
    /// Slice number (`0..geometry.slices()`).
    pub slice: usize,
    /// Set index within the slice (`0..geometry.sets_per_slice()`).
    pub set: usize,
}

impl SliceSet {
    /// Creates a slice/set pair.
    pub fn new(slice: usize, set: usize) -> Self {
        SliceSet { slice, set }
    }
}

impl fmt::Display for SliceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}#{}", self.slice, self.set)
    }
}

/// The kind of access presented to the LLC.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum AccessKind {
    /// CPU load.
    CpuRead,
    /// CPU store (write-allocate, write-back).
    CpuWrite,
    /// DMA write from an I/O device (a packet block arriving).
    IoWrite,
    /// DMA read by an I/O device (descriptor fetches, transmit).
    IoRead,
}

impl AccessKind {
    /// `true` for the two I/O kinds.
    pub fn is_io(self) -> bool {
        matches!(self, AccessKind::IoWrite | AccessKind::IoRead)
    }
}

/// What a single access did, in units the memory controller cares about.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct AccessOutcome {
    /// The line was present in the LLC.
    pub hit: bool,
    /// DRAM lines read because of this access.
    pub dram_reads: u32,
    /// DRAM lines written because of this access (writebacks and
    /// non-DDIO DMA writes).
    pub dram_writes: u32,
    /// This access displaced a CPU-domain line from the LLC — the event
    /// the Packet Chasing spy detects.
    pub evicted_cpu: bool,
}

/// Aggregate of a batch of accesses (see [`SlicedCache::access_batch`]).
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct BatchOutcome {
    /// Accesses that hit in the LLC.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Total DRAM lines read.
    pub dram_reads: u64,
    /// Total DRAM lines written.
    pub dram_writes: u64,
    /// Accesses that displaced a CPU-domain line.
    pub evicted_cpu: u64,
}

impl BatchOutcome {
    #[inline]
    fn absorb(&mut self, out: AccessOutcome) {
        if out.hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        self.dram_reads += u64::from(out.dram_reads);
        self.dram_writes += u64::from(out.dram_writes);
        self.evicted_cpu += u64::from(out.evicted_cpu);
    }
}

/// The sliced, set-associative LLC.
///
/// All addresses are physical. The cache stores only metadata (tags,
/// dirty bits, domains); no data bytes are simulated. Storage is a
/// single contiguous structure-of-arrays ([`crate::store`]) — there is
/// no per-set object on the hot path.
///
/// ```
/// use pc_cache::{AccessKind, CacheGeometry, DdioMode, PhysAddr, SlicedCache};
/// let mut llc = SlicedCache::new(CacheGeometry::tiny(), DdioMode::enabled());
/// let a = PhysAddr::new(0x8000);
/// assert!(!llc.access(a, AccessKind::CpuRead, 0).hit);
/// assert!(llc.access(a, AccessKind::CpuRead, 10).hit);
/// ```
#[derive(Clone, Debug)]
pub struct SlicedCache {
    geom: CacheGeometry,
    hash: SliceHash,
    mode: DdioMode,
    store: LineStore,
    rng: SmallRng,
    stats: CacheStats,
    // Adaptive-defense bookkeeping (unused in other modes).
    adapt_last: Cycles,
    touched: Vec<usize>,
    elevated: Vec<usize>,
}

impl SlicedCache {
    /// Creates a cache with LRU replacement and a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if the geometry's slice count is unsupported by the slice
    /// hash (must be 1/2/4/8) or if an [`AdaptiveConfig`] is invalid for
    /// the geometry.
    pub fn new(geom: CacheGeometry, mode: DdioMode) -> Self {
        SlicedCache::with_policy_and_seed(geom, mode, ReplacementPolicy::Lru, 0x9e37_79b9)
    }

    /// Creates a cache with an explicit replacement policy and RNG seed.
    ///
    /// # Panics
    ///
    /// Same conditions as [`SlicedCache::new`].
    pub fn with_policy_and_seed(
        geom: CacheGeometry,
        mode: DdioMode,
        policy: ReplacementPolicy,
        seed: u64,
    ) -> Self {
        let hash = SliceHash::for_slices(geom.slices() as u32);
        let initial_io_limit = match mode {
            DdioMode::Disabled => 0,
            DdioMode::Enabled { io_way_limit } => {
                assert!(io_way_limit > 0, "DDIO way limit must be non-zero");
                assert!(
                    (io_way_limit as usize) <= geom.ways(),
                    "DDIO way limit exceeds associativity"
                );
                io_way_limit
            }
            DdioMode::Adaptive(cfg) => {
                cfg.validate(geom.ways());
                cfg.min_io_lines
            }
        };
        SlicedCache {
            geom,
            hash,
            mode,
            store: LineStore::new(geom.total_sets(), geom.ways(), policy, initial_io_limit),
            rng: SmallRng::seed_from_u64(seed),
            stats: CacheStats::new(),
            adapt_last: 0,
            touched: Vec::new(),
            elevated: Vec::new(),
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// The DDIO mode the cache was built with.
    pub fn mode(&self) -> DdioMode {
        self.mode
    }

    /// The slice hash (ground truth — attacker code must not call this).
    pub fn slice_hash(&self) -> SliceHash {
        self.hash
    }

    /// The concrete (slice, set) an address maps to. Ground truth for
    /// instrumentation and tests; the attacker discovers this by timing.
    pub fn locate(&self, addr: PhysAddr) -> SliceSet {
        SliceSet {
            slice: self.hash.slice_of(addr),
            set: self.geom.set_index(addr),
        }
    }

    fn flat_index(&self, ss: SliceSet) -> usize {
        ss.slice * self.geom.sets_per_slice() + ss.set
    }

    /// Whether `addr` is currently cached (oracle for tests).
    pub fn contains(&self, addr: PhysAddr) -> bool {
        let ss = self.locate(addr);
        let idx = self.flat_index(ss);
        self.store.lookup(idx, self.geom.tag(addr)).is_some()
    }

    /// Number of valid lines of `domain` in a concrete set.
    pub fn domain_count(&self, ss: SliceSet, domain: Domain) -> usize {
        self.store.count_domain(self.flat_index(ss), domain)
    }

    /// Current I/O partition size of a set (meaningful in `Enabled` /
    /// `Adaptive` modes).
    pub fn io_partition_limit(&self, ss: SliceSet) -> usize {
        self.store.sets[self.flat_index(ss)].io_limit as usize
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics to zero (the cache contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    /// Invalidates the whole cache, counting writebacks into the stats.
    ///
    /// Returns the number of dirty lines written back so callers that
    /// track DRAM traffic (e.g. [`crate::Hierarchy::flush_all`]) can
    /// account the flush as memory writes — the original implementation
    /// silently dropped that traffic.
    pub fn flush_all(&mut self) -> usize {
        let wb = self.store.invalidate_all();
        self.stats.writebacks += wb as u64;
        wb
    }

    /// Performs one access at cycle `now` and reports what happened.
    ///
    /// `now` only matters in `Adaptive` mode, where it drives the
    /// periodic boundary re-evaluation; other modes ignore it.
    #[inline]
    pub fn access(&mut self, addr: PhysAddr, kind: AccessKind, now: Cycles) -> AccessOutcome {
        let ss = self.locate(addr);
        let idx = self.flat_index(ss);
        let tag = self.geom.tag(addr);

        let outcome = match kind {
            AccessKind::CpuRead | AccessKind::CpuWrite => self.cpu_access(idx, tag, kind),
            AccessKind::IoWrite => self.io_write(idx, tag),
            AccessKind::IoRead => self.io_read(idx, tag),
        };

        // Only I/O *writes* matter to the partition: DDIO is
        // write-allocate, so only writes ever insert I/O lines that need
        // protected space. Growing partitions under DMA reads (transmit
        // traffic) would take CPU ways for nothing.
        if kind == AccessKind::IoWrite {
            self.note_io_activity(idx);
        }
        if let DdioMode::Adaptive(cfg) = self.mode {
            if now.saturating_sub(self.adapt_last) >= cfg.period {
                self.adapt(cfg, now);
            }
        }
        outcome
    }

    /// Runs a slice of accesses, all presented at cycle `now`, and
    /// returns the aggregate outcome.
    ///
    /// Semantically identical to calling [`SlicedCache::access`] once per
    /// element (in order, same RNG stream, same statistics); the batch
    /// entry point exists so trace-replay drivers amortize call and
    /// stats-accumulation overhead instead of paying it per line.
    /// Clock-advancing callers should use [`crate::Hierarchy::run_trace`]
    /// (which `PrimeProbe::prime` goes through); this cache-level variant
    /// serves clockless replay like the `cache_throughput` bench. In
    /// `Adaptive` mode, remember that a whole batch shares one `now` —
    /// chunk long traces if periodic adaptation should keep firing.
    pub fn access_batch(&mut self, ops: &[(PhysAddr, AccessKind)], now: Cycles) -> BatchOutcome {
        let mut agg = BatchOutcome::default();
        for &(addr, kind) in ops {
            agg.absorb(self.access(addr, kind, now));
        }
        agg
    }

    fn cpu_access(&mut self, idx: usize, tag: u64, kind: AccessKind) -> AccessOutcome {
        let write = kind == AccessKind::CpuWrite;
        if let Some(way) = self.store.lookup(idx, tag) {
            self.store.touch(idx, way);
            if write {
                self.store.mark_dirty(idx, way);
            }
            self.stats.cpu_hits += 1;
            return AccessOutcome {
                hit: true,
                ..AccessOutcome::default()
            };
        }
        self.stats.cpu_misses += 1;
        let mut out = AccessOutcome {
            hit: false,
            dram_reads: 1,
            ..AccessOutcome::default()
        };

        let adaptive = matches!(self.mode, DdioMode::Adaptive(_));
        let filled = if adaptive {
            // CPU fills must stay inside the CPU partition: they may take
            // an invalid way only while the CPU quota has room, and may
            // only displace CPU lines.
            let cpu_quota = self.store.ways() - self.store.sets[idx].io_limit as usize;
            if self.store.count_domain(idx, Domain::Cpu) < cpu_quota {
                self.store.fill(
                    idx,
                    tag,
                    Domain::Cpu,
                    write,
                    &mut self.rng,
                    Victims::Only(Domain::Cpu),
                )
            } else {
                self.store.fill_no_invalid(
                    idx,
                    tag,
                    Domain::Cpu,
                    write,
                    &mut self.rng,
                    Victims::Only(Domain::Cpu),
                )
            }
        } else {
            self.store
                .fill(idx, tag, Domain::Cpu, write, &mut self.rng, Victims::Any)
        };
        let filled = filled.or_else(|| {
            // Quota accounting should always leave a CPU victim available;
            // fall back to an unrestricted fill rather than dropping the
            // line if an edge case slips through.
            debug_assert!(false, "CPU fill found no victim");
            self.store
                .fill(idx, tag, Domain::Cpu, write, &mut self.rng, Victims::Any)
        });
        if let Some((_, Some(ev))) = filled {
            self.stats.evictions += 1;
            if ev.dirty {
                self.stats.writebacks += 1;
                out.dram_writes += 1;
            }
        }
        out
    }

    fn io_write(&mut self, idx: usize, tag: u64) -> AccessOutcome {
        match self.mode {
            DdioMode::Disabled => {
                // DMA goes to memory; any cached copy is invalidated (the
                // DMA write supersedes it, so no writeback is needed).
                let _ = self.store.invalidate(idx, tag);
                self.stats.io_misses += 1;
                AccessOutcome {
                    hit: false,
                    dram_writes: 1,
                    ..AccessOutcome::default()
                }
            }
            DdioMode::Enabled { io_way_limit } => {
                if let Some(way) = self.store.lookup(idx, tag) {
                    // DDIO write update: refresh in place.
                    self.store.touch(idx, way);
                    self.store.mark_dirty(idx, way);
                    self.stats.io_hits += 1;
                    return AccessOutcome {
                        hit: true,
                        ..AccessOutcome::default()
                    };
                }
                self.stats.io_misses += 1;
                let mut out = AccessOutcome::default();
                let io_count = self.store.count_domain(idx, Domain::Io);
                let filled = if io_count >= io_way_limit as usize {
                    // Allocation limit reached: recycle an I/O line.
                    self.store.fill_no_invalid(
                        idx,
                        tag,
                        Domain::Io,
                        true,
                        &mut self.rng,
                        Victims::Only(Domain::Io),
                    )
                } else {
                    // Within the limit: free choice — this is the fill
                    // that can displace a primed spy line.
                    self.store
                        .fill(idx, tag, Domain::Io, true, &mut self.rng, Victims::Any)
                };
                if let Some((_, Some(ev))) = filled {
                    self.stats.evictions += 1;
                    if ev.dirty {
                        self.stats.writebacks += 1;
                        out.dram_writes += 1;
                    }
                    if ev.was_cpu {
                        self.stats.io_evicted_cpu += 1;
                        out.evicted_cpu = true;
                    }
                }
                out
            }
            DdioMode::Adaptive(_) => {
                if let Some(way) = self.store.lookup(idx, tag) {
                    self.store.touch(idx, way);
                    self.store.mark_dirty(idx, way);
                    self.stats.io_hits += 1;
                    return AccessOutcome {
                        hit: true,
                        ..AccessOutcome::default()
                    };
                }
                self.stats.io_misses += 1;
                let mut out = AccessOutcome::default();
                let io_limit = self.store.sets[idx].io_limit as usize;
                let io_count = self.store.count_domain(idx, Domain::Io);
                let filled = if io_count < io_limit {
                    // Room in the I/O partition: quota accounting
                    // guarantees an invalid way exists or an I/O line can
                    // be recycled; never touch CPU lines.
                    self.store.fill(
                        idx,
                        tag,
                        Domain::Io,
                        true,
                        &mut self.rng,
                        Victims::Only(Domain::Io),
                    )
                } else {
                    self.store.fill_no_invalid(
                        idx,
                        tag,
                        Domain::Io,
                        true,
                        &mut self.rng,
                        Victims::Only(Domain::Io),
                    )
                };
                let filled = filled.or_else(|| {
                    // Partition was starved (e.g. right after a boundary
                    // shrink): make room by displacing the LRU I/O line,
                    // or as a last resort take an invalid way.
                    self.store.fill(
                        idx,
                        tag,
                        Domain::Io,
                        true,
                        &mut self.rng,
                        Victims::Only(Domain::Io),
                    )
                });
                if let Some((_, Some(ev))) = filled {
                    self.stats.evictions += 1;
                    if ev.dirty {
                        self.stats.writebacks += 1;
                        out.dram_writes += 1;
                    }
                    debug_assert!(!ev.was_cpu, "adaptive partition displaced a CPU line");
                    if ev.was_cpu {
                        self.stats.io_evicted_cpu += 1;
                        out.evicted_cpu = true;
                    }
                }
                out
            }
        }
    }

    fn io_read(&mut self, idx: usize, tag: u64) -> AccessOutcome {
        if self.mode.allocates_in_llc() {
            if let Some(way) = self.store.lookup(idx, tag) {
                self.store.touch(idx, way);
                self.stats.io_hits += 1;
                return AccessOutcome {
                    hit: true,
                    ..AccessOutcome::default()
                };
            }
            // DDIO performs write allocation but *read* transactions that
            // miss are served from DRAM without allocating.
            self.stats.io_misses += 1;
            return AccessOutcome {
                hit: false,
                dram_reads: 1,
                ..AccessOutcome::default()
            };
        }
        // Pre-DDIO DMA read: coherent with the cache — a dirty cached
        // copy is written back before the device reads DRAM. This is why
        // transmit-side traffic costs extra memory writes without DDIO
        // (Figure 15's write-traffic gap).
        self.stats.io_misses += 1;
        let mut out = AccessOutcome {
            hit: false,
            dram_reads: 1,
            ..AccessOutcome::default()
        };
        if let Some(way) = self.store.lookup(idx, tag) {
            if self.store.clean(idx, way) {
                self.stats.writebacks += 1;
                out.dram_writes = 1;
            }
        }
        out
    }

    #[inline]
    fn note_io_activity(&mut self, idx: usize) {
        if !matches!(self.mode, DdioMode::Adaptive(_)) {
            return;
        }
        self.store.sets[idx].io_activity = self.store.sets[idx].io_activity.saturating_add(1);
        if self.store.sets[idx].flags & FLAG_TOUCHED == 0 {
            self.store.sets[idx].flags |= FLAG_TOUCHED;
            self.touched.push(idx);
        }
    }

    /// Re-evaluates the I/O/CPU boundary of every recently active set.
    ///
    /// Displacement semantics when the boundary moves are **eager**: the
    /// losing side's surplus lines are invalidated (with writeback if
    /// dirty) at the adaptation point, never lazily on a later fill —
    /// see the discussion in [`crate::partition`].
    fn adapt(&mut self, cfg: AdaptiveConfig, now: Cycles) {
        self.adapt_last = now;
        let touched = std::mem::take(&mut self.touched);
        let elevated = std::mem::take(&mut self.elevated);
        let mut revisit: Vec<usize> = Vec::with_capacity(touched.len() + elevated.len());
        revisit.extend_from_slice(&touched);
        // The touched flags must stay up while the elevated list is
        // deduplicated against them. (The original implementation cleared
        // them in the loop above, so sets on both lists were revisited
        // twice per period — the second visit saw the freshly zeroed
        // activity counter and moved the boundary a spurious step. With
        // the paper's `t_high = 1` that grew every active partition to
        // `max_io_lines` within one period and pinned it there.)
        for idx in elevated {
            self.store.sets[idx].flags &= !FLAG_ELEVATED;
            if self.store.sets[idx].flags & FLAG_TOUCHED == 0 {
                revisit.push(idx);
            }
        }
        for idx in touched {
            self.store.sets[idx].flags &= !FLAG_TOUCHED;
        }
        for idx in revisit {
            // The paper's hardware counts cycles with a valid I/O line
            // *present*; a standing I/O line keeps the counter above
            // T_high for the whole period. Our event count is therefore
            // floored by the number of I/O lines currently resident.
            let present = self.store.count_domain(idx, Domain::Io) as u32;
            let activity = self.store.sets[idx].io_activity.max(present);
            self.store.sets[idx].io_activity = 0;
            let old = self.store.sets[idx].io_limit;
            let new = if activity >= cfg.t_high {
                old.saturating_add(1).min(cfg.max_io_lines)
            } else if activity < cfg.t_low {
                old.saturating_sub(1).max(cfg.min_io_lines)
            } else {
                old
            };
            if new > old {
                // Growing I/O partition: push CPU lines out so the CPU
                // quota holds.
                let cpu_quota = self.store.ways() - new as usize;
                while self.store.count_domain(idx, Domain::Cpu) > cpu_quota {
                    match self
                        .store
                        .evict_lru_of_domain(idx, Domain::Cpu, &mut self.rng)
                    {
                        Some(dirty) => {
                            self.stats.partition_invalidations += 1;
                            if dirty {
                                self.stats.writebacks += 1;
                            }
                        }
                        None => break,
                    }
                }
            } else if new < old {
                // Shrinking: push surplus I/O lines out so occupancy never
                // exceeds the clamped boundary.
                while self.store.count_domain(idx, Domain::Io) > new as usize {
                    match self
                        .store
                        .evict_lru_of_domain(idx, Domain::Io, &mut self.rng)
                    {
                        Some(dirty) => {
                            self.stats.partition_invalidations += 1;
                            if dirty {
                                self.stats.writebacks += 1;
                            }
                        }
                        None => break,
                    }
                }
            }
            self.store.sets[idx].io_limit = new;
            if new > cfg.min_io_lines && self.store.sets[idx].flags & FLAG_ELEVATED == 0 {
                self.store.sets[idx].flags |= FLAG_ELEVATED;
                self.elevated.push(idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_llc(mode: DdioMode) -> SlicedCache {
        SlicedCache::new(CacheGeometry::tiny(), mode)
    }

    /// Addresses that all map to the same (slice, set) as `base`, spaced
    /// one set-stride apart in the tag bits.
    fn conflicting_addrs(llc: &SlicedCache, base: PhysAddr, n: usize) -> Vec<PhysAddr> {
        let target = llc.locate(base);
        let stride = (llc.geometry().sets_per_slice() * crate::LINE_SIZE) as u64;
        let mut out = Vec::new();
        let mut a = base.raw();
        while out.len() < n {
            let cand = PhysAddr::new(a);
            if llc.locate(cand) == target {
                out.push(cand);
            }
            a += stride;
        }
        out
    }

    #[test]
    fn miss_then_hit() {
        let mut llc = tiny_llc(DdioMode::enabled());
        let a = PhysAddr::new(0x4_0000);
        assert!(!llc.access(a, AccessKind::CpuRead, 0).hit);
        assert!(llc.access(a, AccessKind::CpuRead, 1).hit);
        assert_eq!(llc.stats().cpu_hits, 1);
        assert_eq!(llc.stats().cpu_misses, 1);
    }

    #[test]
    fn associativity_is_respected() {
        let mut llc = tiny_llc(DdioMode::enabled());
        let ways = llc.geometry().ways();
        let addrs = conflicting_addrs(&llc, PhysAddr::new(0), ways + 1);
        for &a in &addrs {
            llc.access(a, AccessKind::CpuRead, 0);
        }
        // First (LRU) address must have been displaced by the last fill.
        assert!(!llc.contains(addrs[0]));
        for &a in &addrs[1..] {
            assert!(llc.contains(a));
        }
    }

    #[test]
    fn ddio_fill_evicts_cpu_line_within_limit() {
        let mut llc = tiny_llc(DdioMode::enabled());
        let base = PhysAddr::new(0);
        let ways = llc.geometry().ways();
        let primes = conflicting_addrs(&llc, base, ways + 1);
        // Prime the set with CPU lines using addresses [1..=ways].
        for &a in &primes[1..] {
            llc.access(a, AccessKind::CpuRead, 0);
        }
        // An I/O write to the same set must displace a primed line.
        let out = llc.access(primes[0], AccessKind::IoWrite, 0);
        assert!(out.evicted_cpu, "DDIO fill should displace a CPU line");
        assert_eq!(llc.stats().io_evicted_cpu, 1);
    }

    #[test]
    fn ddio_way_limit_recycles_io_lines() {
        let mut llc = tiny_llc(DdioMode::Enabled { io_way_limit: 2 });
        let addrs = conflicting_addrs(&llc, PhysAddr::new(0), 5);
        for &a in &addrs {
            llc.access(a, AccessKind::IoWrite, 0);
        }
        let ss = llc.locate(addrs[0]);
        assert!(
            llc.domain_count(ss, Domain::Io) <= 2,
            "I/O must never hold more than the way limit"
        );
    }

    #[test]
    fn disabled_ddio_sends_dma_to_memory() {
        let mut llc = tiny_llc(DdioMode::Disabled);
        let a = PhysAddr::new(0x8000);
        let out = llc.access(a, AccessKind::IoWrite, 0);
        assert!(!out.hit);
        assert_eq!(out.dram_writes, 1);
        assert!(!llc.contains(a), "no allocation without DDIO");
        // CPU read later demand-fetches it.
        let out = llc.access(a, AccessKind::CpuRead, 0);
        assert!(!out.hit);
        assert_eq!(out.dram_reads, 1);
        assert!(llc.contains(a));
    }

    #[test]
    fn disabled_ddio_invalidates_stale_cached_copy() {
        let mut llc = tiny_llc(DdioMode::Disabled);
        let a = PhysAddr::new(0x8000);
        llc.access(a, AccessKind::CpuRead, 0);
        assert!(llc.contains(a));
        llc.access(a, AccessKind::IoWrite, 0);
        assert!(
            !llc.contains(a),
            "DMA write must invalidate the cached copy"
        );
    }

    #[test]
    fn adaptive_never_evicts_cpu_lines_on_io_fill() {
        let mut llc = tiny_llc(DdioMode::adaptive());
        let ways = llc.geometry().ways();
        let addrs = conflicting_addrs(&llc, PhysAddr::new(0), 2 * ways);
        // Fill the CPU partition.
        for &a in &addrs[..ways] {
            llc.access(a, AccessKind::CpuRead, 0);
        }
        // Hammer the set with I/O fills.
        for (i, &a) in addrs[ways..].iter().enumerate() {
            let out = llc.access(a, AccessKind::IoWrite, i as Cycles);
            assert!(
                !out.evicted_cpu,
                "adaptive mode must never displace CPU lines"
            );
        }
        assert_eq!(llc.stats().io_evicted_cpu, 0);
    }

    #[test]
    fn adaptive_grows_partition_under_sustained_io() {
        let cfg = AdaptiveConfig {
            period: 10,
            t_high: 2,
            t_low: 1,
            min_io_lines: 1,
            max_io_lines: 3,
        };
        let mut llc = tiny_llc(DdioMode::Adaptive(cfg));
        let addrs = conflicting_addrs(&llc, PhysAddr::new(0), 6);
        let ss = llc.locate(addrs[0]);
        assert_eq!(llc.io_partition_limit(ss), 1);
        // Sustained I/O activity across several periods grows the limit.
        let mut now = 0;
        for round in 0..20 {
            for &a in &addrs {
                llc.access(a, AccessKind::IoWrite, now);
                now += 3;
            }
            let _ = round;
        }
        assert!(
            llc.io_partition_limit(ss) > 1,
            "partition should have grown"
        );
        assert!(llc.io_partition_limit(ss) <= 3);
    }

    #[test]
    fn adaptive_shrinks_partition_when_idle() {
        let cfg = AdaptiveConfig {
            period: 10,
            t_high: 2,
            t_low: 1,
            min_io_lines: 1,
            max_io_lines: 3,
        };
        let mut llc = tiny_llc(DdioMode::Adaptive(cfg));
        let addrs = conflicting_addrs(&llc, PhysAddr::new(0), 6);
        let ss = llc.locate(addrs[0]);
        let mut now = 0;
        for _ in 0..20 {
            for &a in &addrs {
                llc.access(a, AccessKind::IoWrite, now);
                now += 3;
            }
        }
        assert!(llc.io_partition_limit(ss) > 1);
        // Standing I/O lines keep the partition grown (presence
        // semantics); once they leave the cache and I/O stays idle, the
        // partition shrinks back to the floor. CPU traffic in a
        // different set keeps the clock moving so adaptation fires.
        llc.flush_all();
        let other = PhysAddr::new(0x40);
        for i in 0..50u64 {
            llc.access(other, AccessKind::CpuRead, now + i * 10);
        }
        assert_eq!(
            llc.io_partition_limit(ss),
            1,
            "partition should shrink back"
        );
    }

    #[test]
    fn adaptive_shrink_below_occupancy_evicts_surplus() {
        // The boundary-shrink clamp: grow the partition to 3 under heavy
        // traffic, keep 3 I/O lines resident, then go idle with
        // `t_low = 4` so the presence floor (3) is *below* the shrink
        // threshold. The boundary steps down beneath the standing
        // occupancy, and the surplus lines must be displaced eagerly
        // (with writebacks — DDIO lines are dirty) so occupancy never
        // exceeds the clamped boundary.
        let cfg = AdaptiveConfig {
            period: 10,
            t_high: 4,
            t_low: 4,
            min_io_lines: 1,
            max_io_lines: 3,
        };
        let mut llc = tiny_llc(DdioMode::Adaptive(cfg));
        let addrs = conflicting_addrs(&llc, PhysAddr::new(0), 8);
        let ss = llc.locate(addrs[0]);
        let mut now = 0;
        while llc.io_partition_limit(ss) < 3 {
            for &a in &addrs[..6] {
                llc.access(a, AccessKind::IoWrite, now);
                now += 1;
            }
        }
        // Refill the grown partition so occupancy == 3.
        for &a in &addrs[..3] {
            llc.access(a, AccessKind::IoWrite, now);
            now += 1;
        }
        assert_eq!(llc.domain_count(ss, Domain::Io), 3);
        let wb_before = llc.stats().writebacks;
        // Idle periods: ticks in another set drive adaptation. The
        // boundary steps down one line per period; each step displaces a
        // surplus resident I/O line.
        let other = PhysAddr::new(0x40);
        for i in 0..80u64 {
            llc.access(other, AccessKind::CpuRead, now + i * 10);
        }
        let limit = llc.io_partition_limit(ss);
        assert_eq!(
            limit, 1,
            "partition should have shrunk to the floor, got {limit}"
        );
        assert!(
            llc.domain_count(ss, Domain::Io) <= limit,
            "occupancy must not exceed the shrunk boundary"
        );
        assert!(
            llc.stats().partition_invalidations >= 2,
            "surplus lines are displaced eagerly"
        );
        assert!(
            llc.stats().writebacks > wb_before,
            "dirty DDIO lines write back"
        );
    }

    #[test]
    fn writebacks_counted_on_dirty_eviction() {
        let mut llc = tiny_llc(DdioMode::enabled());
        let ways = llc.geometry().ways();
        let addrs = conflicting_addrs(&llc, PhysAddr::new(0), ways + 1);
        for &a in &addrs[..ways] {
            llc.access(a, AccessKind::CpuWrite, 0); // dirty lines
        }
        let out = llc.access(addrs[ways], AccessKind::CpuRead, 0);
        assert_eq!(out.dram_writes, 1, "dirty LRU line must write back");
        assert_eq!(llc.stats().writebacks, 1);
    }

    #[test]
    fn io_read_does_not_allocate() {
        let mut llc = tiny_llc(DdioMode::enabled());
        let a = PhysAddr::new(0xc000);
        let out = llc.access(a, AccessKind::IoRead, 0);
        assert!(!out.hit);
        assert_eq!(out.dram_reads, 1);
        assert!(!llc.contains(a));
    }

    #[test]
    fn flush_all_empties_cache_and_reports_writebacks() {
        let mut llc = tiny_llc(DdioMode::enabled());
        let a = PhysAddr::new(0x1000);
        llc.access(a, AccessKind::CpuWrite, 0);
        assert_eq!(llc.flush_all(), 1, "one dirty line flushed");
        assert!(!llc.contains(a));
        assert_eq!(llc.stats().writebacks, 1);
    }

    #[test]
    fn access_batch_matches_scalar_accesses() {
        let ops: Vec<(PhysAddr, AccessKind)> = (0..200u64)
            .map(|i| {
                let kind = match i % 4 {
                    0 => AccessKind::IoWrite,
                    1 => AccessKind::CpuWrite,
                    2 => AccessKind::IoRead,
                    _ => AccessKind::CpuRead,
                };
                (PhysAddr::new((i % 37) * 0x1040), kind)
            })
            .collect();
        let mut scalar = tiny_llc(DdioMode::enabled());
        let mut agg = BatchOutcome::default();
        for &(a, k) in &ops {
            agg.absorb(scalar.access(a, k, 5));
        }
        let mut batched = tiny_llc(DdioMode::enabled());
        let got = batched.access_batch(&ops, 5);
        assert_eq!(got, agg);
        assert_eq!(batched.stats(), scalar.stats());
        for &(a, _) in &ops {
            assert_eq!(batched.contains(a), scalar.contains(a));
        }
    }

    #[test]
    fn locate_agrees_with_geometry_and_hash() {
        let llc = tiny_llc(DdioMode::enabled());
        let a = PhysAddr::new(0x1_2340);
        let ss = llc.locate(a);
        assert_eq!(ss.set, llc.geometry().set_index(a));
        assert_eq!(ss.slice, llc.slice_hash().slice_of(a));
    }
}
