//! Main-memory traffic accounting.
//!
//! Figure 15 of the paper compares *normalized memory read/write traffic*
//! of No-DDIO vs DDIO vs adaptive partitioning; these counters are what
//! that experiment reads out.

/// Read/write traffic to main memory, in cache-line-sized transfers.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct MemoryStats {
    /// Lines read from DRAM (demand fills and DMA reads).
    pub reads: u64,
    /// Lines written to DRAM (writebacks and non-DDIO DMA writes).
    pub writes: u64,
}

impl MemoryStats {
    /// All counters zero.
    pub fn new() -> Self {
        MemoryStats::default()
    }

    /// Total transfers in either direction.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let m = MemoryStats {
            reads: 3,
            writes: 4,
        };
        assert_eq!(m.total(), 7);
    }
}
