//! The batched cache-op intermediate representation (the op-stream IR).
//!
//! Every replay path in the reproduction — synthetic traces, the NIC
//! driver's receive path, the spy's prime/probe walks, the defense
//! workloads — ultimately issues the same thing: a stream of cache
//! accesses, sometimes separated by pure clock advances (driver
//! overheads, compute gaps). [`CacheOp`] is that stream's record type;
//! producers *emit* ops through the [`OpSink`] trait and consumers
//! replay them through [`crate::Hierarchy::run_ops`] /
//! [`crate::Hierarchy::run_trace`] (clock-advancing) or
//! [`crate::SlicedCache::access_batch`] (clockless).
//!
//! The IR exists so one engine serves everybody: a producer that emits
//! into an [`OpBuffer`] and replays the batch gets the slice-sharded
//! fast path for free, while the *same* emit code pointed at a
//! [`crate::Hierarchy`] (which implements [`OpSink`] by applying each
//! op immediately) is the per-access equivalence oracle — byte-identical
//! results, per-access latencies available mid-stream.
//!
//! ## Determinism contract
//!
//! A [`CacheOp::lead`] never changes cache behaviour — hits, evictions,
//! RNG draws and the adaptive defense's per-slice access-count clock
//! all depend only on the `(addr, kind)` stream. Leads only move the
//! cycle clock, and the clock moved over a replay is
//! `sum(leads) + sum(latencies) + trailing advance`, which is
//! order-independent — the reason a batch with leads can still shard
//! by slice and stay byte-identical to the sequential walk.

use crate::addr::PhysAddr;
use crate::fault;
use crate::llc::AccessKind;
use crate::Cycles;

/// Workspace-wide cap on how many ops a replay scratch batch may hold
/// before it must flush: 64 Ki ops.
///
/// Consumers that accumulate op batches of unbounded logical length —
/// the test bed's burst windows, the defense workloads' replay chunks —
/// size against this one constant so their scratch memory stays bounded
/// (a few MiB) and their flush boundaries agree. Flush boundaries are
/// *not* observable (the determinism contract makes a split batch
/// byte-identical to an unsplit one); the cap only bounds memory.
pub const OP_SCRATCH_CAP: u64 = 1 << 16;

/// One cache operation in the op-stream IR: an address, an access kind,
/// and the clock lead that separates it from the previous op.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct CacheOp {
    /// Physical address of the line accessed.
    pub addr: PhysAddr,
    /// What kind of access this is.
    pub kind: AccessKind,
    /// Cycles the clock advances *before* this access issues — driver
    /// per-packet overheads, compute gaps, defense costs. Zero for
    /// back-to-back streams. Leads never affect cache behaviour (see
    /// the module-level determinism contract).
    pub lead: Cycles,
}

impl CacheOp {
    /// An op with no lead.
    #[inline]
    pub fn new(addr: PhysAddr, kind: AccessKind) -> Self {
        CacheOp {
            addr,
            kind,
            lead: 0,
        }
    }

    /// A CPU load.
    #[inline]
    pub fn read(addr: PhysAddr) -> Self {
        CacheOp::new(addr, AccessKind::CpuRead)
    }

    /// A CPU store.
    #[inline]
    pub fn write(addr: PhysAddr) -> Self {
        CacheOp::new(addr, AccessKind::CpuWrite)
    }

    /// A DMA write from an I/O device (a packet block arriving).
    #[inline]
    pub fn io_write(addr: PhysAddr) -> Self {
        CacheOp::new(addr, AccessKind::IoWrite)
    }

    /// A DMA read by an I/O device (descriptor fetch, transmit).
    #[inline]
    pub fn io_read(addr: PhysAddr) -> Self {
        CacheOp::new(addr, AccessKind::IoRead)
    }

    /// The same op preceded by a `lead`-cycle clock advance (builder
    /// style; adds to any lead already present).
    #[inline]
    #[must_use]
    pub fn after(mut self, lead: Cycles) -> Self {
        self.lead += lead;
        self
    }
}

impl From<(PhysAddr, AccessKind)> for CacheOp {
    fn from((addr, kind): (PhysAddr, AccessKind)) -> Self {
        CacheOp::new(addr, kind)
    }
}

/// Something cache ops can be emitted into.
///
/// Producers (the NIC driver's frame decomposition, the spy's
/// prime/probe walks, workload inner loops) are written once against
/// this trait; pointing them at an [`OpBuffer`] batches for the sharded
/// engine, pointing them at a [`crate::Hierarchy`] replays per access —
/// the equivalence oracle, and the path to take when per-access
/// latencies are needed mid-stream.
pub trait OpSink {
    /// Accepts one op (any pending [`OpSink::advance`] becomes its
    /// lead).
    fn op(&mut self, op: CacheOp);

    /// Advances the clock by `cycles` before the next op issues (or as
    /// a trailing advance if no op follows).
    fn advance(&mut self, cycles: Cycles);
}

/// A reusable op batch: records emitted ops (folding [`OpSink::advance`]
/// calls into the next op's [`CacheOp::lead`]) for one
/// [`crate::Hierarchy::run_ops`] replay.
///
/// Producers carry one of these across batches and [`OpBuffer::clear`]
/// between them — capacity is preserved, so steady-state emission
/// allocates nothing (the `TraceBins` pattern). An advance with no
/// following op is kept as the [`OpBuffer::trailing`] advance and
/// applied by `run_ops` after the last access.
///
/// ```
/// use pc_cache::{CacheGeometry, CacheOp, DdioMode, Hierarchy, OpBuffer, OpSink, PhysAddr};
/// let mut h = Hierarchy::new(CacheGeometry::tiny(), DdioMode::enabled());
/// let mut buf = OpBuffer::new();
/// buf.op(CacheOp::io_write(PhysAddr::new(0x2000)));
/// buf.advance(300); // driver overhead before the header read
/// buf.op(CacheOp::read(PhysAddr::new(0x2000)));
/// let sum = h.run_ops(&buf);
/// assert_eq!(sum.accesses, 2);
/// assert_eq!(sum.cycles, h.now(), "leads and latencies both advance the clock");
/// ```
#[derive(Clone, Debug, Default)]
pub struct OpBuffer {
    ops: Vec<CacheOp>,
    pending: Cycles,
}

impl OpBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        OpBuffer::default()
    }

    /// Clears ops and the trailing advance, keeping capacity.
    pub fn clear(&mut self) {
        self.ops.clear();
        self.pending = 0;
    }

    /// The recorded ops, in emission order.
    pub fn ops(&self) -> &[CacheOp] {
        &self.ops
    }

    /// Cycles of advance emitted after the last op (applied by
    /// [`crate::Hierarchy::run_ops`] once the ops have replayed).
    pub fn trailing(&self) -> Cycles {
        self.pending
    }

    /// Number of recorded ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when no ops are recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl OpSink for OpBuffer {
    #[inline]
    fn op(&mut self, mut op: CacheOp) {
        // Fault site `corrupted-lead`: buffered producers skew keyed
        // ops' leads, violating the contract that a batch's clock
        // motion equals the per-access walk's.
        if fault::fires_keyed(fault::FaultSite::CorruptedLead, op.addr.raw()) {
            op.lead += 13;
        }
        // Most ops have no pending advance; keep the common path to a
        // predictable branch and a push.
        if self.pending != 0 {
            op.lead += self.pending;
            self.pending = 0;
        }
        self.ops.push(op);
    }

    #[inline]
    fn advance(&mut self, cycles: Cycles) {
        self.pending += cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_folds_into_next_op_lead() {
        let mut buf = OpBuffer::new();
        buf.advance(100);
        buf.advance(50);
        buf.op(CacheOp::read(PhysAddr::new(0x40)));
        buf.op(CacheOp::io_write(PhysAddr::new(0x80)).after(7));
        buf.advance(9);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.ops()[0].lead, 150);
        assert_eq!(buf.ops()[1].lead, 7);
        assert_eq!(buf.trailing(), 9);
    }

    #[test]
    fn clear_resets_ops_and_trailing_but_keeps_capacity() {
        let mut buf = OpBuffer::new();
        for i in 0..64u64 {
            buf.op(CacheOp::write(PhysAddr::new(i * 64)));
        }
        buf.advance(5);
        let cap = buf.ops.capacity();
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.trailing(), 0);
        assert_eq!(buf.ops.capacity(), cap);
    }

    #[test]
    fn constructors_set_kind_and_lead() {
        let a = PhysAddr::new(0x1000);
        assert_eq!(CacheOp::read(a).kind, AccessKind::CpuRead);
        assert_eq!(CacheOp::write(a).kind, AccessKind::CpuWrite);
        assert_eq!(CacheOp::io_write(a).kind, AccessKind::IoWrite);
        assert_eq!(CacheOp::io_read(a).kind, AccessKind::IoRead);
        assert_eq!(CacheOp::read(a).lead, 0);
        assert_eq!(CacheOp::read(a).after(3).after(4).lead, 7);
        let from: CacheOp = (a, AccessKind::IoRead).into();
        assert_eq!(from, CacheOp::io_read(a));
    }
}
