//! The batched cache-op intermediate representation (the op-stream IR).
//!
//! Every replay path in the reproduction — synthetic traces, the NIC
//! driver's receive path, the spy's prime/probe walks, the defense
//! workloads — ultimately issues the same thing: a stream of cache
//! accesses, sometimes separated by pure clock advances (driver
//! overheads, compute gaps). [`CacheOp`] is that stream's record type;
//! producers *emit* ops through the [`OpSink`] trait and consumers
//! replay them through [`crate::Hierarchy::run_ops`] /
//! [`crate::Hierarchy::run_trace`] (clock-advancing) or
//! [`crate::SlicedCache::access_batch`] (clockless).
//!
//! The IR exists so one engine serves everybody: a producer that emits
//! into an [`OpBuffer`] and replays the batch gets the slice-sharded
//! fast path for free, while the *same* emit code pointed at a
//! [`crate::Hierarchy`] (which implements [`OpSink`] by applying each
//! op immediately) is the per-access equivalence oracle — byte-identical
//! results, per-access latencies available mid-stream.
//!
//! ## Determinism contract
//!
//! A [`CacheOp::lead`] never changes cache behaviour — hits, evictions,
//! RNG draws and the adaptive defense's per-slice access-count clock
//! all depend only on the `(addr, kind)` stream. Leads only move the
//! cycle clock, and the clock moved over a replay is
//! `sum(leads) + sum(latencies) + trailing advance`, which is
//! order-independent — the reason a batch with leads can still shard
//! by slice and stay byte-identical to the sequential walk.
//!
//! ## The packed 8-byte batch layout
//!
//! [`CacheOp`] is the *decoded* record — 24 bytes of `{addr, kind,
//! lead}`. [`OpBuffer`] does not store it: each recorded op packs into
//! one `u64` word, so a 64 Ki-op burst window costs 512 KiB of scratch
//! bandwidth instead of 1.5 MiB:
//!
//! ```text
//! bit 63                                  6 5   4 3        0
//!     ├── addr line bits (addr & !0x3F) ──┼ kind ┼ lead code┤
//! ```
//!
//! * **Address** — the full 58 line-granule bits, in their natural
//!   position. The 6 block-offset bits are dropped: nothing a replay
//!   consumes survives them (set index and tag shift them off, the
//!   slice-hash masks are zero below bit 6 — pinned by
//!   `packed_ops_quantize_addresses_to_lines`).
//! * **Kind** — 2 bits, the four [`AccessKind`] variants.
//! * **Lead code** — 4 bits: `0..=14` is the lead itself (most ops are
//!   back-to-back, lead 0); `15` escapes to a side channel, an ordered
//!   `(op index, lead)` list carried alongside the words for the rare
//!   large leads (per-frame driver overheads, defense costs). The
//!   decode iterator walks the side channel with a cursor, so decoding
//!   stays a mask and a shift per op.

use crate::addr::PhysAddr;
use crate::fault;
use crate::llc::AccessKind;
use crate::Cycles;

/// Workspace-wide cap on how many ops a replay scratch batch may hold
/// before it must flush: 64 Ki ops.
///
/// Consumers that accumulate op batches of unbounded logical length —
/// the test bed's burst windows, the defense workloads' replay chunks —
/// size against this one constant so their scratch memory stays bounded
/// (a few MiB) and their flush boundaries agree. Flush boundaries are
/// *not* observable (the determinism contract makes a split batch
/// byte-identical to an unsplit one); the cap only bounds memory.
pub const OP_SCRATCH_CAP: u64 = 1 << 16;

/// One cache operation in the op-stream IR: an address, an access kind,
/// and the clock lead that separates it from the previous op.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct CacheOp {
    /// Physical address of the line accessed.
    pub addr: PhysAddr,
    /// What kind of access this is.
    pub kind: AccessKind,
    /// Cycles the clock advances *before* this access issues — driver
    /// per-packet overheads, compute gaps, defense costs. Zero for
    /// back-to-back streams. Leads never affect cache behaviour (see
    /// the module-level determinism contract).
    pub lead: Cycles,
}

impl CacheOp {
    /// An op with no lead.
    #[inline]
    pub fn new(addr: PhysAddr, kind: AccessKind) -> Self {
        CacheOp {
            addr,
            kind,
            lead: 0,
        }
    }

    /// A CPU load.
    #[inline]
    pub fn read(addr: PhysAddr) -> Self {
        CacheOp::new(addr, AccessKind::CpuRead)
    }

    /// A CPU store.
    #[inline]
    pub fn write(addr: PhysAddr) -> Self {
        CacheOp::new(addr, AccessKind::CpuWrite)
    }

    /// A DMA write from an I/O device (a packet block arriving).
    #[inline]
    pub fn io_write(addr: PhysAddr) -> Self {
        CacheOp::new(addr, AccessKind::IoWrite)
    }

    /// A DMA read by an I/O device (descriptor fetch, transmit).
    #[inline]
    pub fn io_read(addr: PhysAddr) -> Self {
        CacheOp::new(addr, AccessKind::IoRead)
    }

    /// The same op preceded by a `lead`-cycle clock advance (builder
    /// style; adds to any lead already present).
    #[inline]
    #[must_use]
    pub fn after(mut self, lead: Cycles) -> Self {
        self.lead += lead;
        self
    }
}

impl From<(PhysAddr, AccessKind)> for CacheOp {
    fn from((addr, kind): (PhysAddr, AccessKind)) -> Self {
        CacheOp::new(addr, kind)
    }
}

// ---- the packed 8-byte word (see the module docs) --------------------

/// Bits of the inline lead code.
const LEAD_BITS: u32 = 4;
/// Lead code marking an escaped (side-channel) lead.
const LEAD_ESCAPE: u64 = (1 << LEAD_BITS) - 1;
/// Largest lead stored inline.
const LEAD_INLINE_MAX: Cycles = LEAD_ESCAPE - 1;
/// Shift of the 2-bit kind field.
const KIND_SHIFT: u32 = LEAD_BITS;
/// Mask selecting the address line bits of a packed word.
const ADDR_MASK: u64 = !((1 << (KIND_SHIFT + 2)) - 1);

#[inline]
fn kind_code(kind: AccessKind) -> u64 {
    match kind {
        AccessKind::CpuRead => 0,
        AccessKind::CpuWrite => 1,
        AccessKind::IoWrite => 2,
        AccessKind::IoRead => 3,
    }
}

#[inline]
fn code_kind(code: u64) -> AccessKind {
    match code & 0x3 {
        0 => AccessKind::CpuRead,
        1 => AccessKind::CpuWrite,
        2 => AccessKind::IoWrite,
        _ => AccessKind::IoRead,
    }
}

const _: () = assert!(
    ADDR_MASK == !0x3F,
    "packed layout must drop exactly the 6 block-offset bits"
);

/// Something cache ops can be emitted into.
///
/// Producers (the NIC driver's frame decomposition, the spy's
/// prime/probe walks, workload inner loops) are written once against
/// this trait; pointing them at an [`OpBuffer`] batches for the sharded
/// engine, pointing them at a [`crate::Hierarchy`] replays per access —
/// the equivalence oracle, and the path to take when per-access
/// latencies are needed mid-stream.
pub trait OpSink {
    /// Accepts one op (any pending [`OpSink::advance`] becomes its
    /// lead).
    fn op(&mut self, op: CacheOp);

    /// Advances the clock by `cycles` before the next op issues (or as
    /// a trailing advance if no op follows).
    fn advance(&mut self, cycles: Cycles);
}

/// A reusable op batch: records emitted ops (folding [`OpSink::advance`]
/// calls into the next op's [`CacheOp::lead`]) for one
/// [`crate::Hierarchy::run_ops`] replay.
///
/// Ops are stored packed — one 8-byte word each, large leads escaped to
/// an ordered side channel (see the module docs) — and decoded back to
/// [`CacheOp`]s by [`OpBuffer::iter`]. Packing quantizes addresses to
/// line granularity, which is invisible to every replay consumer (set
/// index, tag and slice hash all ignore the block offset).
///
/// Producers carry one of these across batches and [`OpBuffer::clear`]
/// between them — capacity is preserved, so steady-state emission
/// allocates nothing (the `TraceBins` pattern). An advance with no
/// following op is kept as the [`OpBuffer::trailing`] advance and
/// applied by `run_ops` after the last access.
///
/// ```
/// use pc_cache::{CacheGeometry, CacheOp, DdioMode, Hierarchy, OpBuffer, OpSink, PhysAddr};
/// let mut h = Hierarchy::new(CacheGeometry::tiny(), DdioMode::enabled());
/// let mut buf = OpBuffer::new();
/// buf.op(CacheOp::io_write(PhysAddr::new(0x2000)));
/// buf.advance(300); // driver overhead before the header read
/// buf.op(CacheOp::read(PhysAddr::new(0x2000)));
/// let sum = h.run_ops(&buf);
/// assert_eq!(sum.accesses, 2);
/// assert_eq!(sum.cycles, h.now(), "leads and latencies both advance the clock");
/// ```
#[derive(Clone, Debug, Default)]
pub struct OpBuffer {
    /// Packed words, one per op (module-docs layout).
    words: Vec<u64>,
    /// Escaped leads: `(op index, lead)`, ascending in op index.
    long_leads: Vec<(u32, Cycles)>,
    pending: Cycles,
    /// Segment marks: `(first op index, carry)`, ascending in op index.
    /// The carry is the pending advance captured when the mark was
    /// placed — cycles that belong to the *closing* (previous) segment
    /// (see [`OpBuffer::mark_segment`]).
    seg_marks: Vec<(u32, Cycles)>,
    /// Sum of all mark carries, so the unsegmented replays can spend
    /// them without walking the marks.
    carry_sum: Cycles,
}

impl OpBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        OpBuffer::default()
    }

    /// Clears ops, segment marks and the trailing advance, keeping
    /// capacity.
    pub fn clear(&mut self) {
        self.words.clear();
        self.long_leads.clear();
        self.seg_marks.clear();
        self.carry_sum = 0;
        self.pending = 0;
    }

    /// Opens a new segment at the current op position.
    ///
    /// Any pending advance is captured as the mark's *carry* and
    /// attributed to the segment being closed — it was emitted after
    /// that segment's last op (a trailing defense cost, say), so its
    /// cycles belong to the previous segment's subtotal, not the new
    /// one's. Producers call this immediately before the first op of
    /// each segment; a segmented replay
    /// ([`crate::Hierarchy::run_ops_segmented`]) then reports one cycle
    /// subtotal per mark, in mark order, summing to exactly the
    /// unsegmented replay's clock motion.
    pub fn mark_segment(&mut self) {
        if self.seg_marks.is_empty() {
            debug_assert_eq!(
                self.pending, 0,
                "first segment mark must not swallow a pre-batch advance"
            );
        }
        let carry = std::mem::take(&mut self.pending);
        self.carry_sum += carry;
        self.seg_marks.push((self.words.len() as u32, carry));
    }

    /// Total advance cycles captured as mark carries (zero for an
    /// unmarked buffer). The unsegmented replays spend these alongside
    /// the trailing advance, so marking segments never changes what a
    /// replay does — marks are pure reporting.
    pub(crate) fn carry_total(&self) -> Cycles {
        self.carry_sum
    }

    /// Number of segment marks (zero for an unsegmented buffer).
    pub fn segments(&self) -> usize {
        self.seg_marks.len()
    }

    /// Per-segment spans, in mark order: `(start op, end op, tail)`.
    ///
    /// `tail` is the advance attributed to the segment *after* its ops:
    /// the next mark's carry, or [`OpBuffer::trailing`] for the last
    /// segment. Empty when the buffer has no marks.
    pub(crate) fn segment_spans(&self) -> Vec<(usize, usize, Cycles)> {
        let n = self.seg_marks.len();
        let mut spans = Vec::with_capacity(n);
        for k in 0..n {
            let start = self.seg_marks[k].0 as usize;
            let (end, tail) = match self.seg_marks.get(k + 1) {
                Some(&(next_start, carry)) => (next_start as usize, carry),
                None => (self.words.len(), self.pending),
            };
            spans.push((start, end, tail));
        }
        spans
    }

    /// Decodes the recorded ops, in emission order. Addresses come back
    /// quantized to their line base.
    pub fn iter(&self) -> OpIter<'_> {
        OpIter {
            words: &self.words,
            long_leads: &self.long_leads,
            next: 0,
            cursor: 0,
        }
    }

    /// Cycles of advance emitted after the last op (applied by
    /// [`crate::Hierarchy::run_ops`] once the ops have replayed).
    pub fn trailing(&self) -> Cycles {
        self.pending
    }

    /// Number of recorded ops.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` when no ops are recorded.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

impl<'a> IntoIterator for &'a OpBuffer {
    type Item = CacheOp;
    type IntoIter = OpIter<'a>;

    fn into_iter(self) -> OpIter<'a> {
        self.iter()
    }
}

/// Decoding iterator over an [`OpBuffer`]'s packed ops (see
/// [`OpBuffer::iter`]). `ExactSizeIterator`, so replay dispatch can
/// size scratch without a separate length pass.
#[derive(Clone, Debug)]
pub struct OpIter<'a> {
    words: &'a [u64],
    long_leads: &'a [(u32, Cycles)],
    next: usize,
    cursor: usize,
}

impl Iterator for OpIter<'_> {
    type Item = CacheOp;

    #[inline]
    fn next(&mut self) -> Option<CacheOp> {
        let &word = self.words.get(self.next)?;
        let code = word & LEAD_ESCAPE;
        let lead = if code < LEAD_ESCAPE {
            code
        } else {
            let (index, lead) = self.long_leads[self.cursor];
            debug_assert_eq!(index as usize, self.next, "escape cursor in sync");
            self.cursor += 1;
            // Fault site `truncated-lead`: the packed decode clips a
            // keyed escaped lead to the largest inline value, so the
            // buffered batch's clock falls short of the per-access
            // walk's. Lexically buffered-decode-only — the streaming
            // and oracle engines never decode a packed word.
            if fault::fires_keyed(fault::FaultSite::TruncatedLead, word) {
                LEAD_INLINE_MAX
            } else {
                lead
            }
        };
        self.next += 1;
        Some(CacheOp {
            addr: PhysAddr::new(word & ADDR_MASK),
            kind: code_kind(word >> KIND_SHIFT),
            lead,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.words.len() - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for OpIter<'_> {}

impl OpSink for OpBuffer {
    #[inline]
    fn op(&mut self, mut op: CacheOp) {
        // Fault site `corrupted-lead`: buffered producers skew keyed
        // ops' leads, violating the contract that a batch's clock
        // motion equals the per-access walk's. Keyed on the raw
        // (pre-quantization) address, exactly as before packing.
        if fault::fires_keyed(fault::FaultSite::CorruptedLead, op.addr.raw()) {
            op.lead += 13;
        }
        // Most ops have no pending advance; keep the common path to a
        // predictable branch and a push.
        if self.pending != 0 {
            op.lead += self.pending;
            self.pending = 0;
        }
        let mut word = (op.addr.raw() & ADDR_MASK) | (kind_code(op.kind) << KIND_SHIFT);
        if op.lead <= LEAD_INLINE_MAX {
            word |= op.lead;
        } else {
            word |= LEAD_ESCAPE;
            self.long_leads.push((self.words.len() as u32, op.lead));
        }
        self.words.push(word);
    }

    #[inline]
    fn advance(&mut self, cycles: Cycles) {
        self.pending += cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_folds_into_next_op_lead() {
        let mut buf = OpBuffer::new();
        buf.advance(100);
        buf.advance(50);
        buf.op(CacheOp::read(PhysAddr::new(0x40)));
        buf.op(CacheOp::io_write(PhysAddr::new(0x80)).after(7));
        buf.advance(9);
        assert_eq!(buf.len(), 2);
        let ops: Vec<CacheOp> = buf.iter().collect();
        assert_eq!(ops[0].lead, 150);
        assert_eq!(ops[1].lead, 7);
        assert_eq!(buf.trailing(), 9);
    }

    #[test]
    fn clear_resets_ops_and_trailing_but_keeps_capacity() {
        let mut buf = OpBuffer::new();
        for i in 0..64u64 {
            buf.op(CacheOp::write(PhysAddr::new(i * 64)).after(i * 7));
        }
        buf.advance(5);
        let cap = buf.words.capacity();
        let lead_cap = buf.long_leads.capacity();
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.trailing(), 0);
        assert_eq!(buf.words.capacity(), cap);
        assert_eq!(buf.long_leads.capacity(), lead_cap);
    }

    /// Packing drops exactly the 6 block-offset bits — nothing else.
    /// Set index, tag and slice hash all shift those bits away, so the
    /// quantization is invisible to replay (the slice-hash masks are
    /// pinned zero below bit 6 by `slicehash::low_six_bits_do_not_matter`).
    #[test]
    fn packed_ops_quantize_addresses_to_lines() {
        let mut buf = OpBuffer::new();
        buf.op(CacheOp::read(PhysAddr::new(0x1234_5678_9abc_def7)));
        let got = buf.iter().next().unwrap();
        assert_eq!(got.addr, PhysAddr::new(0x1234_5678_9abc_def7).line_base());
        assert_eq!(got.kind, AccessKind::CpuRead);
        assert_eq!(got.lead, 0);
    }

    /// Round trip across the whole lead range: 0..=14 encode inline,
    /// 15 and up take the escape side channel. Kind and line address
    /// survive either path.
    #[test]
    fn packed_round_trip_spans_the_escape_threshold() {
        let kinds = [
            AccessKind::CpuRead,
            AccessKind::CpuWrite,
            AccessKind::IoWrite,
            AccessKind::IoRead,
        ];
        let leads: [Cycles; 9] = [0, 1, 13, 14, 15, 16, 255, 65_536, u64::MAX >> 8];
        let mut buf = OpBuffer::new();
        let mut want = Vec::new();
        for (i, &lead) in leads.iter().enumerate() {
            let op = CacheOp::new(
                PhysAddr::new((i as u64 + 1) << 20 | 0x3F),
                kinds[i % kinds.len()],
            )
            .after(lead);
            want.push(CacheOp {
                addr: op.addr.line_base(),
                ..op
            });
            buf.op(op);
        }
        assert_eq!(
            buf.long_leads.len(),
            leads.iter().filter(|&&l| l > LEAD_INLINE_MAX).count(),
            "only leads above the inline max hit the side channel"
        );
        let got: Vec<CacheOp> = buf.iter().collect();
        assert_eq!(got, want);
        assert_eq!(buf.iter().len(), leads.len(), "ExactSizeIterator holds");
    }

    /// Folded `advance` cycles can push an otherwise-inline lead over
    /// the escape threshold; the decode must still see the folded sum.
    #[test]
    fn folded_advance_escapes_when_it_crosses_the_threshold() {
        let mut buf = OpBuffer::new();
        buf.advance(10);
        buf.op(CacheOp::io_read(PhysAddr::new(0x400)).after(10));
        assert_eq!(buf.long_leads.len(), 1);
        assert_eq!(buf.iter().next().unwrap().lead, 20);
    }

    /// Segment marks capture the pending advance as the *closing*
    /// segment's tail: a defense-cost advance emitted after frame k's
    /// ops lands in segment k's subtotal, exactly where the per-frame
    /// engine would have spent it.
    #[test]
    fn segment_marks_attribute_carries_to_the_closing_segment() {
        let mut buf = OpBuffer::new();
        buf.mark_segment();
        buf.op(CacheOp::io_write(PhysAddr::new(0x40)));
        buf.op(CacheOp::read(PhysAddr::new(0x40)));
        buf.advance(1_500); // frame 0's trailing defense cost
        buf.mark_segment();
        buf.op(CacheOp::io_write(PhysAddr::new(0x80)).after(300));
        buf.advance(7);
        assert_eq!(buf.segments(), 2);
        assert_eq!(
            buf.segment_spans(),
            vec![(0, 2, 1_500), (2, 3, 7)],
            "carry of mark k+1 is segment k's tail; trailing is the last tail"
        );
        // The carry was consumed by the mark, not folded into the next
        // op's lead.
        let ops: Vec<CacheOp> = buf.iter().collect();
        assert_eq!(ops[2].lead, 300);
        assert_eq!(buf.trailing(), 7);
        buf.clear();
        assert_eq!(buf.segments(), 0);
        assert!(buf.segment_spans().is_empty());
    }

    /// An empty segment (mark, no ops, mark) still gets a span, so a
    /// zero-op frame keeps its position in the reconstruction.
    #[test]
    fn empty_segments_keep_their_spans() {
        let mut buf = OpBuffer::new();
        buf.mark_segment();
        buf.mark_segment();
        buf.op(CacheOp::read(PhysAddr::new(0x40)));
        assert_eq!(buf.segment_spans(), vec![(0, 0, 0), (0, 1, 0)]);
    }

    #[test]
    fn constructors_set_kind_and_lead() {
        let a = PhysAddr::new(0x1000);
        assert_eq!(CacheOp::read(a).kind, AccessKind::CpuRead);
        assert_eq!(CacheOp::write(a).kind, AccessKind::CpuWrite);
        assert_eq!(CacheOp::io_write(a).kind, AccessKind::IoWrite);
        assert_eq!(CacheOp::io_read(a).kind, AccessKind::IoRead);
        assert_eq!(CacheOp::read(a).lead, 0);
        assert_eq!(CacheOp::read(a).after(3).after(4).lead, 7);
        let from: CacheOp = (a, AccessKind::IoRead).into();
        assert_eq!(from, CacheOp::io_read(a));
    }
}
