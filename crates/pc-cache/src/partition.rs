//! Configuration for the paper's adaptive I/O cache-partitioning defense
//! (§VII).
//!
//! The defense associates two counters with every LLC set:
//!
//! * `io_lines` — the size of the set's I/O partition (a saturating
//!   counter clamped to `[min_io_lines, max_io_lines]`, 1..=3 in the
//!   paper). I/O fills may only displace lines inside the I/O partition,
//!   so incoming packets can never evict a CPU (spy) line.
//! * `io_activity` — how much I/O traffic the set saw during the current
//!   adaptation period. Every `period` ticks of the owning slice's
//!   defense clock the boundary is re-evaluated: activity at or above
//!   `t_high` grows the I/O partition, activity below `t_low` shrinks
//!   it, and displaced lines are invalidated (with writeback if dirty).
//!
//! **Deviations from the paper, documented:**
//!
//! 1. *Events, not cycles.* The hardware proposal increments
//!    `io_activity` every cycle in which a valid I/O line is present in
//!    the set. Sampling 16 384 sets every cycle is infeasible in an
//!    event-driven simulator, so we count *I/O accesses to the set per
//!    period* instead. Both are monotone proxies for "sustained I/O
//!    traffic hits this set"; only the threshold units change.
//! 2. *A per-slice access-count period clock.* The period timer ticks
//!    once per access **presented to the owning slice**, not once per
//!    machine cycle. The cycle clock is a global, outcome-dependent
//!    quantity (each access's latency depends on every prior hit/miss
//!    across all slices), so a cycle-driven period would couple slices
//!    and pin adaptive traces to the sequential walk. The access-count
//!    clock is a pure function of the slice's own access stream — which
//!    makes a slice's adaptation schedule reconstructible during trace
//!    binning and lets adaptive traces shard across worker threads with
//!    byte-identical results. (Either clock only ever *samples* I/O
//!    pressure; the security property — I/O fills never displace CPU
//!    lines — is enforced on every fill and does not depend on the
//!    period at all.) `paper_defaults` rescales the paper's
//!    `p = 10 000` cycles by the modelled average access cost
//!    (~80–100 cycles) over the 8 slices to ≈16 accesses per slice.
//! 3. *Incremental re-evaluation, not a hardware sweep.* The paper's
//!    hardware re-evaluates every set's boundary each period — free in
//!    silicon, where 16 384 comparators fire in parallel, but the
//!    dominant cost of adaptive mode in software (a ~15× tax over plain
//!    DDIO before PR 8). The production engine therefore walks only a
//!    dirty-set worklist (sets with I/O activity this period, epoch-
//!    stamped for O(1) dedup) plus the still-active elevated sets,
//!    *parking* any elevated set whose just-finished evaluation proves
//!    the next one is a pure no-op. Skipped evaluations are exactly the
//!    no-ops — they move no boundary, evict nothing, draw no RNG and
//!    change no statistics — so the schedule of *observable* boundary
//!    moves is identical to the full sweep's, byte for byte. The
//!    [`crate::ReferenceCache`] oracle deliberately keeps the full scan
//!    (`reference.rs::adapt`), and `tests/incremental_eval.rs` pins the
//!    two against each other; the park-soundness condition itself is
//!    derived in `shard.rs::adapt`'s docs and in ARCHITECTURE.md's
//!    "Adaptive defense" section.
//!
//! # Displacement semantics at boundary moves
//!
//! When a period re-evaluation moves a set's I/O/CPU boundary, the
//! losing side's surplus lines are displaced **eagerly, at the
//! adaptation point** — never lazily on a later fill:
//!
//! * **Grow** (`io_limit` +1): CPU lines beyond the shrunken CPU quota
//!   are invalidated LRU-first, with a writeback if dirty, so a CPU fill
//!   can never observe more CPU lines than its quota permits.
//! * **Shrink** (`io_limit` −1): I/O lines beyond the new boundary are
//!   invalidated LRU-first (DDIO lines are dirty, so these normally
//!   write back). Occupancy therefore never exceeds the clamped
//!   boundary, even when the boundary steps below the standing I/O
//!   occupancy (`t_low` above the presence floor) — the case the
//!   `adaptive_shrink_below_occupancy_evicts_surplus` regression test
//!   pins down.
//!
//! Both directions count into `CacheStats::partition_invalidations` and
//! `CacheStats::writebacks`. Eager displacement matches the paper's
//! description of invalidating lines on partition resize, and it keeps
//! the security argument local: at every instant, I/O lines occupy at
//! most `io_limit` ways, so an I/O fill never has cause to touch a CPU
//! way.
//!
//! A set is re-evaluated **exactly once per period**, whether it got
//! there via the touched list (saw I/O this period) or the elevated
//! list (holds a grown partition). The original implementation cleared
//! the touched flags before deduplicating the elevated list against
//! them, so a set on both lists was evaluated twice — the second pass
//! read the freshly reset activity counter and moved the boundary a
//! spurious extra step per period. Fixed in `SlicedCache::adapt` (and
//! mirrored in the reference model).

/// Tuning knobs for [`crate::DdioMode::Adaptive`].
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct AdaptiveConfig {
    /// Adaptation period, in ticks of the owning slice's defense clock —
    /// one tick per access presented to that slice (`p` in the paper,
    /// rescaled from cycles; see the module docs).
    pub period: u64,
    /// Grow the I/O partition when a set's per-period I/O activity is at
    /// least this many accesses.
    pub t_high: u32,
    /// Shrink the I/O partition when activity is strictly below this.
    pub t_low: u32,
    /// Hard lower bound on the I/O partition size (paper: 1).
    pub min_io_lines: u8,
    /// Hard upper bound on the I/O partition size (paper: 3).
    pub max_io_lines: u8,
}

impl AdaptiveConfig {
    /// The paper's configuration: `p = 10k` cycles — ≈16 accesses per
    /// slice at the modelled access costs — partition ∈ `[1, 3]`.
    ///
    /// The paper's hardware increments a per-set counter every *cycle* a
    /// valid I/O line is present, so a set's partition grows within one
    /// period of the first DMA fill — before a second conflicting fill
    /// arrives. Our event-based proxy reproduces that timing by growing
    /// on *any* I/O activity in a period (`t_high = 1`) and shrinking
    /// after a fully idle period (`t_low = 1`, i.e. shrink when activity
    /// is 0). This keeps idle sets at a 1-line partition (19/20 ways for
    /// the CPU) while I/O-hot sets quickly reach DDIO's 2 or 3 ways —
    /// the combination behind the paper's twin results of "within 2 % of
    /// DDIO traffic" and "< 2.7 % throughput loss".
    pub fn paper_defaults() -> Self {
        AdaptiveConfig {
            period: 16,
            t_high: 1,
            t_low: 1,
            min_io_lines: 1,
            max_io_lines: 3,
        }
    }

    /// Validates invariants; called by the cache at construction.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`, `min_io_lines == 0`,
    /// `min_io_lines > max_io_lines`, or `t_low > t_high`.
    pub(crate) fn validate(&self, ways: usize) {
        assert!(self.period > 0, "adaptation period must be non-zero");
        assert!(
            self.min_io_lines > 0,
            "I/O partition must keep at least one line"
        );
        assert!(
            self.min_io_lines <= self.max_io_lines,
            "min_io_lines > max_io_lines"
        );
        assert!(self.t_low <= self.t_high, "t_low must not exceed t_high");
        assert!(
            (self.max_io_lines as usize) < ways,
            "I/O partition must leave room for CPU lines"
        );
    }
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid() {
        AdaptiveConfig::paper_defaults().validate(20);
    }

    #[test]
    #[should_panic(expected = "room for CPU lines")]
    fn partition_cannot_swallow_cache() {
        AdaptiveConfig {
            max_io_lines: 4,
            ..AdaptiveConfig::paper_defaults()
        }
        .validate(4);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn min_io_lines_nonzero() {
        AdaptiveConfig {
            min_io_lines: 0,
            ..AdaptiveConfig::paper_defaults()
        }
        .validate(20);
    }

    #[test]
    #[should_panic(expected = "t_low")]
    fn thresholds_ordered() {
        AdaptiveConfig {
            t_low: 5,
            t_high: 2,
            ..AdaptiveConfig::paper_defaults()
        }
        .validate(20);
    }
}
