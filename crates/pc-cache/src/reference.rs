//! The pre-SoA cache implementation, kept as an executable reference
//! model.
//!
//! [`ReferenceCache`] is the original storage layout behind
//! [`crate::SlicedCache`]: one heap-allocated `Vec<Option<Line>>` plus a
//! replacement-state object *per set*, with O(ways) rescans for every
//! domain-occupancy check. It exists for two reasons:
//!
//! 1. **Equivalence testing.** The SoA store must be observably
//!    indistinguishable from this model: same [`AccessOutcome`] per
//!    access, same statistics, same residency — for every mode, policy
//!    and seed. The property tests in `tests/soa_equivalence.rs` drive
//!    both implementations with identical random traces and assert
//!    exactly that.
//! 2. **Benchmark baseline.** The `cache_throughput` bench measures both
//!    layouts in the same process on the same traces, so the SoA
//!    speedup is re-measured (not asserted from stale numbers) on every
//!    machine the bench runs on.
//!
//! The model is *not* a fossil of old bugs: behavioral fixes applied to
//! the real cache (the adaptation-list deduplication, see
//! `src/partition.rs`) are mirrored here, because the reference defines
//! intended semantics, not historical accidents. Likewise the sharded
//! engine's per-slice contract — one RNG stream per slice (seeded with
//! [`pc_par::stream_seed`] in the `Slice` domain) and per-slice
//! adaptation timing/worklists — is
//! part of the intended semantics and is mirrored here, so the
//! equivalence tests hold the parallel engine to this model for every
//! policy, `Random` (RNG-consuming) included. Do not use this type
//! outside tests and benches — it is an order of magnitude slower on
//! large geometries.

use crate::addr::PhysAddr;
use crate::geometry::CacheGeometry;
use crate::llc::{AccessKind, AccessOutcome, DdioMode, SliceSet};
use crate::partition::AdaptiveConfig;
use crate::replacement::ReplacementPolicy;
use crate::set::Domain;
use crate::slicehash::SliceHash;
use crate::stats::CacheStats;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[derive(Copy, Clone, Debug)]
struct Line {
    tag: u64,
    dirty: bool,
    domain: Domain,
}

/// Per-set replacement state, exactly as the original implementation
/// kept it (separate per-set clocks included).
#[derive(Clone, Debug)]
enum ReplacementState {
    Lru { stamps: Vec<u64>, clock: u64 },
    TreePlru { bits: Vec<bool>, ways: usize },
    Random,
}

impl ReplacementState {
    fn new(policy: ReplacementPolicy, ways: usize) -> Self {
        match policy {
            ReplacementPolicy::Lru => ReplacementState::Lru {
                stamps: vec![0; ways],
                clock: 0,
            },
            ReplacementPolicy::TreePlru => {
                let leaves = ways.next_power_of_two();
                ReplacementState::TreePlru {
                    bits: vec![false; leaves.max(2)],
                    ways,
                }
            }
            ReplacementPolicy::Random => ReplacementState::Random,
        }
    }

    fn touch(&mut self, way: usize) {
        match self {
            ReplacementState::Lru { stamps, clock } => {
                *clock += 1;
                stamps[way] = *clock;
            }
            ReplacementState::TreePlru { bits, ways } => {
                let leaves = (*ways).next_power_of_two();
                let mut node = 1usize;
                let mut lo = 0usize;
                let mut hi = leaves;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if way < mid {
                        bits[node] = false;
                        hi = mid;
                        node *= 2;
                    } else {
                        bits[node] = true;
                        lo = mid;
                        node = node * 2 + 1;
                    }
                }
            }
            ReplacementState::Random => {}
        }
    }

    fn victim<F>(&self, ways: usize, rng: &mut SmallRng, eligible: F) -> Option<usize>
    where
        F: Fn(usize) -> bool,
    {
        match self {
            ReplacementState::Lru { stamps, .. } => (0..ways)
                .filter(|&w| eligible(w))
                .min_by_key(|&w| stamps[w]),
            ReplacementState::TreePlru { bits, .. } => {
                let leaves = ways.next_power_of_two();
                let mut node = 1usize;
                let mut lo = 0usize;
                let mut hi = leaves;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if bits[node] {
                        hi = mid;
                        node *= 2;
                    } else {
                        lo = mid;
                        node = node * 2 + 1;
                    }
                }
                let leaf = lo.min(ways - 1);
                if eligible(leaf) {
                    Some(leaf)
                } else {
                    (0..ways).find(|&w| eligible(w))
                }
            }
            ReplacementState::Random => {
                let candidates: Vec<usize> = (0..ways).filter(|&w| eligible(w)).collect();
                if candidates.is_empty() {
                    None
                } else {
                    Some(candidates[rng.gen_range(0..candidates.len())])
                }
            }
        }
    }
}

#[derive(Clone, Debug)]
struct CacheSet {
    lines: Vec<Option<Line>>,
    repl: ReplacementState,
    io_limit: u8,
    io_activity: u32,
    in_touched: bool,
    in_elevated: bool,
}

struct Evicted {
    dirty: bool,
    was_cpu: bool,
}

impl CacheSet {
    fn new(ways: usize, policy: ReplacementPolicy, io_limit: u8) -> Self {
        CacheSet {
            lines: vec![None; ways],
            repl: ReplacementState::new(policy, ways),
            io_limit,
            io_activity: 0,
            in_touched: false,
            in_elevated: false,
        }
    }

    fn ways(&self) -> usize {
        self.lines.len()
    }

    fn lookup(&self, tag: u64) -> Option<usize> {
        self.lines
            .iter()
            .position(|l| matches!(l, Some(line) if line.tag == tag))
    }

    fn count_domain(&self, domain: Domain) -> usize {
        self.lines
            .iter()
            .filter(|l| matches!(l, Some(line) if line.domain == domain))
            .count()
    }

    fn invalidate(&mut self, tag: u64) -> Option<bool> {
        let way = self.lookup(tag)?;
        let dirty = self.lines[way].map(|l| l.dirty).unwrap_or(false);
        self.lines[way] = None;
        Some(dirty)
    }

    fn invalidate_all(&mut self) -> usize {
        let dirty = self
            .lines
            .iter()
            .filter(|l| matches!(l, Some(line) if line.dirty))
            .count();
        for l in &mut self.lines {
            *l = None;
        }
        dirty
    }

    fn evict_lru_of_domain(&mut self, domain: Domain, rng: &mut SmallRng) -> Option<bool> {
        let way = self.repl.victim(
            self.lines.len(),
            rng,
            |w| matches!(&self.lines[w], Some(line) if line.domain == domain),
        )?;
        let dirty = self.lines[way].map(|l| l.dirty).unwrap_or(false);
        self.lines[way] = None;
        Some(dirty)
    }

    fn fill<F>(
        &mut self,
        tag: u64,
        domain: Domain,
        dirty: bool,
        rng: &mut SmallRng,
        eligible: F,
    ) -> Option<(usize, Option<Evicted>)>
    where
        F: Fn(Domain) -> bool,
    {
        if let Some(way) = self.lines.iter().position(|l| l.is_none()) {
            self.lines[way] = Some(Line { tag, dirty, domain });
            self.repl.touch(way);
            return Some((way, None));
        }
        self.fill_no_invalid(tag, domain, dirty, rng, eligible)
    }

    fn fill_no_invalid<F>(
        &mut self,
        tag: u64,
        domain: Domain,
        dirty: bool,
        rng: &mut SmallRng,
        eligible: F,
    ) -> Option<(usize, Option<Evicted>)>
    where
        F: Fn(Domain) -> bool,
    {
        let way = self.repl.victim(
            self.lines.len(),
            rng,
            |w| matches!(&self.lines[w], Some(line) if eligible(line.domain)),
        )?;
        let old = self.lines[way].expect("victim must be valid");
        self.lines[way] = Some(Line { tag, dirty, domain });
        self.repl.touch(way);
        Some((
            way,
            Some(Evicted {
                dirty: old.dirty,
                was_cpu: old.domain == Domain::Cpu,
            }),
        ))
    }
}

/// Per-slice control state: the slice's RNG stream, its access-count
/// defense clock and its adaptive defense bookkeeping (mirrors the
/// sharded engine's per-slice decoupling; worklists hold flat set
/// indices).
#[derive(Clone, Debug)]
struct SliceCtl {
    rng: SmallRng,
    clock: u64,
    adapt_last: u64,
    touched: Vec<usize>,
    elevated: Vec<usize>,
}

/// The original per-set-object LLC implementation (reference model).
///
/// See the module docs for why this exists; use [`crate::SlicedCache`]
/// for anything other than equivalence tests and baseline benchmarks.
#[derive(Clone, Debug)]
pub struct ReferenceCache {
    geom: CacheGeometry,
    hash: SliceHash,
    mode: DdioMode,
    sets: Vec<CacheSet>,
    ctl: Vec<SliceCtl>,
    stats: CacheStats,
}

impl ReferenceCache {
    /// Creates a reference cache with LRU replacement and the same
    /// default seed as [`crate::SlicedCache::new`].
    pub fn new(geom: CacheGeometry, mode: DdioMode) -> Self {
        ReferenceCache::with_policy_and_seed(geom, mode, ReplacementPolicy::Lru, 0x9e37_79b9)
    }

    /// Creates a reference cache with an explicit policy and seed.
    ///
    /// # Panics
    ///
    /// Same conditions as [`crate::SlicedCache::with_policy_and_seed`].
    pub fn with_policy_and_seed(
        geom: CacheGeometry,
        mode: DdioMode,
        policy: ReplacementPolicy,
        seed: u64,
    ) -> Self {
        let hash = SliceHash::for_slices(geom.slices() as u32);
        let initial_io_limit = match mode {
            DdioMode::Disabled => 0,
            DdioMode::Enabled { io_way_limit } => {
                assert!(io_way_limit > 0, "DDIO way limit must be non-zero");
                assert!(
                    (io_way_limit as usize) <= geom.ways(),
                    "DDIO way limit exceeds associativity"
                );
                io_way_limit
            }
            DdioMode::Adaptive(cfg) => {
                cfg.validate(geom.ways());
                cfg.min_io_lines
            }
        };
        let sets = (0..geom.total_sets())
            .map(|_| CacheSet::new(geom.ways(), policy, initial_io_limit))
            .collect();
        let ctl = (0..geom.slices())
            .map(|slice| SliceCtl {
                rng: SmallRng::seed_from_u64(pc_par::stream_seed(
                    seed,
                    pc_par::SeedDomain::Slice,
                    slice as u64,
                )),
                clock: 0,
                adapt_last: 0,
                touched: Vec::new(),
                elevated: Vec::new(),
            })
            .collect();
        ReferenceCache {
            geom,
            hash,
            mode,
            sets,
            ctl,
            stats: CacheStats::new(),
        }
    }

    /// The concrete (slice, set) an address maps to.
    pub fn locate(&self, addr: PhysAddr) -> SliceSet {
        SliceSet {
            slice: self.hash.slice_of(addr),
            set: self.geom.set_index(addr),
        }
    }

    fn flat_index(&self, ss: SliceSet) -> usize {
        ss.slice * self.geom.sets_per_slice() + ss.set
    }

    /// Whether `addr` is currently cached.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        let idx = self.flat_index(self.locate(addr));
        self.sets[idx].lookup(self.geom.tag(addr)).is_some()
    }

    /// Number of valid lines of `domain` in a concrete set.
    pub fn domain_count(&self, ss: SliceSet, domain: Domain) -> usize {
        self.sets[self.flat_index(ss)].count_domain(domain)
    }

    /// Current I/O partition size of a set.
    pub fn io_partition_limit(&self, ss: SliceSet) -> usize {
        self.sets[self.flat_index(ss)].io_limit as usize
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Invalidates the whole cache, returning the dirty writeback count.
    pub fn flush_all(&mut self) -> usize {
        let mut wb = 0usize;
        for set in &mut self.sets {
            wb += set.invalidate_all();
        }
        self.stats.writebacks += wb as u64;
        wb
    }

    /// Performs one access (original algorithm), ticking the owning
    /// slice's defense clock exactly as the sharded engine does.
    pub fn access(&mut self, addr: PhysAddr, kind: AccessKind) -> AccessOutcome {
        let ss = self.locate(addr);
        let idx = self.flat_index(ss);
        let tag = self.geom.tag(addr);
        self.ctl[ss.slice].clock += 1;

        let outcome = match kind {
            AccessKind::CpuRead | AccessKind::CpuWrite => self.cpu_access(idx, tag, kind),
            AccessKind::IoWrite => self.io_write(idx, tag),
            AccessKind::IoRead => self.io_read(idx, tag),
        };

        if kind == AccessKind::IoWrite {
            self.note_io_activity(idx);
        }
        if let DdioMode::Adaptive(cfg) = self.mode {
            let slice = ss.slice;
            if self.ctl[slice].clock - self.ctl[slice].adapt_last >= cfg.period {
                self.adapt(cfg, slice);
            }
        }
        outcome
    }

    fn cpu_access(&mut self, idx: usize, tag: u64, kind: AccessKind) -> AccessOutcome {
        let slice = idx / self.geom.sets_per_slice();
        let write = kind == AccessKind::CpuWrite;
        if let Some(way) = self.sets[idx].lookup(tag) {
            self.sets[idx].repl.touch(way);
            if write {
                if let Some(line) = self.sets[idx].lines[way].as_mut() {
                    line.dirty = true;
                }
            }
            self.stats.cpu_hits += 1;
            return AccessOutcome {
                hit: true,
                ..AccessOutcome::default()
            };
        }
        self.stats.cpu_misses += 1;
        let mut out = AccessOutcome {
            hit: false,
            dram_reads: 1,
            ..AccessOutcome::default()
        };

        let adaptive = matches!(self.mode, DdioMode::Adaptive(_));
        let set = &mut self.sets[idx];
        let filled = if adaptive {
            let cpu_quota = set.ways() - set.io_limit as usize;
            if set.count_domain(Domain::Cpu) < cpu_quota {
                set.fill(tag, Domain::Cpu, write, &mut self.ctl[slice].rng, |d| {
                    d == Domain::Cpu
                })
            } else {
                set.fill_no_invalid(tag, Domain::Cpu, write, &mut self.ctl[slice].rng, |d| {
                    d == Domain::Cpu
                })
            }
        } else {
            set.fill(tag, Domain::Cpu, write, &mut self.ctl[slice].rng, |_| true)
        };
        let filled = filled.or_else(|| {
            debug_assert!(false, "CPU fill found no victim");
            self.sets[idx].fill(tag, Domain::Cpu, write, &mut self.ctl[slice].rng, |_| true)
        });
        if let Some((_, Some(ev))) = filled {
            self.stats.evictions += 1;
            if ev.dirty {
                self.stats.writebacks += 1;
                out.dram_writes += 1;
            }
        }
        out
    }

    fn io_write(&mut self, idx: usize, tag: u64) -> AccessOutcome {
        let slice = idx / self.geom.sets_per_slice();
        match self.mode {
            DdioMode::Disabled => {
                let _ = self.sets[idx].invalidate(tag);
                self.stats.io_misses += 1;
                AccessOutcome {
                    hit: false,
                    dram_writes: 1,
                    ..AccessOutcome::default()
                }
            }
            DdioMode::Enabled { io_way_limit } => {
                if let Some(way) = self.sets[idx].lookup(tag) {
                    self.sets[idx].repl.touch(way);
                    if let Some(line) = self.sets[idx].lines[way].as_mut() {
                        line.dirty = true;
                    }
                    self.stats.io_hits += 1;
                    return AccessOutcome {
                        hit: true,
                        ..AccessOutcome::default()
                    };
                }
                self.stats.io_misses += 1;
                let mut out = AccessOutcome::default();
                let set = &mut self.sets[idx];
                let io_count = set.count_domain(Domain::Io);
                let filled = if io_count >= io_way_limit as usize {
                    set.fill_no_invalid(tag, Domain::Io, true, &mut self.ctl[slice].rng, |d| {
                        d == Domain::Io
                    })
                } else {
                    set.fill(tag, Domain::Io, true, &mut self.ctl[slice].rng, |_| true)
                };
                if let Some((_, Some(ev))) = filled {
                    self.stats.evictions += 1;
                    if ev.dirty {
                        self.stats.writebacks += 1;
                        out.dram_writes += 1;
                    }
                    if ev.was_cpu {
                        self.stats.io_evicted_cpu += 1;
                        out.evicted_cpu = true;
                    }
                }
                out
            }
            DdioMode::Adaptive(_) => {
                if let Some(way) = self.sets[idx].lookup(tag) {
                    self.sets[idx].repl.touch(way);
                    if let Some(line) = self.sets[idx].lines[way].as_mut() {
                        line.dirty = true;
                    }
                    self.stats.io_hits += 1;
                    return AccessOutcome {
                        hit: true,
                        ..AccessOutcome::default()
                    };
                }
                self.stats.io_misses += 1;
                let mut out = AccessOutcome::default();
                let set = &mut self.sets[idx];
                let io_limit = set.io_limit as usize;
                let io_count = set.count_domain(Domain::Io);
                let filled = if io_count < io_limit {
                    set.fill(tag, Domain::Io, true, &mut self.ctl[slice].rng, |d| {
                        d == Domain::Io
                    })
                } else {
                    set.fill_no_invalid(tag, Domain::Io, true, &mut self.ctl[slice].rng, |d| {
                        d == Domain::Io
                    })
                };
                let filled = filled.or_else(|| {
                    self.sets[idx].fill(tag, Domain::Io, true, &mut self.ctl[slice].rng, |d| {
                        d == Domain::Io
                    })
                });
                if let Some((_, Some(ev))) = filled {
                    self.stats.evictions += 1;
                    if ev.dirty {
                        self.stats.writebacks += 1;
                        out.dram_writes += 1;
                    }
                    if ev.was_cpu {
                        self.stats.io_evicted_cpu += 1;
                        out.evicted_cpu = true;
                    }
                }
                out
            }
        }
    }

    fn io_read(&mut self, idx: usize, tag: u64) -> AccessOutcome {
        if self.mode.allocates_in_llc() {
            if let Some(way) = self.sets[idx].lookup(tag) {
                self.sets[idx].repl.touch(way);
                self.stats.io_hits += 1;
                return AccessOutcome {
                    hit: true,
                    ..AccessOutcome::default()
                };
            }
            self.stats.io_misses += 1;
            return AccessOutcome {
                hit: false,
                dram_reads: 1,
                ..AccessOutcome::default()
            };
        }
        self.stats.io_misses += 1;
        let mut out = AccessOutcome {
            hit: false,
            dram_reads: 1,
            ..AccessOutcome::default()
        };
        if let Some(way) = self.sets[idx].lookup(tag) {
            let was_dirty = match self.sets[idx].lines[way].as_mut() {
                Some(line) if line.dirty => {
                    line.dirty = false;
                    true
                }
                _ => false,
            };
            if was_dirty {
                self.stats.writebacks += 1;
                out.dram_writes = 1;
            }
        }
        out
    }

    fn note_io_activity(&mut self, idx: usize) {
        if !matches!(self.mode, DdioMode::Adaptive(_)) {
            return;
        }
        let slice = idx / self.geom.sets_per_slice();
        let set = &mut self.sets[idx];
        set.io_activity = set.io_activity.saturating_add(1);
        if !set.in_touched {
            set.in_touched = true;
            self.ctl[slice].touched.push(idx);
        }
    }

    // This is deliberately still the *full-scan* evaluator: every set
    // on the touched or elevated list is revisited each period, no
    // dirty worklist, no epoch stamps, no parking. The production
    // engine (`shard.rs::adapt`) replaced this walk with an incremental
    // one whose correctness argument is "skipping is only legal when
    // the skipped evaluation is a provable no-op" — an argument that
    // only means something while the naive schedule survives verbatim
    // as the oracle (`tests/incremental_eval.rs` pins the two against
    // each other). Do not optimize this method.
    fn adapt(&mut self, cfg: AdaptiveConfig, slice: usize) {
        self.ctl[slice].adapt_last = self.ctl[slice].clock;
        self.stats.defense_evals += 1;
        let touched = std::mem::take(&mut self.ctl[slice].touched);
        let elevated = std::mem::take(&mut self.ctl[slice].elevated);
        let mut revisit: Vec<usize> = Vec::with_capacity(touched.len() + elevated.len());
        revisit.extend_from_slice(&touched);
        // Mirrors the deduplication fix in `SlicedCache::adapt`: the
        // touched flags stay up until the elevated list has been
        // deduplicated against them.
        for idx in elevated {
            self.sets[idx].in_elevated = false;
            if !self.sets[idx].in_touched {
                revisit.push(idx);
            }
        }
        for idx in touched {
            self.sets[idx].in_touched = false;
        }
        for idx in revisit {
            let present = self.sets[idx].count_domain(Domain::Io) as u32;
            let activity = self.sets[idx].io_activity.max(present);
            self.sets[idx].io_activity = 0;
            let old = self.sets[idx].io_limit;
            let new = if activity >= cfg.t_high {
                old.saturating_add(1).min(cfg.max_io_lines)
            } else if activity < cfg.t_low {
                old.saturating_sub(1).max(cfg.min_io_lines)
            } else {
                old
            };
            if new > old {
                let cpu_quota = self.sets[idx].ways() - new as usize;
                while self.sets[idx].count_domain(Domain::Cpu) > cpu_quota {
                    match self.sets[idx].evict_lru_of_domain(Domain::Cpu, &mut self.ctl[slice].rng)
                    {
                        Some(dirty) => {
                            self.stats.partition_invalidations += 1;
                            if dirty {
                                self.stats.writebacks += 1;
                            }
                        }
                        None => break,
                    }
                }
            } else if new < old {
                while self.sets[idx].count_domain(Domain::Io) > new as usize {
                    match self.sets[idx].evict_lru_of_domain(Domain::Io, &mut self.ctl[slice].rng) {
                        Some(dirty) => {
                            self.stats.partition_invalidations += 1;
                            if dirty {
                                self.stats.writebacks += 1;
                            }
                        }
                        None => break,
                    }
                }
            }
            self.sets[idx].io_limit = new;
            if new > cfg.min_io_lines && !self.sets[idx].in_elevated {
                self.sets[idx].in_elevated = true;
                self.ctl[slice].elevated.push(idx);
            }
        }
    }
}
