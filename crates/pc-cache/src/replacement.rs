//! Replacement policies for the simulated LLC, stored flat.
//!
//! The attack's observable — "did an I/O fill evict one of my primed
//! lines?" — depends on the victim-selection policy, so the simulator
//! supports true LRU (the default, and the policy PRIME+PROBE literature
//! assumes), tree pseudo-LRU (closer to real Intel parts), and random
//! (an ablation). The `ablation_replacement` bench compares them.
//!
//! Unlike the original per-set objects, replacement state lives in one
//! flat allocation covering every set of the sliced cache (see
//! [`crate::llc::SlicedCache`]'s SoA store): LRU keeps one `u32` stamp
//! per line in a single `Vec`, PLRU one fixed-stride bit block per set.
//! A single store-wide logical clock replaces the per-set clocks; only
//! the *relative order* of stamps within one set matters for victim
//! selection, so this is behavior-preserving while keeping every access
//! on one cache-friendly array.

use crate::set::Domain;
use rand::rngs::SmallRng;
use rand::Rng;

/// Which replacement policy a [`crate::SlicedCache`] uses.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub enum ReplacementPolicy {
    /// True least-recently-used.
    #[default]
    Lru,
    /// Binary-tree pseudo-LRU (as in real Intel L1/L2 and, approximately,
    /// pre-Ivy-Bridge LLCs).
    TreePlru,
    /// Uniformly random victim.
    Random,
}

/// Flattened replacement state for all sets of the cache.
///
/// LRU stamps are `u32` (half the per-set footprint of a `u64` stamp
/// array — the victim scan is memory-bound). The shared clock therefore
/// wraps after 2³²−1 touches; [`FlatReplacement::renormalize`] then
/// rewrites every set's stamps to small order-preserving ranks, so LRU
/// order is exact across arbitrarily long runs.
#[derive(Clone, Debug)]
pub(crate) enum FlatReplacement {
    Lru {
        /// `stamps[set * ways + way]` = logical time of last touch;
        /// the smallest stamp among a set's candidate ways is the LRU.
        stamps: Vec<u32>,
        /// Store-wide logical clock (monotone, shared by all sets).
        clock: u32,
    },
    TreePlru {
        /// Direction bits, `stride` per set, 1-indexed heap layout.
        bits: Vec<bool>,
        /// Bits reserved per set: `ways.next_power_of_two().max(2)`.
        stride: usize,
    },
    Random,
}

impl FlatReplacement {
    pub(crate) fn new(policy: ReplacementPolicy, ways: usize, total_sets: usize) -> Self {
        match policy {
            ReplacementPolicy::Lru => FlatReplacement::Lru {
                stamps: vec![0; ways * total_sets],
                clock: 0,
            },
            ReplacementPolicy::TreePlru => {
                let stride = ways.next_power_of_two().max(2);
                FlatReplacement::TreePlru {
                    bits: vec![false; stride * total_sets],
                    stride,
                }
            }
            ReplacementPolicy::Random => FlatReplacement::Random,
        }
    }

    /// Rewrites all LRU stamps as per-set ranks (`1..=ways`, ties broken
    /// by way index exactly as the victim scan breaks them), resetting
    /// the clock past every rank. Order within each set — the only thing
    /// victim selection reads — is unchanged.
    #[cold]
    fn renormalize(stamps: &mut [u32], ways: usize) -> u32 {
        let mut order: Vec<usize> = Vec::with_capacity(ways);
        for set_stamps in stamps.chunks_mut(ways) {
            order.clear();
            order.extend(0..ways);
            order.sort_by_key(|&w| (set_stamps[w], w));
            for (rank, &w) in order.iter().enumerate() {
                set_stamps[w] = rank as u32 + 1;
            }
        }
        ways as u32 + 1
    }

    /// Records a touch (hit or fill) of `way` in set `set`.
    #[inline]
    pub(crate) fn touch(&mut self, set: usize, ways: usize, way: usize) {
        match self {
            FlatReplacement::Lru { stamps, clock } => {
                if *clock == u32::MAX {
                    *clock = FlatReplacement::renormalize(stamps, ways);
                }
                *clock += 1;
                stamps[set * ways + way] = *clock;
            }
            FlatReplacement::TreePlru { bits, stride } => {
                // Walk from the root to the leaf for `way`, flipping each
                // internal node away from the path taken.
                let bits = &mut bits[set * *stride..(set + 1) * *stride];
                let leaves = ways.next_power_of_two();
                let mut node = 1usize;
                let mut lo = 0usize;
                let mut hi = leaves;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if way < mid {
                        bits[node] = false; // next victim search goes right
                        hi = mid;
                        node *= 2;
                    } else {
                        bits[node] = true; // next victim search goes left
                        lo = mid;
                        node = node * 2 + 1;
                    }
                }
            }
            FlatReplacement::Random => {}
        }
    }

    /// Chooses a victim in set `set` among the ways whose bit is set in
    /// `eligible` (a mask the caller computes in one pass over the
    /// packed line words — cheaper than re-deriving eligibility per way
    /// inside the scan).
    ///
    /// Returns `None` when the mask is empty (the caller then widens the
    /// eligibility set; see `LineStore::fill`).
    ///
    /// Caches with more than 64 ways are rejected at construction
    /// (`LineStore::new`), so a `u64` mask always covers the set.
    #[inline]
    pub(crate) fn victim(
        &self,
        set: usize,
        ways: usize,
        rng: &mut SmallRng,
        eligible: u64,
    ) -> Option<usize> {
        if eligible == 0 {
            return None;
        }
        match self {
            FlatReplacement::Lru { stamps, .. } => {
                let stamps = &stamps[set * ways..(set + 1) * ways];
                // Walk the set bits only; ties keep the lowest way, same
                // as the original first-minimum scan.
                let mut m = eligible;
                let mut best = m.trailing_zeros() as usize;
                m &= m - 1;
                while m != 0 {
                    let w = m.trailing_zeros() as usize;
                    if stamps[w] < stamps[best] {
                        best = w;
                    }
                    m &= m - 1;
                }
                Some(best)
            }
            FlatReplacement::TreePlru { bits, stride } => {
                // Follow the direction bits; if the indicated leaf is not
                // eligible, fall back to the eligible way with the smallest
                // index (PLRU has no total order to consult).
                let bits = &bits[set * *stride..(set + 1) * *stride];
                let leaves = ways.next_power_of_two();
                let mut node = 1usize;
                let mut lo = 0usize;
                let mut hi = leaves;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if bits[node] {
                        hi = mid;
                        node *= 2;
                    } else {
                        lo = mid;
                        node = node * 2 + 1;
                    }
                }
                let leaf = lo.min(ways - 1);
                if eligible & (1 << leaf) != 0 {
                    Some(leaf)
                } else {
                    Some(eligible.trailing_zeros() as usize)
                }
            }
            FlatReplacement::Random => {
                // Preserve the original RNG semantics: one `gen_range`
                // over the candidate count, then the k-th candidate in
                // way order.
                let n = eligible.count_ones() as usize;
                let k = rng.gen_range(0..n);
                let mut m = eligible;
                for _ in 0..k {
                    m &= m - 1;
                }
                Some(m.trailing_zeros() as usize)
            }
        }
    }
}

/// Domain-based victim eligibility, replacing the old per-fill closures
/// (`LineStore` lowers it to a per-set bitmask in one pass).
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub(crate) enum Victims {
    /// Any valid line may be displaced.
    Any,
    /// Only valid lines of this domain may be displaced.
    Only(Domain),
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut st = FlatReplacement::new(ReplacementPolicy::Lru, 4, 2);
        for w in 0..4 {
            st.touch(1, 4, w);
        }
        st.touch(1, 4, 0); // order in set 1 now: 1 (oldest), 2, 3, 0
        assert_eq!(st.victim(1, 4, &mut rng(), 0b1111), Some(1));
        st.touch(1, 4, 1);
        assert_eq!(st.victim(1, 4, &mut rng(), 0b1111), Some(2));
    }

    #[test]
    fn lru_sets_are_independent_despite_shared_clock() {
        let mut st = FlatReplacement::new(ReplacementPolicy::Lru, 2, 2);
        // Interleave touches of two sets; each set's relative order must
        // be intact.
        st.touch(0, 2, 0);
        st.touch(1, 2, 1);
        st.touch(0, 2, 1);
        st.touch(1, 2, 0);
        assert_eq!(st.victim(0, 2, &mut rng(), 0b11), Some(0));
        assert_eq!(st.victim(1, 2, &mut rng(), 0b11), Some(1));
    }

    #[test]
    fn lru_respects_eligibility() {
        let mut st = FlatReplacement::new(ReplacementPolicy::Lru, 4, 1);
        for w in 0..4 {
            st.touch(0, 4, w);
        }
        assert_eq!(st.victim(0, 4, &mut rng(), 0b1100), Some(2));
        assert_eq!(st.victim(0, 4, &mut rng(), 0), None);
    }

    #[test]
    fn plru_never_picks_most_recent() {
        let mut st = FlatReplacement::new(ReplacementPolicy::TreePlru, 8, 3);
        for w in 0..8 {
            st.touch(2, 8, w);
        }
        for last in 0..8 {
            st.touch(2, 8, last);
            let v = st.victim(2, 8, &mut rng(), 0xff).unwrap();
            assert_ne!(v, last, "PLRU picked the most recently touched way");
        }
    }

    #[test]
    fn plru_handles_non_power_of_two_ways() {
        let mut st = FlatReplacement::new(ReplacementPolicy::TreePlru, 20, 2);
        for w in 0..20 {
            st.touch(1, 20, w);
        }
        let v = st.victim(1, 20, &mut rng(), (1 << 20) - 1).unwrap();
        assert!(v < 20);
    }

    #[test]
    fn random_picks_only_eligible() {
        let st = FlatReplacement::new(ReplacementPolicy::Random, 8, 1);
        let mut r = rng();
        for _ in 0..100 {
            let v = st.victim(0, 8, &mut r, (1 << 3) | (1 << 5)).unwrap();
            assert!(v == 3 || v == 5);
        }
    }

    #[test]
    fn random_with_no_eligible_is_none() {
        let st = FlatReplacement::new(ReplacementPolicy::Random, 8, 1);
        assert_eq!(st.victim(0, 8, &mut rng(), 0), None);
    }
}
