//! Replacement policies for the simulated LLC.
//!
//! The attack's observable — "did an I/O fill evict one of my primed
//! lines?" — depends on the victim-selection policy, so the simulator
//! supports true LRU (the default, and the policy PRIME+PROBE literature
//! assumes), tree pseudo-LRU (closer to real Intel parts), and random
//! (an ablation). The `ablation_replacement` bench compares them.

use rand::rngs::SmallRng;
use rand::Rng;

/// Which replacement policy a [`crate::SlicedCache`] uses.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub enum ReplacementPolicy {
    /// True least-recently-used.
    #[default]
    Lru,
    /// Binary-tree pseudo-LRU (as in real Intel L1/L2 and, approximately,
    /// pre-Ivy-Bridge LLCs).
    TreePlru,
    /// Uniformly random victim.
    Random,
}

/// Per-set replacement state.
///
/// Kept separate from the line array so `CacheSet` can consult line
/// validity/domain while the policy only tracks recency.
#[derive(Clone, Debug)]
pub(crate) enum ReplacementState {
    Lru {
        /// `stamps[way]` = logical time of last touch; smallest is LRU.
        stamps: Vec<u64>,
        clock: u64,
    },
    TreePlru {
        /// Flattened binary tree of direction bits; 1-indexed heap layout.
        bits: Vec<bool>,
        ways: usize,
    },
    Random,
}

impl ReplacementState {
    pub(crate) fn new(policy: ReplacementPolicy, ways: usize) -> Self {
        match policy {
            ReplacementPolicy::Lru => ReplacementState::Lru { stamps: vec![0; ways], clock: 0 },
            ReplacementPolicy::TreePlru => {
                let leaves = ways.next_power_of_two();
                ReplacementState::TreePlru { bits: vec![false; leaves.max(2)], ways }
            }
            ReplacementPolicy::Random => ReplacementState::Random,
        }
    }

    /// Records a touch (hit or fill) of `way`.
    pub(crate) fn touch(&mut self, way: usize) {
        match self {
            ReplacementState::Lru { stamps, clock } => {
                *clock += 1;
                stamps[way] = *clock;
            }
            ReplacementState::TreePlru { bits, ways } => {
                // Walk from the root to the leaf for `way`, flipping each
                // internal node away from the path taken.
                let leaves = (*ways).next_power_of_two();
                let mut node = 1usize;
                let mut lo = 0usize;
                let mut hi = leaves;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if way < mid {
                        bits[node] = false; // next victim search goes right
                        hi = mid;
                        node *= 2;
                    } else {
                        bits[node] = true; // next victim search goes left
                        lo = mid;
                        node = node * 2 + 1;
                    }
                }
            }
            ReplacementState::Random => {}
        }
    }

    /// Chooses a victim among the ways for which `eligible(way)` is true.
    ///
    /// Returns `None` when no way is eligible (the caller then widens the
    /// eligibility set; see `CacheSet::fill`).
    pub(crate) fn victim<F>(&self, ways: usize, rng: &mut SmallRng, eligible: F) -> Option<usize>
    where
        F: Fn(usize) -> bool,
    {
        match self {
            ReplacementState::Lru { stamps, .. } => (0..ways)
                .filter(|&w| eligible(w))
                .min_by_key(|&w| stamps[w]),
            ReplacementState::TreePlru { bits, .. } => {
                // Follow the direction bits; if the indicated leaf is not
                // eligible, fall back to the eligible way with the smallest
                // index (PLRU has no total order to consult).
                let leaves = ways.next_power_of_two();
                let mut node = 1usize;
                let mut lo = 0usize;
                let mut hi = leaves;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if bits[node] {
                        hi = mid;
                        node *= 2;
                    } else {
                        lo = mid;
                        node = node * 2 + 1;
                    }
                }
                let leaf = lo.min(ways - 1);
                if eligible(leaf) {
                    Some(leaf)
                } else {
                    (0..ways).find(|&w| eligible(w))
                }
            }
            ReplacementState::Random => {
                let candidates: Vec<usize> = (0..ways).filter(|&w| eligible(w)).collect();
                if candidates.is_empty() {
                    None
                } else {
                    Some(candidates[rng.gen_range(0..candidates.len())])
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut st = ReplacementState::new(ReplacementPolicy::Lru, 4);
        for w in 0..4 {
            st.touch(w);
        }
        st.touch(0); // order now: 1 (oldest), 2, 3, 0
        assert_eq!(st.victim(4, &mut rng(), |_| true), Some(1));
        st.touch(1);
        assert_eq!(st.victim(4, &mut rng(), |_| true), Some(2));
    }

    #[test]
    fn lru_respects_eligibility() {
        let mut st = ReplacementState::new(ReplacementPolicy::Lru, 4);
        for w in 0..4 {
            st.touch(w);
        }
        assert_eq!(st.victim(4, &mut rng(), |w| w >= 2), Some(2));
        assert_eq!(st.victim(4, &mut rng(), |_| false), None);
    }

    #[test]
    fn plru_never_picks_most_recent() {
        let mut st = ReplacementState::new(ReplacementPolicy::TreePlru, 8);
        for w in 0..8 {
            st.touch(w);
        }
        for last in 0..8 {
            st.touch(last);
            let v = st.victim(8, &mut rng(), |_| true).unwrap();
            assert_ne!(v, last, "PLRU picked the most recently touched way");
        }
    }

    #[test]
    fn plru_handles_non_power_of_two_ways() {
        let mut st = ReplacementState::new(ReplacementPolicy::TreePlru, 20);
        for w in 0..20 {
            st.touch(w);
        }
        let v = st.victim(20, &mut rng(), |_| true).unwrap();
        assert!(v < 20);
    }

    #[test]
    fn random_picks_only_eligible() {
        let st = ReplacementState::new(ReplacementPolicy::Random, 8);
        let mut r = rng();
        for _ in 0..100 {
            let v = st.victim(8, &mut r, |w| w == 3 || w == 5).unwrap();
            assert!(v == 3 || v == 5);
        }
    }

    #[test]
    fn random_with_no_eligible_is_none() {
        let st = ReplacementState::new(ReplacementPolicy::Random, 8);
        assert_eq!(st.victim(8, &mut rng(), |_| false), None);
    }
}
