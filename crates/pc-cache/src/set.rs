//! Per-line / per-set semantic types: owning domains and eviction
//! records.
//!
//! The storage itself is no longer a per-set object — all lines of all
//! sets live in one contiguous structure-of-arrays store
//! ([`crate::store::LineStore`]); this module keeps the vocabulary types
//! those flat arrays encode.

/// Who owns a cache line: a CPU core or an I/O device (NIC DMA via DDIO).
///
/// The whole Packet Chasing vulnerability is cross-domain contention:
/// `Io` fills evicting `Cpu` lines is what the spy observes. The adaptive
/// partitioning defense (§VII) eliminates exactly those evictions.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum Domain {
    /// Line brought in by a CPU load/store.
    Cpu,
    /// Line allocated by a DDIO I/O write.
    Io,
}

/// Metadata of a line displaced by a fill.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) struct EvictedLine {
    /// The displaced line was dirty (causes a memory writeback).
    pub dirty: bool,
    /// The displaced line belonged to the CPU domain.
    pub was_cpu: bool,
}
