//! A single cache set: lines, validity, dirtiness, owning domain, and the
//! partition bookkeeping used by DDIO and the adaptive defense.

use crate::replacement::{ReplacementPolicy, ReplacementState};
use rand::rngs::SmallRng;

/// Who owns a cache line: a CPU core or an I/O device (NIC DMA via DDIO).
///
/// The whole Packet Chasing vulnerability is cross-domain contention:
/// `Io` fills evicting `Cpu` lines is what the spy observes. The adaptive
/// partitioning defense (§VII) eliminates exactly those evictions.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum Domain {
    /// Line brought in by a CPU load/store.
    Cpu,
    /// Line allocated by a DDIO I/O write.
    Io,
}

/// One cache line's metadata (the simulator carries no data bytes).
#[derive(Copy, Clone, Debug)]
pub(crate) struct Line {
    pub tag: u64,
    pub dirty: bool,
    pub domain: Domain,
}

/// Metadata of a line displaced by a fill.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) struct EvictedLine {
    /// The displaced line was dirty (causes a memory writeback).
    pub dirty: bool,
    /// The displaced line belonged to the CPU domain.
    pub was_cpu: bool,
}

#[derive(Clone, Debug)]
pub(crate) struct CacheSet {
    lines: Vec<Option<Line>>,
    repl: ReplacementState,
    /// Maximum number of `Io`-domain lines this set may hold
    /// (2 under plain DDIO; 1..=3 under the adaptive defense).
    pub io_limit: u8,
    /// I/O accesses observed during the current adaptation period.
    pub io_activity: u32,
    /// Scratch flag: set is on the adaptive defense's touched list.
    pub in_touched: bool,
    /// Scratch flag: set is on the elevated (`io_limit > min`) list.
    pub in_elevated: bool,
}

impl CacheSet {
    pub(crate) fn new(ways: usize, policy: ReplacementPolicy, io_limit: u8) -> Self {
        CacheSet {
            lines: vec![None; ways],
            repl: ReplacementState::new(policy, ways),
            io_limit,
            io_activity: 0,
            in_touched: false,
            in_elevated: false,
        }
    }

    pub(crate) fn ways(&self) -> usize {
        self.lines.len()
    }

    /// Way holding `tag`, if present and valid.
    pub(crate) fn lookup(&self, tag: u64) -> Option<usize> {
        self.lines
            .iter()
            .position(|l| matches!(l, Some(line) if line.tag == tag))
    }

    pub(crate) fn touch(&mut self, way: usize) {
        self.repl.touch(way);
    }

    pub(crate) fn mark_dirty(&mut self, way: usize) {
        if let Some(line) = self.lines[way].as_mut() {
            line.dirty = true;
        }
    }

    /// Clears the dirty bit (after a coherence writeback), reporting
    /// whether it was set.
    pub(crate) fn clean(&mut self, way: usize) -> bool {
        match self.lines[way].as_mut() {
            Some(line) if line.dirty => {
                line.dirty = false;
                true
            }
            _ => false,
        }
    }

    pub(crate) fn count_domain(&self, domain: Domain) -> usize {
        self.lines
            .iter()
            .filter(|l| matches!(l, Some(line) if line.domain == domain))
            .count()
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn valid_count(&self) -> usize {
        self.lines.iter().filter(|l| l.is_some()).count()
    }

    /// Invalidates `tag` if present, reporting whether it was dirty.
    pub(crate) fn invalidate(&mut self, tag: u64) -> Option<bool> {
        let way = self.lookup(tag)?;
        let dirty = self.lines[way].map(|l| l.dirty).unwrap_or(false);
        self.lines[way] = None;
        Some(dirty)
    }

    /// Invalidates every line, returning the number of dirty writebacks.
    pub(crate) fn invalidate_all(&mut self) -> usize {
        let dirty = self
            .lines
            .iter()
            .filter(|l| matches!(l, Some(line) if line.dirty))
            .count();
        for l in &mut self.lines {
            *l = None;
        }
        dirty
    }

    /// Evicts the least-recently-used line of `domain`, if any, reporting
    /// whether it was dirty.
    ///
    /// Used by the adaptive defense when the I/O/CPU boundary moves and a
    /// line on the losing side must be invalidated (with writeback).
    pub(crate) fn evict_lru_of_domain(
        &mut self,
        domain: Domain,
        rng: &mut SmallRng,
    ) -> Option<bool> {
        let way = self.repl.victim(self.lines.len(), rng, |w| {
            matches!(&self.lines[w], Some(line) if line.domain == domain)
        })?;
        let dirty = self.lines[way].map(|l| l.dirty).unwrap_or(false);
        self.lines[way] = None;
        Some(dirty)
    }

    /// Inserts `tag` into the set. Invalid ways are always preferred;
    /// otherwise the replacement policy picks a victim among ways whose
    /// current domain satisfies `eligible`.
    ///
    /// Returns the filled way and the displaced line (if a valid line was
    /// displaced), or `None` when the set is full and no way is eligible —
    /// the caller decides how to widen eligibility.
    pub(crate) fn fill<F>(
        &mut self,
        tag: u64,
        domain: Domain,
        dirty: bool,
        rng: &mut SmallRng,
        eligible: F,
    ) -> Option<(usize, Option<EvictedLine>)>
    where
        F: Fn(Domain) -> bool,
    {
        if let Some(way) = self.lines.iter().position(|l| l.is_none()) {
            self.lines[way] = Some(Line { tag, dirty, domain });
            self.repl.touch(way);
            return Some((way, None));
        }
        self.fill_no_invalid(tag, domain, dirty, rng, eligible)
    }

    /// Like [`CacheSet::fill`] but never takes an invalid way: a victim is
    /// always chosen among the *valid* ways satisfying `eligible`.
    ///
    /// Used when a quota forbids expanding into free ways (e.g. a CPU fill
    /// whose partition is already full must recycle a CPU line even if an
    /// invalid way — reserved for I/O — exists).
    pub(crate) fn fill_no_invalid<F>(
        &mut self,
        tag: u64,
        domain: Domain,
        dirty: bool,
        rng: &mut SmallRng,
        eligible: F,
    ) -> Option<(usize, Option<EvictedLine>)>
    where
        F: Fn(Domain) -> bool,
    {
        let way = self.repl.victim(self.lines.len(), rng, |w| {
            matches!(&self.lines[w], Some(line) if eligible(line.domain))
        })?;
        let old = self.lines[way].expect("victim must be valid");
        self.lines[way] = Some(Line { tag, dirty, domain });
        self.repl.touch(way);
        Some((way, Some(EvictedLine { dirty: old.dirty, was_cpu: old.domain == Domain::Cpu })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    fn set(ways: usize) -> CacheSet {
        CacheSet::new(ways, ReplacementPolicy::Lru, 2)
    }

    #[test]
    fn fill_prefers_invalid_ways() {
        let mut s = set(4);
        let mut r = rng();
        for t in 0..4 {
            let (_, ev) = s.fill(t, Domain::Cpu, false, &mut r, |_| true).unwrap();
            assert!(ev.is_none());
        }
        assert_eq!(s.valid_count(), 4);
    }

    #[test]
    fn full_set_evicts_lru() {
        let mut s = set(2);
        let mut r = rng();
        s.fill(10, Domain::Cpu, false, &mut r, |_| true).unwrap();
        s.fill(11, Domain::Cpu, false, &mut r, |_| true).unwrap();
        let (_, ev) = s.fill(12, Domain::Cpu, false, &mut r, |_| true).unwrap();
        assert!(ev.is_some());
        assert!(s.lookup(10).is_none(), "tag 10 was LRU and must be gone");
        assert!(s.lookup(11).is_some());
        assert!(s.lookup(12).is_some());
    }

    #[test]
    fn eligibility_restricts_victims() {
        let mut s = set(2);
        let mut r = rng();
        s.fill(1, Domain::Cpu, false, &mut r, |_| true).unwrap();
        s.fill(2, Domain::Io, false, &mut r, |_| true).unwrap();
        // Only Io lines may be displaced:
        let (_, ev) = s.fill(3, Domain::Io, true, &mut r, |d| d == Domain::Io).unwrap();
        let ev = ev.expect("must displace the Io line");
        assert!(!ev.was_cpu);
        assert!(s.lookup(1).is_some(), "CPU line must survive");
    }

    #[test]
    fn fill_with_nothing_eligible_returns_none() {
        let mut s = set(2);
        let mut r = rng();
        s.fill(1, Domain::Cpu, false, &mut r, |_| true).unwrap();
        s.fill(2, Domain::Cpu, false, &mut r, |_| true).unwrap();
        assert!(s.fill(3, Domain::Io, false, &mut r, |d| d == Domain::Io).is_none());
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut s = set(1);
        let mut r = rng();
        s.fill(1, Domain::Cpu, true, &mut r, |_| true).unwrap();
        let (_, ev) = s.fill(2, Domain::Cpu, false, &mut r, |_| true).unwrap();
        let ev = ev.unwrap();
        assert!(ev.dirty);
        assert!(ev.was_cpu);
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut s = set(2);
        let mut r = rng();
        s.fill(5, Domain::Io, true, &mut r, |_| true).unwrap();
        assert_eq!(s.invalidate(5), Some(true));
        assert_eq!(s.invalidate(5), None);
    }

    #[test]
    fn evict_lru_of_domain_targets_domain() {
        let mut s = set(3);
        let mut r = rng();
        s.fill(1, Domain::Cpu, false, &mut r, |_| true).unwrap();
        s.fill(2, Domain::Io, true, &mut r, |_| true).unwrap();
        s.fill(3, Domain::Cpu, false, &mut r, |_| true).unwrap();
        assert_eq!(s.evict_lru_of_domain(Domain::Io, &mut r), Some(true));
        assert_eq!(s.count_domain(Domain::Io), 0);
        assert_eq!(s.count_domain(Domain::Cpu), 2);
        assert_eq!(s.evict_lru_of_domain(Domain::Io, &mut r), None);
    }

    #[test]
    fn domain_counts() {
        let mut s = set(4);
        let mut r = rng();
        s.fill(1, Domain::Cpu, false, &mut r, |_| true).unwrap();
        s.fill(2, Domain::Io, false, &mut r, |_| true).unwrap();
        s.fill(3, Domain::Io, false, &mut r, |_| true).unwrap();
        assert_eq!(s.count_domain(Domain::Cpu), 1);
        assert_eq!(s.count_domain(Domain::Io), 2);
    }

    #[test]
    fn invalidate_all_counts_dirty_writebacks() {
        let mut s = set(4);
        let mut r = rng();
        s.fill(1, Domain::Cpu, true, &mut r, |_| true).unwrap();
        s.fill(2, Domain::Io, true, &mut r, |_| true).unwrap();
        s.fill(3, Domain::Io, false, &mut r, |_| true).unwrap();
        assert_eq!(s.invalidate_all(), 2);
        assert_eq!(s.valid_count(), 0);
    }
}
