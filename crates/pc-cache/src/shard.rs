//! One LLC slice as an independent simulation engine.
//!
//! A [`Shard`] owns everything needed to simulate the sets of one cache
//! slice: the slice's cut of the SoA line store, its replacement state,
//! its statistics, its RNG stream and its adaptive-defense bookkeeping.
//! Nothing in a shard references another slice, which is the whole
//! point: the Packet Chasing threat model is per-slice (DDIO ways,
//! prime+probe sets and adaptive partitions are all sliced state), so
//! slices can simulate concurrently on worker threads and still produce
//! results byte-identical to a sequential walk.
//!
//! The determinism contract, concretely:
//!
//! * **RNG.** Each shard draws from its own `SmallRng` seeded with
//!   [`pc_par::stream_seed`]`(cache_seed, SeedDomain::Slice, slice)`. A
//!   slice's stream depends only on the accesses *that slice* receives,
//!   never on the schedule.
//! * **Replacement clock.** The LRU stamp clock is per-shard. Only the
//!   relative stamp order within one set matters for victim selection,
//!   and all touches of a set happen in its shard, so per-shard clocks
//!   are observationally identical to a store-wide clock.
//! * **Adaptation.** The adaptive defense's period timer and
//!   touched/elevated worklists are per-shard: the shard's *defense
//!   clock* ticks once per access it receives, and a slice re-evaluates
//!   its partitions when its own clock crosses the period boundary
//!   ([`crate::partition`] documents the deviation from the paper's
//!   cycle-based period). Because the clock is a pure function of the
//!   slice's own access stream — never of other slices' hit/miss
//!   outcomes — a shard replaying its bin of a trace reconstructs
//!   exactly the adaptation schedule the sequential walk would produce,
//!   which is what lets *adaptive* traces shard across worker threads.
//!   (The paper's hardware proposal is per-set counters + per-set
//!   decision logic, so per-slice timing is the faithful granularity; a
//!   global timer would couple slices and make parallel simulation
//!   order-dependent.)
//!
//! [`crate::SlicedCache`] owns one shard per slice and routes scalar
//! accesses; its batch entry points bin ops by slice and fan shards out
//! over threads, merging statistics in slice order.

use crate::llc::{AccessKind, AccessOutcome, DdioMode};
use crate::partition::AdaptiveConfig;
use crate::replacement::{ReplacementPolicy, Victims};
use crate::set::Domain;
use crate::stats::CacheStats;
use crate::store::{LineStore, FLAG_ELEVATED, FLAG_PARKED, NEVER_TOUCHED};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The simulation engine for one slice: line store, RNG, statistics and
/// adaptive-partition state. Set indices are slice-local
/// (`0..sets_per_slice`).
#[derive(Clone, Debug)]
pub(crate) struct Shard {
    store: LineStore,
    rng: SmallRng,
    stats: CacheStats,
    /// The defense clock: accesses this shard has processed. Drives the
    /// adaptive period; pure function of the slice's own access stream.
    clock: u64,
    // Adaptive-defense bookkeeping (unused in other modes). The
    // worklists are *incremental*: `dirty` holds the sets that saw an
    // I/O write this epoch (deduplicated by `SetMeta::touch_epoch`
    // stamps), `active` holds the elevated sets whose last evaluation
    // was NOT a provable no-op. Elevated sets whose next evaluation is
    // provably a no-op are parked (`FLAG_PARKED`) and skipped entirely
    // until new I/O activity or a flush re-engages them — see
    // `Shard::adapt` for the soundness argument.
    adapt_last: u64,
    /// Current dirty epoch; never equals [`NEVER_TOUCHED`].
    epoch: u32,
    dirty: Vec<usize>,
    active: Vec<usize>,
    /// Reusable evaluation worklist (capacity persists across periods so
    /// steady-state adaptation allocates nothing).
    scratch: Vec<usize>,
}

impl Shard {
    /// Creates the shard for slice `slice` of a cache constructed with
    /// `seed`. The RNG stream is a pure function of `(seed, slice)`.
    pub(crate) fn new(
        sets: usize,
        ways: usize,
        policy: ReplacementPolicy,
        io_limit: u8,
        seed: u64,
        slice: usize,
    ) -> Self {
        Shard {
            store: LineStore::new(sets, ways, policy, io_limit),
            rng: SmallRng::seed_from_u64(pc_par::stream_seed(
                seed,
                pc_par::SeedDomain::Slice,
                slice as u64,
            )),
            stats: CacheStats::new(),
            clock: 0,
            adapt_last: 0,
            epoch: 0,
            dirty: Vec::new(),
            active: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Statistics accumulated by this shard alone.
    pub(crate) fn stats(&self) -> CacheStats {
        self.stats
    }

    pub(crate) fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    /// Way of local set `set` holding `tag`, if valid (oracle).
    pub(crate) fn lookup(&self, set: usize, tag: u64) -> Option<usize> {
        self.store.lookup(set, tag)
    }

    /// Valid lines of `domain` in local set `set`.
    pub(crate) fn count_domain(&self, set: usize, domain: Domain) -> usize {
        self.store.count_domain(set, domain)
    }

    /// Current I/O partition boundary of local set `set`.
    pub(crate) fn io_limit(&self, set: usize) -> usize {
        self.store.sets[set].io_limit as usize
    }

    /// Invalidates every line of the shard, counting writebacks into the
    /// shard's stats and returning them.
    pub(crate) fn flush_all(&mut self) -> usize {
        let wb = self.store.invalidate_all();
        self.stats.writebacks += wb as u64;
        // A flush breaks every parked set's stability premise (its
        // resident I/O lines are gone, so its next evaluation shrinks
        // the boundary instead of no-opping): re-engage them all. Index
        // order is sound here because a parked set's post-flush
        // evaluation is RNG-free and stats-free until it is touched
        // again — and a touched set re-enters through `dirty` at
        // exactly the position the full-scan walk would evaluate it.
        for set in 0..self.store.sets.len() {
            let meta = &mut self.store.sets[set];
            if meta.flags & FLAG_PARKED != 0 {
                meta.flags &= !FLAG_PARKED;
                self.active.push(set);
            }
        }
        wb
    }

    /// Performs one access to local set `set`, ticking the shard's
    /// defense clock.
    ///
    /// `mode` is passed per call (it is shared, `Copy` cache
    /// configuration owned by [`crate::SlicedCache`]); everything
    /// mutable is shard-local, so concurrent `access` calls on
    /// *different* shards are race-free by construction.
    #[inline]
    pub(crate) fn access(
        &mut self,
        mode: DdioMode,
        set: usize,
        tag: u64,
        kind: AccessKind,
    ) -> AccessOutcome {
        self.clock += 1;
        let outcome = match kind {
            AccessKind::CpuRead | AccessKind::CpuWrite => self.cpu_access(mode, set, tag, kind),
            AccessKind::IoWrite => self.io_write(mode, set, tag),
            AccessKind::IoRead => self.io_read(mode, set, tag),
        };

        // Only I/O *writes* matter to the partition: DDIO is
        // write-allocate, so only writes ever insert I/O lines that need
        // protected space. Growing partitions under DMA reads (transmit
        // traffic) would take CPU ways for nothing.
        if kind == AccessKind::IoWrite {
            self.note_io_activity(mode, set);
        }
        if let DdioMode::Adaptive(cfg) = mode {
            if self.clock - self.adapt_last >= cfg.period
                // Fault site `skipped-defense-eval`: the streaming
                // engine lets keyed period boundaries pass without
                // re-evaluating (keyed on the shard's defense clock,
                // which is schedule-independent by construction).
                && !crate::fault::fires_keyed(
                    crate::fault::FaultSite::SkippedDefenseEval,
                    self.clock,
                )
            {
                self.adapt(cfg);
            }
        }
        outcome
    }

    fn cpu_access(
        &mut self,
        mode: DdioMode,
        set: usize,
        tag: u64,
        kind: AccessKind,
    ) -> AccessOutcome {
        let write = kind == AccessKind::CpuWrite;
        if let Some(way) = self.store.lookup(set, tag) {
            // Fault site `stale-lru`: batch replay leaves keyed lines'
            // recency stamps stale on a hit, so eviction order drifts
            // from the per-access oracle's.
            if !crate::fault::fires_keyed(crate::fault::FaultSite::StaleLru, tag) {
                self.store.touch(set, way);
            }
            if write {
                self.store.mark_dirty(set, way);
            }
            self.stats.cpu_hits += 1;
            return AccessOutcome {
                hit: true,
                ..AccessOutcome::default()
            };
        }
        self.stats.cpu_misses += 1;
        let mut out = AccessOutcome {
            hit: false,
            dram_reads: 1,
            ..AccessOutcome::default()
        };

        let adaptive = matches!(mode, DdioMode::Adaptive(_));
        let filled = if adaptive {
            // CPU fills must stay inside the CPU partition: they may take
            // an invalid way only while the CPU quota has room, and may
            // only displace CPU lines.
            let cpu_quota = self.store.ways() - self.store.sets[set].io_limit as usize;
            if self.store.count_domain(set, Domain::Cpu) < cpu_quota {
                self.store.fill(
                    set,
                    tag,
                    Domain::Cpu,
                    write,
                    &mut self.rng,
                    Victims::Only(Domain::Cpu),
                )
            } else {
                self.store.fill_no_invalid(
                    set,
                    tag,
                    Domain::Cpu,
                    write,
                    &mut self.rng,
                    Victims::Only(Domain::Cpu),
                )
            }
        } else {
            self.store
                .fill(set, tag, Domain::Cpu, write, &mut self.rng, Victims::Any)
        };
        let filled = filled.or_else(|| {
            // Quota accounting should always leave a CPU victim available;
            // fall back to an unrestricted fill rather than dropping the
            // line if an edge case slips through.
            debug_assert!(false, "CPU fill found no victim");
            self.store
                .fill(set, tag, Domain::Cpu, write, &mut self.rng, Victims::Any)
        });
        if let Some((_, Some(ev))) = filled {
            self.stats.evictions += 1;
            if ev.dirty {
                self.stats.writebacks += 1;
                out.dram_writes += 1;
            }
        }
        out
    }

    fn io_write(&mut self, mode: DdioMode, set: usize, tag: u64) -> AccessOutcome {
        match mode {
            DdioMode::Disabled => {
                // DMA goes to memory; any cached copy is invalidated (the
                // DMA write supersedes it, so no writeback is needed).
                let _ = self.store.invalidate(set, tag);
                self.stats.io_misses += 1;
                AccessOutcome {
                    hit: false,
                    dram_writes: 1,
                    ..AccessOutcome::default()
                }
            }
            DdioMode::Enabled { io_way_limit } => {
                if let Some(way) = self.store.lookup(set, tag) {
                    // DDIO write update: refresh in place.
                    self.store.touch(set, way);
                    self.store.mark_dirty(set, way);
                    self.stats.io_hits += 1;
                    return AccessOutcome {
                        hit: true,
                        ..AccessOutcome::default()
                    };
                }
                self.stats.io_misses += 1;
                let mut out = AccessOutcome::default();
                let io_count = self.store.count_domain(set, Domain::Io);
                let filled = if io_count >= io_way_limit as usize {
                    // Allocation limit reached: recycle an I/O line.
                    self.store.fill_no_invalid(
                        set,
                        tag,
                        Domain::Io,
                        true,
                        &mut self.rng,
                        Victims::Only(Domain::Io),
                    )
                } else {
                    // Within the limit: free choice — this is the fill
                    // that can displace a primed spy line.
                    self.store
                        .fill(set, tag, Domain::Io, true, &mut self.rng, Victims::Any)
                };
                if let Some((_, Some(ev))) = filled {
                    self.stats.evictions += 1;
                    if ev.dirty {
                        self.stats.writebacks += 1;
                        out.dram_writes += 1;
                    }
                    if ev.was_cpu {
                        self.stats.io_evicted_cpu += 1;
                        out.evicted_cpu = true;
                    }
                }
                out
            }
            DdioMode::Adaptive(_) => {
                if let Some(way) = self.store.lookup(set, tag) {
                    self.store.touch(set, way);
                    self.store.mark_dirty(set, way);
                    self.stats.io_hits += 1;
                    return AccessOutcome {
                        hit: true,
                        ..AccessOutcome::default()
                    };
                }
                self.stats.io_misses += 1;
                let mut out = AccessOutcome::default();
                let io_limit = self.store.sets[set].io_limit as usize;
                let io_count = self.store.count_domain(set, Domain::Io);
                let filled = if io_count < io_limit {
                    // Room in the I/O partition: quota accounting
                    // guarantees an invalid way exists or an I/O line can
                    // be recycled; never touch CPU lines.
                    self.store.fill(
                        set,
                        tag,
                        Domain::Io,
                        true,
                        &mut self.rng,
                        Victims::Only(Domain::Io),
                    )
                } else {
                    self.store.fill_no_invalid(
                        set,
                        tag,
                        Domain::Io,
                        true,
                        &mut self.rng,
                        Victims::Only(Domain::Io),
                    )
                };
                let filled = filled.or_else(|| {
                    // Partition was starved (e.g. right after a boundary
                    // shrink): make room by displacing the LRU I/O line,
                    // or as a last resort take an invalid way.
                    self.store.fill(
                        set,
                        tag,
                        Domain::Io,
                        true,
                        &mut self.rng,
                        Victims::Only(Domain::Io),
                    )
                });
                if let Some((_, Some(ev))) = filled {
                    self.stats.evictions += 1;
                    if ev.dirty {
                        self.stats.writebacks += 1;
                        out.dram_writes += 1;
                    }
                    debug_assert!(!ev.was_cpu, "adaptive partition displaced a CPU line");
                    if ev.was_cpu {
                        self.stats.io_evicted_cpu += 1;
                        out.evicted_cpu = true;
                    }
                }
                out
            }
        }
    }

    fn io_read(&mut self, mode: DdioMode, set: usize, tag: u64) -> AccessOutcome {
        if mode.allocates_in_llc() {
            if let Some(way) = self.store.lookup(set, tag) {
                self.store.touch(set, way);
                self.stats.io_hits += 1;
                return AccessOutcome {
                    hit: true,
                    ..AccessOutcome::default()
                };
            }
            // DDIO performs write allocation but *read* transactions that
            // miss are served from DRAM without allocating.
            self.stats.io_misses += 1;
            return AccessOutcome {
                hit: false,
                dram_reads: 1,
                ..AccessOutcome::default()
            };
        }
        // Pre-DDIO DMA read: coherent with the cache — a dirty cached
        // copy is written back before the device reads DRAM. This is why
        // transmit-side traffic costs extra memory writes without DDIO
        // (Figure 15's write-traffic gap).
        self.stats.io_misses += 1;
        let mut out = AccessOutcome {
            hit: false,
            dram_reads: 1,
            ..AccessOutcome::default()
        };
        if let Some(way) = self.store.lookup(set, tag) {
            if self.store.clean(set, way) {
                self.stats.writebacks += 1;
                out.dram_writes = 1;
            }
        }
        out
    }

    #[inline]
    fn note_io_activity(&mut self, mode: DdioMode, set: usize) {
        if !matches!(mode, DdioMode::Adaptive(_)) {
            return;
        }
        self.store.sets[set].io_activity = self.store.sets[set].io_activity.saturating_add(1);
        if self.store.sets[set].touch_epoch != self.epoch {
            self.store.sets[set].touch_epoch = self.epoch;
            // Fault site `stale-dirty-set`: batch replay stamps the
            // epoch (so later writes in the period think the set is
            // queued) but loses the worklist push — the set silently
            // skips its evaluation. Keyed on the slice-local set index,
            // which is schedule-independent.
            if !crate::fault::fires_keyed(crate::fault::FaultSite::StaleDirtySet, set as u64) {
                self.dirty.push(set);
            }
        }
    }

    /// Re-evaluates the I/O/CPU boundary of every set of this shard
    /// whose next evaluation could be observable — the incremental
    /// worklist.
    ///
    /// The full-scan predecessor (still alive, verbatim, as the
    /// [`crate::ReferenceCache`] oracle) revisited `touched ++ elevated`
    /// every period. Under the paper's defaults (`t_high = 1` with the
    /// presence floor) every set that ever holds an I/O line pins at
    /// `max_io_lines` and stays on the elevated list forever, so the
    /// walk degenerated to an all-no-op scan of the whole I/O working
    /// set every 16 accesses — the dominant cost of adaptive mode. This
    /// version evaluates `dirty ++ active` instead:
    ///
    /// * `dirty` is exactly the old touched list (same push condition,
    ///   deduplicated by epoch stamp instead of a flag), so touched
    ///   sets are evaluated at identical worklist positions.
    /// * `active` is the old elevated list minus *parked* sets. A set
    ///   parks only when its just-finished evaluation proves the next
    ///   one is a pure no-op: its activity counter is zero (just
    ///   reset), and with `p` resident I/O lines the untouched-next-
    ///   period evaluation computes `activity = max(0, p) = p`, which
    ///   is a no-op iff `p >= t_low && (p < t_high || io_limit ==
    ///   max_io_lines)`. Such an evaluation moves no boundary, evicts
    ///   nothing, draws no RNG and changes no statistics, so skipping
    ///   it is unobservable — and the condition is self-perpetuating
    ///   (in adaptive mode a set's I/O occupancy and activity can only
    ///   change through an I/O write, which stamps the set into
    ///   `dirty`, or through a flush, which re-engages all parked
    ///   sets).
    ///
    /// Because skipped evaluations draw no RNG, the RNG consumption
    /// sequence of the evaluated sets is identical to the full scan's,
    /// which is what keeps the incremental engine byte-identical to the
    /// oracle (pinned by `tests/incremental_eval.rs`).
    ///
    /// Displacement semantics when the boundary moves are **eager**: the
    /// losing side's surplus lines are invalidated (with writeback if
    /// dirty) at the adaptation point, never lazily on a later fill —
    /// see the discussion in [`crate::partition`].
    fn adapt(&mut self, cfg: AdaptiveConfig) {
        self.adapt_last = self.clock;
        self.stats.defense_evals += 1;
        // Worklist = dirty ++ (active minus already-dirty), built in a
        // persistent scratch vec: no per-period allocation (the old
        // `std::mem::take` + `Vec::with_capacity` pattern reallocated
        // all three lists every 16 accesses).
        debug_assert!(self.scratch.is_empty());
        std::mem::swap(&mut self.dirty, &mut self.scratch);
        for i in 0..self.active.len() {
            let set = self.active[i];
            if self.store.sets[set].touch_epoch != self.epoch {
                self.scratch.push(set);
            }
        }
        self.active.clear();
        // Bumping the epoch invalidates every stamp at once — this IS
        // the old per-set touched-flag clear pass, in O(1).
        //
        // Fault site `skipped-epoch-bump`: the streaming engine keeps
        // the stale epoch, so sets stamped last period falsely appear
        // already-queued and their next I/O write never re-enters them
        // into the dirty worklist. Keyed on the epoch itself
        // (schedule-independent by construction) — and self-latching:
        // a skipped bump leaves the key unchanged, so once the mutant
        // fires the epoch stays frozen and dirty tracking dies for
        // good, the way a real latched-condition bug would behave.
        if !crate::fault::fires_keyed(
            crate::fault::FaultSite::SkippedEpochBump,
            u64::from(self.epoch),
        ) {
            self.epoch = self.epoch.wrapping_add(1);
            if self.epoch == NEVER_TOUCHED {
                // Stamp wrap (once per 2^32 - 1 periods): sweep every
                // stamp back to the sentinel so no stale stamp can
                // collide with a reused epoch value.
                self.epoch = 0;
                for meta in &mut self.store.sets {
                    meta.touch_epoch = NEVER_TOUCHED;
                }
            }
        }
        for i in 0..self.scratch.len() {
            let set = self.scratch[i];
            // The paper's hardware counts cycles with a valid I/O line
            // *present*; a standing I/O line keeps the counter above
            // T_high for the whole period. Our event count is therefore
            // floored by the number of I/O lines currently resident.
            let present = self.store.count_domain(set, Domain::Io) as u32;
            let activity = self.store.sets[set].io_activity.max(present);
            self.store.sets[set].io_activity = 0;
            let old = self.store.sets[set].io_limit;
            let new = if activity >= cfg.t_high {
                old.saturating_add(1).min(cfg.max_io_lines)
            } else if activity < cfg.t_low {
                old.saturating_sub(1).max(cfg.min_io_lines)
            } else {
                old
            };
            if new > old {
                // Growing I/O partition: push CPU lines out so the CPU
                // quota holds.
                let cpu_quota = self.store.ways() - new as usize;
                while self.store.count_domain(set, Domain::Cpu) > cpu_quota {
                    match self
                        .store
                        .evict_lru_of_domain(set, Domain::Cpu, &mut self.rng)
                    {
                        Some(dirty) => {
                            self.stats.partition_invalidations += 1;
                            if dirty {
                                self.stats.writebacks += 1;
                            }
                        }
                        None => break,
                    }
                }
            } else if new < old {
                // Shrinking: push surplus I/O lines out so occupancy never
                // exceeds the clamped boundary.
                while self.store.count_domain(set, Domain::Io) > new as usize {
                    match self
                        .store
                        .evict_lru_of_domain(set, Domain::Io, &mut self.rng)
                    {
                        Some(dirty) => {
                            self.stats.partition_invalidations += 1;
                            if dirty {
                                self.stats.writebacks += 1;
                            }
                        }
                        None => break,
                    }
                }
            }
            self.store.sets[set].io_limit = new;
            // Classify for next period. `post_present` is the I/O
            // occupancy the untouched-next-period evaluation will see
            // (shrink evictions just ran, grow never changes it).
            let post_present = self.store.count_domain(set, Domain::Io) as u32;
            let meta = &mut self.store.sets[set];
            if new > cfg.min_io_lines {
                meta.flags |= FLAG_ELEVATED;
                let stable = post_present >= cfg.t_low
                    && (post_present < cfg.t_high || new == cfg.max_io_lines);
                if stable {
                    // Next evaluation is a provable no-op: park the set
                    // off the active worklist (see the method docs).
                    meta.flags |= FLAG_PARKED;
                } else {
                    meta.flags &= !FLAG_PARKED;
                    self.active.push(set);
                }
            } else {
                meta.flags &= !(FLAG_ELEVATED | FLAG_PARKED);
            }
        }
        self.scratch.clear();
    }
}
