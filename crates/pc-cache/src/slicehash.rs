//! The undocumented physical-address → slice hash.
//!
//! Starting with Sandy Bridge, Intel distributes LLC lines over per-core
//! slices with an unpublished hash of the physical address (paper §II-D,
//! Figure 2). The hash has been reverse-engineered for several parts as a
//! XOR of selected address bits per slice-select bit (Maurice et al.,
//! RAID 2015). We use masks of that published form.
//!
//! The attacker crates (`pc-probe`, `pc-core`) never call
//! [`SliceHash::slice_of`] directly — they discover eviction sets by
//! timing, exactly as Mastik does on real hardware. The hash is public so
//! *ground-truth* instrumentation (driver instrumentation in the paper's
//! Figure 5/6 experiments, test oracles here) can map buffers to sets.

use crate::addr::PhysAddr;

/// XOR-of-bits slice hash for 1, 2, 4 or 8 slices.
///
/// Each slice-select bit `i` is the parity of `addr & mask[i]`.
///
/// ```
/// use pc_cache::{PhysAddr, SliceHash};
/// let h = SliceHash::intel_8_slice();
/// let s = h.slice_of(PhysAddr::new(0x3_6db0_0040));
/// assert!(s < 8);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct SliceHash {
    masks: [u64; 3],
    bits: u32,
}

/// Published XOR masks (Maurice et al.) for the three slice-select bits of
/// 8-slice parts. Bit 6 upward participates; bits 0..6 are the line offset.
const INTEL_MASKS: [u64; 3] = [0x1b5f575440, 0x2eb5faa880, 0x3cccc93100];

impl SliceHash {
    /// Hash for an `n`-slice cache (`n ∈ {1, 2, 4, 8}`).
    ///
    /// # Panics
    ///
    /// Panics if `slices` is not 1, 2, 4 or 8.
    pub fn for_slices(slices: u32) -> Self {
        let bits = match slices {
            1 => 0,
            2 => 1,
            4 => 2,
            8 => 3,
            _ => panic!("slice hash supports 1/2/4/8 slices, got {slices}"),
        };
        SliceHash {
            masks: INTEL_MASKS,
            bits,
        }
    }

    /// The 8-slice hash used by the paper's Xeon E5-2660.
    pub fn intel_8_slice() -> Self {
        SliceHash::for_slices(8)
    }

    /// The slice an address maps to.
    pub fn slice_of(&self, addr: PhysAddr) -> usize {
        let mut slice = 0usize;
        for bit in 0..self.bits {
            let parity = (addr.raw() & self.masks[bit as usize]).count_ones() & 1;
            slice |= (parity as usize) << bit;
        }
        slice
    }

    /// Number of slices this hash selects among.
    pub fn slices(&self) -> usize {
        1 << self.bits
    }
}

impl Default for SliceHash {
    fn default() -> Self {
        SliceHash::intel_8_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_always_in_range() {
        let h = SliceHash::intel_8_slice();
        for i in 0..10_000u64 {
            assert!(h.slice_of(PhysAddr::new(i * 64)) < 8);
        }
    }

    #[test]
    fn low_six_bits_do_not_matter() {
        // The block offset must not influence slice selection: all 64 bytes
        // of a line live in the same slice.
        let h = SliceHash::intel_8_slice();
        for base in [0x0u64, 0x1000, 0xdead_b000, 0x3_6db0_0000] {
            let s0 = h.slice_of(PhysAddr::new(base));
            for off in 1..64 {
                assert_eq!(h.slice_of(PhysAddr::new(base + off)), s0);
            }
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        // The hash is designed to spread physical pages uniformly; with
        // 64k consecutive pages each of 8 slices should get close to 1/8.
        let h = SliceHash::intel_8_slice();
        let mut counts = [0usize; 8];
        let pages = 65_536u64;
        for p in 0..pages {
            counts[h.slice_of(PhysAddr::new(p * 4096))] += 1;
        }
        let expect = pages as usize / 8;
        for &c in &counts {
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < expect as u64 / 4,
                "slice count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn fewer_slices_use_fewer_bits() {
        let h2 = SliceHash::for_slices(2);
        let h1 = SliceHash::for_slices(1);
        for i in 0..1000u64 {
            assert!(h2.slice_of(PhysAddr::new(i * 4096)) < 2);
            assert_eq!(h1.slice_of(PhysAddr::new(i * 4096)), 0);
        }
    }

    #[test]
    #[should_panic(expected = "slice hash supports")]
    fn rejects_unsupported_slice_count() {
        SliceHash::for_slices(3);
    }
}
