//! Hit/miss/eviction statistics for the simulated LLC.

/// Counters maintained by [`crate::SlicedCache`].
///
/// `io_evicted_cpu` is the paper's leak in one number: how many times an
/// incoming packet's DDIO fill displaced a CPU-domain line. Under the
/// adaptive partitioning defense it stays at (or very near) zero.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct CacheStats {
    /// CPU-domain lookups that hit.
    pub cpu_hits: u64,
    /// CPU-domain lookups that missed.
    pub cpu_misses: u64,
    /// I/O lookups (DDIO writes / reads) that hit.
    pub io_hits: u64,
    /// I/O lookups that missed.
    pub io_misses: u64,
    /// Valid lines displaced by any fill.
    pub evictions: u64,
    /// Dirty lines written back to memory on displacement/invalidation.
    pub writebacks: u64,
    /// CPU-domain lines displaced by an I/O fill — the side-channel leak.
    pub io_evicted_cpu: u64,
    /// Lines invalidated by adaptive-partition boundary moves.
    pub partition_invalidations: u64,
    /// Adaptive-defense period re-evaluations: how many times a slice's
    /// defense clock crossed a period boundary and its recently active
    /// sets were re-evaluated (see [`crate::AdaptiveConfig`]). Always 0
    /// outside `Adaptive` mode. Per-slice counts are observable through
    /// [`crate::SlicedCache::slice_stats`] — the sharded trace replay
    /// must reproduce the sequential walk's per-slice period boundaries
    /// exactly, and this counter is how tests pin that down.
    pub defense_evals: u64,
}

impl CacheStats {
    /// All counters zero.
    pub fn new() -> Self {
        CacheStats::default()
    }

    /// Folds another counter set into this one. Every field is a sum, so
    /// merging the per-slice shards of a [`crate::SlicedCache`] (in any
    /// order; slice order by convention) reproduces the totals a single
    /// shared counter set would have accumulated.
    pub fn merge(&mut self, other: CacheStats) {
        // Fault site `stat-off-by-one`: one merge inflates the CPU hit
        // total, so shard sums no longer reproduce a shared counter.
        if crate::fault::fires(crate::fault::FaultSite::StatOffByOne) {
            self.cpu_hits += 1;
        }
        self.cpu_hits += other.cpu_hits;
        self.cpu_misses += other.cpu_misses;
        self.io_hits += other.io_hits;
        self.io_misses += other.io_misses;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.io_evicted_cpu += other.io_evicted_cpu;
        self.partition_invalidations += other.partition_invalidations;
        self.defense_evals += other.defense_evals;
    }

    /// Total CPU accesses.
    pub fn cpu_accesses(&self) -> u64 {
        self.cpu_hits + self.cpu_misses
    }

    /// CPU miss rate in `[0, 1]`; 0 when there were no accesses.
    pub fn cpu_miss_rate(&self) -> f64 {
        let total = self.cpu_accesses();
        if total == 0 {
            0.0
        } else {
            self.cpu_misses as f64 / total as f64
        }
    }

    /// Total accesses from both domains.
    pub fn total_accesses(&self) -> u64 {
        self.cpu_accesses() + self.io_hits + self.io_misses
    }

    /// Overall miss rate in `[0, 1]`; 0 when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            0.0
        } else {
            (self.cpu_misses + self.io_misses) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_accesses() {
        let s = CacheStats::new();
        assert_eq!(s.cpu_miss_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = CacheStats {
            cpu_hits: 3,
            cpu_misses: 1,
            io_hits: 4,
            io_misses: 2,
            ..Default::default()
        };
        assert_eq!(s.cpu_accesses(), 4);
        assert!((s.cpu_miss_rate() - 0.25).abs() < 1e-12);
        assert_eq!(s.total_accesses(), 10);
        assert!((s.miss_rate() - 0.3).abs() < 1e-12);
    }
}
