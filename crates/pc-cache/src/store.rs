//! The contiguous structure-of-arrays line store behind
//! [`crate::SlicedCache`].
//!
//! The original implementation kept one `Vec<Option<Line>>` plus a
//! replacement-state object *per set* — 16 384 × 2 heap allocations on
//! the paper's Xeon geometry, with every lookup chasing a pointer and
//! every quota check rescanning all ways. This store flattens the whole
//! LLC into parallel arrays indexed by `set * ways + way`:
//!
//! * `lines` — one packed `u64` per line: `tag << 3 | IO | DIRTY |
//!   VALID`. A tag always fits in 61 bits because at least the 6
//!   block-offset bits are shifted off the 64-bit physical address, so
//!   the whole lookup is a single load + mask + compare per way over one
//!   contiguous array. An invalid line is the all-zero word.
//! * replacement state — flat per-line stamps / per-set PLRU bit blocks
//!   ([`crate::replacement::FlatReplacement`]).
//! * per-set bookkeeping — one packed 16-byte [`SetMeta`] record (valid
//!   count, I/O count, partition limit, activity, flags, dirty-epoch
//!   stamp) per set.
//!
//! The incrementally-maintained counters in [`SetMeta`] turn the
//! DDIO way-limit and adaptive-partition quota checks (previously
//! O(ways) rescans per access) into O(1) loads; lookups and victim
//! scans walk a single cache-line-friendly slice.

use crate::replacement::{FlatReplacement, ReplacementPolicy, Victims};
use crate::set::{Domain, EvictedLine};
use rand::rngs::SmallRng;

/// Packed-word bit: the line holds valid data.
const VALID: u64 = 1 << 0;
/// Packed-word bit: the line is dirty (write-back owed on displacement).
const DIRTY: u64 = 1 << 1;
/// Packed-word bit: the line belongs to [`Domain::Io`] (clear = CPU).
const IO: u64 = 1 << 2;
/// Bits below the tag.
const TAG_SHIFT: u32 = 3;

/// Scratch flag: set holds an elevated partition (`io_limit > min`).
pub(crate) const FLAG_ELEVATED: u8 = 1 << 1;
/// Scratch flag: set is elevated *and stable* — its last evaluation
/// proved the next one would be a pure no-op (no boundary move, no
/// eviction, no RNG draw), so the adaptive defense parks it off the
/// active worklist until new I/O activity or a flush re-engages it.
/// See `Shard::adapt` for the exact soundness condition.
pub(crate) const FLAG_PARKED: u8 = 1 << 2;

/// [`SetMeta::touch_epoch`] sentinel: "not touched in any epoch". The
/// adaptive epoch counter skips this value when it wraps, so a stamp of
/// `NEVER_TOUCHED` can never spuriously match the current epoch.
pub(crate) const NEVER_TOUCHED: u32 = u32::MAX;

#[inline]
fn pack(tag: u64, domain: Domain, dirty: bool) -> u64 {
    debug_assert!(
        tag << TAG_SHIFT >> TAG_SHIFT == tag,
        "tag overflows packed word"
    );
    (tag << TAG_SHIFT)
        | VALID
        | if dirty { DIRTY } else { 0 }
        | if domain == Domain::Io { IO } else { 0 }
}

/// Per-set bookkeeping, packed into one 16-byte record so a quota check
/// or adaptation step touches a single cache line instead of five
/// scattered arrays.
#[derive(Copy, Clone, Debug)]
pub(crate) struct SetMeta {
    /// Valid lines in the set.
    pub(crate) valid: u16,
    /// Valid [`Domain::Io`] lines in the set.
    pub(crate) io: u16,
    /// Maximum number of `Io`-domain lines this set may hold
    /// (2 under plain DDIO; 1..=3 under the adaptive defense).
    pub(crate) io_limit: u8,
    /// Adaptive-defense scratch flags
    /// ([`FLAG_ELEVATED`] / [`FLAG_PARKED`]).
    pub(crate) flags: u8,
    /// I/O accesses observed during the current adaptation period.
    pub(crate) io_activity: u32,
    /// Adaptive epoch in which the set last saw an I/O write
    /// ([`NEVER_TOUCHED`] = never). A stamp equal to the shard's current
    /// epoch means "already on the dirty worklist" — bumping the epoch
    /// after each evaluation replaces the old per-set touched-flag clear
    /// pass with a single counter increment.
    pub(crate) touch_epoch: u32,
}

impl Default for SetMeta {
    fn default() -> Self {
        SetMeta {
            valid: 0,
            io: 0,
            io_limit: 0,
            flags: 0,
            io_activity: 0,
            touch_epoch: NEVER_TOUCHED,
        }
    }
}

/// All lines of all sets, as parallel flat arrays.
#[derive(Clone, Debug)]
pub(crate) struct LineStore {
    ways: usize,
    lines: Vec<u64>,
    repl: FlatReplacement,
    /// One packed record per set.
    pub(crate) sets: Vec<SetMeta>,
}

impl LineStore {
    pub(crate) fn new(
        total_sets: usize,
        ways: usize,
        policy: ReplacementPolicy,
        io_limit: u8,
    ) -> Self {
        // 64 ways bounds the victim eligibility mask to one u64; real
        // LLCs top out well below that (the paper's part has 20).
        assert!(
            ways > 0 && ways <= 64,
            "unsupported associativity (1..=64 ways)"
        );
        LineStore {
            ways,
            lines: vec![0; total_sets * ways],
            repl: FlatReplacement::new(policy, ways, total_sets),
            sets: vec![
                SetMeta {
                    io_limit,
                    ..SetMeta::default()
                };
                total_sets
            ],
        }
    }

    #[inline]
    pub(crate) fn ways(&self) -> usize {
        self.ways
    }

    #[inline]
    fn set_lines(&self, set: usize) -> &[u64] {
        &self.lines[set * self.ways..(set + 1) * self.ways]
    }

    /// Way of set `set` holding `tag`, if present and valid.
    #[inline]
    pub(crate) fn lookup(&self, set: usize, tag: u64) -> Option<usize> {
        let key = (tag << TAG_SHIFT) | VALID;
        // Dirty/domain bits vary per line; mask them off so the compare
        // is tag+valid only.
        self.set_lines(set)
            .iter()
            .position(|&w| w & !(DIRTY | IO) == key)
    }

    /// Records a recency touch of `(set, way)`.
    #[inline]
    pub(crate) fn touch(&mut self, set: usize, way: usize) {
        self.repl.touch(set, self.ways, way);
    }

    /// Sets the dirty bit of a valid line.
    #[inline]
    pub(crate) fn mark_dirty(&mut self, set: usize, way: usize) {
        let w = &mut self.lines[set * self.ways + way];
        if *w & VALID != 0 {
            *w |= DIRTY;
        }
    }

    /// Clears the dirty bit (after a coherence writeback), reporting
    /// whether it was set.
    #[inline]
    pub(crate) fn clean(&mut self, set: usize, way: usize) -> bool {
        let w = &mut self.lines[set * self.ways + way];
        if *w & (VALID | DIRTY) == VALID | DIRTY {
            *w &= !DIRTY;
            true
        } else {
            false
        }
    }

    /// Number of valid lines of `domain` in `set` — O(1) from the
    /// incrementally maintained counters.
    #[inline]
    pub(crate) fn count_domain(&self, set: usize, domain: Domain) -> usize {
        let m = &self.sets[set];
        match domain {
            Domain::Io => m.io as usize,
            Domain::Cpu => (m.valid - m.io) as usize,
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    pub(crate) fn valid_count(&self, set: usize) -> usize {
        self.sets[set].valid as usize
    }

    #[inline]
    fn retire(&mut self, set: usize, way: usize) -> u64 {
        let idx = set * self.ways + way;
        let w = self.lines[idx];
        debug_assert!(w & VALID != 0);
        self.lines[idx] = 0;
        self.sets[set].valid -= 1;
        if w & IO != 0 {
            self.sets[set].io -= 1;
        }
        w
    }

    #[inline]
    fn install(&mut self, set: usize, way: usize, tag: u64, domain: Domain, dirty: bool) {
        self.lines[set * self.ways + way] = pack(tag, domain, dirty);
        self.sets[set].valid += 1;
        if domain == Domain::Io {
            self.sets[set].io += 1;
        }
        self.repl.touch(set, self.ways, way);
    }

    /// Invalidates `tag` in `set` if present, reporting whether it was
    /// dirty.
    pub(crate) fn invalidate(&mut self, set: usize, tag: u64) -> Option<bool> {
        let way = self.lookup(set, tag)?;
        let w = self.retire(set, way);
        Some(w & DIRTY != 0)
    }

    /// Invalidates every line of every set, returning the number of dirty
    /// writebacks. Counters and scratch state other than line metadata
    /// are untouched (activity counters keep accumulating across a
    /// flush, exactly as the per-set implementation did).
    pub(crate) fn invalidate_all(&mut self) -> usize {
        let dirty = self
            .lines
            .iter()
            .filter(|&&w| w & (VALID | DIRTY) == (VALID | DIRTY))
            .count();
        self.lines.fill(0);
        for m in &mut self.sets {
            m.valid = 0;
            m.io = 0;
        }
        dirty
    }

    /// Evicts the least-recently-used line of `domain` in `set`, if any,
    /// reporting whether it was dirty.
    ///
    /// Used by the adaptive defense when the I/O/CPU boundary moves and a
    /// line on the losing side must be invalidated (with writeback).
    pub(crate) fn evict_lru_of_domain(
        &mut self,
        set: usize,
        domain: Domain,
        rng: &mut SmallRng,
    ) -> Option<bool> {
        let mask = eligibility_mask(self.set_lines(set), Victims::Only(domain));
        let way = self.repl.victim(set, self.ways, rng, mask)?;
        let w = self.retire(set, way);
        Some(w & DIRTY != 0)
    }

    /// Inserts `tag` into `set`. Invalid ways are always preferred;
    /// otherwise the replacement policy picks a victim among valid ways
    /// whose current domain satisfies `victims`.
    ///
    /// Returns the filled way and the displaced line (if a valid line was
    /// displaced), or `None` when the set is full and no way is eligible
    /// — the caller decides how to widen eligibility.
    #[inline]
    pub(crate) fn fill(
        &mut self,
        set: usize,
        tag: u64,
        domain: Domain,
        dirty: bool,
        rng: &mut SmallRng,
        victims: Victims,
    ) -> Option<(usize, Option<EvictedLine>)> {
        if (self.sets[set].valid as usize) < self.ways {
            let way = self
                .set_lines(set)
                .iter()
                .position(|&w| w & VALID == 0)
                .expect("valid_count says an invalid way exists");
            self.install(set, way, tag, domain, dirty);
            return Some((way, None));
        }
        self.fill_no_invalid(set, tag, domain, dirty, rng, victims)
    }

    /// Like [`LineStore::fill`] but never takes an invalid way: a victim
    /// is always chosen among the *valid* ways satisfying `victims`.
    ///
    /// Used when a quota forbids expanding into free ways (e.g. a CPU fill
    /// whose partition is already full must recycle a CPU line even if an
    /// invalid way — reserved for I/O — exists).
    #[inline]
    pub(crate) fn fill_no_invalid(
        &mut self,
        set: usize,
        tag: u64,
        domain: Domain,
        dirty: bool,
        rng: &mut SmallRng,
        victims: Victims,
    ) -> Option<(usize, Option<EvictedLine>)> {
        let way = {
            let lines = self.set_lines(set);
            if let FlatReplacement::Lru { stamps, .. } = &self.repl {
                // Fast path for the default policy: one fused pass over
                // lines + stamps (eligibility and min-stamp together), no
                // intermediate mask. Ties keep the lowest way, matching
                // the mask walk and the original first-minimum scan.
                let stamps = &stamps[set * self.ways..(set + 1) * self.ways];
                let mut best: Option<usize> = None;
                for (w, &word) in lines.iter().enumerate() {
                    if eligible(word, victims) && best.is_none_or(|b| stamps[w] < stamps[b]) {
                        best = Some(w);
                    }
                }
                best
            } else {
                let mask = eligibility_mask(lines, victims);
                self.repl.victim(set, self.ways, rng, mask)
            }
        }?;
        let old = self.retire(set, way);
        self.install(set, way, tag, domain, dirty);
        Some((
            way,
            Some(EvictedLine {
                dirty: old & DIRTY != 0,
                was_cpu: old & IO == 0,
            }),
        ))
    }
}

/// Whether a packed word is a valid line the policy may displace.
#[inline]
fn eligible(word: u64, victims: Victims) -> bool {
    match victims {
        Victims::Any => word & VALID != 0,
        Victims::Only(Domain::Io) => word & (VALID | IO) == (VALID | IO),
        Victims::Only(Domain::Cpu) => word & (VALID | IO) == VALID,
    }
}

/// One branch-free pass over a set's packed words, producing the victim
/// eligibility mask the replacement scan consumes (bit `w` set = way `w`
/// is a valid line the policy may displace).
#[inline]
fn eligibility_mask(lines: &[u64], victims: Victims) -> u64 {
    let mut mask = 0u64;
    for (w, &word) in lines.iter().enumerate() {
        mask |= u64::from(eligible(word, victims)) << w;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    fn store(ways: usize) -> LineStore {
        // Two sets so cross-set independence is exercised; tests use set 1.
        LineStore::new(2, ways, ReplacementPolicy::Lru, 2)
    }

    const S: usize = 1;

    #[test]
    fn fill_prefers_invalid_ways() {
        let mut st = store(4);
        let mut r = rng();
        for t in 0..4 {
            let (_, ev) = st
                .fill(S, t, Domain::Cpu, false, &mut r, Victims::Any)
                .unwrap();
            assert!(ev.is_none());
        }
        assert_eq!(st.valid_count(S), 4);
        assert_eq!(st.valid_count(0), 0, "other sets untouched");
    }

    #[test]
    fn full_set_evicts_lru() {
        let mut st = store(2);
        let mut r = rng();
        st.fill(S, 10, Domain::Cpu, false, &mut r, Victims::Any)
            .unwrap();
        st.fill(S, 11, Domain::Cpu, false, &mut r, Victims::Any)
            .unwrap();
        let (_, ev) = st
            .fill(S, 12, Domain::Cpu, false, &mut r, Victims::Any)
            .unwrap();
        assert!(ev.is_some());
        assert!(
            st.lookup(S, 10).is_none(),
            "tag 10 was LRU and must be gone"
        );
        assert!(st.lookup(S, 11).is_some());
        assert!(st.lookup(S, 12).is_some());
    }

    #[test]
    fn eligibility_restricts_victims() {
        let mut st = store(2);
        let mut r = rng();
        st.fill(S, 1, Domain::Cpu, false, &mut r, Victims::Any)
            .unwrap();
        st.fill(S, 2, Domain::Io, false, &mut r, Victims::Any)
            .unwrap();
        // Only Io lines may be displaced:
        let (_, ev) = st
            .fill(S, 3, Domain::Io, true, &mut r, Victims::Only(Domain::Io))
            .unwrap();
        let ev = ev.expect("must displace the Io line");
        assert!(!ev.was_cpu);
        assert!(st.lookup(S, 1).is_some(), "CPU line must survive");
    }

    #[test]
    fn fill_with_nothing_eligible_returns_none() {
        let mut st = store(2);
        let mut r = rng();
        st.fill(S, 1, Domain::Cpu, false, &mut r, Victims::Any)
            .unwrap();
        st.fill(S, 2, Domain::Cpu, false, &mut r, Victims::Any)
            .unwrap();
        assert!(st
            .fill(S, 3, Domain::Io, false, &mut r, Victims::Only(Domain::Io))
            .is_none());
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut st = store(1);
        let mut r = rng();
        st.fill(S, 1, Domain::Cpu, true, &mut r, Victims::Any)
            .unwrap();
        let (_, ev) = st
            .fill(S, 2, Domain::Cpu, false, &mut r, Victims::Any)
            .unwrap();
        let ev = ev.unwrap();
        assert!(ev.dirty);
        assert!(ev.was_cpu);
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut st = store(2);
        let mut r = rng();
        st.fill(S, 5, Domain::Io, true, &mut r, Victims::Any)
            .unwrap();
        assert_eq!(st.invalidate(S, 5), Some(true));
        assert_eq!(st.invalidate(S, 5), None);
        assert_eq!(
            st.count_domain(S, Domain::Io),
            0,
            "counter tracks invalidation"
        );
    }

    #[test]
    fn evict_lru_of_domain_targets_domain() {
        let mut st = store(3);
        let mut r = rng();
        st.fill(S, 1, Domain::Cpu, false, &mut r, Victims::Any)
            .unwrap();
        st.fill(S, 2, Domain::Io, true, &mut r, Victims::Any)
            .unwrap();
        st.fill(S, 3, Domain::Cpu, false, &mut r, Victims::Any)
            .unwrap();
        assert_eq!(st.evict_lru_of_domain(S, Domain::Io, &mut r), Some(true));
        assert_eq!(st.count_domain(S, Domain::Io), 0);
        assert_eq!(st.count_domain(S, Domain::Cpu), 2);
        assert_eq!(st.evict_lru_of_domain(S, Domain::Io, &mut r), None);
    }

    #[test]
    fn domain_counts_are_incremental() {
        let mut st = store(4);
        let mut r = rng();
        st.fill(S, 1, Domain::Cpu, false, &mut r, Victims::Any)
            .unwrap();
        st.fill(S, 2, Domain::Io, false, &mut r, Victims::Any)
            .unwrap();
        st.fill(S, 3, Domain::Io, false, &mut r, Victims::Any)
            .unwrap();
        assert_eq!(st.count_domain(S, Domain::Cpu), 1);
        assert_eq!(st.count_domain(S, Domain::Io), 2);
        // Cross-domain displacement updates both counters.
        st.fill(S, 4, Domain::Cpu, false, &mut r, Victims::Any)
            .unwrap(); // takes way 3
        let (_, ev) = st
            .fill(S, 5, Domain::Cpu, false, &mut r, Victims::Only(Domain::Io))
            .unwrap();
        assert!(!ev.unwrap().was_cpu);
        assert_eq!(st.count_domain(S, Domain::Cpu), 3);
        assert_eq!(st.count_domain(S, Domain::Io), 1);
    }

    #[test]
    fn invalidate_all_counts_dirty_writebacks() {
        let mut st = store(4);
        let mut r = rng();
        st.fill(S, 1, Domain::Cpu, true, &mut r, Victims::Any)
            .unwrap();
        st.fill(S, 2, Domain::Io, true, &mut r, Victims::Any)
            .unwrap();
        st.fill(S, 3, Domain::Io, false, &mut r, Victims::Any)
            .unwrap();
        assert_eq!(st.invalidate_all(), 2);
        assert_eq!(st.valid_count(S), 0);
        assert_eq!(st.count_domain(S, Domain::Io), 0);
    }

    #[test]
    fn clean_clears_dirty_once() {
        let mut st = store(2);
        let mut r = rng();
        let (way, _) = st
            .fill(S, 9, Domain::Cpu, true, &mut r, Victims::Any)
            .unwrap();
        assert!(st.clean(S, way));
        assert!(!st.clean(S, way));
    }

    #[test]
    fn huge_tags_pack_without_collision() {
        // Largest possible tag: a u64 address with only the 6 offset bits
        // shifted off still fits the packed word's 61 tag bits.
        let mut st = store(2);
        let mut r = rng();
        let big = u64::MAX >> 6;
        st.fill(S, big, Domain::Io, true, &mut r, Victims::Any)
            .unwrap();
        st.fill(S, big - 1, Domain::Cpu, false, &mut r, Victims::Any)
            .unwrap();
        assert!(st.lookup(S, big).is_some());
        assert!(st.lookup(S, big - 1).is_some());
        assert_eq!(st.invalidate(S, big), Some(true));
        assert!(st.lookup(S, big - 1).is_some());
    }
}
