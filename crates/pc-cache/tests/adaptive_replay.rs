//! The slice-parallel *adaptive* trace replay against its two oracles.
//!
//! PR 2 sharded the LLC for `Disabled`/`Enabled` traces; this suite
//! pins down the property that let adaptive traces join them: each
//! slice's defense period runs off a per-slice access-count clock, so a
//! shard replaying its bin reconstructs the sequential walk's
//! adaptation schedule **exactly** — not just the final aggregate
//! numbers, but the per-slice period boundaries themselves
//! (`CacheStats::defense_evals` via `SlicedCache::slice_stats`), the
//! partition boundaries of every set, and the residency.
//!
//! Two oracles:
//!
//! * the sequential clock-advancing walk (`run_trace_threads(ops, 1)`),
//!   which is what `PC_BENCH_THREADS=1` runs in CI;
//! * the pre-refactor [`ReferenceCache`] driven one op at a time.

use pc_cache::reference::ReferenceCache;
use pc_cache::{
    AccessKind, AdaptiveConfig, CacheGeometry, CacheOp, DdioMode, Domain, Hierarchy, PhysAddr,
    SlicedCache,
};

/// A mixed trace long enough to clear the sharded-dispatch threshold,
/// touching many sets of every slice with an I/O-heavy kind mix.
fn long_mixed_trace(n: u64) -> Vec<CacheOp> {
    (0..n)
        .map(|i| {
            let kind = match i % 5 {
                0 | 3 => AccessKind::IoWrite,
                1 => AccessKind::CpuWrite,
                2 => AccessKind::IoRead,
                _ => AccessKind::CpuRead,
            };
            // A multiplicative walk so addresses spread over sets and
            // slices without being uniform noise (sets re-conflict).
            CacheOp::new(
                PhysAddr::new((i.wrapping_mul(0x9e37) % 12_289) * 0x1040),
                kind,
            )
        })
        .collect()
}

fn adaptive_modes() -> Vec<DdioMode> {
    vec![
        DdioMode::adaptive(),
        DdioMode::Adaptive(AdaptiveConfig {
            period: 48,
            t_high: 3,
            t_low: 2,
            min_io_lines: 1,
            max_io_lines: 3,
        }),
    ]
}

/// The headline regression: for every worker count the sharded replay
/// must reproduce the sequential walk's per-slice defense re-evaluation
/// counts exactly — a thread-scheduling bug that merely preserved
/// totals (or final stats) would slip past aggregate comparisons.
#[test]
fn sharded_adaptive_replay_reproduces_per_slice_period_boundaries() {
    let ops = long_mixed_trace(10_000);
    for mode in adaptive_modes() {
        for geom in [CacheGeometry::tiny(), CacheGeometry::xeon_e5_2660()] {
            let mut seq = Hierarchy::new(geom, mode);
            let want = seq.run_trace_threads(&ops, 1);
            let evals_per_slice: Vec<u64> = (0..geom.slices())
                .map(|s| seq.llc().slice_stats(s).defense_evals)
                .collect();
            assert!(
                evals_per_slice.iter().all(|&e| e > 0),
                "every slice must cross period boundaries for the test to bite: {evals_per_slice:?}"
            );
            for threads in [2usize, 4] {
                let mut par = Hierarchy::new(geom, mode);
                let got = par.run_trace_threads(&ops, threads);
                assert_eq!(got, want, "{mode:?} threads={threads}");
                assert_eq!(par.now(), seq.now());
                assert_eq!(par.memory_stats(), seq.memory_stats());
                for (slice, &want_evals) in evals_per_slice.iter().enumerate() {
                    assert_eq!(
                        par.llc().slice_stats(slice),
                        seq.llc().slice_stats(slice),
                        "per-slice stats diverged: {mode:?} threads={threads} slice={slice}"
                    );
                    assert_eq!(
                        par.llc().slice_stats(slice).defense_evals,
                        want_evals,
                        "period boundary count diverged: threads={threads} slice={slice}"
                    );
                }
            }
        }
    }
}

/// The sharded adaptive replay against the reference model: identical
/// statistics (defense re-evaluations included), partition boundaries
/// and residency for 1/2/4 workers.
#[test]
fn sharded_adaptive_replay_matches_reference_model() {
    let ops = long_mixed_trace(9_000);
    let geom = CacheGeometry::tiny();
    for mode in adaptive_modes() {
        let mut reference = ReferenceCache::new(geom, mode);
        for &op in &ops {
            reference.access(op.addr, op.kind);
        }
        for threads in [1usize, 2, 4] {
            let mut h = Hierarchy::new(geom, mode);
            h.run_trace_threads(&ops, threads);
            assert_eq!(
                h.llc().stats(),
                reference.stats(),
                "{mode:?} threads={threads}"
            );
            for &op in &ops {
                let ss = h.llc().locate(op.addr);
                assert_eq!(h.llc().contains(op.addr), reference.contains(op.addr));
                assert_eq!(
                    h.llc().io_partition_limit(ss),
                    reference.io_partition_limit(ss),
                    "partition boundary diverged at {ss}: threads={threads}"
                );
                assert_eq!(
                    h.llc().domain_count(ss, Domain::Io),
                    reference.domain_count(ss, Domain::Io)
                );
            }
        }
    }
}

/// Chunked replay (how `Workbench`-style drivers feed the hierarchy)
/// agrees with one-shot replay and with the scalar entry points: the
/// defense clock ticks per access, so batch boundaries can't shift
/// period boundaries.
#[test]
fn chunked_adaptive_replay_is_chunk_and_thread_invariant() {
    let ops = long_mixed_trace(8_192);
    let geom = CacheGeometry::tiny();
    let mode = DdioMode::adaptive();

    let mut scalar = Hierarchy::new(geom, mode);
    for &op in &ops {
        match op.kind {
            AccessKind::CpuRead => scalar.cpu_read(op.addr),
            AccessKind::CpuWrite => scalar.cpu_write(op.addr),
            AccessKind::IoWrite => scalar.io_write(op.addr),
            AccessKind::IoRead => scalar.io_read(op.addr),
        };
    }

    for (chunk, threads) in [(ops.len(), 2), (4_096, 4), (1_024, 2)] {
        let mut h = Hierarchy::new(geom, mode);
        for part in ops.chunks(chunk) {
            h.run_trace_threads(part, threads);
        }
        assert_eq!(h.now(), scalar.now(), "chunk={chunk} threads={threads}");
        assert_eq!(h.memory_stats(), scalar.memory_stats());
        for slice in 0..geom.slices() {
            assert_eq!(
                h.llc().slice_stats(slice),
                scalar.llc().slice_stats(slice),
                "chunk={chunk} threads={threads} slice={slice}"
            );
        }
    }
}

/// The batch dispatcher's cache-level entry point keeps adapting inside
/// a single large batch (the old cycle-stamped API re-evaluated at most
/// once per batch because the whole batch shared one clock value).
#[test]
fn adaptation_fires_inside_one_batch() {
    let ops = long_mixed_trace(6_000);
    let mut llc = SlicedCache::new(CacheGeometry::tiny(), DdioMode::adaptive());
    llc.access_batch(&ops);
    let evals = llc.stats().defense_evals;
    assert!(
        evals >= ops.len() as u64 / (2 * AdaptiveConfig::paper_defaults().period),
        "one batch must keep crossing period boundaries, saw {evals}"
    );
}
