//! Kill tests for the cache-side fault catalog: every injected mutant
//! must be caught by the cheap op-stream differential detector.
//!
//! This is the suite-of-suites check the fault layer exists for
//! (`pc_cache::fault`): a differential test that has never failed can
//! be vacuous, so each catalog site is armed in turn and the detector —
//! four engines (per-access oracle, streaming applier, buffered batch,
//! pinned two-worker sharded replay) compared on clock, memory
//! traffic, merged *and* per-slice statistics, and residency — must
//! report a divergence (or panic, which also counts: a mutant that
//! trips an internal assertion is dead). The same detector with no
//! fault armed must stay silent — the negative control pinning that
//! the injection hooks themselves perturb nothing.
//!
//! The four rx-engine sites (`dropped-deferred-read`,
//! `burst-flush-elision`, `swapped-segment-subtotal`,
//! `stale-deferred-segment-index`) live above this crate; their kill
//! tests are `crates/core/tests/fault_kill_rx.rs`. The monitor site
//! (`cross-epoch-misclassify`) is killed by
//! `crates/pc-probe/tests/fault_kill_probe.rs`.

use pc_cache::fault::{self, FaultSite, FaultSpec};
use pc_cache::{
    AccessKind, AdaptiveConfig, CacheGeometry, CacheOp, CacheStats, DdioMode, Hierarchy, OpBuffer,
    OpSink, PhysAddr,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// The fault state is process-global; tests that arm serialize here.
static LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The op_fuzz stream shape: mixed kinds, occasional leads, a hot
/// conflict region so LRU order and slice skew both matter.
fn fuzz_stream(seed: u64, len: usize) -> Vec<CacheOp> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let line = if rng.gen_range(0..100) < 60 {
                rng.gen_range(0..64u64)
            } else {
                rng.gen_range(0..(1 << 16))
            };
            let kind = match rng.gen_range(0..100u32) {
                p if p < 25 => AccessKind::IoWrite,
                p if p < 35 => AccessKind::IoRead,
                p if p < 55 => AccessKind::CpuWrite,
                _ => AccessKind::CpuRead,
            };
            let lead = if rng.gen_range(0..8u32) == 0 {
                rng.gen_range(1..500u64)
            } else {
                0
            };
            CacheOp::new(PhysAddr::new(line * 64), kind).after(lead)
        })
        .collect()
}

fn modes() -> [DdioMode; 3] {
    [
        DdioMode::Disabled,
        DdioMode::enabled(),
        DdioMode::Adaptive(AdaptiveConfig {
            period: 16,
            ..AdaptiveConfig::paper_defaults()
        }),
    ]
}

fn slice_stats(h: &Hierarchy) -> Vec<CacheStats> {
    (0..h.llc().geometry().slices())
        .map(|s| h.llc().slice_stats(s))
        .collect()
}

/// First observable difference between an engine and the oracle, if
/// any. Merged stats are compared as well as per-slice ones: the
/// aggregation layer is a catalog site of its own.
fn differs(oracle: &Hierarchy, other: &Hierarchy, ops: &[CacheOp]) -> Option<String> {
    if oracle.now() != other.now() {
        return Some(format!("clock {} != {}", other.now(), oracle.now()));
    }
    if oracle.memory_stats() != other.memory_stats() {
        return Some("memory traffic".into());
    }
    if oracle.llc().stats() != other.llc().stats() {
        return Some("merged LLC stats".into());
    }
    if slice_stats(oracle) != slice_stats(other) {
        return Some("per-slice LLC stats".into());
    }
    for op in ops {
        if oracle.llc().contains(op.addr) != other.llc().contains(op.addr) {
            return Some(format!("residency of {:?}", op.addr));
        }
    }
    None
}

/// The detector: replays seeded streams through all four engines over
/// carried state (six rounds per mode — enough consultations for every
/// counter site's trigger range) and reports the first divergence.
fn detect(stream_seed: u64) -> Option<String> {
    let geom = CacheGeometry::tiny();
    for mode in modes() {
        let mut oracle = Hierarchy::new(geom, mode);
        let mut streaming = Hierarchy::new(geom, mode);
        let mut batch = Hierarchy::new(geom, mode);
        let mut sharded = Hierarchy::new(geom, mode);
        let mut buf = OpBuffer::new();
        for round in 0..6u64 {
            let ops = fuzz_stream(pc_par::mix_seed(stream_seed, round), 6000);
            for &op in &ops {
                oracle.op(op);
            }
            oracle.advance(17);
            {
                let mut sink = streaming.applier();
                for &op in &ops {
                    sink.op(op);
                }
                sink.advance(17);
            }
            buf.clear();
            for &op in &ops {
                buf.op(op);
            }
            buf.advance(17);
            batch.run_ops(&buf);
            sharded.run_trace_threads(&ops, 2);
            sharded.advance(17);
            for (name, h) in [
                ("streaming", &streaming),
                ("batch", &batch),
                ("sharded", &sharded),
            ] {
                if let Some(d) = differs(&oracle, h, &ops) {
                    return Some(format!("{mode:?} round {round}: {name} vs oracle: {d}"));
                }
            }
        }
    }
    None
}

/// The nine catalog sites whose mutation lives at or below the
/// op-stream engines (the two rx sites are killed in pc-core's suite).
const CACHE_SITES: [FaultSite; 9] = [
    FaultSite::StatOffByOne,
    FaultSite::DroppedFlush,
    FaultSite::StaleLru,
    FaultSite::SwappedSliceBin,
    FaultSite::CorruptedLead,
    FaultSite::SkippedDefenseEval,
    FaultSite::StaleDirtySet,
    FaultSite::SkippedEpochBump,
    FaultSite::TruncatedLead,
];

#[test]
fn every_cache_fault_site_is_killed_for_every_seed() {
    let _g = serialized();
    let mut survivors = Vec::new();
    for site in CACHE_SITES {
        for seed in 0..3u64 {
            fault::arm(FaultSpec {
                site,
                seed,
                nth: None,
            });
            let outcome = catch_unwind(AssertUnwindSafe(|| detect(0xD1FF)));
            let consultations = fault::consultations();
            fault::disarm();
            let killed = !matches!(outcome, Ok(None));
            if !killed {
                survivors.push(format!(
                    "{}:{seed} survived ({consultations} consultations)",
                    site.name()
                ));
            }
        }
    }
    assert!(
        survivors.is_empty(),
        "surviving mutants:\n{}",
        survivors.join("\n")
    );
}

/// Negative control: with nothing armed the very same detector must be
/// silent — the arming hooks on the hot paths perturb nothing.
#[test]
fn detector_is_silent_with_no_fault_armed() {
    let _g = serialized();
    fault::disarm();
    for stream_seed in [0xD1FF, 0x5EED] {
        assert_eq!(detect(stream_seed), None);
    }
}

/// Arming and disarming leaves no residue: a kill round followed by a
/// clean round reproduces the clean round exactly.
#[test]
fn disarm_restores_clean_behaviour() {
    let _g = serialized();
    fault::arm(FaultSpec {
        site: FaultSite::CorruptedLead,
        seed: 0,
        nth: Some(1), // every key: maximally invasive
    });
    let armed = catch_unwind(AssertUnwindSafe(|| detect(0xD1FF)));
    fault::disarm();
    assert!(
        !matches!(armed, Ok(None)),
        "an every-key lead skew must be detected"
    );
    assert_eq!(detect(0xD1FF), None, "disarm must fully restore");
}
