//! Incremental vs full-scan defense re-evaluation, pinned against the
//! [`ReferenceCache`] oracle.
//!
//! PR 8 replaced the sharded engine's per-period full revisit scan with
//! a dirty-set worklist plus per-set epoch stamps and a parked-set skip
//! (see `shard.rs::adapt` and the "Adaptive defense" section of
//! ARCHITECTURE.md). The reference model deliberately keeps the old
//! full scan verbatim, so every comparison here is incremental-vs-full:
//! if the worklist ever skips an evaluation that was *not* a provable
//! no-op — wrong park condition, stale dirty entry, missed flush
//! re-engagement — these tests see a partition boundary, a
//! `defense_evals` count, a displaced-line writeback or an RNG-driven
//! victim choice drift.
//!
//! Pinned observables, per the suite's contract:
//!
//! * **partition sizes at every period boundary** — in fact after every
//!   single access: the full `io_partition_limit` + I/O-occupancy map
//!   of all 32 sets of the tiny geometry is swept in lockstep;
//! * **per-slice `defense_evals`** — the threaded engines' per-slice
//!   statistics must match the scalar engine's exactly (the reference
//!   model only exposes merged stats, which are compared too);
//! * **displaced-line writebacks** — `writebacks` and
//!   `partition_invalidations` ride along in every stats comparison;
//! * **all [`DdioMode`]s × [`ReplacementPolicy`]s × {1, 2, 4} threads**
//!   — `Random` replacement included, because parked-set skipping is
//!   only sound if skipped evaluations draw no RNG;
//! * **adversarial oscillation** — streams that push a target band of
//!   sets' per-period I/O activity right around `t_low`/`t_high`, so
//!   partitions grow, shrink and park/unpark continuously instead of
//!   saturating at `max_io_lines`, plus mid-stream flushes that break
//!   every parked set's stability premise.

use pc_cache::reference::ReferenceCache;
use pc_cache::{
    AccessKind, AdaptiveConfig, CacheGeometry, CacheOp, CacheStats, DdioMode, Domain, PhysAddr,
    ReplacementPolicy, SliceSet, SlicedCache,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn modes() -> Vec<DdioMode> {
    vec![
        DdioMode::Disabled,
        DdioMode::enabled(),
        // Paper defaults: t_high = 1 with the presence floor, so limits
        // ratchet to max and park — the skip machinery's best case.
        DdioMode::Adaptive(AdaptiveConfig {
            period: 16,
            ..AdaptiveConfig::paper_defaults()
        }),
        // Tight equal thresholds: activity 3 shrinks, 4 grows — every
        // period can move the boundary, the skip machinery's worst case.
        DdioMode::Adaptive(AdaptiveConfig {
            period: 16,
            t_high: 4,
            t_low: 4,
            min_io_lines: 1,
            max_io_lines: 3,
        }),
    ]
}

fn policies() -> [ReplacementPolicy; 3] {
    [
        ReplacementPolicy::Lru,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Random,
    ]
}

/// Sweeps the whole partition map: boundary and I/O occupancy of every
/// (slice, set) must agree between the incremental engine and the
/// full-scan oracle.
fn assert_partition_map(soa: &SlicedCache, reference: &ReferenceCache, what: &str) {
    let geom = soa.geometry();
    for slice in 0..geom.slices() {
        for set in 0..geom.sets_per_slice() {
            let ss = SliceSet::new(slice, set);
            assert_eq!(
                soa.io_partition_limit(ss),
                reference.io_partition_limit(ss),
                "{what}: partition boundary at {ss}"
            );
            assert_eq!(
                soa.domain_count(ss, Domain::Io),
                reference.domain_count(ss, Domain::Io),
                "{what}: I/O occupancy at {ss}"
            );
        }
    }
}

fn slice_stats(c: &SlicedCache) -> Vec<CacheStats> {
    (0..c.geometry().slices())
        .map(|s| c.slice_stats(s))
        .collect()
}

/// An adversarial stream oscillating around the quota thresholds: each
/// period-sized phase either floods a small band of sets with DMA
/// writes (activity ≥ `t_high` → grow), starves them behind pure CPU
/// traffic (activity < `t_low` → shrink), or trickles exactly
/// threshold-many I/O writes so the boundary decision rides the edge.
/// CPU traffic conflicts in the same band, so boundary moves displace
/// real (often dirty) lines.
fn oscillating_stream(
    seed: u64,
    phases: usize,
    cfg: AdaptiveConfig,
) -> Vec<(PhysAddr, AccessKind)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    // ~4 hot sets per slice: lines 0..8 on the tiny geometry.
    let hot_line = |rng: &mut SmallRng| rng.gen_range(0..8u64);
    for phase in 0..phases {
        let len = cfg.period as usize; // one slice period per phase, roughly
        match phase % 3 {
            0 => {
                // Flood: every access an I/O write into the hot band.
                for _ in 0..len {
                    ops.push((PhysAddr::new(hot_line(&mut rng) * 64), AccessKind::IoWrite));
                }
            }
            1 => {
                // Starve: CPU reads/writes only, same band (conflict).
                for _ in 0..len {
                    let kind = if rng.gen_bool(0.5) {
                        AccessKind::CpuWrite
                    } else {
                        AccessKind::CpuRead
                    };
                    ops.push((PhysAddr::new(hot_line(&mut rng) * 64), kind));
                }
            }
            _ => {
                // Trickle: threshold-straddling I/O count, CPU filler.
                let io = rng.gen_range(cfg.t_low.saturating_sub(1)..=cfg.t_high) as usize;
                for i in 0..len {
                    let kind = if i < io {
                        AccessKind::IoWrite
                    } else if rng.gen_bool(0.3) {
                        AccessKind::IoRead
                    } else {
                        AccessKind::CpuWrite
                    };
                    ops.push((PhysAddr::new(hot_line(&mut rng) * 64), kind));
                }
            }
        }
    }
    ops
}

/// A broad mixed stream (every slice, every kind, wide address range).
fn mixed_stream(seed: u64, len: usize) -> Vec<(PhysAddr, AccessKind)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let line = if rng.gen_bool(0.6) {
                rng.gen_range(0..48u64)
            } else {
                rng.gen_range(0..(1 << 12))
            };
            let kind = match rng.gen_range(0..10u32) {
                0..=2 => AccessKind::IoWrite,
                3 => AccessKind::IoRead,
                4..=6 => AccessKind::CpuWrite,
                _ => AccessKind::CpuRead,
            };
            (PhysAddr::new(line * 64), kind)
        })
        .collect()
}

/// Scalar lockstep: incremental engine vs full-scan oracle, the whole
/// partition map swept after **every** access (which subsumes "at every
/// period boundary"), merged stats (defense evals, displaced-line
/// writebacks, partition invalidations) at the end.
fn assert_lockstep(
    mode: DdioMode,
    policy: ReplacementPolicy,
    seed: u64,
    ops: &[(PhysAddr, AccessKind)],
    flush_at: Option<usize>,
) {
    let geom = CacheGeometry::tiny();
    let mut soa = SlicedCache::with_policy_and_seed(geom, mode, policy, seed);
    let mut reference = ReferenceCache::with_policy_and_seed(geom, mode, policy, seed);
    for (i, &(a, k)) in ops.iter().enumerate() {
        if flush_at == Some(i) {
            assert_eq!(
                soa.flush_all(),
                reference.flush_all(),
                "flush writebacks diverged at op {i}: {mode:?} {policy:?}"
            );
        }
        let got = soa.access(a, k);
        let want = reference.access(a, k);
        assert_eq!(got, want, "outcome diverged at op {i}: {mode:?} {policy:?}");
        assert_partition_map(&soa, &reference, &format!("op {i} {mode:?} {policy:?}"));
    }
    assert_eq!(
        soa.stats(),
        reference.stats(),
        "merged stats diverged: {mode:?} {policy:?}"
    );
}

/// Threaded legs: the same trace through `access_batch_threads` at
/// {1, 2, 4} workers, in period-sized chunks so every comparison lands
/// on (or straddles) a period boundary. Per-slice statistics — each
/// slice's own `defense_evals` included — must match the scalar
/// engine's; merged stats and the partition map must match the oracle.
fn assert_threaded(
    mode: DdioMode,
    policy: ReplacementPolicy,
    seed: u64,
    ops: &[(PhysAddr, AccessKind)],
) {
    let geom = CacheGeometry::tiny();
    let chunk = match mode {
        DdioMode::Adaptive(cfg) => cfg.period as usize,
        _ => 16,
    };
    let mut scalar = SlicedCache::with_policy_and_seed(geom, mode, policy, seed);
    let mut reference = ReferenceCache::with_policy_and_seed(geom, mode, policy, seed);
    for &(a, k) in ops {
        scalar.access(a, k);
        reference.access(a, k);
    }
    let scalar_per_slice = slice_stats(&scalar);
    for threads in [1usize, 2, 4] {
        let mut sharded = SlicedCache::with_policy_and_seed(geom, mode, policy, seed);
        for batch in ops.chunks(chunk) {
            let batch: Vec<CacheOp> = batch.iter().map(|&t| t.into()).collect();
            sharded.access_batch_threads(&batch, threads);
        }
        assert_eq!(
            slice_stats(&sharded),
            scalar_per_slice,
            "per-slice stats (incl. defense_evals) diverged: {mode:?} {policy:?} threads={threads}"
        );
        assert_eq!(
            sharded.stats(),
            reference.stats(),
            "merged stats diverged: {mode:?} {policy:?} threads={threads}"
        );
        assert_partition_map(
            &sharded,
            &reference,
            &format!("end state {mode:?} {policy:?} threads={threads}"),
        );
        for &(a, _) in ops {
            assert_eq!(
                sharded.contains(a),
                reference.contains(a),
                "residency diverged for {a}: {mode:?} {policy:?} threads={threads}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Mixed random traces, scalar lockstep: every mode × policy, with
    /// a mid-stream flush (which must re-engage every parked set).
    #[test]
    fn lockstep_on_mixed_streams(
        seed in 0u64..u64::MAX,
        len in 64usize..600,
        flush_frac in 0u32..4,
    ) {
        let ops = mixed_stream(seed, len);
        let flush_at = (flush_frac > 0).then(|| len as usize * flush_frac as usize / 4);
        for mode in modes() {
            for policy in policies() {
                assert_lockstep(mode, policy, seed % 1000, &ops, flush_at);
            }
        }
    }

    /// Quota-threshold oscillation, scalar lockstep: partitions must
    /// grow/shrink/park/unpark in exact sync with the full scan.
    #[test]
    fn lockstep_on_oscillating_streams(
        seed in 0u64..u64::MAX,
        phases in 6usize..30,
    ) {
        for mode in modes() {
            let DdioMode::Adaptive(cfg) = mode else { continue };
            let ops = oscillating_stream(seed, phases, cfg);
            for policy in policies() {
                assert_lockstep(mode, policy, seed % 1000, &ops, None);
            }
        }
    }

    /// Threaded legs over both stream shapes: per-slice defense_evals,
    /// merged stats and end-state partition map at {1, 2, 4} workers.
    #[test]
    fn threads_agree_on_per_slice_defense_evals(
        seed in 0u64..u64::MAX,
        len in 64usize..600,
    ) {
        for mode in modes() {
            let ops = match mode {
                DdioMode::Adaptive(cfg) => oscillating_stream(seed, len / 16 + 4, cfg),
                _ => mixed_stream(seed, len),
            };
            for policy in policies() {
                assert_threaded(mode, policy, seed % 1000, &ops);
            }
        }
    }
}

/// Deterministic long-haul oscillation with interleaved flushes: parks
/// and re-engagements pile up across hundreds of periods; the
/// incremental engine must track the full scan through all of it.
#[test]
fn long_oscillation_with_flushes_stays_pinned() {
    let cfg = AdaptiveConfig {
        period: 16,
        t_high: 4,
        t_low: 4,
        min_io_lines: 1,
        max_io_lines: 3,
    };
    let mode = DdioMode::Adaptive(cfg);
    for policy in policies() {
        let geom = CacheGeometry::tiny();
        let mut soa = SlicedCache::with_policy_and_seed(geom, mode, policy, 0x1c4);
        let mut reference = ReferenceCache::with_policy_and_seed(geom, mode, policy, 0x1c4);
        let ops = oscillating_stream(0xadaf, 400, cfg);
        for (i, &(a, k)) in ops.iter().enumerate() {
            if i % 997 == 500 {
                assert_eq!(soa.flush_all(), reference.flush_all(), "flush at op {i}");
            }
            assert_eq!(
                soa.access(a, k),
                reference.access(a, k),
                "op {i} {policy:?}"
            );
            if i % cfg.period as usize == 0 {
                assert_partition_map(&soa, &reference, &format!("op {i} {policy:?}"));
            }
        }
        assert_eq!(soa.stats(), reference.stats(), "{policy:?}");
    }
}
