//! Differential fuzz of the op-stream IR's three replay engines.
//!
//! Every other equivalence suite in the workspace reaches these engines
//! through *driver-shaped* traffic (pc-nic frame bursts, monitor
//! primes). This one feeds them raw, adversarial [`CacheOp`] streams —
//! mixed access kinds, random leads, skewed slice distributions — and
//! pins the three engines byte-identical on each:
//!
//! * **batch** — emit into an [`OpBuffer`], replay via
//!   [`Hierarchy::run_ops`] (sharded where big enough);
//! * **streaming** — the one-pass [`Hierarchy::applier`] sink;
//! * **oracle** — the per-access path (the hierarchy is itself an
//!   [`OpSink`]).
//!
//! Each stream also replays through [`Hierarchy::run_trace_threads`] at
//! {1, 2, 4} workers, across every [`DdioMode`] × [`ReplacementPolicy`]
//! (`Random` included, so per-slice RNG streams are exercised), and a
//! second round over the *same* hierarchies catches divergence that
//! only shows up in carried state (LRU clocks, defense clocks, RNG).

use pc_cache::{
    AccessKind, AdaptiveConfig, CacheGeometry, CacheOp, CacheStats, DdioMode, Hierarchy, OpBuffer,
    OpSink, PhysAddr, ReplacementPolicy, SlicedCache,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministically generates one fuzz stream: `len` ops, `io_pct`%
/// DMA writes, a lead on roughly one op in eight, and `skew_pct`% of
/// addresses confined to a tiny conflict region (so some slices see
/// far more traffic than others — the shard dispatcher's worst case).
fn fuzz_stream(seed: u64, len: usize, io_pct: u32, skew_pct: u32) -> Vec<CacheOp> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let line = if rng.gen_range(0..100) < skew_pct {
                rng.gen_range(0..64u64) // one hot region: heavy conflicts
            } else {
                rng.gen_range(0..(1 << 16)) // broad region: every slice
            };
            let kind = match rng.gen_range(0..100u32) {
                p if p < io_pct => AccessKind::IoWrite,
                p if p < io_pct + 10 => AccessKind::IoRead,
                p if p < io_pct + 30 => AccessKind::CpuWrite,
                _ => AccessKind::CpuRead,
            };
            let lead = if rng.gen_range(0..8u32) == 0 {
                rng.gen_range(1..500u64)
            } else {
                0
            };
            CacheOp::new(PhysAddr::new(line * 64), kind).after(lead)
        })
        .collect()
}

fn modes() -> [DdioMode; 3] {
    [
        DdioMode::Disabled,
        DdioMode::enabled(),
        DdioMode::Adaptive(AdaptiveConfig {
            period: 16,
            ..AdaptiveConfig::paper_defaults()
        }),
    ]
}

fn policies() -> [ReplacementPolicy; 3] {
    [
        ReplacementPolicy::Lru,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Random,
    ]
}

fn hierarchy(geom: CacheGeometry, mode: DdioMode, policy: ReplacementPolicy) -> Hierarchy {
    Hierarchy::with_llc(SlicedCache::with_policy_and_seed(geom, mode, policy, 0xf22))
}

/// Per-slice statistics — the strictest observable aggregate (pins
/// adaptation period boundaries and hit/miss placement per shard).
fn slice_stats(h: &Hierarchy) -> Vec<CacheStats> {
    (0..h.llc().geometry().slices())
        .map(|s| h.llc().slice_stats(s))
        .collect()
}

/// Asserts two hierarchies are observationally identical for `ops`:
/// clock, memory traffic, per-slice statistics, and residency of every
/// touched line.
fn assert_identical(a: &Hierarchy, b: &Hierarchy, ops: &[CacheOp], what: &str) {
    assert_eq!(a.now(), b.now(), "{what}: clock");
    assert_eq!(a.memory_stats(), b.memory_stats(), "{what}: memory");
    assert_eq!(slice_stats(a), slice_stats(b), "{what}: per-slice stats");
    for op in ops {
        assert_eq!(
            a.llc().contains(op.addr),
            b.llc().contains(op.addr),
            "{what}: residency of {:?}",
            op.addr
        );
    }
}

/// Replays every round (with a trailing advance) on all three engines
/// and the pinned-thread variants, asserting byte-identity after each;
/// later rounds run over the carried state of earlier ones.
fn run_all_engines(
    geom: CacheGeometry,
    mode: DdioMode,
    policy: ReplacementPolicy,
    rounds: &[Vec<CacheOp>],
    trailing: u64,
) {
    let mut batch = hierarchy(geom, mode, policy);
    let mut streaming = hierarchy(geom, mode, policy);
    let mut oracle = hierarchy(geom, mode, policy);
    let mut pinned: Vec<Hierarchy> = [1usize, 2, 4]
        .iter()
        .map(|_| hierarchy(geom, mode, policy))
        .collect();
    for ops in rounds {
        // Batch: one OpBuffer replay (sharded when it crosses the
        // dispatch threshold).
        let mut buf = OpBuffer::new();
        for &op in ops {
            buf.op(op);
        }
        buf.advance(trailing);
        let sum = batch.run_ops(&buf);
        assert_eq!(sum.accesses, ops.len() as u64);

        // Streaming: the applier sink, totals flushed on drop.
        {
            let mut sink = streaming.applier();
            for &op in ops {
                sink.op(op);
            }
            sink.advance(trailing);
        }

        // Oracle: per-access, the hierarchy as the sink.
        for &op in ops {
            oracle.op(op);
        }
        oracle.advance(trailing);

        assert_identical(&batch, &oracle, ops, "batch vs oracle");
        assert_identical(&streaming, &oracle, ops, "streaming vs oracle");

        // Pinned worker counts through the sharded trace replay.
        for (h, &threads) in pinned.iter_mut().zip(&[1usize, 2, 4]) {
            h.run_trace_threads(ops, threads);
            h.advance(trailing);
        }
        for (h, threads) in pinned.iter().zip([1usize, 2, 4]) {
            assert_identical(h, &oracle, ops, &format!("threads={threads} vs oracle"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized streams on the tiny geometry: every mode × policy,
    /// two rounds over carried state.
    #[test]
    fn engines_agree_on_fuzzed_streams(
        seed in 0u64..u64::MAX,
        io_pct in 0u32..60,
        skew_pct in 0u32..100,
        len in 64usize..1500,
    ) {
        for mode in modes() {
            for policy in policies() {
                let rounds = [
                    fuzz_stream(seed, len, io_pct, skew_pct),
                    fuzz_stream(seed ^ 0x9e37, len / 2 + 1, io_pct, 100 - skew_pct),
                ];
                run_all_engines(CacheGeometry::tiny(), mode, policy, &rounds, seed % 701);
            }
        }
    }

    /// Long streams on the paper geometry cross the sharded-dispatch
    /// threshold (4096 ops), so the batch engine actually fans out on
    /// multi-core hosts while the oracle stays sequential.
    #[test]
    fn engines_agree_past_the_shard_threshold(
        seed in 0u64..u64::MAX,
        skew_pct in 0u32..100,
    ) {
        let rounds = [fuzz_stream(seed, 6000, 25, skew_pct)];
        for mode in modes() {
            run_all_engines(
                CacheGeometry::xeon_e5_2660(),
                mode,
                ReplacementPolicy::Lru,
                &rounds,
                17,
            );
        }
    }

    /// Packed-vs-unpacked round trip: every op pushed through the
    /// 8-byte [`OpBuffer`] encoding decodes back to itself modulo line
    /// quantization. Leads are drawn to straddle the inline/escape
    /// boundary (0..=14 inline, 15.. escaped) so both encodings and the
    /// escape cursor's ordering are fuzz-pinned, not just unit-tested.
    #[test]
    fn packed_ops_round_trip_through_the_buffer(
        seed in 0u64..u64::MAX,
        len in 1usize..3000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut buf = OpBuffer::new();
        let mut want = Vec::with_capacity(len);
        for _ in 0..len {
            let addr = PhysAddr::new(rng.gen::<u64>() >> rng.gen_range(0..32));
            let kind = match rng.gen_range(0..4u32) {
                0 => AccessKind::CpuRead,
                1 => AccessKind::CpuWrite,
                2 => AccessKind::IoWrite,
                _ => AccessKind::IoRead,
            };
            // Half the draws hug the escape threshold (lead 15), the
            // rest sweep the full magnitude range.
            let lead = if rng.gen_bool(0.5) {
                rng.gen_range(0..31u64)
            } else {
                rng.gen::<u64>() >> rng.gen_range(0..64)
            };
            let op = CacheOp::new(addr, kind).after(lead);
            want.push(CacheOp { addr: addr.line_base(), ..op });
            buf.op(op);
        }
        let got: Vec<CacheOp> = buf.iter().collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(buf.len(), len);
    }
}

/// Empty streams and lead-only buffers: the degenerate windows the
/// burst paths can produce.
#[test]
fn degenerate_streams_are_identical() {
    for mode in modes() {
        let mut batch = hierarchy(CacheGeometry::tiny(), mode, ReplacementPolicy::Lru);
        let mut oracle = hierarchy(CacheGeometry::tiny(), mode, ReplacementPolicy::Lru);
        let mut buf = OpBuffer::new();
        buf.advance(123); // trailing advance, no ops at all
        let sum = batch.run_ops(&buf);
        assert_eq!(sum.accesses, 0);
        assert_eq!(sum.cycles, 123);
        oracle.advance(123);
        assert_identical(&batch, &oracle, &[], "lead-only buffer");
    }
}
