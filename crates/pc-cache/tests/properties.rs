//! Property-based tests for the cache substrate's invariants.

use pc_cache::{
    AccessKind, AdaptiveConfig, CacheGeometry, DdioMode, Domain, PhysAddr, ReplacementPolicy,
    SlicedCache,
};
use proptest::prelude::*;

/// A random stream of line-aligned addresses confined to a small region so
/// sets actually conflict.
fn addr_strategy() -> impl Strategy<Value = PhysAddr> {
    (0u64..(1 << 18)).prop_map(|line| PhysAddr::new(line * 64))
}

fn kind_strategy() -> impl Strategy<Value = AccessKind> {
    prop_oneof![
        Just(AccessKind::CpuRead),
        Just(AccessKind::CpuWrite),
        Just(AccessKind::IoWrite),
        Just(AccessKind::IoRead),
    ]
}

fn mode_strategy() -> impl Strategy<Value = DdioMode> {
    prop_oneof![
        Just(DdioMode::Disabled),
        (1u8..4).prop_map(|w| DdioMode::Enabled { io_way_limit: w }),
        Just(DdioMode::Adaptive(AdaptiveConfig {
            period: 64,
            ..AdaptiveConfig::paper_defaults()
        })),
    ]
}

fn policy_strategy() -> impl Strategy<Value = ReplacementPolicy> {
    prop_oneof![
        Just(ReplacementPolicy::Lru),
        Just(ReplacementPolicy::TreePlru),
        Just(ReplacementPolicy::Random),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The set-index/tag decomposition plus page arithmetic must be
    /// invertible: two addresses with equal (tag, set) within a slice hash
    /// to the same line.
    #[test]
    fn address_decomposition_identifies_lines(a in addr_strategy(), b in addr_strategy()) {
        let g = CacheGeometry::xeon_e5_2660();
        let same_line = a.line_base() == b.line_base();
        let same_decomp = g.tag(a) == g.tag(b) && g.set_index(a) == g.set_index(b);
        prop_assert_eq!(same_line, same_decomp);
    }

    /// After any access sequence, a line just accessed by the CPU is
    /// present (unless DDIO-disabled DMA or a later conflict removed it —
    /// we check immediately after the access).
    #[test]
    fn cpu_access_installs_line(
        mode in mode_strategy(),
        policy in policy_strategy(),
        warmup in proptest::collection::vec((addr_strategy(), kind_strategy()), 0..200),
        target in addr_strategy(),
    ) {
        let mut llc = SlicedCache::with_policy_and_seed(CacheGeometry::tiny(), mode, policy, 42);
        for (a, k) in warmup {
            llc.access(a, k);
        }
        llc.access(target, AccessKind::CpuRead);
        prop_assert!(llc.contains(target));
    }

    /// The DDIO way limit is a hard cap: no set ever holds more I/O lines
    /// than allowed, no matter the access mix.
    #[test]
    fn io_way_limit_is_never_exceeded(
        limit in 1u8..4,
        ops in proptest::collection::vec((addr_strategy(), kind_strategy()), 1..400),
    ) {
        let mode = DdioMode::Enabled { io_way_limit: limit };
        let mut llc = SlicedCache::new(CacheGeometry::tiny(), mode);
        for (a, k) in &ops {
            llc.access(*a, *k);
            let ss = llc.locate(*a);
            prop_assert!(llc.domain_count(ss, Domain::Io) <= limit as usize);
        }
    }

    /// Under the adaptive defense, an I/O fill never displaces a CPU line
    /// — the security property of §VII — for any interleaving.
    #[test]
    fn adaptive_partition_blocks_cross_domain_eviction(
        ops in proptest::collection::vec((addr_strategy(), kind_strategy()), 1..500),
        period in 16u64..256,
    ) {
        let cfg = AdaptiveConfig { period, ..AdaptiveConfig::paper_defaults() };
        let mut llc = SlicedCache::new(CacheGeometry::tiny(), DdioMode::Adaptive(cfg));
        for (a, k) in ops {
            llc.access(a, k);
        }
        prop_assert_eq!(llc.stats().io_evicted_cpu, 0);
    }

    /// Adaptive I/O partition sizes stay within configured bounds.
    #[test]
    fn adaptive_limits_stay_bounded(
        ops in proptest::collection::vec((addr_strategy(), kind_strategy()), 1..500),
    ) {
        let cfg = AdaptiveConfig { period: 32, ..AdaptiveConfig::paper_defaults() };
        let mut llc = SlicedCache::new(CacheGeometry::tiny(), DdioMode::Adaptive(cfg));
        for (a, k) in &ops {
            llc.access(*a, *k);
            let ss = llc.locate(*a);
            let lim = llc.io_partition_limit(ss);
            prop_assert!(lim >= cfg.min_io_lines as usize && lim <= cfg.max_io_lines as usize);
        }
    }

    /// Hits never generate DRAM traffic; misses read at most one line and
    /// write back at most one line per access.
    #[test]
    fn traffic_accounting_is_sane(
        mode in mode_strategy(),
        ops in proptest::collection::vec((addr_strategy(), kind_strategy()), 1..300),
    ) {
        let mut llc = SlicedCache::new(CacheGeometry::tiny(), mode);
        for (a, k) in ops {
            let out = llc.access(a, k);
            if out.hit {
                prop_assert_eq!(out.dram_reads, 0);
                prop_assert_eq!(out.dram_writes, 0);
            }
            prop_assert!(out.dram_reads <= 1);
            prop_assert!(out.dram_writes <= 1);
        }
    }

    /// Statistics identities: accesses = hits + misses per domain, and
    /// overall miss rate is within [0, 1].
    #[test]
    fn stats_identities_hold(
        mode in mode_strategy(),
        ops in proptest::collection::vec((addr_strategy(), kind_strategy()), 1..300),
    ) {
        let mut llc = SlicedCache::new(CacheGeometry::tiny(), mode);
        let (mut cpu, mut io) = (0u64, 0u64);
        for (a, k) in ops {
            llc.access(a, k);
            if k.is_io() { io += 1 } else { cpu += 1 }
        }
        let s = llc.stats();
        prop_assert_eq!(s.cpu_hits + s.cpu_misses, cpu);
        prop_assert_eq!(s.io_hits + s.io_misses, io);
        let mr = s.miss_rate();
        prop_assert!((0.0..=1.0).contains(&mr));
    }
}
