//! SoA-store ↔ reference-model equivalence.
//!
//! The sharded structure-of-arrays engine must be observationally
//! identical to the per-set reference implementation
//! ([`pc_cache::reference::ReferenceCache`]): same [`AccessOutcome`] for
//! every access of any random trace, same statistics, same residency,
//! same partition boundaries — across all three DDIO modes and all
//! replacement policies (`Random` included, which exercises identical
//! per-slice RNG consumption on both sides).
//!
//! On top of the scalar equivalence, the sharded batch dispatcher must
//! be **thread-count invariant**: replaying the same trace through
//! `access_batch_threads` with 1, 2 or 4 workers must land in the same
//! state as the reference model driven one op at a time — that is the
//! determinism contract the CI gate (`repro` stdout diff) rests on.

use pc_cache::reference::ReferenceCache;
use pc_cache::{
    AccessKind, AdaptiveConfig, CacheGeometry, CacheOp, DdioMode, Domain, PhysAddr,
    ReplacementPolicy, SlicedCache,
};
use proptest::prelude::*;

fn addr_strategy() -> impl Strategy<Value = PhysAddr> {
    // A small line-aligned region so sets conflict constantly.
    (0u64..(1 << 14)).prop_map(|line| PhysAddr::new(line * 64))
}

fn kind_strategy() -> impl Strategy<Value = AccessKind> {
    prop_oneof![
        Just(AccessKind::CpuRead),
        Just(AccessKind::CpuWrite),
        Just(AccessKind::IoWrite),
        Just(AccessKind::IoRead),
    ]
}

fn mode_strategy() -> impl Strategy<Value = DdioMode> {
    prop_oneof![
        Just(DdioMode::Disabled),
        (1u8..4).prop_map(|w| DdioMode::Enabled { io_way_limit: w }),
        Just(DdioMode::Adaptive(AdaptiveConfig {
            period: 64,
            ..AdaptiveConfig::paper_defaults()
        })),
        Just(DdioMode::Adaptive(AdaptiveConfig {
            period: 32,
            t_high: 4,
            t_low: 4,
            min_io_lines: 1,
            max_io_lines: 3,
        })),
    ]
}

fn policy_strategy() -> impl Strategy<Value = ReplacementPolicy> {
    prop_oneof![
        Just(ReplacementPolicy::Lru),
        Just(ReplacementPolicy::TreePlru),
        Just(ReplacementPolicy::Random),
    ]
}

/// Drives both implementations through `ops` and asserts identical
/// observable behaviour at every step.
fn assert_equivalent(
    mode: DdioMode,
    policy: ReplacementPolicy,
    seed: u64,
    ops: &[(PhysAddr, AccessKind)],
) {
    let geom = CacheGeometry::tiny();
    let mut soa = SlicedCache::with_policy_and_seed(geom, mode, policy, seed);
    let mut reference = ReferenceCache::with_policy_and_seed(geom, mode, policy, seed);
    for (i, &(a, k)) in ops.iter().enumerate() {
        let got = soa.access(a, k);
        let want = reference.access(a, k);
        assert_eq!(
            got, want,
            "outcome diverged at op {i}: {a} {k:?} mode {mode:?}"
        );
        let ss = soa.locate(a);
        assert_eq!(
            soa.domain_count(ss, Domain::Io),
            reference.domain_count(ss, Domain::Io),
            "I/O occupancy diverged at op {i}"
        );
        assert_eq!(
            soa.io_partition_limit(ss),
            reference.io_partition_limit(ss),
            "partition boundary diverged at op {i}"
        );
    }
    assert_eq!(soa.stats(), reference.stats(), "statistics diverged");
    for &(a, _) in ops {
        assert_eq!(
            soa.contains(a),
            reference.contains(a),
            "residency diverged for {a}"
        );
    }
}

/// Drives the sharded batch engine (at several worker counts) and the
/// reference model through the same trace — chunked, because batch
/// boundaries must not be observable (each slice's defense clock ticks
/// per access, wherever the chunks fall) — and asserts identical end
/// state everywhere it is observable. Adaptive modes adapt *inside*
/// the batches here, so per-slice period reconstruction is compared
/// against the reference on every run.
fn assert_sharded_equivalent(
    mode: DdioMode,
    policy: ReplacementPolicy,
    seed: u64,
    ops: &[(PhysAddr, AccessKind)],
) {
    const CHUNK: usize = 96;
    let geom = CacheGeometry::tiny();
    let mut reference = ReferenceCache::with_policy_and_seed(geom, mode, policy, seed);
    for chunk in ops.chunks(CHUNK) {
        for &(a, k) in chunk {
            reference.access(a, k);
        }
    }
    for threads in [1usize, 2, 4] {
        let mut sharded = SlicedCache::with_policy_and_seed(geom, mode, policy, seed);
        for chunk in ops.chunks(CHUNK) {
            // Tuples lift into the op-stream IR (leads zero): the
            // batched engine consumes `CacheOp`s.
            let chunk: Vec<CacheOp> = chunk.iter().map(|&t| t.into()).collect();
            sharded.access_batch_threads(&chunk, threads);
        }
        assert_eq!(
            sharded.stats(),
            reference.stats(),
            "stats diverged: {mode:?} {policy:?} threads={threads}"
        );
        for &(a, _) in ops {
            let ss = sharded.locate(a);
            assert_eq!(
                sharded.contains(a),
                reference.contains(a),
                "residency diverged for {a}: {mode:?} {policy:?} threads={threads}"
            );
            assert_eq!(
                sharded.domain_count(ss, Domain::Io),
                reference.domain_count(ss, Domain::Io),
                "I/O occupancy diverged at {ss}: {mode:?} threads={threads}"
            );
            assert_eq!(
                sharded.io_partition_limit(ss),
                reference.io_partition_limit(ss),
                "partition boundary diverged at {ss}: {mode:?} threads={threads}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full random traces: every mode × every policy × random seeds.
    #[test]
    fn random_traces_are_equivalent(
        mode in mode_strategy(),
        policy in policy_strategy(),
        seed in 0u64..1000,
        ops in proptest::collection::vec((addr_strategy(), kind_strategy()), 1..600),
    ) {
        assert_equivalent(mode, policy, seed, &ops);
    }

    /// The sharded batch engine at 1/2/4 worker threads against the
    /// reference model: identical stats, partition boundaries and
    /// residency for every mode × policy.
    #[test]
    fn sharded_batches_are_equivalent_across_thread_counts(
        mode in mode_strategy(),
        policy in policy_strategy(),
        seed in 0u64..1000,
        ops in proptest::collection::vec((addr_strategy(), kind_strategy()), 1..600),
    ) {
        assert_sharded_equivalent(mode, policy, seed, &ops);
    }

    /// Flush in the middle of a trace: writeback counts and the emptied
    /// state must agree too.
    #[test]
    fn flush_is_equivalent(
        mode in mode_strategy(),
        policy in policy_strategy(),
        before in proptest::collection::vec((addr_strategy(), kind_strategy()), 1..200),
        after in proptest::collection::vec((addr_strategy(), kind_strategy()), 1..200),
    ) {
        let geom = CacheGeometry::tiny();
        let mut soa = SlicedCache::with_policy_and_seed(geom, mode, policy, 7);
        let mut reference = ReferenceCache::with_policy_and_seed(geom, mode, policy, 7);
        for &(a, k) in &before {
            assert_eq!(soa.access(a, k), reference.access(a, k));
        }
        assert_eq!(soa.flush_all(), reference.flush_all(), "flush writebacks diverged");
        assert_eq!(soa.stats(), reference.stats());
        for &(a, k) in &after {
            assert_eq!(soa.access(a, k), reference.access(a, k));
        }
        assert_eq!(soa.stats(), reference.stats());
    }
}

/// A long deterministic mixed trace on the paper's full Xeon geometry —
/// one heavyweight case outside proptest so the big-geometry indexing
/// (8 slices × 2048 sets) is covered without slowing the property runs.
#[test]
fn xeon_geometry_long_trace_equivalent() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let geom = CacheGeometry::xeon_e5_2660();
    for mode in [
        DdioMode::Disabled,
        DdioMode::enabled(),
        DdioMode::adaptive(),
    ] {
        let mut soa = SlicedCache::new(geom, mode);
        let mut reference = ReferenceCache::new(geom, mode);
        let mut rng = SmallRng::seed_from_u64(0x5eed);
        for i in 0..60_000u64 {
            let a = PhysAddr::new(rng.gen_range(0..500_000u64) * 64);
            let k = match i % 5 {
                0 | 1 => AccessKind::CpuRead,
                2 => AccessKind::CpuWrite,
                3 => AccessKind::IoWrite,
                _ => AccessKind::IoRead,
            };
            assert_eq!(soa.access(a, k), reference.access(a, k), "op {i} {mode:?}");
        }
        assert_eq!(soa.stats(), reference.stats(), "{mode:?}");
    }
}
