//! Experiment harnesses for the defense figures (14, 15, 16) and the
//! Table II baseline description.

use crate::loadgen::{cycles_to_ms, run_http_load, LoadGenConfig};
use crate::workloads::{file_copy, nginx, tcp_recv, NginxConfig, Workbench, WorkloadMetrics};
use pc_cache::{CacheGeometry, DdioMode};
use pc_nic::{DriverConfig, RandomizeMode};
use std::fmt;

/// Table II: the gem5 baseline core the paper models. Constants only —
/// reproduced for completeness of the report.
#[derive(Copy, Clone, Debug)]
pub struct BaselineCore {
    /// Core frequency in GHz.
    pub frequency_ghz: f64,
    /// Fetch width in fused µops.
    pub fetch_width: u32,
    /// Issue width in unfused µops.
    pub issue_width: u32,
    /// Integer/FP register file sizes.
    pub int_regs: u32,
    /// Floating-point registers.
    pub fp_regs: u32,
    /// Reorder-buffer entries.
    pub rob: u32,
    /// Issue-queue entries.
    pub iq: u32,
    /// Load-queue entries.
    pub lq: u32,
    /// Store-queue entries.
    pub sq: u32,
    /// Branch-target-buffer entries.
    pub btb: u32,
    /// L1 instruction cache description.
    pub icache: &'static str,
    /// L1 data cache description.
    pub dcache: &'static str,
}

impl BaselineCore {
    /// The paper's Table II values.
    pub fn paper() -> Self {
        BaselineCore {
            frequency_ghz: 3.3,
            fetch_width: 4,
            issue_width: 6,
            int_regs: 160,
            fp_regs: 144,
            rob: 168,
            iq: 54,
            lq: 64,
            sq: 36,
            btb: 256,
            icache: "32 KB, 8 way",
            dcache: "32 KB, 8 way",
        }
    }
}

impl fmt::Display for BaselineCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Frequency      {} GHz", self.frequency_ghz)?;
        writeln!(f, "Fetch width    {} fused uops", self.fetch_width)?;
        writeln!(f, "Issue width    {} unfused uops", self.issue_width)?;
        writeln!(f, "INT/FP Regfile {}/{} regs", self.int_regs, self.fp_regs)?;
        writeln!(f, "ROB size       {} entries", self.rob)?;
        writeln!(f, "IQ             {} entries", self.iq)?;
        writeln!(f, "LQ/SQ size     {}/{} entries", self.lq, self.sq)?;
        writeln!(f, "BTB size       {} entries", self.btb)?;
        writeln!(f, "Icache         {}", self.icache)?;
        writeln!(f, "Dcache         {}", self.dcache)
    }
}

/// One bar of Figure 14.
#[derive(Clone, Debug)]
pub struct Fig14Row {
    /// LLC capacity in MiB (20 / 11 / 8).
    pub llc_mib: u32,
    /// "Adaptive Partitioning" or "DDIO".
    pub config: &'static str,
    /// Nginx throughput.
    pub krps: f64,
}

/// Figure 14: Nginx throughput of the adaptive partitioning defense vs
/// the vulnerable DDIO baseline at several LLC sizes.
pub fn fig14_nginx_throughput(requests: u64, seed: u64) -> Vec<Fig14Row> {
    let cfg = NginxConfig::paper_defaults();
    let mut rows = Vec::new();
    for llc_mib in [20u32, 11, 8] {
        for (name, mode) in [
            ("Adaptive Partitioning", DdioMode::adaptive()),
            ("DDIO", DdioMode::enabled()),
        ] {
            let geom = CacheGeometry::xeon_scaled_mib(llc_mib);
            let mut bench = Workbench::new(geom, mode, DriverConfig::paper_defaults(), seed);
            nginx(&mut bench, &cfg, requests / 5); // warm-up
            let m = nginx(&mut bench, &cfg, requests);
            rows.push(Fig14Row {
                llc_mib,
                config: name,
                krps: m.krps(),
            });
        }
    }
    rows
}

/// One group of bars of Figure 15.
#[derive(Clone, Debug)]
pub struct Fig15Row {
    /// "File Copy", "TCP Recv" or "Nginx".
    pub workload: &'static str,
    /// "No DDIO", "DDIO" or "Adaptive Partitioning".
    pub config: &'static str,
    /// Memory read traffic normalized to the No-DDIO run.
    pub norm_read: f64,
    /// Memory write traffic normalized to the No-DDIO run.
    pub norm_write: f64,
    /// Absolute LLC miss rate.
    pub miss_rate: f64,
}

/// Figure 15: normalized memory traffic and LLC miss rate for the three
/// workloads under No-DDIO / DDIO / adaptive partitioning.
///
/// `scale` controls the run length (1 = quick, 10 = paper-like).
pub fn fig15_traffic(scale: u64, seed: u64) -> Vec<Fig15Row> {
    let modes: [(&'static str, DdioMode); 3] = [
        ("No DDIO", DdioMode::Disabled),
        ("DDIO", DdioMode::enabled()),
        ("Adaptive Partitioning", DdioMode::adaptive()),
    ];
    let mut rows = Vec::new();
    type WorkloadFn = Box<dyn Fn(&mut Workbench) -> WorkloadMetrics>;
    let workloads: [(&'static str, WorkloadFn); 3] = [
        (
            "File Copy",
            Box::new(move |b: &mut Workbench| file_copy(b, 2 * scale)),
        ),
        (
            "TCP Recv",
            Box::new(move |b: &mut Workbench| tcp_recv(b, 5_000 * scale)),
        ),
        (
            "Nginx",
            Box::new(move |b: &mut Workbench| {
                nginx(b, &NginxConfig::paper_defaults(), 300 * scale)
            }),
        ),
    ];
    for (wname, run) in &workloads {
        let mut baseline: Option<WorkloadMetrics> = None;
        for (mname, mode) in modes {
            let mut bench = Workbench::paper_machine(mode, seed);
            let m = run(&mut bench);
            let base = baseline.get_or_insert(m);
            rows.push(Fig15Row {
                workload: wname,
                config: mname,
                norm_read: m.mem.reads as f64 / base.mem.reads.max(1) as f64,
                norm_write: m.mem.writes as f64 / base.mem.writes.max(1) as f64,
                miss_rate: m.llc.miss_rate(),
            });
        }
    }
    rows
}

/// One curve point of Figure 16.
#[derive(Clone, Debug)]
pub struct Fig16Row {
    /// Defense label, matching the paper's legend.
    pub defense: &'static str,
    /// Percentile (25, 50, 90, 99, 99.9, 99.99).
    pub percentile: f64,
    /// Response latency in milliseconds.
    pub latency_ms: f64,
}

/// The five configurations of Figure 16.
pub fn fig16_defenses() -> [(&'static str, DdioMode, RandomizeMode); 5] {
    [
        (
            "Vulnerable Baseline",
            DdioMode::enabled(),
            RandomizeMode::Off,
        ),
        (
            "Fully Randomized Ring Buffer",
            DdioMode::enabled(),
            RandomizeMode::EveryPacket,
        ),
        (
            "Partial Randomization (1k Interval)",
            DdioMode::enabled(),
            RandomizeMode::EveryNPackets(1_000),
        ),
        (
            "Partial Randomization (10k Interval)",
            DdioMode::enabled(),
            RandomizeMode::EveryNPackets(10_000),
        ),
        (
            "Adaptive Cache Partitioning",
            DdioMode::adaptive(),
            RandomizeMode::Off,
        ),
    ]
}

/// Figure 16: HTTP tail latency under each defense at the paper's open
/// loop (140 k req/s, 8 workers).
///
/// The paper's latency axis runs to seconds — wrk2 is driving the server
/// into sustained overload, where queueing amplifies every cycle of
/// per-request cost a defense adds. The request weight below puts the
/// baseline right at the saturation knee; `realloc_cost` models a page
/// allocation plus streaming-DMA map/unmap and a coherent descriptor
/// rewrite (§III-A notes how expensive those writes are).
pub fn fig16_tail_latency(requests: usize, seed: u64) -> Vec<Fig16Row> {
    let nginx_cfg = NginxConfig {
        working_set_bytes: 12 << 20, // fits the LLC: misses don't dominate
        compute_cycles: 145_000,     // service ≈ 190k cycles → util ≈ 1.01
        ..NginxConfig::paper_defaults()
    };
    let lg = LoadGenConfig {
        requests,
        ..LoadGenConfig::paper_defaults()
    };
    let mut rows = Vec::new();
    for (name, ddio, randomize) in fig16_defenses() {
        let driver_cfg = DriverConfig {
            randomize,
            realloc_cost: 5_000,
            ..DriverConfig::paper_defaults()
        };
        let mut bench = Workbench::new(CacheGeometry::xeon_e5_2660(), ddio, driver_cfg, seed);
        // Warm the cache so the measured phase is steady-state.
        for _ in 0..200 {
            bench.nginx_request(&nginx_cfg);
        }
        let mut report = run_http_load(&mut bench, &nginx_cfg, &lg);
        for (i, p) in crate::histogram::LatencyHistogram::PAPER_PERCENTILES
            .iter()
            .enumerate()
        {
            let ladder = report.histogram.paper_ladder();
            rows.push(Fig16Row {
                defense: name,
                percentile: *p,
                latency_ms: cycles_to_ms(ladder[i]),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_displays_all_fields() {
        let s = BaselineCore::paper().to_string();
        for needle in ["3.3 GHz", "168 entries", "32 KB, 8 way", "160/144"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn fig14_adaptive_close_to_ddio() {
        let rows = fig14_nginx_throughput(300, 5);
        assert_eq!(rows.len(), 6);
        for mib in [20, 11, 8] {
            let adaptive = rows
                .iter()
                .find(|r| r.llc_mib == mib && r.config.starts_with("Adaptive"))
                .expect("row exists");
            let ddio = rows
                .iter()
                .find(|r| r.llc_mib == mib && r.config == "DDIO")
                .expect("row exists");
            let loss = 1.0 - adaptive.krps / ddio.krps;
            assert!(loss < 0.12, "{mib} MiB: adaptive lost {:.1}%", loss * 100.0);
        }
    }

    #[test]
    fn fig15_ddio_saves_traffic_everywhere() {
        let rows = fig15_traffic(1, 6);
        assert_eq!(rows.len(), 9);
        for w in ["File Copy", "TCP Recv", "Nginx"] {
            let ddio = rows
                .iter()
                .find(|r| r.workload == w && r.config == "DDIO")
                .expect("row");
            // Normalized against No-DDIO, DDIO must reduce total traffic.
            assert!(
                ddio.norm_read + ddio.norm_write < 2.0,
                "{w}: DDIO traffic not reduced (read {:.2}, write {:.2})",
                ddio.norm_read,
                ddio.norm_write
            );
            let adaptive = rows
                .iter()
                .find(|r| r.workload == w && r.config.starts_with("Adaptive"))
                .expect("row");
            // Adaptive stays in DDIO's neighborhood (paper: within 2%).
            assert!(
                (adaptive.norm_read + adaptive.norm_write)
                    < (ddio.norm_read + ddio.norm_write) * 1.25,
                "{w}: adaptive traffic too far from DDIO"
            );
        }
    }

    #[test]
    fn fig16_ordering_matches_paper() {
        let rows = fig16_tail_latency(6_000, 7);
        let p99 = |name: &str| {
            rows.iter()
                .find(|r| r.defense == name && (r.percentile - 99.0).abs() < 1e-9)
                .expect("p99 row")
                .latency_ms
        };
        let base = p99("Vulnerable Baseline");
        let full = p99("Fully Randomized Ring Buffer");
        let adaptive = p99("Adaptive Cache Partitioning");
        let p1k = p99("Partial Randomization (1k Interval)");
        assert!(full > base, "full randomization must cost tail latency");
        assert!(adaptive < full, "adaptive must beat full randomization");
        assert!(
            p1k >= base * 0.95,
            "1k randomization should not be faster than baseline"
        );
    }
}
