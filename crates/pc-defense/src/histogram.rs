//! Latency recording with percentile queries (the wrk2 side of
//! Figure 16).

/// Records latency samples and answers percentile queries.
///
/// ```
/// use pc_defense::histogram::LatencyHistogram;
/// let mut h = LatencyHistogram::new();
/// for v in 1..=100 {
///     h.record(v);
/// }
/// assert_eq!(h.percentile(50.0), 50);
/// assert_eq!(h.percentile(99.0), 99);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LatencyHistogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Adds a sample.
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples are recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `p`-th percentile (nearest-rank), `0 < p <= 100`.
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty or `p` is out of range.
    pub fn percentile(&mut self, p: f64) -> u64 {
        assert!(!self.samples.is_empty(), "percentile of empty histogram");
        assert!(p > 0.0 && p <= 100.0, "percentile must be in (0, 100]");
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        self.samples[rank.clamp(1, self.samples.len()) - 1]
    }

    /// Arithmetic mean of the samples.
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty.
    pub fn mean(&self) -> f64 {
        assert!(!self.samples.is_empty(), "mean of empty histogram");
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// The paper's Figure 16 percentile ladder.
    pub const PAPER_PERCENTILES: [f64; 6] = [25.0, 50.0, 90.0, 99.0, 99.9, 99.99];

    /// Values at the Figure 16 percentiles.
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty.
    pub fn paper_ladder(&mut self) -> [u64; 6] {
        let mut out = [0u64; 6];
        for (i, p) in Self::PAPER_PERCENTILES.iter().enumerate() {
            out[i] = self.percentile(*p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30, 40, 50] {
            h.record(v);
        }
        assert_eq!(h.percentile(20.0), 10);
        assert_eq!(h.percentile(40.0), 20);
        assert_eq!(h.percentile(100.0), 50);
        assert_eq!(h.len(), 5);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut h = LatencyHistogram::new();
        for v in [50u64, 10, 40, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), 30);
        assert_eq!(h.max(), Some(50));
        assert!((h.mean() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn ladder_is_monotone() {
        let mut h = LatencyHistogram::new();
        for v in 0..10_000u64 {
            h.record(v * v % 7919);
        }
        let ladder = h.paper_ladder();
        assert!(ladder.windows(2).all(|w| w[0] <= w[1]), "{ladder:?}");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_percentile_panics() {
        LatencyHistogram::new().percentile(50.0);
    }

    #[test]
    fn recording_after_query_resorts() {
        let mut h = LatencyHistogram::new();
        h.record(10);
        assert_eq!(h.percentile(100.0), 10);
        h.record(5);
        assert_eq!(h.percentile(50.0), 5);
        assert!(!h.is_empty());
    }
}
