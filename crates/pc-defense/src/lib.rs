//! # pc-defense — mitigations and their performance evaluation
//!
//! The paper evaluates two families of defenses:
//!
//! * **Software (§VI):** ring-buffer randomization — a fresh buffer per
//!   packet ("fully randomized") or a periodic reshuffle every 1 k / 10 k
//!   packets ("partial"). These live in `pc-nic`'s
//!   [`pc_nic::RandomizeMode`]; this crate measures what they cost.
//! * **Hardware (§VII):** adaptive I/O cache partitioning — implemented
//!   in `pc-cache`'s [`pc_cache::DdioMode::Adaptive`]; this crate
//!   measures its overhead against DDIO and no-DDIO baselines.
//!
//! The measurement vehicles mirror the paper's:
//!
//! * [`workloads`] — a file copy (`dd`-style), a TCP receiver with tiny
//!   payloads, and an Nginx-like request server (Figures 14 and 15).
//! * [`loadgen`] — a wrk2-style open-loop load generator with latency
//!   percentiles (Figure 16).
//! * [`eval`] — the experiment harnesses that produce each figure's rows.
//!
//! ## Example
//!
//! Drive the paper's machine with tiny-payload TCP traffic and read the
//! memory-controller cost off the hierarchy:
//!
//! ```
//! use pc_cache::DdioMode;
//! use pc_defense::workloads::{tcp_recv, Workbench};
//!
//! let mut bench = Workbench::paper_machine(DdioMode::enabled(), 7);
//! let m = tcp_recv(&mut bench, 50);
//! assert_eq!(m.units, 50);
//! assert!(m.elapsed_cycles > 0 && m.units_per_second() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod histogram;
pub mod loadgen;
pub mod workloads;
