//! A wrk2-style open-loop HTTP load generator (Figure 16).
//!
//! wrk2 issues requests at a *fixed target rate* regardless of how fast
//! the server responds, so queueing delay — not just service time — shows
//! up in the percentiles. We model the server as `servers` worker threads
//! draining a FIFO queue; each request's service time is *measured* by
//! actually running the Nginx-like request against the simulated
//! hierarchy (so defenses pay their real per-packet and cache costs).

use crate::histogram::LatencyHistogram;
use crate::workloads::{NginxConfig, Workbench};
use pc_net::CPU_FREQ_HZ;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Load-generator parameters.
#[derive(Copy, Clone, Debug)]
pub struct LoadGenConfig {
    /// Open-loop arrival rate (the paper targets 140 k req/s).
    pub target_rps: u64,
    /// Server worker threads (wrk2 drives 8 threads / 1000 conns; the
    /// server side is what queues).
    pub servers: usize,
    /// Requests to issue.
    pub requests: usize,
    /// Arrival jitter as a fraction of the nominal gap.
    pub jitter: f64,
    /// RNG seed for arrivals.
    pub seed: u64,
}

impl LoadGenConfig {
    /// The paper's experiment: 140 k req/s against 8 workers.
    pub fn paper_defaults() -> Self {
        LoadGenConfig {
            target_rps: 140_000,
            servers: 8,
            requests: 50_000,
            jitter: 0.2,
            seed: 0x10ad,
        }
    }
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig::paper_defaults()
    }
}

/// Outcome of one load run.
#[derive(Clone, Debug)]
pub struct LoadGenReport {
    /// Recorded request latencies (cycles).
    pub histogram: LatencyHistogram,
    /// Requests per second actually completed.
    pub achieved_rps: f64,
    /// Mean service time in cycles (the server-side cost a defense
    /// inflates).
    pub mean_service_cycles: f64,
}

impl LoadGenReport {
    /// Figure 16's percentile ladder, converted to milliseconds.
    pub fn ladder_ms(&mut self) -> [f64; 6] {
        self.histogram.paper_ladder().map(cycles_to_ms)
    }
}

/// Cycles → milliseconds at the simulated clock.
pub fn cycles_to_ms(cycles: u64) -> f64 {
    cycles as f64 / CPU_FREQ_HZ as f64 * 1_000.0
}

/// Runs the open-loop load against `bench` and collects latencies.
///
/// # Panics
///
/// Panics if `cfg.requests` or `cfg.servers` is zero.
pub fn run_http_load(
    bench: &mut Workbench,
    nginx_cfg: &NginxConfig,
    cfg: &LoadGenConfig,
) -> LoadGenReport {
    assert!(cfg.requests > 0, "need requests to measure");
    assert!(cfg.servers > 0, "need at least one server");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let gap = CPU_FREQ_HZ / cfg.target_rps;

    // Worker availability times (min-heap).
    let mut workers: BinaryHeap<Reverse<u64>> = (0..cfg.servers).map(|_| Reverse(0u64)).collect();
    let mut histogram = LatencyHistogram::new();
    let mut arrival = 0u64;
    let mut total_service = 0u128;
    let mut last_completion = 0u64;

    for _ in 0..cfg.requests {
        let jitter = 1.0 + rng.gen_range(-cfg.jitter..=cfg.jitter);
        arrival += ((gap as f64) * jitter).max(1.0) as u64;
        let service = bench.nginx_request(nginx_cfg);
        total_service += u128::from(service);
        let Reverse(free_at) = workers.pop().expect("servers exist");
        let start = free_at.max(arrival);
        let completion = start + service;
        workers.push(Reverse(completion));
        histogram.record(completion - arrival);
        last_completion = last_completion.max(completion);
    }

    let achieved_rps = cfg.requests as f64 / (last_completion as f64 / CPU_FREQ_HZ as f64);
    LoadGenReport {
        histogram,
        achieved_rps,
        mean_service_cycles: total_service as f64 / cfg.requests as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_cache::DdioMode;

    fn quick_cfg(rps: u64) -> LoadGenConfig {
        LoadGenConfig {
            target_rps: rps,
            requests: 2_000,
            ..LoadGenConfig::paper_defaults()
        }
    }

    fn small_nginx() -> NginxConfig {
        NginxConfig {
            reads_per_request: 100,
            ..NginxConfig::paper_defaults()
        }
    }

    #[test]
    fn underloaded_latency_is_service_time() {
        let mut bench = Workbench::paper_machine(DdioMode::enabled(), 3);
        let mut report = run_http_load(&mut bench, &small_nginx(), &quick_cfg(1_000));
        let ladder = report.ladder_ms();
        // At 1k rps with ~10µs services, p50 ≈ service, far below 1ms.
        assert!(
            ladder[1] < 1.0,
            "p50 {}ms too high for an idle server",
            ladder[1]
        );
    }

    #[test]
    fn overload_explodes_tail_latency() {
        let mut bench = Workbench::paper_machine(DdioMode::enabled(), 3);
        let mut low = run_http_load(&mut bench, &small_nginx(), &quick_cfg(1_000));
        let mut bench2 = Workbench::paper_machine(DdioMode::enabled(), 3);
        let mut high = run_http_load(&mut bench2, &small_nginx(), &quick_cfg(2_000_000));
        assert!(
            high.ladder_ms()[3] > low.ladder_ms()[3] * 10.0,
            "p99 must blow up under overload"
        );
    }

    #[test]
    fn ladder_is_monotone_and_positive() {
        let mut bench = Workbench::paper_machine(DdioMode::enabled(), 4);
        let mut report = run_http_load(&mut bench, &small_nginx(), &quick_cfg(100_000));
        let ladder = report.ladder_ms();
        assert!(ladder.windows(2).all(|w| w[0] <= w[1]), "{ladder:?}");
        assert!(ladder[0] > 0.0);
        assert!(report.achieved_rps > 0.0);
        assert!(report.mean_service_cycles > 0.0);
    }
}
