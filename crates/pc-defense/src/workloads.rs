//! The paper's I/O-heavy measurement workloads (§VII-a): a `dd`-style
//! file copy, a TCP receiver with tiny payloads, and an Nginx-like
//! request server.

use pc_cache::{
    CacheGeometry, CacheOp, CacheStats, Cycles, DdioMode, Hierarchy, MemoryStats, OpBuffer, OpSink,
    PhysAddr, SlicedCache,
};
use pc_net::EthernetFrame;
use pc_nic::{DriverConfig, IgbDriver, PageAllocator};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// First page of the application's hot region (disjoint from the NIC
/// allocator and the attacker pool regions).
const APP_FIRST_PAGE: u64 = 1 << 22;

/// What a workload run measured.
#[derive(Copy, Clone, Debug)]
pub struct WorkloadMetrics {
    /// Simulated cycles the run took.
    pub elapsed_cycles: Cycles,
    /// LLC statistics over the run.
    pub llc: CacheStats,
    /// Memory-controller traffic over the run.
    pub mem: MemoryStats,
    /// Work units completed (requests, packets, lines).
    pub units: u64,
}

impl WorkloadMetrics {
    /// Work units per second of simulated time.
    pub fn units_per_second(&self) -> f64 {
        self.units as f64 / (self.elapsed_cycles as f64 / pc_net::CPU_FREQ_HZ as f64)
    }

    /// Kilo-requests per second — Figure 14's y-axis.
    pub fn krps(&self) -> f64 {
        self.units_per_second() / 1_000.0
    }
}

/// A self-contained machine for defense benchmarking: hierarchy + driver
/// (no attacker).
#[derive(Clone, Debug)]
pub struct Workbench {
    h: Hierarchy,
    driver: IgbDriver,
    rng: SmallRng,
    tx_cursor: u64,
    /// Reusable op batch for the workload inner loops (cleared per
    /// batch, capacity carried).
    ops: OpBuffer,
}

impl Workbench {
    /// The seeded machine parts — one definition shared by
    /// [`Workbench::new`] and [`Workbench::reset`] so a reused bench
    /// can never drift from a freshly built one.
    fn build(
        geometry: CacheGeometry,
        mode: DdioMode,
        driver_cfg: DriverConfig,
        seed: u64,
    ) -> (Hierarchy, IgbDriver, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let llc = SlicedCache::new(geometry, mode);
        let h = Hierarchy::with_llc(llc);
        let driver = IgbDriver::new(driver_cfg, PageAllocator::new(seed ^ 0xd15c), &mut rng);
        (h, driver, rng)
    }

    /// Builds a bench with the given LLC geometry and DDIO mode.
    pub fn new(
        geometry: CacheGeometry,
        mode: DdioMode,
        driver_cfg: DriverConfig,
        seed: u64,
    ) -> Self {
        let (h, driver, rng) = Workbench::build(geometry, mode, driver_cfg, seed);
        Workbench {
            h,
            driver,
            rng,
            tx_cursor: 0,
            ops: OpBuffer::new(),
        }
    }

    /// The paper's baseline machine in the requested mode.
    pub fn paper_machine(mode: DdioMode, seed: u64) -> Self {
        Workbench::new(
            CacheGeometry::xeon_e5_2660(),
            mode,
            DriverConfig::paper_defaults(),
            seed,
        )
    }

    /// Rebuilds this bench in place, behaviourally identical to
    /// `*self = Workbench::new(…)` but keeping the op-batch capacity.
    /// Fleet tenants reuse one bench per worker thread; resetting
    /// instead of rebuilding keeps per-tenant setup at clears rather
    /// than allocations.
    pub fn reset(
        &mut self,
        geometry: CacheGeometry,
        mode: DdioMode,
        driver_cfg: DriverConfig,
        seed: u64,
    ) {
        let (h, driver, rng) = Workbench::build(geometry, mode, driver_cfg, seed);
        self.h = h;
        self.driver = driver;
        self.rng = rng;
        self.tx_cursor = 0;
        // `ops` is cleared at every use site; only capacity survives.
    }

    /// [`Workbench::reset`] to the paper's baseline machine.
    pub fn reset_paper_machine(&mut self, mode: DdioMode, seed: u64) {
        self.reset(
            CacheGeometry::xeon_e5_2660(),
            mode,
            DriverConfig::paper_defaults(),
            seed,
        );
    }

    /// The underlying hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.h
    }

    /// Mutable hierarchy access.
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.h
    }

    /// The NIC driver.
    pub fn driver(&self) -> &IgbDriver {
        &self.driver
    }

    /// Resets LLC/memory statistics before a measurement phase.
    pub fn reset_stats(&mut self) {
        self.h.reset_stats();
    }

    fn snapshot(&self, t0: Cycles, units: u64) -> WorkloadMetrics {
        WorkloadMetrics {
            elapsed_cycles: self.h.now() - t0,
            llc: self.h.llc().stats(),
            mem: self.h.memory_stats(),
            units,
        }
    }

    /// Runs one Nginx-like request and returns its service time in
    /// cycles: receive the HTTP request frame, touch the working set,
    /// build the response, and let the NIC fetch it.
    ///
    /// Everything after the receive is emitted as one op batch per
    /// request (compute gap as the first op's lead, then the random
    /// working-set reads and the response write/DMA-read pairs) and
    /// replayed through [`Hierarchy::run_ops`] — byte-identical to the
    /// per-access walk, since the random lines are drawn before the
    /// replay and the RNG never observes the hierarchy.
    pub fn nginx_request(&mut self, cfg: &NginxConfig) -> Cycles {
        let t0 = self.h.now();
        let frame = EthernetFrame::clamped(cfg.request_bytes);
        self.driver.receive(&mut self.h, frame, &mut self.rng);
        let mut ops = std::mem::take(&mut self.ops);
        ops.clear();
        ops.advance(cfg.compute_cycles);
        let ws_lines = (cfg.working_set_bytes / 64) as u64;
        for _ in 0..cfg.reads_per_request {
            let line = self.rng.gen_range(0..ws_lines);
            ops.op(CacheOp::read(PhysAddr::new(
                APP_FIRST_PAGE * 4096 + line * 64,
            )));
        }
        // Response buffer: a rotating region the NIC DMA-reads out.
        let tx_base = (APP_FIRST_PAGE + (1 << 16)) * 4096;
        for b in 0..u64::from(cfg.response_blocks) {
            let addr = PhysAddr::new(tx_base + ((self.tx_cursor + b) % 4096) * 64);
            ops.op(CacheOp::write(addr));
            ops.op(CacheOp::io_read(addr));
        }
        self.h.run_ops(&ops);
        self.ops = ops;
        self.tx_cursor = (self.tx_cursor + u64::from(cfg.response_blocks)) % 4096;
        self.h.now() - t0
    }
}

/// Nginx workload parameters.
#[derive(Copy, Clone, Debug)]
pub struct NginxConfig {
    /// Bytes of hot application data (index structures, page cache).
    pub working_set_bytes: usize,
    /// Random working-set reads per request.
    pub reads_per_request: usize,
    /// Cache blocks of response handed to the NIC.
    pub response_blocks: u32,
    /// Size of the incoming request frame.
    pub request_bytes: u32,
    /// Pure compute per request (parsing, TLS, templating) in cycles —
    /// work that exercises neither the LLC nor the NIC.
    pub compute_cycles: u64,
}

impl NginxConfig {
    /// A static-content server with a multi-MiB hot set.
    pub fn paper_defaults() -> Self {
        NginxConfig {
            working_set_bytes: 24 << 20,
            reads_per_request: 600,
            response_blocks: 16,
            request_bytes: 192,
            compute_cycles: 0,
        }
    }
}

impl Default for NginxConfig {
    fn default() -> Self {
        NginxConfig::paper_defaults()
    }
}

/// Runs `requests` Nginx-like requests back to back (closed loop) and
/// reports throughput — the Figure 14 measurement.
pub fn nginx(bench: &mut Workbench, cfg: &NginxConfig, requests: u64) -> WorkloadMetrics {
    bench.reset_stats();
    let t0 = bench.h.now();
    for _ in 0..requests {
        bench.nginx_request(cfg);
    }
    bench.snapshot(t0, requests)
}

/// `dd`-style file copy: the disk controller DMAs `megabytes` of source
/// data in, the CPU copies it, and the controller DMAs the destination
/// back out.
///
/// The copy loop is pure op emission (no mid-loop clock reads, no RNG),
/// so it batches in large chunks and replays through the sharded engine
/// wherever `PC_BENCH_THREADS` allows — the first defense workload on
/// the slice-parallel fast path end to end.
pub fn file_copy(bench: &mut Workbench, megabytes: u64) -> WorkloadMetrics {
    bench.reset_stats();
    let t0 = bench.h.now();
    let lines = megabytes * (1 << 20) / 64;
    let src = (APP_FIRST_PAGE + (1 << 17)) * 4096;
    let dst = (APP_FIRST_PAGE + (1 << 18)) * 4096;
    // 4 ops per copied line, so a chunk fills the workspace op-scratch
    // cap exactly (64 Ki ops per replay): far above the shard
    // threshold, small enough to keep the scratch cache-friendly.
    const CHUNK_LINES: u64 = pc_cache::ops::OP_SCRATCH_CAP / 4;
    let mut ops = std::mem::take(&mut bench.ops);
    let mut first = 0;
    while first < lines {
        ops.clear();
        for i in first..(first + CHUNK_LINES).min(lines) {
            let s = PhysAddr::new(src + i * 64);
            let d = PhysAddr::new(dst + i * 64);
            ops.op(CacheOp::io_write(s)); // disk read DMA
            ops.op(CacheOp::read(s));
            ops.op(CacheOp::write(d));
            ops.op(CacheOp::io_read(d)); // disk write DMA
        }
        bench.h.run_ops(&ops);
        first += CHUNK_LINES;
    }
    bench.ops = ops;
    bench.snapshot(t0, lines)
}

/// Frames per [`tcp_recv`] burst: enough for a burst's op stream
/// (~4 ops per min-sized frame, app read included) to clear the
/// sharded-dispatch threshold when worker threads exist. Burst
/// boundaries never change results — the receive path is batch- and
/// thread-invariant.
const TCP_RECV_BURST: u64 = 2_048;

/// A program that constantly receives TCP packets with 8-byte payloads
/// (64-byte frames) and touches each payload once.
///
/// The receiver rides the driver's burst engine with a **frame-extension
/// hook**: each frame's application payload read is emitted into the
/// same op batch as the frame's own traffic
/// ([`IgbDriver::receive_burst_with`]), so the whole burst — DMA
/// writes, driver reads *and* app reads — replays as one shardable
/// stream instead of dropping to a per-access read between frames.
/// Byte-identical to the per-frame walk (`tests` pin it).
pub fn tcp_recv(bench: &mut Workbench, packets: u64) -> WorkloadMetrics {
    bench.reset_stats();
    let t0 = bench.h.now();
    let frame = EthernetFrame::min_sized();
    let frames = vec![frame; packets.min(TCP_RECV_BURST) as usize];
    let mut left = packets;
    while left > 0 {
        let burst = left.min(TCP_RECV_BURST) as usize;
        let events = bench.driver.receive_burst_with(
            &mut bench.h,
            &frames[..burst],
            &mut bench.rng,
            // The application reads the payload out of the skb.
            |meta, ops| ops.op(CacheOp::read(meta.buffer_addr)),
        );
        // Plus the deferred stack reads, if any (no-DDIO path; min-sized
        // frames never defer, but the contract is kept for any frame).
        for ev in events {
            for (_, addr) in ev.deferred_reads {
                bench.h.cpu_read(addr);
            }
        }
        left -= burst as u64;
    }
    bench.snapshot(t0, packets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(mode: DdioMode) -> Workbench {
        Workbench::paper_machine(mode, 77)
    }

    #[test]
    fn nginx_makes_progress_and_reports() {
        let mut b = bench(DdioMode::enabled());
        let m = nginx(&mut b, &NginxConfig::paper_defaults(), 200);
        assert_eq!(m.units, 200);
        assert!(m.elapsed_cycles > 0);
        assert!(m.krps() > 0.0);
        assert!(m.llc.cpu_accesses() > 0);
    }

    /// The pre-burst tcp_recv: one streaming receive and one per-access
    /// app read per packet — the equivalence reference for the fused
    /// burst path.
    fn tcp_recv_per_frame(bench: &mut Workbench, packets: u64) -> WorkloadMetrics {
        bench.reset_stats();
        let t0 = bench.h.now();
        let frame = EthernetFrame::min_sized();
        for _ in 0..packets {
            let ev = bench.driver.receive(&mut bench.h, frame, &mut bench.rng);
            bench.h.cpu_read(ev.buffer_addr);
            for (_, addr) in ev.deferred_reads {
                bench.h.cpu_read(addr);
            }
        }
        bench.snapshot(t0, packets)
    }

    #[test]
    fn tcp_recv_burst_matches_per_frame_walk() {
        // The fused burst (frame ops + app reads in one batch) must be
        // byte-identical to the per-frame walk in every DDIO mode:
        // metrics, final clock, LLC statistics and memory traffic.
        for mode in [
            DdioMode::Disabled,
            DdioMode::enabled(),
            DdioMode::adaptive(),
        ] {
            let mut fused = bench(mode);
            let mut reference = bench(mode);
            let m_fused = tcp_recv(&mut fused, 3_000);
            let m_ref = tcp_recv_per_frame(&mut reference, 3_000);
            assert_eq!(m_fused.elapsed_cycles, m_ref.elapsed_cycles, "{mode:?}");
            assert_eq!(m_fused.llc, m_ref.llc, "{mode:?}");
            assert_eq!(m_fused.mem, m_ref.mem, "{mode:?}");
            assert_eq!(fused.h.now(), reference.h.now(), "{mode:?}");
            assert_eq!(
                fused.driver.ring().page_addresses(),
                reference.driver.ring().page_addresses(),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn ddio_reduces_memory_traffic_for_tcp_recv() {
        let mut with = bench(DdioMode::enabled());
        let mut without = bench(DdioMode::Disabled);
        let m_with = tcp_recv(&mut with, 3_000);
        let m_without = tcp_recv(&mut without, 3_000);
        assert!(
            m_with.mem.total() < m_without.mem.total(),
            "DDIO {} vs no-DDIO {}",
            m_with.mem.total(),
            m_without.mem.total()
        );
    }

    #[test]
    fn ddio_reduces_memory_traffic_for_file_copy() {
        let mut with = bench(DdioMode::enabled());
        let mut without = bench(DdioMode::Disabled);
        let m_with = file_copy(&mut with, 2);
        let m_without = file_copy(&mut without, 2);
        assert!(m_with.mem.total() < m_without.mem.total());
        assert!(
            m_with.elapsed_cycles < m_without.elapsed_cycles,
            "DDIO must be faster"
        );
    }

    #[test]
    fn adaptive_partition_is_close_to_ddio_on_nginx() {
        let mut ddio = bench(DdioMode::enabled());
        let mut adaptive = bench(DdioMode::adaptive());
        let cfg = NginxConfig::paper_defaults();
        // Warm up both, then measure.
        nginx(&mut ddio, &cfg, 100);
        nginx(&mut adaptive, &cfg, 100);
        let m_ddio = nginx(&mut ddio, &cfg, 400);
        let m_adaptive = nginx(&mut adaptive, &cfg, 400);
        let loss = 1.0 - m_adaptive.krps() / m_ddio.krps();
        assert!(
            loss < 0.10,
            "adaptive partition lost {:.1}% throughput (paper: <2.7%)",
            loss * 100.0
        );
    }

    #[test]
    fn randomization_slows_the_driver() {
        let mut plain = bench(DdioMode::enabled());
        let full_cfg = DriverConfig {
            randomize: pc_nic::RandomizeMode::EveryPacket,
            ..DriverConfig::paper_defaults()
        };
        let mut randomized = Workbench::new(
            CacheGeometry::xeon_e5_2660(),
            DdioMode::enabled(),
            full_cfg,
            77,
        );
        let m_plain = tcp_recv(&mut plain, 2_000);
        let m_rand = tcp_recv(&mut randomized, 2_000);
        assert!(m_rand.elapsed_cycles > m_plain.elapsed_cycles);
    }

    #[test]
    fn reset_bench_matches_a_fresh_one() {
        // A bench dirtied by one workload then reset must measure
        // exactly like a freshly built bench — the contract TenantScratch
        // reuse in the fleet driver rests on.
        let mut reused = bench(DdioMode::enabled());
        nginx(&mut reused, &NginxConfig::paper_defaults(), 50);
        for (mode, seed) in [
            (DdioMode::Disabled, 3u64),
            (DdioMode::adaptive(), 19),
            (DdioMode::enabled(), 77),
        ] {
            reused.reset_paper_machine(mode, seed);
            let mut fresh = Workbench::paper_machine(mode, seed);
            let m_reused = tcp_recv(&mut reused, 1_500);
            let m_fresh = tcp_recv(&mut fresh, 1_500);
            assert_eq!(m_reused.elapsed_cycles, m_fresh.elapsed_cycles, "{mode:?}");
            assert_eq!(m_reused.llc, m_fresh.llc, "{mode:?}");
            assert_eq!(m_reused.mem, m_fresh.mem, "{mode:?}");
            assert_eq!(reused.h.now(), fresh.h.now(), "{mode:?}");
            assert_eq!(
                reused.driver.ring().page_addresses(),
                fresh.driver.ring().page_addresses(),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn metrics_rates_are_finite() {
        let mut b = bench(DdioMode::enabled());
        let m = tcp_recv(&mut b, 100);
        assert!(m.units_per_second().is_finite());
        assert!(m.units_per_second() > 0.0);
    }
}
