//! Property-based tests for the defense-evaluation substrate.

use pc_cache::DdioMode;
use pc_defense::histogram::LatencyHistogram;
use pc_defense::loadgen::{run_http_load, LoadGenConfig};
use pc_defense::workloads::{tcp_recv, NginxConfig, Workbench};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Percentiles are monotone in p and bracketed by min/max.
    #[test]
    fn percentiles_monotone(samples in proptest::collection::vec(0u64..1_000_000, 1..500)) {
        let mut h = LatencyHistogram::new();
        let min = *samples.iter().min().expect("non-empty");
        let max = *samples.iter().max().expect("non-empty");
        for s in &samples {
            h.record(*s);
        }
        let mut last = 0u64;
        for p in [1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            prop_assert!(v >= last);
            prop_assert!(v >= min && v <= max);
            last = v;
        }
        prop_assert_eq!(h.percentile(100.0), max);
    }

    /// The mean lies between min and max.
    #[test]
    fn mean_bracketed(samples in proptest::collection::vec(0u64..1_000_000, 1..500)) {
        let mut h = LatencyHistogram::new();
        for s in &samples {
            h.record(*s);
        }
        let mean = h.mean();
        let min = *samples.iter().min().expect("non-empty") as f64;
        let max = *samples.iter().max().expect("non-empty") as f64;
        prop_assert!(mean >= min && mean <= max);
    }

    /// Higher arrival rates never *reduce* tail latency (same machine,
    /// same seed): queueing is monotone in load.
    #[test]
    fn latency_monotone_in_load(rate_lo in 1_000u64..20_000) {
        let rate_hi = rate_lo * 50;
        let nginx = NginxConfig { reads_per_request: 50, ..NginxConfig::paper_defaults() };
        let run = |rate: u64| {
            let mut bench = Workbench::paper_machine(DdioMode::enabled(), 9);
            let cfg = LoadGenConfig { target_rps: rate, requests: 400, ..LoadGenConfig::paper_defaults() };
            let mut r = run_http_load(&mut bench, &nginx, &cfg);
            r.histogram.percentile(99.0)
        };
        prop_assert!(run(rate_hi) >= run(rate_lo));
    }

    /// Workload accounting: units and elapsed cycles are positive and
    /// the LLC saw at least one access per packet.
    #[test]
    fn tcp_recv_accounting(packets in 1u64..500, seed in 0u64..50) {
        let mut bench = Workbench::paper_machine(DdioMode::enabled(), seed);
        let m = tcp_recv(&mut bench, packets);
        prop_assert_eq!(m.units, packets);
        prop_assert!(m.elapsed_cycles > 0);
        prop_assert!(m.llc.total_accesses() >= packets);
        prop_assert!(m.units_per_second() > 0.0);
    }
}
