//! Transport flow identities for RSS steering.
//!
//! Real NICs spread receive load across queues by hashing each
//! packet's flow tuple (source/destination address and port) with a
//! seeded Toeplitz hash. This module supplies the tuple itself; the
//! hash and the queue model live in `pc-nic`, which consumes the
//! tuple's canonical byte encoding. Nothing here draws from an RNG —
//! a schedule's flow assignment is a pure function of the generator
//! state, so adding flows to a stream never shifts the shared
//! schedule RNG (and so never perturbs pre-RSS goldens).

/// A transport flow tuple: the fields a receive-side-scaling hash
/// keys on.
///
/// The [`Default`] tuple (all zeros) is the **legacy flow**: every
/// schedule built before flows existed carries it, and RSS steering
/// pins it to queue 0, so untagged traffic behaves exactly like the
/// single-ring model whatever the queue count.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct FlowTuple {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
}

impl FlowTuple {
    /// A fully specified tuple.
    pub fn new(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16) -> Self {
        FlowTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
        }
    }

    /// The `i`-th member of a synthetic client population: distinct
    /// clients behind distinct source addresses and ports, all
    /// talking to one server socket (`10.0.x.x:ephemeral ->
    /// 192.168.0.1:dst_port`). A pure function of `(i, dst_port)`, so
    /// scenario traffic can assign flows per frame without touching
    /// any RNG stream.
    pub fn client(i: u64, dst_port: u16) -> Self {
        FlowTuple {
            src_ip: 0x0A00_0000 | (i as u32 & 0x00FF_FFFF),
            dst_ip: 0xC0A8_0001,
            src_port: 32_768 + (i % 28_000) as u16,
            dst_port,
        }
    }

    /// The canonical 12-byte encoding the steering hash consumes:
    /// `src_ip · dst_ip · src_port · dst_port`, each field big-endian
    /// (the order RSS hardware hashes an IPv4 tuple in).
    pub fn hash_bytes(&self) -> [u8; 12] {
        let mut b = [0u8; 12];
        b[0..4].copy_from_slice(&self.src_ip.to_be_bytes());
        b[4..8].copy_from_slice(&self.dst_ip.to_be_bytes());
        b[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        b[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        b
    }

    /// A stable 64-bit digest of the tuple, for keyed fault injection
    /// and diagnostics. Steering itself hashes the full
    /// [`FlowTuple::hash_bytes`]; this digest is merely injective
    /// enough to key a fault's modulus on.
    pub fn key(&self) -> u64 {
        let hi = (u64::from(self.src_ip) << 32) | u64::from(self.dst_ip);
        let lo = (u64::from(self.src_port) << 16) | u64::from(self.dst_port);
        hi ^ lo.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// `true` for the all-zero legacy flow (the [`Default`] tuple).
    pub fn is_legacy(&self) -> bool {
        *self == FlowTuple::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_legacy_flow() {
        assert!(FlowTuple::default().is_legacy());
        assert!(!FlowTuple::client(0, 80).is_legacy());
    }

    #[test]
    fn clients_are_distinct_pure_functions() {
        let a = FlowTuple::client(3, 80);
        assert_eq!(a, FlowTuple::client(3, 80), "pure function of (i, port)");
        for i in 0..1000 {
            for j in (i + 1)..1000 {
                assert_ne!(
                    FlowTuple::client(i, 80),
                    FlowTuple::client(j, 80),
                    "clients {i} and {j} collide"
                );
            }
        }
    }

    #[test]
    fn hash_bytes_pack_big_endian_fields() {
        let t = FlowTuple::new(0x0102_0304, 0x0506_0708, 0x090A, 0x0B0C);
        assert_eq!(
            t.hash_bytes(),
            [1, 2, 3, 4, 5, 6, 7, 8, 9, 0x0A, 0x0B, 0x0C]
        );
    }

    #[test]
    fn key_separates_nearby_tuples() {
        let base = FlowTuple::client(0, 80);
        let mut keys = std::collections::HashSet::new();
        keys.insert(base.key());
        for i in 1..512 {
            assert!(keys.insert(FlowTuple::client(i, 80).key()));
        }
        assert_ne!(base.key(), FlowTuple::client(0, 53).key());
    }
}
