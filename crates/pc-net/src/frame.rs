//! Ethernet frames, reduced to what the attack can observe: their size.
//!
//! Packet Chasing never sees payload bytes — only *which cache blocks of a
//! rx buffer get written*. A frame is therefore just a validated size with
//! block arithmetic.

use std::error::Error;
use std::fmt;

/// Minimum Ethernet frame size (IEEE 802.3): 64 bytes.
pub const MIN_FRAME_BYTES: u32 = 64;
/// Maximum frame size with VLAN tagging: 1522 bytes.
pub const MAX_FRAME_BYTES: u32 = 1522;
/// Ethernet MTU — the largest payload an Ethernet frame carries.
pub const MTU_BYTES: u32 = 1500;

/// Error returned when constructing an [`EthernetFrame`] with a size
/// outside `[MIN_FRAME_BYTES, MAX_FRAME_BYTES]`.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct FrameSizeError {
    bytes: u32,
}

impl FrameSizeError {
    /// The rejected size.
    pub fn bytes(&self) -> u32 {
        self.bytes
    }
}

impl fmt::Display for FrameSizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frame size {} outside [{MIN_FRAME_BYTES}, {MAX_FRAME_BYTES}] bytes",
            self.bytes
        )
    }
}

impl Error for FrameSizeError {}

/// An Ethernet frame, characterized by its on-the-wire size in bytes.
///
/// ```
/// use pc_net::EthernetFrame;
/// let f = EthernetFrame::new(64)?;
/// assert_eq!(f.cache_blocks(), 1);
/// assert_eq!(EthernetFrame::with_blocks(4).bytes(), 256);
/// # Ok::<(), pc_net::FrameSizeError>(())
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub struct EthernetFrame {
    bytes: u32,
}

impl EthernetFrame {
    /// Creates a frame of `bytes` total size.
    ///
    /// # Errors
    ///
    /// Returns [`FrameSizeError`] if `bytes` is not a legal Ethernet frame
    /// size.
    pub fn new(bytes: u32) -> Result<Self, FrameSizeError> {
        if (MIN_FRAME_BYTES..=MAX_FRAME_BYTES).contains(&bytes) {
            Ok(EthernetFrame { bytes })
        } else {
            Err(FrameSizeError { bytes })
        }
    }

    /// Creates a frame sized `blocks` cache blocks (64 bytes each), the
    /// granularity the covert channel encodes symbols in.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is 0 or the resulting size exceeds
    /// [`MAX_FRAME_BYTES`].
    pub fn with_blocks(blocks: u32) -> Self {
        assert!(blocks > 0, "a frame spans at least one cache block");
        let bytes = blocks * 64;
        assert!(
            bytes <= MAX_FRAME_BYTES,
            "{blocks} blocks exceed the maximum frame"
        );
        EthernetFrame { bytes }
    }

    /// Clamps an arbitrary size into the legal frame range. Generators use
    /// this so random perturbations stay valid.
    pub fn clamped(bytes: u32) -> Self {
        EthernetFrame {
            bytes: bytes.clamp(MIN_FRAME_BYTES, MAX_FRAME_BYTES),
        }
    }

    /// A full-MTU frame (1514 bytes of Ethernet header + IP payload,
    /// rounded into the legal range).
    pub fn mtu_sized() -> Self {
        EthernetFrame {
            bytes: MTU_BYTES + 14,
        }
    }

    /// A minimum-size control frame (e.g. a TCP ACK).
    pub fn min_sized() -> Self {
        EthernetFrame {
            bytes: MIN_FRAME_BYTES,
        }
    }

    /// Total size in bytes.
    pub fn bytes(self) -> u32 {
        self.bytes
    }

    /// Number of 64-byte cache blocks the frame occupies in an rx buffer —
    /// what the spy measures.
    pub fn cache_blocks(self) -> u32 {
        self.bytes.div_ceil(64)
    }
}

impl Default for EthernetFrame {
    fn default() -> Self {
        EthernetFrame::min_sized()
    }
}

impl fmt::Display for EthernetFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B frame", self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_validate() {
        assert!(EthernetFrame::new(63).is_err());
        assert!(EthernetFrame::new(64).is_ok());
        assert!(EthernetFrame::new(1522).is_ok());
        assert!(EthernetFrame::new(1523).is_err());
    }

    #[test]
    fn error_reports_size() {
        let e = EthernetFrame::new(10).unwrap_err();
        assert_eq!(e.bytes(), 10);
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn block_arithmetic() {
        assert_eq!(EthernetFrame::new(64).unwrap().cache_blocks(), 1);
        assert_eq!(EthernetFrame::new(65).unwrap().cache_blocks(), 2);
        assert_eq!(EthernetFrame::new(192).unwrap().cache_blocks(), 3);
        assert_eq!(EthernetFrame::new(256).unwrap().cache_blocks(), 4);
        assert_eq!(EthernetFrame::mtu_sized().cache_blocks(), 24);
    }

    #[test]
    fn with_blocks_round_trips() {
        for blocks in 1..=23 {
            assert_eq!(EthernetFrame::with_blocks(blocks).cache_blocks(), blocks);
        }
    }

    #[test]
    fn clamping() {
        assert_eq!(EthernetFrame::clamped(1).bytes(), MIN_FRAME_BYTES);
        assert_eq!(EthernetFrame::clamped(9999).bytes(), MAX_FRAME_BYTES);
        assert_eq!(EthernetFrame::clamped(100).bytes(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one cache block")]
    fn zero_blocks_panics() {
        EthernetFrame::with_blocks(0);
    }
}
