//! Frame-size generators for every experiment's traffic.

use crate::flow::FlowTuple;
use crate::frame::{EthernetFrame, MAX_FRAME_BYTES, MIN_FRAME_BYTES};
use rand::rngs::SmallRng;
use rand::Rng;

/// A source of frame sizes.
///
/// Generators are deliberately infallible and infinite: experiments take
/// as many frames as they need. The trait is object safe so schedules can
/// mix heterogeneous sources.
pub trait SizeGenerator {
    /// Produces the next frame.
    fn next_frame(&mut self, rng: &mut SmallRng) -> EthernetFrame;

    /// The flow tuple of the frame [`SizeGenerator::next_frame`] just
    /// produced (the schedule builder calls the two back to back).
    /// Defaults to the legacy all-zero flow, and **must not draw from
    /// any RNG** — flow assignment is a pure function of generator
    /// state, so pre-RSS schedules are bit-for-bit unchanged.
    fn next_flow(&mut self) -> FlowTuple {
        FlowTuple::default()
    }
}

/// Emits frames of one fixed size — the Figure 8 experiment ("four
/// different runs with constant packet sizes being sent").
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct ConstantSize {
    frame: EthernetFrame,
}

impl ConstantSize {
    /// A generator of `frame`s.
    pub fn new(frame: EthernetFrame) -> Self {
        ConstantSize { frame }
    }

    /// A generator of `blocks`-block frames.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`EthernetFrame::with_blocks`].
    pub fn blocks(blocks: u32) -> Self {
        ConstantSize {
            frame: EthernetFrame::with_blocks(blocks),
        }
    }
}

impl SizeGenerator for ConstantSize {
    fn next_frame(&mut self, _rng: &mut SmallRng) -> EthernetFrame {
        self.frame
    }
}

/// Cycles deterministically through a sequence of sizes (e.g. the
/// "2 0 1 2 0 1 …" symbol stream of Figure 10).
#[derive(Clone, Debug)]
pub struct CyclingSizes {
    frames: Vec<EthernetFrame>,
    next: usize,
}

impl CyclingSizes {
    /// Creates a generator cycling through `frames`.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty.
    pub fn new(frames: Vec<EthernetFrame>) -> Self {
        assert!(!frames.is_empty(), "cycle needs at least one frame");
        CyclingSizes { frames, next: 0 }
    }
}

impl SizeGenerator for CyclingSizes {
    fn next_frame(&mut self, _rng: &mut SmallRng) -> EthernetFrame {
        let f = self.frames[self.next];
        self.next = (self.next + 1) % self.frames.len();
        f
    }
}

/// Uniformly random sizes within a range — generic background noise.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct UniformSizes {
    lo: u32,
    hi: u32,
}

impl UniformSizes {
    /// Sizes drawn uniformly from `[lo, hi]` bytes (clamped to the legal
    /// frame range).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: u32, hi: u32) -> Self {
        assert!(lo <= hi, "empty size range");
        UniformSizes {
            lo: lo.max(MIN_FRAME_BYTES),
            hi: hi.min(MAX_FRAME_BYTES),
        }
    }

    /// The full legal frame range.
    pub fn full_range() -> Self {
        UniformSizes::new(MIN_FRAME_BYTES, MAX_FRAME_BYTES)
    }
}

impl SizeGenerator for UniformSizes {
    fn next_frame(&mut self, rng: &mut SmallRng) -> EthernetFrame {
        EthernetFrame::clamped(rng.gen_range(self.lo..=self.hi))
    }
}

/// The bimodal Internet size mix the paper cites (Sinha et al.): packets
/// congregate at the two ends of the spectrum — small control frames and
/// MTU-sized fragments — with a thin middle.
#[derive(Copy, Clone, Debug)]
pub struct BimodalMix {
    /// Probability of a small control frame.
    small_prob: f64,
    /// Probability of a full-MTU frame (else: uniform middle).
    mtu_prob: f64,
}

impl BimodalMix {
    /// The canonical mix: 40 % control frames, 45 % MTU frames, 15 %
    /// everything in between.
    pub fn internet() -> Self {
        BimodalMix {
            small_prob: 0.40,
            mtu_prob: 0.45,
        }
    }

    /// A custom mix.
    ///
    /// # Panics
    ///
    /// Panics if the probabilities are negative or sum above 1.
    pub fn new(small_prob: f64, mtu_prob: f64) -> Self {
        assert!(small_prob >= 0.0 && mtu_prob >= 0.0, "negative probability");
        assert!(small_prob + mtu_prob <= 1.0, "probabilities exceed 1");
        BimodalMix {
            small_prob,
            mtu_prob,
        }
    }
}

impl SizeGenerator for BimodalMix {
    fn next_frame(&mut self, rng: &mut SmallRng) -> EthernetFrame {
        let p: f64 = rng.gen();
        if p < self.small_prob {
            // Control frames: 64..128 bytes.
            EthernetFrame::clamped(rng.gen_range(64..128))
        } else if p < self.small_prob + self.mtu_prob {
            EthernetFrame::mtu_sized()
        } else {
            EthernetFrame::clamped(rng.gen_range(128..1400))
        }
    }
}

/// Wraps any size generator with a deterministic round-robin flow
/// assignment: frame `k` of the stream belongs to
/// `flows[k % flows.len()]` — a synthetic client population hitting
/// one server, the shape RSS steering spreads across queues. Sizes
/// (and every RNG draw) come from the inner generator unchanged.
#[derive(Clone, Debug)]
pub struct FlowCycle<G> {
    inner: G,
    flows: Vec<FlowTuple>,
    next: usize,
}

impl<G: SizeGenerator> FlowCycle<G> {
    /// Cycles `inner`'s frames through `flows`.
    ///
    /// # Panics
    ///
    /// Panics if `flows` is empty.
    pub fn new(inner: G, flows: Vec<FlowTuple>) -> Self {
        assert!(!flows.is_empty(), "flow cycle needs at least one flow");
        FlowCycle {
            inner,
            flows,
            next: 0,
        }
    }

    /// A population of `clients` synthetic clients (see
    /// [`FlowTuple::client`]) talking to server port `dst_port`.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is zero.
    pub fn clients(inner: G, clients: u64, dst_port: u16) -> Self {
        assert!(clients > 0, "client population must be non-empty");
        FlowCycle::new(
            inner,
            (0..clients)
                .map(|i| FlowTuple::client(i, dst_port))
                .collect(),
        )
    }
}

impl<G: SizeGenerator> SizeGenerator for FlowCycle<G> {
    fn next_frame(&mut self, rng: &mut SmallRng) -> EthernetFrame {
        self.inner.next_frame(rng)
    }

    fn next_flow(&mut self) -> FlowTuple {
        let f = self.flows[self.next];
        self.next = (self.next + 1) % self.flows.len();
        f
    }
}

/// Replays a recorded trace of sizes once, then repeats it.
#[derive(Clone, Debug)]
pub struct TraceReplay {
    sizes: Vec<u32>,
    next: usize,
}

impl TraceReplay {
    /// Creates a replay source from raw sizes (clamped to legal frames).
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty.
    pub fn new(sizes: Vec<u32>) -> Self {
        assert!(!sizes.is_empty(), "trace must be non-empty");
        TraceReplay { sizes, next: 0 }
    }

    /// Length of one replay pass.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// `true` if the trace has no entries (never: constructor forbids it,
    /// kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }
}

impl SizeGenerator for TraceReplay {
    fn next_frame(&mut self, _rng: &mut SmallRng) -> EthernetFrame {
        let s = self.sizes[self.next];
        self.next = (self.next + 1) % self.sizes.len();
        EthernetFrame::clamped(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    #[test]
    fn constant_is_constant() {
        let mut g = ConstantSize::blocks(3);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(g.next_frame(&mut r).cache_blocks(), 3);
        }
    }

    #[test]
    fn cycle_repeats_in_order() {
        let frames = vec![
            EthernetFrame::with_blocks(1),
            EthernetFrame::with_blocks(4),
            EthernetFrame::with_blocks(3),
        ];
        let mut g = CyclingSizes::new(frames);
        let mut r = rng();
        let got: Vec<u32> = (0..6)
            .map(|_| g.next_frame(&mut r).cache_blocks())
            .collect();
        assert_eq!(got, vec![1, 4, 3, 1, 4, 3]);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut g = UniformSizes::new(100, 200);
        let mut r = rng();
        for _ in 0..100 {
            let b = g.next_frame(&mut r).bytes();
            assert!((100..=200).contains(&b));
        }
    }

    #[test]
    fn bimodal_is_bimodal() {
        let mut g = BimodalMix::internet();
        let mut r = rng();
        let (mut small, mut mtu) = (0, 0);
        for _ in 0..1000 {
            let b = g.next_frame(&mut r).bytes();
            if b < 128 {
                small += 1;
            } else if b >= 1500 {
                mtu += 1;
            }
        }
        assert!(small > 300, "expected ≥30% control frames, got {small}");
        assert!(mtu > 350, "expected ≥35% MTU frames, got {mtu}");
    }

    #[test]
    fn trace_replay_wraps() {
        let mut g = TraceReplay::new(vec![64, 128]);
        let mut r = rng();
        assert_eq!(g.next_frame(&mut r).bytes(), 64);
        assert_eq!(g.next_frame(&mut r).bytes(), 128);
        assert_eq!(g.next_frame(&mut r).bytes(), 64);
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
    }

    #[test]
    fn generators_are_object_safe() {
        let mut boxed: Box<dyn SizeGenerator> = Box::new(ConstantSize::blocks(2));
        assert_eq!(boxed.next_frame(&mut rng()).cache_blocks(), 2);
        assert!(boxed.next_flow().is_legacy(), "default flow is legacy");
    }

    #[test]
    fn flow_cycle_wraps_flows_without_touching_sizes() {
        let mut plain = ConstantSize::blocks(3);
        let mut cycled = FlowCycle::clients(ConstantSize::blocks(3), 4, 80);
        let mut r1 = rng();
        let mut r2 = rng();
        let mut flows = Vec::new();
        for _ in 0..10 {
            assert_eq!(
                cycled.next_frame(&mut r2),
                plain.next_frame(&mut r1),
                "sizes and RNG stream are the inner generator's"
            );
            flows.push(cycled.next_flow());
        }
        assert_eq!(r1, r2, "flow assignment draws nothing");
        assert_eq!(flows[0], FlowTuple::client(0, 80));
        assert_eq!(flows[4], flows[0], "round-robin over 4 clients");
        assert_ne!(flows[0], flows[1]);
    }
}
