//! The 15-bit linear-feedback shift register from the paper's §IV-a.
//!
//! The covert-channel error-rate methodology (borrowed from Liu et al.)
//! transmits a pseudo-random bit sequence of period `2^15 − 1` so that bit
//! loss, insertion and swaps are all detectable when the received stream
//! is aligned against the reference via edit distance.

/// Maximal-length 15-bit LFSR (taps at bits 15 and 14, polynomial
/// `x^15 + x^14 + 1`), emitting one bit per step.
///
/// ```
/// use pc_net::Lfsr15;
/// let bits: Vec<u8> = Lfsr15::new(1).take(10).collect();
/// assert_eq!(bits.len(), 10);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct Lfsr15 {
    state: u16,
}

impl Lfsr15 {
    /// Period of the maximal-length sequence: `2^15 - 1`.
    pub const PERIOD: usize = (1 << 15) - 1;

    /// Creates an LFSR from a non-zero 15-bit seed.
    ///
    /// # Panics
    ///
    /// Panics if `seed & 0x7fff == 0` (the all-zero state is a fixed
    /// point and never occurs in the maximal-length sequence).
    pub fn new(seed: u16) -> Self {
        let state = seed & 0x7fff;
        assert!(state != 0, "LFSR seed must be non-zero in its low 15 bits");
        Lfsr15 { state }
    }

    /// Advances one step and returns the output bit (0 or 1).
    pub fn next_bit(&mut self) -> u8 {
        let out = (self.state & 1) as u8;
        let feedback = ((self.state >> 14) ^ (self.state >> 13)) & 1;
        self.state = ((self.state << 1) | feedback) & 0x7fff;
        out
    }

    /// Current internal state (useful for checkpointing tests).
    pub fn state(&self) -> u16 {
        self.state
    }
}

impl Iterator for Lfsr15 {
    type Item = u8;

    fn next(&mut self) -> Option<u8> {
        Some(self.next_bit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn period_is_maximal() {
        let mut l = Lfsr15::new(1);
        let start = l.state();
        let mut steps = 0usize;
        loop {
            l.next_bit();
            steps += 1;
            if l.state() == start {
                break;
            }
            assert!(
                steps <= Lfsr15::PERIOD,
                "period exceeded the maximal length"
            );
        }
        assert_eq!(steps, Lfsr15::PERIOD, "LFSR is not maximal-length");
    }

    #[test]
    fn visits_every_nonzero_state() {
        let mut l = Lfsr15::new(0x3ace);
        let mut seen = HashSet::new();
        for _ in 0..Lfsr15::PERIOD {
            seen.insert(l.state());
            l.next_bit();
        }
        assert_eq!(seen.len(), Lfsr15::PERIOD);
        assert!(!seen.contains(&0));
    }

    #[test]
    fn bits_are_balanced() {
        let ones: usize = Lfsr15::new(77).take(Lfsr15::PERIOD).map(usize::from).sum();
        // Maximal-length sequences have exactly 2^14 ones.
        assert_eq!(ones, 1 << 14);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_seed_rejected() {
        Lfsr15::new(0x8000); // low 15 bits are zero
    }
}
