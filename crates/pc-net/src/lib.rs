//! # pc-net — traffic substrate for the Packet Chasing reproduction
//!
//! Everything that *produces* packets lives here: Ethernet frame sizes and
//! their cache-block arithmetic, the 1 GbE line-rate model that bounds the
//! covert channel, the 15-bit LFSR pseudo-random bit source the paper uses
//! to measure channel error rates, size generators for every experiment,
//! an arrival scheduler (with the high-rate reordering that causes the
//! error jump in Figure 12d), and the synthetic web-page/login traces for
//! the fingerprinting study.
//!
//! This crate knows nothing about caches or drivers; it only emits
//! `(arrival_cycle, frame)` streams that `pc-nic`'s driver model consumes.
//!
//! ## Example
//!
//! ```
//! use pc_net::{EthernetFrame, LineRate};
//!
//! let frame = EthernetFrame::new(192)?;
//! assert_eq!(frame.cache_blocks(), 3);
//! let gbe = LineRate::gigabit();
//! // At 1 Gb/s a 192-byte frame plus wire overhead takes ~1.7 µs:
//! assert!(gbe.cycles_per_frame(frame.bytes()) > 5_000);
//! # Ok::<(), pc_net::FrameSizeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flow;
mod frame;
mod generator;
mod lfsr;
mod linerate;
mod schedule;
mod webtrace;

pub use flow::FlowTuple;
pub use frame::{EthernetFrame, FrameSizeError, MAX_FRAME_BYTES, MIN_FRAME_BYTES, MTU_BYTES};
pub use generator::{
    BimodalMix, ConstantSize, CyclingSizes, FlowCycle, SizeGenerator, TraceReplay, UniformSizes,
};
pub use lfsr::Lfsr15;
pub use linerate::{LineRate, CPU_FREQ_HZ, WIRE_OVERHEAD_BYTES};
pub use schedule::{merge_schedules, ArrivalSchedule, ScheduledFrame};
pub use webtrace::{ClosedWorld, LoginOutcome, LoginTraceSource, WebsiteProfile};
