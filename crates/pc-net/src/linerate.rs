//! Line-rate model: how fast frames of a given size can arrive.
//!
//! The paper's covert channel is line-rate bound: on 1 GbE with ~192-byte
//! frames the trojan can send roughly half a million frames per second,
//! and at 256 frames per symbol that caps the channel near 2 k symbols/s
//! (§IV-b). This module converts frame sizes to inter-arrival times in
//! CPU cycles so the rest of the simulator can schedule arrivals.

use crate::frame::EthernetFrame;

/// Simulated CPU frequency (the paper's Xeon E5-2660 runs at ~3.3 GHz
/// boost; gem5 baseline in Table II uses 3.3 GHz).
pub const CPU_FREQ_HZ: u64 = 3_300_000_000;

/// Per-frame wire overhead: 8 bytes preamble/SFD + 12 bytes inter-frame
/// gap.
pub const WIRE_OVERHEAD_BYTES: u32 = 20;

/// An Ethernet link speed.
///
/// ```
/// use pc_net::{EthernetFrame, LineRate};
/// let link = LineRate::gigabit();
/// let frame = EthernetFrame::new(192)?;
/// let fps = link.max_frames_per_second(frame.bytes());
/// assert!((400_000..700_000).contains(&fps));
/// # Ok::<(), pc_net::FrameSizeError>(())
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct LineRate {
    bits_per_second: u64,
}

impl LineRate {
    /// Creates a link of `bits_per_second`.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_second` is zero.
    pub fn new(bits_per_second: u64) -> Self {
        assert!(bits_per_second > 0, "line rate must be non-zero");
        LineRate { bits_per_second }
    }

    /// 1 Gb/s Ethernet — the paper's testbed link.
    pub fn gigabit() -> Self {
        LineRate::new(1_000_000_000)
    }

    /// 10 Gb/s Ethernet (for the "faster links make randomization more
    /// expensive" discussion in §VII).
    pub fn ten_gigabit() -> Self {
        LineRate::new(10_000_000_000)
    }

    /// The configured rate in bits per second.
    pub fn bits_per_second(&self) -> u64 {
        self.bits_per_second
    }

    /// Nanoseconds a frame of `frame_bytes` occupies the wire, including
    /// preamble and inter-frame gap.
    pub fn nanos_per_frame(&self, frame_bytes: u32) -> u64 {
        let bits = u64::from(frame_bytes + WIRE_OVERHEAD_BYTES) * 8;
        // ceil(bits * 1e9 / rate)
        (bits * 1_000_000_000).div_ceil(self.bits_per_second)
    }

    /// CPU cycles between back-to-back frames of `frame_bytes`.
    pub fn cycles_per_frame(&self, frame_bytes: u32) -> u64 {
        self.nanos_per_frame(frame_bytes) * CPU_FREQ_HZ / 1_000_000_000
    }

    /// Maximum frames per second at this size (the Cisco-style metric the
    /// paper cites: ~500 k fps for ~192-byte frames on 1 GbE).
    pub fn max_frames_per_second(&self, frame_bytes: u32) -> u64 {
        1_000_000_000 / self.nanos_per_frame(frame_bytes).max(1)
    }

    /// CPU cycles between frames when sending at `frames_per_second`,
    /// clamped to the line-rate bound for that frame size.
    ///
    /// # Panics
    ///
    /// Panics if `frames_per_second` is zero.
    pub fn cycles_at_rate(&self, frame_bytes: u32, frames_per_second: u64) -> u64 {
        assert!(frames_per_second > 0, "frame rate must be non-zero");
        let requested = CPU_FREQ_HZ / frames_per_second;
        requested.max(self.cycles_per_frame(frame_bytes))
    }

    /// Convenience: inter-arrival cycles for an [`EthernetFrame`].
    pub fn cycles_for(&self, frame: EthernetFrame) -> u64 {
        self.cycles_per_frame(frame.bytes())
    }
}

impl Default for LineRate {
    fn default() -> Self {
        LineRate::gigabit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabit_frame_rate_matches_paper_ballpark() {
        // The paper quotes ~500k fps for 192-byte frames on 1 GbE.
        let fps = LineRate::gigabit().max_frames_per_second(192);
        assert!(
            (450_000..650_000).contains(&fps),
            "192B fps {fps} out of the paper's ballpark"
        );
    }

    #[test]
    fn bigger_frames_are_slower() {
        let l = LineRate::gigabit();
        assert!(l.max_frames_per_second(64) > l.max_frames_per_second(1522));
        assert!(l.cycles_per_frame(64) < l.cycles_per_frame(1522));
    }

    #[test]
    fn faster_links_are_faster() {
        assert!(
            LineRate::ten_gigabit().cycles_per_frame(256)
                < LineRate::gigabit().cycles_per_frame(256)
        );
    }

    #[test]
    fn rate_clamps_to_line_rate() {
        let l = LineRate::gigabit();
        // Requesting 10M fps of 1522-byte frames is impossible.
        let cycles = l.cycles_at_rate(1522, 10_000_000);
        assert_eq!(cycles, l.cycles_per_frame(1522));
        // Requesting a slow rate is honored.
        let slow = l.cycles_at_rate(64, 1_000);
        assert_eq!(slow, CPU_FREQ_HZ / 1_000);
    }

    #[test]
    fn nanos_are_exact_for_round_cases() {
        // (64 + 20) * 8 = 672 bits → 672 ns on 1 Gb/s.
        assert_eq!(LineRate::gigabit().nanos_per_frame(64), 672);
    }
}
