//! Arrival scheduling: turning a size generator plus a rate into a
//! time-stamped frame stream, including the high-rate reordering effect.
//!
//! Figure 12d of the paper shows the chasing receiver's error rate jumping
//! at 640 kbps "because at that speed the packets start to arrive
//! out-of-order at the receive side". [`ArrivalSchedule`] reproduces that:
//! above a configurable utilization threshold, adjacent frames swap with a
//! probability that grows with utilization.

use crate::flow::FlowTuple;
use crate::frame::EthernetFrame;
use crate::generator::SizeGenerator;
use crate::linerate::LineRate;
use rand::rngs::SmallRng;
use rand::Rng;

/// A frame with its arrival time in CPU cycles.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct ScheduledFrame {
    /// Cycle at which the NIC receives the frame.
    pub at: u64,
    /// The frame itself.
    pub frame: EthernetFrame,
    /// The transport flow the frame belongs to (RSS steering input;
    /// the default all-zero tuple is the legacy single flow).
    pub flow: FlowTuple,
}

impl ScheduledFrame {
    /// A frame on the legacy (default) flow.
    pub fn new(at: u64, frame: EthernetFrame) -> Self {
        ScheduledFrame {
            at,
            frame,
            flow: FlowTuple::default(),
        }
    }

    /// Replaces the flow (builder style).
    pub fn with_flow(mut self, flow: FlowTuple) -> Self {
        self.flow = flow;
        self
    }
}

/// Builds time-stamped arrival streams.
///
/// ```
/// use pc_net::{ArrivalSchedule, ConstantSize, LineRate};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let frames = ArrivalSchedule::new(LineRate::gigabit())
///     .frames_per_second(100_000)
///     .generate(&mut ConstantSize::blocks(3), 0, 50, &mut rng);
/// assert_eq!(frames.len(), 50);
/// assert!(frames.windows(2).all(|w| w[0].at <= w[1].at));
/// ```
#[derive(Copy, Clone, Debug)]
pub struct ArrivalSchedule {
    line: LineRate,
    frames_per_second: Option<u64>,
    jitter_frac: f64,
    reorder_utilization: f64,
    reorder_prob_max: f64,
}

impl ArrivalSchedule {
    /// A schedule on `line`, initially at full line rate with mild jitter
    /// and reordering beyond 80 % utilization.
    pub fn new(line: LineRate) -> Self {
        ArrivalSchedule {
            line,
            frames_per_second: None,
            jitter_frac: 0.05,
            reorder_utilization: 0.8,
            reorder_prob_max: 0.08,
        }
    }

    /// Caps the sender to `fps` frames per second (still bounded by the
    /// line rate).
    ///
    /// # Panics
    ///
    /// Panics if `fps` is zero.
    pub fn frames_per_second(mut self, fps: u64) -> Self {
        assert!(fps > 0, "frame rate must be non-zero");
        self.frames_per_second = Some(fps);
        self
    }

    /// Sets inter-arrival jitter as a fraction of the nominal gap.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is negative or ≥ 1.
    pub fn jitter(mut self, frac: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&frac),
            "jitter fraction must be in [0, 1)"
        );
        self.jitter_frac = frac;
        self
    }

    /// Configures reordering: above `utilization` (fraction of line rate),
    /// adjacent frames swap with probability scaling up to `max_prob`.
    ///
    /// # Panics
    ///
    /// Panics if arguments are outside `[0, 1]`.
    pub fn reordering(mut self, utilization: f64, max_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "utilization must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&max_prob),
            "probability must be in [0, 1]"
        );
        self.reorder_utilization = utilization;
        self.reorder_prob_max = max_prob;
        self
    }

    /// Link utilization of `fps` frames of `bytes` size, in `[0, ∞)`.
    fn utilization(&self, bytes: u32, fps: u64) -> f64 {
        let line_fps = self.line.max_frames_per_second(bytes).max(1);
        fps as f64 / line_fps as f64
    }

    /// Generates `count` arrivals starting at cycle `start`.
    pub fn generate<G: SizeGenerator + ?Sized>(
        &self,
        gen: &mut G,
        start: u64,
        count: usize,
        rng: &mut SmallRng,
    ) -> Vec<ScheduledFrame> {
        let mut out = Vec::with_capacity(count);
        let mut t = start;
        for _ in 0..count {
            let frame = gen.next_frame(rng);
            // Flow assignment never draws from `rng`: the shared
            // schedule stream is pinned by pre-RSS goldens.
            let flow = gen.next_flow();
            let nominal = match self.frames_per_second {
                Some(fps) => self.line.cycles_at_rate(frame.bytes(), fps),
                None => self.line.cycles_for(frame),
            };
            let gap = if self.jitter_frac > 0.0 {
                let j = 1.0 + rng.gen_range(-self.jitter_frac..=self.jitter_frac);
                ((nominal as f64) * j).max(1.0) as u64
            } else {
                nominal
            };
            t += gap;
            out.push(ScheduledFrame { at: t, frame, flow });
        }
        self.apply_reordering(&mut out, rng);
        out
    }

    /// Swaps adjacent arrivals with a utilization-dependent probability,
    /// then re-sorts timestamps so the stream stays causally ordered while
    /// the *content* order is perturbed (which is exactly what breaks the
    /// chasing receiver's synchronization).
    fn apply_reordering(&self, frames: &mut [ScheduledFrame], rng: &mut SmallRng) {
        if frames.len() < 2 {
            return;
        }
        let fps = match self.frames_per_second {
            Some(fps) => fps,
            None => return, // full line rate: modeled as a well-paced sender
        };
        let avg_bytes = (frames
            .iter()
            .map(|f| u64::from(f.frame.bytes()))
            .sum::<u64>()
            / frames.len() as u64) as u32;
        let util = self.utilization(avg_bytes, fps);
        if util <= self.reorder_utilization {
            return;
        }
        let severity = ((util - self.reorder_utilization)
            / (1.0 - self.reorder_utilization).max(1e-9))
        .min(1.0);
        let p = self.reorder_prob_max * severity;
        for i in 1..frames.len() {
            if rng.gen_bool(p) {
                // The *content* (frame and its flow) swaps; the
                // timestamps stay put, keeping the stream sorted.
                let (a, b) = (frames[i - 1], frames[i]);
                frames[i - 1].frame = b.frame;
                frames[i - 1].flow = b.flow;
                frames[i].frame = a.frame;
                frames[i].flow = a.flow;
            }
        }
    }
}

/// Merges two already-sorted arrival streams into one sorted stream
/// (trojan traffic + background noise).
pub fn merge_schedules(
    mut a: Vec<ScheduledFrame>,
    mut b: Vec<ScheduledFrame>,
) -> Vec<ScheduledFrame> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (0, 0);
    while ia < a.len() && ib < b.len() {
        if a[ia].at <= b[ib].at {
            out.push(a[ia]);
            ia += 1;
        } else {
            out.push(b[ib]);
            ib += 1;
        }
    }
    out.extend(a.drain(ia..));
    out.extend(b.drain(ib..));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ConstantSize;
    use crate::linerate::CPU_FREQ_HZ;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(5)
    }

    #[test]
    fn timestamps_monotone() {
        let s = ArrivalSchedule::new(LineRate::gigabit()).frames_per_second(200_000);
        let frames = s.generate(&mut ConstantSize::blocks(2), 100, 1000, &mut rng());
        assert!(frames.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(frames[0].at > 100);
    }

    #[test]
    fn rate_is_respected_on_average() {
        let s = ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(100_000)
            .jitter(0.0);
        let frames = s.generate(&mut ConstantSize::blocks(1), 0, 100, &mut rng());
        let span = frames.last().unwrap().at - frames[0].at;
        let avg_gap = span / 99;
        assert_eq!(avg_gap, CPU_FREQ_HZ / 100_000);
    }

    #[test]
    fn line_rate_caps_requested_rate() {
        // 10M fps of MTU frames is impossible on 1 GbE.
        let s = ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(10_000_000)
            .jitter(0.0);
        let mut gen = ConstantSize::new(EthernetFrame::mtu_sized());
        let frames = s.generate(&mut gen, 0, 10, &mut rng());
        let gap = frames[1].at - frames[0].at;
        assert_eq!(gap, LineRate::gigabit().cycles_per_frame(1514));
    }

    #[test]
    fn low_utilization_keeps_order() {
        let mut sizes = crate::generator::CyclingSizes::new(vec![
            EthernetFrame::with_blocks(1),
            EthernetFrame::with_blocks(2),
            EthernetFrame::with_blocks(3),
        ]);
        let s = ArrivalSchedule::new(LineRate::gigabit()).frames_per_second(1_000);
        let frames = s.generate(&mut sizes, 0, 30, &mut rng());
        let blocks: Vec<u32> = frames.iter().map(|f| f.frame.cache_blocks()).collect();
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(*b, (i as u32 % 3) + 1, "low-rate stream must stay in order");
        }
    }

    #[test]
    fn high_utilization_reorders_some_frames() {
        let mut sizes = crate::generator::CyclingSizes::new(vec![
            EthernetFrame::with_blocks(1),
            EthernetFrame::with_blocks(2),
            EthernetFrame::with_blocks(3),
        ]);
        // 64-byte-class frames at ~1.4M fps ≈ full utilization of 1 GbE.
        let s = ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(1_400_000)
            .reordering(0.5, 0.2);
        let frames = s.generate(&mut sizes, 0, 3000, &mut rng());
        let out_of_place = frames
            .iter()
            .enumerate()
            .filter(|(i, f)| f.frame.cache_blocks() != (*i as u32 % 3) + 1)
            .count();
        assert!(
            out_of_place > 0,
            "expected some reordering at high utilization"
        );
    }

    #[test]
    fn flows_travel_with_their_frames_through_reordering() {
        use crate::flow::FlowTuple;
        use crate::generator::FlowCycle;
        // Distinct sizes per flow, so a swap that moved a frame
        // without its flow is detectable: every 2-block frame is
        // client 0, every 3-block frame client 1, and so on.
        let sizes = crate::generator::CyclingSizes::new(vec![
            EthernetFrame::with_blocks(2),
            EthernetFrame::with_blocks(3),
            EthernetFrame::with_blocks(4),
        ]);
        let mut gen = FlowCycle::clients(sizes, 3, 80);
        let s = ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(1_400_000)
            .reordering(0.5, 0.2);
        let frames = s.generate(&mut gen, 0, 3000, &mut rng());
        let mut moved = 0;
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(
                f.flow,
                FlowTuple::client(u64::from(f.frame.cache_blocks()) - 2, 80),
                "flow must ride with its frame through swaps"
            );
            if f.frame.cache_blocks() != (i as u32 % 3) + 2 {
                moved += 1;
            }
        }
        assert!(moved > 0, "the high-rate stream did reorder");
    }

    #[test]
    fn flow_assignment_never_shifts_the_schedule_rng() {
        // A flow-cycled generator and its plain inner generator must
        // produce identical (at, frame) streams from identical RNGs.
        let s = ArrivalSchedule::new(LineRate::gigabit()).frames_per_second(200_000);
        let plain = s.generate(&mut ConstantSize::blocks(2), 0, 200, &mut rng());
        let cycled = s.generate(
            &mut crate::generator::FlowCycle::clients(ConstantSize::blocks(2), 8, 80),
            0,
            200,
            &mut rng(),
        );
        assert_eq!(plain.len(), cycled.len());
        for (p, c) in plain.iter().zip(&cycled) {
            assert_eq!((p.at, p.frame), (c.at, c.frame));
            assert!(p.flow.is_legacy());
            assert!(!c.flow.is_legacy());
        }
    }

    #[test]
    fn merge_keeps_global_order() {
        let s = ArrivalSchedule::new(LineRate::gigabit()).frames_per_second(100_000);
        let a = s.generate(&mut ConstantSize::blocks(1), 0, 50, &mut rng());
        let b = s.generate(&mut ConstantSize::blocks(4), 37, 50, &mut rng());
        let merged = merge_schedules(a, b);
        assert_eq!(merged.len(), 100);
        assert!(merged.windows(2).all(|w| w[0].at <= w[1].at));
    }
}
