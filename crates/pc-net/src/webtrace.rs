//! Synthetic web-page packet traces for the fingerprinting study (§V).
//!
//! **Substitution note (see DESIGN.md):** the paper captures real Firefox
//! traffic with tcpdump. We cannot ship third-party site traces, so each
//! website is a [`WebsiteProfile`] — a deterministic generator whose
//! *shape* follows the paper's observation (after Sinha et al.) that
//! "packets are usually congested on the two sides of the spectrum":
//! large HTTP objects arrive as runs of MTU-sized frames terminated by a
//! distinctive final fragment, interleaved with small control packets.
//! The per-site signature (object count, run lengths, tail-fragment sizes)
//! is what the classifier keys on — exactly the information content the
//! attack exploits on real traces.

use crate::frame::EthernetFrame;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic model of one website's response traffic.
#[derive(Clone, Debug)]
pub struct WebsiteProfile {
    name: String,
    /// Per-object tail-fragment sizes and run lengths, fixed per site.
    objects: Vec<(u32, u32)>, // (mtu_run_len, tail_bytes)
    /// Probability of a control packet between data packets.
    control_ratio: f64,
}

impl WebsiteProfile {
    /// Builds a site profile from a name and seed. The same (name, seed)
    /// always produces the same signature.
    pub fn from_seed(name: &str, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let num_objects = rng.gen_range(6..14);
        let objects = (0..num_objects)
            .map(|_| {
                let run = rng.gen_range(1..12);
                // The tail fragment can fall anywhere from 1 block to MTU
                // — "giving us a good indicator of the webpages". Tails in
                // the 1..6-block range are what survive the spy's 4-class
                // quantization, so the profile keeps them there.
                let tail = rng.gen_range(64..384);
                (run, tail)
            })
            .collect();
        let control_ratio = rng.gen_range(0.15..0.35);
        WebsiteProfile {
            name: name.to_owned(),
            objects,
            control_ratio,
        }
    }

    /// The site's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Expected number of data packets in one page load (without noise).
    pub fn nominal_len(&self) -> usize {
        self.objects.iter().map(|(run, _)| *run as usize + 1).sum()
    }

    /// Generates one page-load trace with measurement noise.
    ///
    /// `noise` in `[0, 1]` controls how often packets are perturbed,
    /// dropped or duplicated — modelling retransmissions, timing drift and
    /// CDN variance between loads of the same page.
    ///
    /// # Panics
    ///
    /// Panics if `noise` is outside `[0, 1]`.
    pub fn page_load(&self, noise: f64, rng: &mut SmallRng) -> Vec<EthernetFrame> {
        assert!((0.0..=1.0).contains(&noise), "noise must be in [0, 1]");
        let mut out = Vec::with_capacity(self.nominal_len() * 2);
        for &(run, tail) in &self.objects {
            for _ in 0..run {
                out.push(EthernetFrame::mtu_sized());
                if rng.gen_bool(self.control_ratio) {
                    out.push(EthernetFrame::min_sized());
                }
            }
            out.push(EthernetFrame::clamped(tail));
        }
        // Noise pass: perturb / drop / duplicate.
        let mut noisy = Vec::with_capacity(out.len());
        for f in out {
            let roll: f64 = rng.gen();
            if roll < noise * 0.2 {
                continue; // dropped / coalesced
            }
            let f = if roll < noise * 0.5 {
                EthernetFrame::clamped(
                    (f.bytes() as i64 + rng.gen_range(-64i64..=64)).max(64) as u32
                )
            } else {
                f
            };
            noisy.push(f);
            if roll > 1.0 - noise * 0.1 {
                noisy.push(EthernetFrame::min_sized()); // spurious ACK
            }
        }
        if noisy.is_empty() {
            noisy.push(EthernetFrame::min_sized());
        }
        noisy
    }
}

/// The closed-world dataset of the paper's §V evaluation: five sites.
#[derive(Clone, Debug)]
pub struct ClosedWorld {
    profiles: Vec<WebsiteProfile>,
}

impl ClosedWorld {
    /// The paper's five sites (synthetic stand-ins, see module docs).
    pub fn paper_five_sites() -> Self {
        let names = [
            "facebook.com",
            "twitter.com",
            "google.com",
            "amazon.com",
            "apple.com",
        ];
        ClosedWorld {
            profiles: names
                .iter()
                .enumerate()
                .map(|(i, n)| WebsiteProfile::from_seed(n, 0xC0FFEE + i as u64 * 7919))
                .collect(),
        }
    }

    /// A closed world of `n` synthetic sites.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn synthetic(n: usize, seed: u64) -> Self {
        assert!(n > 0, "closed world needs at least one site");
        ClosedWorld {
            profiles: (0..n)
                .map(|i| WebsiteProfile::from_seed(&format!("site{i}.example"), seed + i as u64))
                .collect(),
        }
    }

    /// The site profiles.
    pub fn sites(&self) -> &[WebsiteProfile] {
        &self.profiles
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// `true` if the world has no sites (constructors forbid this).
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

/// Whether a login attempt succeeded — the Figure 13 experiment
/// distinguishes these two from their response packet sizes alone.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum LoginOutcome {
    /// Credentials accepted: large dashboard response.
    Successful,
    /// Credentials rejected: short error page.
    Unsuccessful,
}

/// Generator for the hotcrp.com login traces of Figure 13.
///
/// A successful login returns the full conference dashboard (long runs of
/// MTU frames with characteristic tails); a failed one bounces back to
/// the login form with an error banner (mostly small responses). Both
/// traces are ~100 packets, like the paper's figure.
#[derive(Clone, Debug)]
pub struct LoginTraceSource {
    success: WebsiteProfile,
    failure: WebsiteProfile,
}

impl LoginTraceSource {
    /// The hotcrp-like login trace pair.
    pub fn hotcrp() -> Self {
        LoginTraceSource {
            success: WebsiteProfile::from_seed("hotcrp.com/login-ok", 0x5EC5E55),
            failure: WebsiteProfile::from_seed("hotcrp.com/login-fail", 0xFA11ED),
        }
    }

    /// One login response trace, truncated/padded to exactly `len`
    /// packets (the paper plots the first 100).
    pub fn trace(
        &self,
        outcome: LoginOutcome,
        len: usize,
        noise: f64,
        rng: &mut SmallRng,
    ) -> Vec<EthernetFrame> {
        let profile = match outcome {
            LoginOutcome::Successful => &self.success,
            LoginOutcome::Unsuccessful => &self.failure,
        };
        let mut t = Vec::with_capacity(len);
        while t.len() < len {
            t.extend(profile.page_load(noise, rng));
        }
        t.truncate(len);
        t
    }
}

impl Default for LoginTraceSource {
    fn default() -> Self {
        LoginTraceSource::hotcrp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(2024)
    }

    #[test]
    fn profiles_are_deterministic() {
        let a = WebsiteProfile::from_seed("x", 7);
        let b = WebsiteProfile::from_seed("x", 7);
        let mut r1 = rng();
        let mut r2 = rng();
        assert_eq!(a.page_load(0.0, &mut r1), b.page_load(0.0, &mut r2));
    }

    #[test]
    fn different_seeds_differ() {
        let a = WebsiteProfile::from_seed("x", 7);
        let b = WebsiteProfile::from_seed("x", 8);
        let mut r = rng();
        let ta: Vec<u32> = a.page_load(0.0, &mut r).iter().map(|f| f.bytes()).collect();
        let tb: Vec<u32> = b.page_load(0.0, &mut r).iter().map(|f| f.bytes()).collect();
        assert_ne!(ta, tb);
    }

    #[test]
    fn noise_changes_traces_but_preserves_validity() {
        let p = WebsiteProfile::from_seed("noisy", 1);
        let mut r = rng();
        let clean = p.page_load(0.0, &mut r);
        let noisy = p.page_load(0.5, &mut r);
        assert_ne!(clean, noisy);
        for f in &noisy {
            assert!(f.bytes() >= 64 && f.bytes() <= 1522);
        }
    }

    #[test]
    fn closed_world_has_five_distinct_sites() {
        let w = ClosedWorld::paper_five_sites();
        assert_eq!(w.len(), 5);
        assert!(!w.is_empty());
        let mut r = rng();
        let traces: Vec<Vec<u32>> = w
            .sites()
            .iter()
            .map(|p| p.page_load(0.0, &mut r).iter().map(|f| f.bytes()).collect())
            .collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert_ne!(
                    traces[i], traces[j],
                    "sites {i} and {j} have identical signatures"
                );
            }
        }
    }

    #[test]
    fn login_traces_have_requested_length_and_differ() {
        let src = LoginTraceSource::hotcrp();
        let mut r = rng();
        let ok = src.trace(LoginOutcome::Successful, 100, 0.1, &mut r);
        let bad = src.trace(LoginOutcome::Unsuccessful, 100, 0.1, &mut r);
        assert_eq!(ok.len(), 100);
        assert_eq!(bad.len(), 100);
        let ok_sizes: Vec<u32> = ok.iter().map(|f| f.bytes()).collect();
        let bad_sizes: Vec<u32> = bad.iter().map(|f| f.bytes()).collect();
        assert_ne!(ok_sizes, bad_sizes);
    }

    #[test]
    fn nominal_len_counts_data_packets() {
        let p = WebsiteProfile::from_seed("len", 3);
        let mut r = rng();
        let trace = p.page_load(0.0, &mut r);
        // Noise-free traces contain the nominal data packets plus control
        // packets, so they're at least nominal length.
        assert!(trace.len() >= p.nominal_len());
    }
}
