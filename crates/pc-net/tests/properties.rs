//! Property-based tests for the traffic substrate.

use pc_net::{
    ArrivalSchedule, BimodalMix, EthernetFrame, Lfsr15, LineRate, SizeGenerator, UniformSizes,
    WebsiteProfile, CPU_FREQ_HZ, MAX_FRAME_BYTES, MIN_FRAME_BYTES,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Frame validation accepts exactly the legal range.
    #[test]
    fn frame_validation(bytes in 0u32..4000) {
        let ok = (MIN_FRAME_BYTES..=MAX_FRAME_BYTES).contains(&bytes);
        prop_assert_eq!(EthernetFrame::new(bytes).is_ok(), ok);
        // Clamping always yields a legal frame.
        let c = EthernetFrame::clamped(bytes);
        prop_assert!(EthernetFrame::new(c.bytes()).is_ok());
    }

    /// Cache-block math: blocks * 64 covers the frame, and (blocks-1)*64
    /// does not.
    #[test]
    fn block_count_is_ceiling(bytes in MIN_FRAME_BYTES..=MAX_FRAME_BYTES) {
        let f = EthernetFrame::new(bytes).expect("legal");
        let blocks = f.cache_blocks();
        prop_assert!(blocks * 64 >= bytes);
        prop_assert!((blocks - 1) * 64 < bytes);
    }

    /// Line-rate arithmetic: cycles per frame are monotone in size and
    /// honored rates never exceed the line limit.
    #[test]
    fn line_rate_monotone(a in 64u32..1522, b in 64u32..1522) {
        let l = LineRate::gigabit();
        if a <= b {
            prop_assert!(l.cycles_per_frame(a) <= l.cycles_per_frame(b));
        }
        let at_rate = l.cycles_at_rate(a, 1_000_000_000);
        prop_assert!(at_rate >= l.cycles_per_frame(a));
    }

    /// Schedules are sorted, respect the start time, and contain only
    /// legal frames.
    #[test]
    fn schedules_are_sane(
        fps in 1_000u64..1_000_000,
        start in 0u64..1_000_000,
        count in 1usize..300,
        seed in 0u64..1000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut gen = UniformSizes::full_range();
        let frames = ArrivalSchedule::new(LineRate::gigabit())
            .frames_per_second(fps)
            .generate(&mut gen, start, count, &mut rng);
        prop_assert_eq!(frames.len(), count);
        prop_assert!(frames[0].at > start);
        prop_assert!(frames.windows(2).all(|w| w[0].at <= w[1].at));
        for f in &frames {
            prop_assert!(EthernetFrame::new(f.frame.bytes()).is_ok());
        }
        // Average rate within 2x of the request (jitter + line cap).
        if count > 50 {
            let span = frames.last().expect("non-empty").at - start;
            let implied_fps = count as u64 * CPU_FREQ_HZ / span.max(1);
            prop_assert!(implied_fps <= fps * 2);
        }
    }

    /// Every generator yields only legal frames.
    #[test]
    fn generators_yield_legal_frames(seed in 0u64..500) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut gens: Vec<Box<dyn SizeGenerator>> = vec![
            Box::new(UniformSizes::full_range()),
            Box::new(BimodalMix::internet()),
        ];
        for g in gens.iter_mut() {
            for _ in 0..50 {
                let f = g.next_frame(&mut rng);
                prop_assert!(EthernetFrame::new(f.bytes()).is_ok());
            }
        }
    }

    /// Page loads are reproducible per (profile, rng seed) and noise
    /// keeps frames legal.
    #[test]
    fn page_loads_deterministic(seed in 0u64..200, noise in 0.0f64..0.9) {
        let p = WebsiteProfile::from_seed("prop", seed);
        let mut r1 = SmallRng::seed_from_u64(seed + 1);
        let mut r2 = SmallRng::seed_from_u64(seed + 1);
        let t1 = p.page_load(noise, &mut r1);
        let t2 = p.page_load(noise, &mut r2);
        prop_assert_eq!(&t1, &t2);
        for f in &t1 {
            prop_assert!(EthernetFrame::new(f.bytes()).is_ok());
        }
    }

    /// LFSR restarts reproduce the same bit stream; different seeds
    /// yield different phases of it.
    #[test]
    fn lfsr_deterministic(seed in 1u16..0x7fff) {
        let a: Vec<u8> = Lfsr15::new(seed).take(64).collect();
        let b: Vec<u8> = Lfsr15::new(seed).take(64).collect();
        prop_assert_eq!(a, b);
    }
}
