//! A simulated physical-page allocator for the driver's rx buffers.
//!
//! Buffer pages come from wherever the kernel's page allocator happens to
//! hand them out, which is why the ring's mapping onto the 256
//! page-aligned cache sets is *non-uniform* (paper Figures 5 and 6):
//! 256 random pages into 256 set-slices is a balls-into-bins process, so
//! ≈ 1/e ≈ 37 % of sets end up with no buffer at all. Random unique page
//! selection over a large physical region reproduces that distribution —
//! no further tuning needed.

use pc_cache::{PhysAddr, PAGE_SIZE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A physical page handed out by the allocator.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct PageRef {
    /// Page-aligned base address.
    pub base: PhysAddr,
    /// `true` if the page lives on a remote NUMA node — the IGB driver
    /// refuses to reuse such pages (`igb_can_reuse_rx_page`).
    pub remote: bool,
}

/// Allocates unique, randomly placed 4 KiB pages from a fixed physical
/// region, optionally tagging some as NUMA-remote.
///
/// ```
/// use pc_nic::PageAllocator;
/// let mut alloc = PageAllocator::new(42);
/// let a = alloc.alloc_page();
/// let b = alloc.alloc_page();
/// assert_ne!(a.base, b.base);
/// assert!(a.base.is_page_aligned());
/// ```
#[derive(Clone, Debug)]
pub struct PageAllocator {
    rng: SmallRng,
    first_page: u64,
    num_pages: u64,
    remote_prob: f64,
    in_use: HashSet<u64>,
}

impl PageAllocator {
    /// Default region: 1 Mi pages (4 GiB) starting at 1 GiB, all local.
    pub fn new(seed: u64) -> Self {
        PageAllocator::with_region(seed, 1 << 18, 1 << 20)
    }

    /// Allocator over `num_pages` pages starting at page number
    /// `first_page`.
    ///
    /// # Panics
    ///
    /// Panics if `num_pages` is zero.
    pub fn with_region(seed: u64, first_page: u64, num_pages: u64) -> Self {
        assert!(num_pages > 0, "region must contain pages");
        PageAllocator {
            rng: SmallRng::seed_from_u64(seed),
            first_page,
            num_pages,
            remote_prob: 0.0,
            in_use: HashSet::new(),
        }
    }

    /// Sets the probability that an allocated page is NUMA-remote.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]`.
    pub fn with_remote_probability(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability must be in [0, 1]");
        self.remote_prob = prob;
        self
    }

    /// Number of pages currently allocated.
    pub fn allocated(&self) -> usize {
        self.in_use.len()
    }

    /// Allocates a fresh page, never reusing a live one.
    ///
    /// # Panics
    ///
    /// Panics if the region is exhausted (the reproduction never
    /// allocates more than a few thousand pages from a million-page
    /// region).
    pub fn alloc_page(&mut self) -> PageRef {
        assert!(
            (self.in_use.len() as u64) < self.num_pages,
            "physical page region exhausted"
        );
        loop {
            let page = self.first_page + self.rng.gen_range(0..self.num_pages);
            if self.in_use.insert(page) {
                let remote = self.remote_prob > 0.0 && self.rng.gen_bool(self.remote_prob);
                return PageRef {
                    base: PhysAddr::new(page * PAGE_SIZE as u64),
                    remote,
                };
            }
        }
    }

    /// Returns a page to the allocator.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page aligned or was not allocated.
    pub fn free_page(&mut self, base: PhysAddr) {
        assert!(base.is_page_aligned(), "freeing a non-page-aligned address");
        let removed = self.in_use.remove(&base.page_number());
        assert!(removed, "double free of page {base}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_are_unique_and_aligned() {
        let mut a = PageAllocator::new(1);
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            let p = a.alloc_page();
            assert!(p.base.is_page_aligned());
            assert!(seen.insert(p.base), "duplicate page {}", p.base);
        }
        assert_eq!(a.allocated(), 1000);
    }

    #[test]
    fn free_allows_reuse_eventually() {
        let mut a = PageAllocator::with_region(3, 0, 2);
        let p1 = a.alloc_page();
        let p2 = a.alloc_page();
        assert_ne!(p1.base, p2.base);
        a.free_page(p1.base);
        let p3 = a.alloc_page();
        assert_eq!(p3.base, p1.base, "only one free page remained");
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = PageAllocator::new(1);
        let p = a.alloc_page();
        a.free_page(p.base);
        a.free_page(p.base);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut a = PageAllocator::with_region(3, 0, 4);
        for _ in 0..5 {
            a.alloc_page();
        }
    }

    #[test]
    fn remote_probability_zero_means_all_local() {
        let mut a = PageAllocator::new(9);
        assert!((0..200).all(|_| !a.alloc_page().remote));
    }

    #[test]
    fn remote_probability_takes_effect() {
        let mut a = PageAllocator::new(9).with_remote_probability(0.5);
        let remote = (0..400).filter(|_| a.alloc_page().remote).count();
        assert!(
            (100..300).contains(&remote),
            "remote count {remote} implausible for p=0.5"
        );
    }

    #[test]
    fn ring_pages_leave_about_a_third_of_sets_empty() {
        // The balls-into-bins property behind Figure 6: 256 random pages
        // over 256 page-aligned set-slices leave ≈ e^-1 of them empty.
        use pc_cache::{CacheGeometry, SliceHash};
        let geom = CacheGeometry::xeon_e5_2660();
        let hash = SliceHash::intel_8_slice();
        let mut empties = 0usize;
        let trials = 50;
        for seed in 0..trials {
            let mut a = PageAllocator::new(seed);
            let mut hit = vec![false; geom.page_aligned_set_slices()];
            for _ in 0..256 {
                let p = a.alloc_page();
                let set = geom.set_index(p.base);
                let slice = hash.slice_of(p.base);
                let idx = slice * geom.page_aligned_sets_per_slice() + set / 64;
                hit[idx] = true;
            }
            empties += hit.iter().filter(|h| !**h).count();
        }
        let frac = empties as f64 / (trials as f64 * 256.0);
        assert!(
            (0.30..0.45).contains(&frac),
            "empty-set fraction {frac:.3} outside the paper's ~35% ballpark"
        );
    }
}
