//! Deferred CPU reads: the header-to-payload latency without DDIO.
//!
//! Without DDIO the NIC writes packets to *memory*; the driver reads the
//! header promptly, but the payload is only demand-fetched when the
//! networking stack or application touches it — up to ~20 k cycles later
//! (paper §IV-d, citing Huggahalli et al.). The driver model emits those
//! future reads as deferred accesses; the test bed executes them when the
//! clock catches up.

use pc_cache::{Cycles, Hierarchy, PhysAddr};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered queue of future CPU reads.
///
/// ```
/// use pc_cache::{CacheGeometry, DdioMode, Hierarchy, PhysAddr};
/// use pc_nic::DeferredReads;
///
/// let mut h = Hierarchy::new(CacheGeometry::tiny(), DdioMode::Disabled);
/// let mut q = DeferredReads::new();
/// q.push(1_000, PhysAddr::new(0x3000));
/// assert_eq!(q.run_due(&mut h), 0); // clock at 0: nothing due yet
/// h.advance(2_000);
/// assert_eq!(q.run_due(&mut h), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DeferredReads {
    heap: BinaryHeap<Reverse<(Cycles, u64)>>,
    /// Reads filed against fused-batch segments whose end clocks are
    /// not reconstructed yet: `(segment index, addr)`. They become
    /// timed heap entries in [`DeferredReads::resolve_segments`].
    unresolved: Vec<(usize, PhysAddr)>,
}

impl DeferredReads {
    /// An empty queue.
    pub fn new() -> Self {
        DeferredReads::default()
    }

    /// Schedules a CPU read of `addr` at cycle `at`.
    pub fn push(&mut self, at: Cycles, addr: PhysAddr) {
        self.heap.push(Reverse((at, addr.raw())));
    }

    /// Schedules a batch of reads.
    pub fn extend<I: IntoIterator<Item = (Cycles, PhysAddr)>>(&mut self, items: I) {
        for (at, addr) in items {
            self.push(at, addr);
        }
    }

    /// Pending read count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Cycle of the earliest pending read, if any. Reads still filed
    /// against unresolved segments have no time yet and are not
    /// considered — mid-fusion callers bound them separately (the
    /// window planner's deferral lower bounds).
    pub fn next_due(&self) -> Option<Cycles> {
        self.heap.peek().map(|Reverse((at, _))| *at)
    }

    /// Files a payload read whose due time is not known yet: it hangs
    /// off fused-batch segment `seg` and becomes a timed entry when
    /// [`DeferredReads::resolve_segments`] learns the reconstructed
    /// segment end clocks.
    pub fn push_unresolved(&mut self, seg: usize, addr: PhysAddr) {
        self.unresolved.push((seg, addr));
    }

    /// Number of reads filed against unresolved segments.
    pub fn unresolved(&self) -> usize {
        self.unresolved.len()
    }

    /// Resolves every segment-filed read against the reconstructed
    /// per-segment end clocks: a read filed under `seg` becomes due at
    /// `seg_ends[seg] + delay` (the header-to-payload delay), exactly
    /// the due the per-frame engine computes from its observed
    /// mid-stream clock.
    pub fn resolve_segments(&mut self, seg_ends: &[Cycles], delay: Cycles) {
        for (seg, addr) in self.unresolved.drain(..) {
            self.heap.push(Reverse((seg_ends[seg] + delay, addr.raw())));
        }
    }

    /// Executes every read whose time has come (`at <= h.now()`),
    /// returning how many ran.
    pub fn run_due(&mut self, h: &mut Hierarchy) -> usize {
        debug_assert!(
            self.unresolved.is_empty(),
            "resolve_segments before running dues: unresolved reads may be due already"
        );
        let mut ran = 0;
        while let Some(Reverse((at, raw))) = self.heap.peek().copied() {
            if at > h.now() {
                break;
            }
            self.heap.pop();
            // Fault site `dropped-deferred-read`: the windowed rx
            // engine loses one due payload read (the engine-scope gate
            // keeps the per-frame and per-access engines honest).
            if pc_cache::fault::fires(pc_cache::fault::FaultSite::DroppedDeferredRead) {
                continue;
            }
            h.cpu_read(PhysAddr::new(raw));
            ran += 1;
        }
        ran
    }

    /// Executes *all* pending reads regardless of time (end-of-experiment
    /// drain), returning how many ran.
    pub fn drain_all(&mut self, h: &mut Hierarchy) -> usize {
        debug_assert!(
            self.unresolved.is_empty(),
            "resolve_segments before draining: unresolved reads have no order yet"
        );
        let mut ran = 0;
        while let Some(Reverse((_, raw))) = self.heap.pop() {
            h.cpu_read(PhysAddr::new(raw));
            ran += 1;
        }
        ran
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_cache::{CacheGeometry, DdioMode};

    fn h() -> Hierarchy {
        Hierarchy::new(CacheGeometry::tiny(), DdioMode::Disabled)
    }

    #[test]
    fn runs_in_time_order() {
        let mut h = h();
        let mut q = DeferredReads::new();
        q.push(500, PhysAddr::new(0x1000));
        q.push(100, PhysAddr::new(0x2000));
        assert_eq!(q.next_due(), Some(100));
        h.advance(200);
        assert_eq!(q.run_due(&mut h), 1, "only the cycle-100 read is due");
        assert!(h.llc().contains(PhysAddr::new(0x2000)));
        assert!(!h.llc().contains(PhysAddr::new(0x1000)));
    }

    #[test]
    fn unresolved_reads_resolve_against_segment_ends() {
        let mut h = h();
        let mut q = DeferredReads::new();
        q.push_unresolved(1, PhysAddr::new(0x1000));
        q.push_unresolved(0, PhysAddr::new(0x2000));
        assert_eq!(q.unresolved(), 2);
        assert_eq!(q.next_due(), None, "no time until resolution");
        q.resolve_segments(&[400, 900], 100);
        assert_eq!(q.unresolved(), 0);
        assert_eq!(q.len(), 2);
        assert_eq!(q.next_due(), Some(500), "segment 0's end + delay");
        h.advance(600);
        assert_eq!(q.run_due(&mut h), 1);
        assert!(h.llc().contains(PhysAddr::new(0x2000)));
        assert!(!h.llc().contains(PhysAddr::new(0x1000)));
    }

    #[test]
    fn drain_runs_everything() {
        let mut h = h();
        let mut q = DeferredReads::new();
        q.extend([
            (10_000, PhysAddr::new(0x1000)),
            (20_000, PhysAddr::new(0x2000)),
        ]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.drain_all(&mut h), 2);
        assert!(q.is_empty());
    }
}
